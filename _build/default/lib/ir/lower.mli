open Dca_frontend
(** Lowering from the typed AST to the IR.

    Control flow is flattened into branch-terminated basic blocks;
    short-circuit [&&]/[||] become diamonds; [for] loops become
    init → header → body → step → header; [break]/[continue] branch to the
    innermost exit/step block.  Address arithmetic for array indexing,
    struct fields and pointer dereferences is made explicit with [Gep]
    instructions, scaled in cells according to {!Layout}. *)

val lower_program : Tast.tprogram -> Ir.program

val compile : file:string -> string -> Ir.program
(** Convenience: parse, type-check and lower a MiniC source buffer. *)
