(** Runtime values of the interpreter.  Pointers address (block, offset)
    pairs in the cell-addressed heap of {!Store}. *)

type t =
  | VInt of int
  | VFloat of float
  | VPtr of int * int  (** heap block id, cell offset *)
  | VNull
  | VUndef  (** uninitialized frame slot; any use traps *)

let to_string = function
  | VInt n -> string_of_int n
  | VFloat f -> Printf.sprintf "%.12g" f
  | VPtr (b, o) -> Printf.sprintf "<%d:%d>" b o
  | VNull -> "null"
  | VUndef -> "<undef>"

let zero_of_kind = function
  | Dca_ir.Layout.KInt -> VInt 0
  | Dca_ir.Layout.KFloat -> VFloat 0.0
  | Dca_ir.Layout.KPtr -> VNull

let truthy = function
  | VInt n -> n <> 0
  | VPtr _ -> true
  | VNull -> false
  | VFloat f -> f <> 0.0
  | VUndef -> invalid_arg "Value.truthy: undefined value"
