(** IDIOMS-like constraint-based reduction and histogram detection
    (Ginsbach & O'Boyle, CGO 2017; paper §V-A).

    The tool searches for loops whose entire cross-iteration behavior is a
    set of commutative read-modify-write idioms: scalar reductions, array
    reductions [a\[f(i)\] op= e], and histograms [a\[g(x)\] op= e] with a
    data-dependent subscript.  A loop qualifies when it contains at least
    one such idiom, every other memory access passes the dependence test,
    and remaining scalars are induction or private.  Plain independent
    maps contain no idiom and are not reported — which is why the tool's
    absolute counts in Table III are low. *)

open Dca_analysis

let name = "Idioms"

let classify info fi (loop : Loops.loop) : Tool.verdict =
  let pur = Proginfo.purity info in
  if Static_common.loop_does_io info fi loop then Tool.Not_parallel "I/O inside loop"
  else begin
    match
      List.find_opt (fun callee -> not (Purity.pure pur callee)) (Static_common.calls_in fi loop)
    with
    | Some callee -> Tool.Not_parallel (Printf.sprintf "impure call to %s" callee)
    | None ->
        if not (Affine.counted_header fi.Proginfo.fi_affine loop) then
          Tool.Not_parallel "not a counted loop"
        else begin
          let classes =
            Scalars.classify_loop fi.Proginfo.fi_cfg fi.Proginfo.fi_affine fi.Proginfo.fi_live loop
          in
          let scalar_reductions =
            List.exists (fun (_, c) -> match c with Scalars.Reduction _ -> true | _ -> false) classes
          in
          match Static_common.scalar_blocker fi loop ~reductions_ok:(fun _ -> true) with
          | Some why -> Tool.Not_parallel why
          | None -> begin
              let rmws = Memred.find fi.Proginfo.fi_cfg fi.Proginfo.fi_affine loop in
              (* a genuine accumulation idiom: a scalar reduction, a global
                 accumulator, a histogram (data-dependent subscript), or an
                 array cell whose subscript does not vary with this loop —
                 NOT a per-iteration update like [a[i] += b[i]] *)
              let accumulates r =
                match r.Memred.rmw_kind with
                | Memred.Global_scalar _ -> true
                | Memred.Array_cell { subscript = None } -> true
                | Memred.Array_cell { subscript = Some aff } ->
                    not (List.exists (fun (t, _) -> t = Affine.Tiv loop.Loops.l_id) aff.Affine.coeffs)
              in
              if (not (List.exists accumulates rmws)) && not scalar_reductions then
                Tool.Not_parallel "no reduction or histogram idiom"
              else begin
                match Static_common.memory_blocker fi loop ~exempt_rmws:rmws ~allow_unknown_roots:false with
                | Some why -> Tool.Not_parallel why
                | None -> Tool.Parallel
              end
            end
        end
  end

let tool =
  {
    Tool.tool_name = name;
    tool_static = true;
    tool_analyze = (fun info _ -> Tool.per_loop info (classify info));
  }
