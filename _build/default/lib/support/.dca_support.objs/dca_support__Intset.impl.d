lib/support/intset.ml: Int List Set Stdlib
