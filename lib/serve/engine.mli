(** The serve daemon's analysis core: a warm-session LRU in front of the
    two-level verdict cache ({!Vcache}), independent of any transport so
    tests can drive it directly.

    {!handle} is safe to call from many domains at once.  Each analyze
    request runs under its own {!Dca_support.Telemetry.Ctx} (folded into
    the daemon's context on completion, so aggregates match a serial
    daemon's), claims its warm session exclusively (a contended key gets
    a transient session), and fault-carrying requests hold a
    writer-priority gate exclusively so process-global faultpoint plans
    never leak into innocent requests.  Replies are byte-identical to a
    serial daemon's under any interleaving: the report and its counters
    footer are pure folds over the per-loop results.  Parallelism also
    lives inside a request: unresolved loops run on the warm session's
    worker pool and are merged deterministically with the cached
    verdicts, so a reply assembled from any mix of cache hits and fresh
    work is byte-identical to a cold [dca analyze] run. *)

type t

val create :
  ?cache_dir:string -> ?cache_capacity:int -> ?sessions:int -> ?jobs:int -> unit -> t
(** [cache_dir] enables the persistent cache level (see {!Vcache.create});
    [sessions] bounds the warm-session LRU (default 8); [jobs] is the
    default pool width for requests that do not set one.  The creating
    domain's ambient telemetry context becomes the daemon's aggregate
    context. *)

val handle : t -> Protocol.request -> Protocol.response
(** Serve one request.  [Analyze] failures of any kind — unknown program,
    parse error, resource-budget exhaustion, an injected fault escaping
    the per-loop containment — become error {e responses}; the engine
    survives and the next request starts from a clean faultpoint state.
    [Shutdown] is answered like [Ping]; stopping the accept loop is the
    transport's job ({!Server}).  Every response carries the
    server-assigned request id in [rp_req]. *)

val stats : t -> (string * int) list
(** Server and cache counters, as reported in [Stats] replies. *)

val metrics : t -> Metrics.t
(** The engine's metrics plane: request counters, cache hit/miss
    totals, in-flight/queue-depth/warm-session gauges, and the request
    latency histogram.  [Stats] replies carry its snapshot as JSON in
    [rp_metrics].  The [dca_queue_depth] gauge is maintained by the
    transport. *)

val cache : t -> Vcache.t
val close : t -> unit
(** Close every warm session (releasing their pools). *)
