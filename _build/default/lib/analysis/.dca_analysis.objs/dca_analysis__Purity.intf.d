lib/analysis/purity.mli: Dca_ir
