(* Tests for the Session API and the parallel execution engine.

   The contract under test is the deterministic-merge rule: for every
   program and configuration, the parallel engine (jobs > 1) must produce
   loop_result decisions, per-invocation verdict traces and rendered
   reports that are *bit-identical* to the sequential path (jobs = 1).

   On a single-CPU host multi-domain runs pay OCaml 5's stop-the-world
   minor-GC rendezvous on every collection, so the full-registry sweep
   uses a deliberately light configuration (one shuffle, two invocations)
   to keep the suite quick; the default configuration is exercised on a
   subset of fast programs.  Coverage of the default configuration over
   the whole registry lives in the CLI acceptance sweep. *)

module Session = Dca_core.Session
module Driver = Dca_core.Driver
module Commutativity = Dca_core.Commutativity

(* A configuration heavy enough to reach every code path (identity check,
   permuted replays, escalation, worklist promotion) but light enough to
   run the whole registry at several job counts. *)
let light_config =
  {
    Commutativity.default_config with
    Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles:1 ();
    cc_max_invocations = 2;
  }

let decision_key (r : Driver.loop_result) =
  (r.Driver.lr_label, Driver.decision_to_string r.Driver.lr_decision)

let outcome_key (r : Driver.loop_result) =
  match r.Driver.lr_outcome with
  | None -> None
  | Some o ->
      Some
        ( Commutativity.verdict_to_string o.Commutativity.oc_verdict,
          o.Commutativity.oc_invocations,
          o.Commutativity.oc_escalated,
          o.Commutativity.oc_promotions,
          List.map Commutativity.verdict_to_string o.Commutativity.oc_per_invocation )

let analyze_at ?config ?hierarchical bm jobs =
  let options =
    let open Session.Options in
    let o = default |> with_jobs jobs in
    let o = match config with Some c -> with_config c o | None -> o in
    match hierarchical with Some h -> with_hierarchical h o | None -> o
  in
  Session.with_session ~options (Session.Benchmark bm) (fun s ->
      (Session.dca_results s, Session.report s))

(* Every registry benchmark: decisions, outcome traces and the rendered
   report agree between jobs=1 and jobs=4. *)
let test_registry_determinism () =
  List.iter
    (fun bm ->
      let seq, seq_report = analyze_at ~config:light_config bm 1 in
      let par, par_report = analyze_at ~config:light_config bm 4 in
      let name = bm.Dca_progs.Benchmark.bm_name in
      Alcotest.(check int)
        (name ^ ": same loop count") (List.length seq) (List.length par);
      List.iter2
        (fun a b ->
          Alcotest.(check (pair string string))
            (name ^ ": decision") (decision_key a) (decision_key b);
          Alcotest.(check bool)
            (name ^ ": outcome trace") true
            (outcome_key a = outcome_key b))
        seq par;
      Alcotest.(check string) (name ^ ": report") seq_report par_report)
    Dca_progs.Registry.all

(* Default (paper) configuration on fast programs, at several widths. *)
let test_default_config_determinism () =
  List.iter
    (fun name ->
      let bm = Dca_progs.Registry.find_exn name in
      let seq, seq_report = analyze_at bm 1 in
      List.iter
        (fun jobs ->
          let par, par_report = analyze_at bm jobs in
          Alcotest.(check string)
            (Printf.sprintf "%s: report jobs=%d" name jobs)
            seq_report par_report;
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: outcome jobs=%d" name jobs)
                true
                (decision_key a = decision_key b && outcome_key a = outcome_key b))
            seq par)
        [ 2; 4 ])
    [ "DC"; "ks"; "treeadd"; "hash" ]

(* Hierarchical mode: subsumption decisions (which require ancestor
   verdicts to be final before descendants are scheduled) must also be
   jobs-invariant. *)
let test_hierarchical_determinism () =
  List.iter
    (fun name ->
      let bm = Dca_progs.Registry.find_exn name in
      let seq, seq_report = analyze_at ~config:light_config ~hierarchical:true bm 1 in
      let par, par_report = analyze_at ~config:light_config ~hierarchical:true bm 4 in
      Alcotest.(check string) (name ^ ": hierarchical report") seq_report par_report;
      let subsumed rs =
        List.filter_map
          (fun r ->
            match r.Driver.lr_decision with
            | Driver.Subsumed anc -> Some (r.Driver.lr_label, anc)
            | _ -> None)
          rs
      in
      Alcotest.(check (list (pair string string)))
        (name ^ ": subsumed set") (subsumed seq) (subsumed par))
    [ "BT"; "LU"; "water-spatial"; "ising" ]

(* In hierarchical mode a subsumed loop is cancelled, not tested: it must
   carry no dynamic outcome, and its subsumer must be a commutative
   ancestor. *)
let test_hierarchical_cancellation () =
  let bm = Dca_progs.Registry.find_exn "LU" in
  let results, _ = analyze_at ~config:light_config ~hierarchical:true bm 4 in
  let commutative_ids = Driver.commutative_ids results in
  let saw_subsumed = ref false in
  List.iter
    (fun r ->
      match r.Driver.lr_decision with
      | Driver.Subsumed anc ->
          saw_subsumed := true;
          Alcotest.(check bool) "subsumed loop was not tested" true (r.Driver.lr_outcome = None);
          Alcotest.(check bool) "subsumer is commutative" true (List.mem anc commutative_ids)
      | _ -> ())
    results;
  Alcotest.(check bool) "LU has subsumed inner loops" true !saw_subsumed

(* Memoization: repeated stage access returns the physically-equal value,
   for any job width and access order. *)
let prop_session_memoizes =
  QCheck.Test.make ~count:30 ~name:"Session stages are memoized (physical equality)"
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 1 6) (int_range 0 4)))
    (fun (jobs, accesses) ->
      let bm = Dca_progs.Registry.find_exn "DC" in
      Session.with_session ~jobs ~config:light_config (Session.Benchmark bm) (fun s ->
          let stage_eq i =
            match i with
            | 0 -> Session.ir s == Session.ir s
            | 1 -> Session.proginfo s == Session.proginfo s
            | 2 -> Session.profile s == Session.profile s
            | 3 -> Session.dca_results s == Session.dca_results s
            | _ -> Session.plan s == Session.plan s
          in
          List.for_all stage_eq accesses
          && Session.dca_results s == Session.dca_results s))

(* Session.load resolves benchmarks by name and rejects unknown programs. *)
let test_session_load () =
  (match Session.load ~jobs:1 "DC" with
  | Ok s ->
      Alcotest.(check string) "benchmark name" "DC" (Session.name s);
      Alcotest.(check int) "jobs" 1 (Session.jobs s);
      Session.close s
  | Error e -> Alcotest.fail e);
  match Session.load "no-such-program-anywhere" with
  | Ok _ -> Alcotest.fail "expected Error for unknown program"
  | Error _ -> ()

(* close is idempotent and leaves memoized stages readable. *)
let test_session_close () =
  let bm = Dca_progs.Registry.find_exn "DC" in
  let s = Session.create ~jobs:4 ~config:light_config (Session.Benchmark bm) in
  let results = Session.dca_results s in
  Session.close s;
  Session.close s;
  Alcotest.(check bool) "results readable after close" true (Session.dca_results s == results)

(* Explicit machine/strategy plans are not cached; the default plan is. *)
let test_plan_memoization () =
  let bm = Dca_progs.Registry.find_exn "DC" in
  Session.with_session ~jobs:1 ~config:light_config (Session.Benchmark bm) (fun s ->
      let p1 = Session.plan s in
      Alcotest.(check bool) "default plan memoized" true (Session.plan s == p1);
      let m = Dca_parallel.Machine.with_workers Dca_parallel.Machine.default 4 in
      let q1 = Session.plan ~machine:m s in
      Alcotest.(check bool) "explicit plan is fresh" true (Session.plan ~machine:m s != q1);
      Alcotest.(check bool) "default plan still cached" true (Session.plan s == p1))

let suites =
  [
    ( "session",
      [
        Alcotest.test_case "registry determinism jobs=1 vs 4" `Slow test_registry_determinism;
        Alcotest.test_case "default-config determinism" `Slow test_default_config_determinism;
        Alcotest.test_case "hierarchical determinism" `Slow test_hierarchical_determinism;
        Alcotest.test_case "hierarchical cancellation" `Quick test_hierarchical_cancellation;
        QCheck_alcotest.to_alcotest prop_session_memoizes;
        Alcotest.test_case "load resolution" `Quick test_session_load;
        Alcotest.test_case "close idempotent" `Quick test_session_close;
        Alcotest.test_case "plan memoization" `Quick test_plan_memoization;
      ] );
  ]
