open Ir

type t = {
  f : func;
  succs : int list array;
  preds : int list array;
  reachable : bool array;
  rpo : int list;
}

let compute_reachable f succs =
  let n = Array.length f.fblocks in
  let seen = Array.make n false in
  let rec visit b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter visit succs.(b)
    end
  in
  visit f.fentry;
  seen

let compute_rpo f succs reachable =
  let n = Array.length f.fblocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec visit b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter visit succs.(b);
      order := b :: !order
    end
  in
  visit f.fentry;
  List.filter (fun b -> reachable.(b)) !order

let of_func f =
  let n = Array.length f.fblocks in
  let succs = Array.make n [] and preds = Array.make n [] in
  Array.iter
    (fun blk ->
      let ss = term_succs blk.bterm in
      succs.(blk.bid) <- ss)
    f.fblocks;
  let reachable = compute_reachable f succs in
  Array.iteri
    (fun b ss -> if reachable.(b) then List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  { f; succs; preds; reachable; rpo = compute_rpo f succs reachable }

let func t = t.f
let nblocks t = Array.length t.f.fblocks
let succs t b = t.succs.(b)
let preds t b = t.preds.(b)
let reachable t = t.reachable
let entry t = t.f.fentry
let reverse_postorder t = t.rpo
let postorder t = List.rev t.rpo

let exit_blocks t =
  List.filter
    (fun b -> match t.f.fblocks.(b).bterm with Ret _ -> true | Br _ | Cbr _ -> false)
    t.rpo

let block t b = t.f.fblocks.(b)

let instrs_in_order t = List.concat_map (fun b -> t.f.fblocks.(b).instrs) t.rpo

let pp_dot fmt t =
  Format.fprintf fmt "digraph %s {@." t.f.fname;
  List.iter
    (fun b ->
      List.iter (fun s -> Format.fprintf fmt "  b%d -> b%d;@." b s) t.succs.(b))
    t.rpo;
  Format.fprintf fmt "}@."

