(** Recursive-descent parser for MiniC.

    Grammar sketch (operators by increasing precedence: [||], [&&],
    comparisons, [+ -], [* / %], unary [- !], postfix [\[\] . ->]):

    {v
    program   ::= (struct_def | global | func)*
    struct_def::= "struct" ident "{" (type ident ";")* "}" ";"?
    global    ::= type ident dims? ("=" expr)? ";"
    func      ::= type ident "(" params ")" block
    stmt      ::= decl | assign ";" | call ";" | if | while | for
                | "return" expr? ";" | "break" ";" | "continue" ";" | block
    v}

    Types are [int], [float], [void], [struct S], any of these followed by
    ['*'] repetitions, and declared variables may carry constant array
    dimensions.  Raises [Loc.Error] on syntax errors. *)

val parse_program : file:string -> string -> Ast.program
(** Lex and parse a full compilation unit. *)

val parse_expr_string : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)
