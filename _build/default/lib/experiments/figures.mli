(** Reproductions of the paper's Figs. 5–7: simulated whole-program
    speedups on the 72-worker machine model (DESIGN.md §2 explains the
    substitution for the paper's physical 72-core host). *)

type fig5_row = {
  f5_name : string;
  f5_speedup : float;
  f5_plan : Dca_parallel.Plan.t;
  f5_paper : float option;  (** approximate bar height in the paper's Fig. 5 *)
}

val fig5 : unit -> fig5_row list
val render_fig5 : fig5_row list -> string

type fig6_row = {
  f6_name : string;
  f6_idioms : float;
  f6_polly : float;
  f6_icc : float;
  f6_dca : float;
  f6_paper_dca : float;
}

val fig6 : unit -> fig6_row list
val render_fig6 : fig6_row list -> string

type fig7_row = {
  f7_name : string;
  f7_dca : float;
  f7_expert_loop : float;
  f7_expert_full : float;
  f7_paper_dca : float;
  f7_paper_expert_loop : float;
  f7_paper_expert_full : float;
}

val fig7 : unit -> fig7_row list
val render_fig7 : fig7_row list -> string

val geomean : float list -> float

val dca_plan_for : Evaluation.t -> Dca_parallel.Plan.t
(** The plan Figs. 6–7 use for DCA: commutative loops restricted to the
    expert profitability selection (paper §V-C2), conflicts resolved by
    benefit on the machine model. *)
