(** The IR evaluator.

    Besides ordinary whole-program execution ({!run_main}), the evaluator
    exposes the primitives DCA's dynamic stage is built from:

    - {!frame}s are first-class, and {!exec_upto} runs a frame's blocks
      from a given block until control is about to enter a block matching
      a predicate — with an optional {!step_control} that (a) filters which
      instructions execute (slice-only or payload-only execution of a loop
      body) and (b) overrides conditional branch directions (replaying the
      recorded control path of the iterator, paper §IV-B);
    - {!add_interceptor} installs a hook that fires when normal execution
      is about to enter a given block (a loop header): the hook takes over,
      runs the loop under the DCA harness, and returns the block where
      execution must resume — this is how whole-program verification runs
      a program "with loop L permuted".

    Executed instructions are counted in {!steps}; a configurable fuel
    bound aborts runaway executions ({!Out_of_fuel}). *)

exception Trap of string
exception Out_of_fuel

exception Deadline_exceeded
(** The context's wall-clock deadline ([?deadline_ns] at {!create})
    elapsed.  Checked every few thousand steps on the fuel path, so the
    raise lands within one guard interval of the deadline. *)

exception Heap_exhausted
(** The major heap grew past the context's budget ([?heap_words] at
    {!create}).  The measurement is [Gc.quick_stat].heap_words — the
    process-wide major heap — so the budget bounds growth attributable
    to the run plus whatever other domains allocate meanwhile; it is a
    containment guard, not an accounting tool. *)

type ctx

type dblock
(** A basic block pre-decoded at {!create} time: instruction arrays with
    constant operands resolved to ready-made values — the direct-threaded
    form the hot loop executes instead of re-interpreting [Ir.instr]
    lists. *)

type frame = { ffunc : Dca_ir.Ir.func; fcode : dblock array; regs : Value.t array }
(** [fcode] is the decoded body of [ffunc]; build frames with
    {!frame_for} or {!copy_frame} rather than by hand. *)

val guard_interval : int
(** Step period of the resource-guard check: the deadline and heap
    budgets are only consulted every [guard_interval] executed
    instructions (one integer compare on the fast path), so a guard can
    overshoot by at most one interval. *)

val create :
  ?fuel:int -> ?deadline_ns:int -> ?heap_words:int -> ?input:int list -> Dca_ir.Ir.program -> ctx
(** Default fuel: 200 million instructions.  [deadline_ns] is a relative
    wall-clock budget converted to an absolute monotonic deadline at
    creation; [heap_words] bounds major-heap growth over the heap size
    at creation.  Both are inherited by {!fork} (absolute, so every
    replica of an invocation shares the same deadline) and default to
    unlimited. *)

val fork : ctx -> ctx
(** A private replica of the context at its current state: the store is
    deep-copied ({!Store.copy}), the (read-only) program and function
    table are shared, and the replica starts with no sink and no
    interceptors.  Forking is how DCA's parallel engine gives each
    permuted replay its own interpreter — replicas on different domains
    never share mutable state.  The step counter is inherited so the fuel
    headroom of the replica matches the parent at the fork point. *)

val program : ctx -> Dca_ir.Ir.program
val store : ctx -> Store.t
val steps : ctx -> int
val set_sink : ctx -> Events.sink option -> unit

val run_main : ctx -> unit
val call_function : ctx -> string -> Value.t list -> Value.t option
val outputs : ctx -> string list

val eval_operand : ctx -> frame -> Dca_ir.Ir.operand -> Value.t
val read_var : frame -> Dca_ir.Ir.var -> Value.t
val write_var : frame -> Dca_ir.Ir.var -> Value.t -> unit

val frame_for : ctx -> string -> frame
(** A fresh frame (all slots [VUndef]) for the named function.  Raises
    [Invalid_argument] on an unknown function. *)

val copy_frame : frame -> frame
(** Same function and decoded code, private copy of the register file. *)

type step_control = {
  sc_filter : Dca_ir.Ir.instr -> bool;  (** execute only instructions satisfying this *)
  sc_override : int -> int option;
      (** forced successor for the conditional terminator of the given
          block ([None] = evaluate the condition normally) *)
}

type stop_reason =
  | Stopped_at of int  (** about to enter this block *)
  | Returned of Value.t option  (** a [Ret] executed inside the region *)

val exec_upto : ctx -> frame -> start:int -> stop:(int -> bool) -> control:step_control option -> stop_reason
(** Execute blocks beginning with [start] (which always executes, even if
    [stop start] holds) until about to transfer to a block [b] with
    [stop b].  Calls made by executed instructions run normally (filters
    apply only to the frame's own blocks). *)

val add_interceptor : ctx -> fname:string -> header:int -> (ctx -> frame -> int) -> unit
(** The handler receives the frame about to enter [header] and must return
    the block id where execution continues (typically the loop's unique
    exit target).  The handler is not re-entered while it is active. *)

val clear_interceptors : ctx -> unit

val globals_of : ctx -> (Dca_ir.Ir.gdef * Value.t) list
(** Current values of the global table, in slot order. *)
