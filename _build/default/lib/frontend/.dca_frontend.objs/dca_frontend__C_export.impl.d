lib/frontend/c_export.ml: Ast Buffer List Loc Parser Printf String Typecheck
