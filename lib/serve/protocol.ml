(* JSON-lines wire protocol of `dca serve` (grammar in DESIGN.md §12).

   One request object per line in, one response object per line out, in
   order.  Unknown request fields are ignored (forward compatibility);
   missing optional fields take the documented defaults.  The [id] is
   echoed verbatim so a pipelining client can match replies. *)

type program_source =
  | Named of string  (** registry benchmark name or server-side file path *)
  | Inline of { file : string; source : string; input : int list }

type op = Analyze | Ping | Stats | Shutdown

(* [Busy] is the overload-shedding reply: the daemon refused to take the
   request (queue full, worker crash mid-request) and the client should
   retry after a backoff — nothing was analyzed and nothing was cached,
   so a retry is always safe.  Parsers map unknown wire statuses to
   [Error] so an older client degrades gracefully against a newer
   daemon. *)
type status = Ok | Busy | Error

type request = {
  rq_id : int;
  rq_op : op;
  rq_program : program_source option;  (** required for [Analyze] *)
  rq_jobs : int option;
  rq_shuffles : int option;
  rq_hierarchical : bool;
  rq_no_escalate : bool;
  rq_deadline_ms : int option;
  rq_heap_words : int option;
  rq_faults : string option;  (** fault plan scoped to this request *)
  rq_no_cache : bool;  (** bypass the verdict cache (still stores) *)
  rq_no_static : bool;  (** disable the static fast-path for this request *)
}

let default_request =
  {
    rq_id = 0;
    rq_op = Ping;
    rq_program = None;
    rq_jobs = None;
    rq_shuffles = None;
    rq_hierarchical = false;
    rq_no_escalate = false;
    rq_deadline_ms = None;
    rq_heap_words = None;
    rq_faults = None;
    rq_no_cache = false;
    rq_no_static = false;
  }

type loop_info = {
  li_label : string;
  li_decision : string;
  li_cached : bool;
  li_provenance : Dca_core.Report.provenance;
}

type response = {
  rp_id : int;
  rp_req : int;  (** server-assigned request id (0 = unassigned) *)
  rp_status : status;
  rp_error : string option;
  rp_report : string option;
  rp_loops : loop_info list;
  rp_hits : int;
  rp_misses : int;
  rp_counters : (string * int) list;  (** [Stats] replies: server counters *)
  rp_metrics : Json.t option;  (** [Stats] replies: {!Metrics.snapshot} as JSON *)
  rp_elapsed_ns : int;
}

let ok_response ~id =
  {
    rp_id = id;
    rp_req = 0;
    rp_status = Ok;
    rp_error = None;
    rp_report = None;
    rp_loops = [];
    rp_hits = 0;
    rp_misses = 0;
    rp_counters = [];
    rp_metrics = None;
    rp_elapsed_ns = 0;
  }

let error_response ~id msg = { (ok_response ~id) with rp_status = Error; rp_error = Some msg }
let busy_response ~id msg = { (ok_response ~id) with rp_status = Busy; rp_error = Some msg }
let ok r = r.rp_status = Ok

let status_to_string = function Ok -> "ok" | Busy -> "busy" | Error -> "error"
let status_of_string = function "ok" -> Ok | "busy" -> Busy | _ -> Error

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let op_to_string = function
  | Analyze -> "analyze"
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let op_of_string = function
  | "analyze" -> Some Analyze
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

let program_to_json = function
  | Named n -> Json.Str n
  | Inline { file; source; input } ->
      Json.Obj
        [
          ("file", Json.Str file);
          ("source", Json.Str source);
          ("input", Json.List (List.map (fun n -> Json.Int n) input));
        ]

(* [status]'s [Ok]/[Error] shadow [result]'s constructors from here on
   down, so the parsing code below qualifies the latter with [Stdlib]. *)
let program_of_json j =
  match j with
  | Json.Str n -> Stdlib.Ok (Named n)
  | Json.Obj _ -> (
      match Json.member "source" j with
      | Some (Json.Str source) ->
          let file =
            match Json.member "file" j with Some (Json.Str f) -> f | _ -> "<inline>"
          in
          let input =
            match Json.member "input" j with
            | Some (Json.List xs) -> List.filter_map Json.to_int_opt xs
            | _ -> []
          in
          Stdlib.Ok (Inline { file; source; input })
      | _ -> Stdlib.Error "program object needs a \"source\" string")
  | _ -> Stdlib.Error "\"program\" must be a string or an object"

let request_to_json r =
  let base = [ ("id", Json.Int r.rq_id); ("op", Json.Str (op_to_string r.rq_op)) ] in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let flag name b = if b then [ (name, Json.Bool true) ] else [] in
  Json.Obj
    (base
    @ opt "program" program_to_json r.rq_program
    @ opt "jobs" (fun n -> Json.Int n) r.rq_jobs
    @ opt "shuffles" (fun n -> Json.Int n) r.rq_shuffles
    @ flag "hierarchical" r.rq_hierarchical
    @ flag "no_escalate" r.rq_no_escalate
    @ opt "deadline_ms" (fun n -> Json.Int n) r.rq_deadline_ms
    @ opt "heap_words" (fun n -> Json.Int n) r.rq_heap_words
    @ opt "faults" (fun s -> Json.Str s) r.rq_faults
    @ flag "no_cache" r.rq_no_cache
    @ flag "no_static" r.rq_no_static)

let request_of_json j =
  let int_field name = Option.bind (Json.member name j) Json.to_int_opt in
  let bool_field name = match Json.member name j with Some (Json.Bool b) -> b | _ -> false in
  let str_field name = Option.bind (Json.member name j) Json.to_str_opt in
  match Json.member "op" j with
  | None -> Stdlib.Error "missing \"op\""
  | Some op_j -> (
      match Option.bind (Json.to_str_opt op_j) op_of_string with
      | None -> Stdlib.Error "unknown \"op\" (expected analyze|ping|stats|shutdown)"
      | Some op -> (
          let program =
            match Json.member "program" j with
            | None -> Stdlib.Ok None
            | Some pj -> Result.map Option.some (program_of_json pj)
          in
          match program with
          | Stdlib.Error e -> Stdlib.Error e
          | Stdlib.Ok rq_program ->
              if op = Analyze && rq_program = None then
                Stdlib.Error "analyze needs a \"program\""
              else
                Stdlib.Ok
                  {
                    rq_id = Option.value (int_field "id") ~default:0;
                    rq_op = op;
                    rq_program;
                    rq_jobs = int_field "jobs";
                    rq_shuffles = int_field "shuffles";
                    rq_hierarchical = bool_field "hierarchical";
                    rq_no_escalate = bool_field "no_escalate";
                    rq_deadline_ms = int_field "deadline_ms";
                    rq_heap_words = int_field "heap_words";
                    rq_faults = str_field "faults";
                    rq_no_cache = bool_field "no_cache";
                    rq_no_static = bool_field "no_static";
                  }))

let loop_info_to_json li =
  Json.Obj
    [
      ("label", Json.Str li.li_label);
      ("decision", Json.Str li.li_decision);
      ("cached", Json.Bool li.li_cached);
      ("provenance", Json.Str (Dca_core.Report.provenance_to_string li.li_provenance));
    ]

let loop_info_of_json j =
  match
    ( Option.bind (Json.member "label" j) Json.to_str_opt,
      Option.bind (Json.member "decision" j) Json.to_str_opt )
  with
  | Some label, Some decision ->
      Some
        {
          li_label = label;
          li_decision = decision;
          li_cached =
            (match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false);
          li_provenance =
            (match Json.member "provenance" j with
            | Some (Json.Str "static") -> Dca_core.Report.Static
            | _ -> Dca_core.Report.Dynamic);
        }
  | _ -> None

let response_to_json r =
  Json.Obj
    ([ ("id", Json.Int r.rp_id) ]
    @ (if r.rp_req = 0 then [] else [ ("req", Json.Int r.rp_req) ])
    @ [ ("status", Json.Str (status_to_string r.rp_status)) ]
    @ (match r.rp_error with Some e -> [ ("error", Json.Str e) ] | None -> [])
    @ (match r.rp_report with Some s -> [ ("report", Json.Str s) ] | None -> [])
    @ (match r.rp_loops with
      | [] -> []
      | loops -> [ ("loops", Json.List (List.map loop_info_to_json loops)) ])
    @ [ ("hits", Json.Int r.rp_hits); ("misses", Json.Int r.rp_misses) ]
    @ (match r.rp_counters with
      | [] -> []
      | kvs -> [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)) ])
    @ (match r.rp_metrics with Some m -> [ ("metrics", m) ] | None -> [])
    @ [ ("elapsed_ns", Json.Int r.rp_elapsed_ns) ])

let response_of_json j =
  match Option.bind (Json.member "status" j) Json.to_str_opt with
  | None -> Stdlib.Error "missing \"status\""
  | Some status ->
      let int_field name = Option.value (Option.bind (Json.member name j) Json.to_int_opt) ~default:0 in
      Stdlib.Ok
        {
          rp_id = int_field "id";
          rp_req = int_field "req";
          rp_status = status_of_string status;
          rp_error = Option.bind (Json.member "error" j) Json.to_str_opt;
          rp_report = Option.bind (Json.member "report" j) Json.to_str_opt;
          rp_loops =
            (match Json.member "loops" j with
            | Some (Json.List xs) -> List.filter_map loop_info_of_json xs
            | _ -> []);
          rp_hits = int_field "hits";
          rp_misses = int_field "misses";
          rp_counters =
            (match Json.member "counters" j with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int_opt v))
                  kvs
            | _ -> []);
          rp_metrics = Json.member "metrics" j;
          rp_elapsed_ns = int_field "elapsed_ns";
        }

let request_line r = Json.to_string (request_to_json r)
let response_line r = Json.to_string (response_to_json r)

let parse_request line =
  match Json.of_string_result line with
  | Stdlib.Error e -> Stdlib.Error ("malformed JSON: " ^ e)
  | Stdlib.Ok j -> request_of_json j

let parse_response line =
  match Json.of_string_result line with
  | Stdlib.Error e -> Stdlib.Error ("malformed JSON: " ^ e)
  | Stdlib.Ok j -> response_of_json j
