(* dca — command-line front end of the Dynamic Commutativity Analysis
   reproduction.

     dca list                      enumerate built-in benchmark programs
     dca run <prog>                execute a MiniC program
     dca ir <prog>                 dump the lowered IR
     dca analyze <prog>            DCA verdict for every loop
     dca tools <prog>              compare the five baseline detectors
     dca speedup <prog>            plan + simulated multicore speedup

   <prog> is a path to a .mc file or the name of a built-in benchmark.

   Every analysis command goes through Dca_core.Session: one memoized
   pipeline (ir → proginfo → profile → dca_results → plan) and one worker
   pool, selected with --jobs (or the DCA_JOBS environment variable). *)

open Cmdliner
module Session = Dca_core.Session
module Telemetry = Dca_support.Telemetry
module Faultpoint = Dca_support.Faultpoint

(* Open a session for PROG and run [f] on it, mapping the standard failure
   modes to exit codes.  [trace]/[stats] layer the command-line telemetry
   flags over whatever DCA_TRACE / DCA_STATS configured; the sinks are
   flushed on every exit path so a trace survives a trap. *)
let with_session ?config ?spec ?hierarchical ?jobs ?trace ?(stats = false) ?faults ?deadline_ms
    ?heap_words prog f =
  Telemetry.init_from_env ();
  (* --faults replaces whatever DCA_FAULTS would have armed; a malformed
     plan raises Faultpoint.Bad_plan, mapped to a usage error at top
     level *)
  (match faults with Some plan -> Faultpoint.arm_string plan | None -> ());
  (match (trace, stats) with
  | None, false -> ()
  | _ ->
      let cur = Telemetry.config () in
      let is_jsonl f = Filename.check_suffix f ".jsonl" in
      Telemetry.configure
        {
          Telemetry.cfg_trace =
            (match trace with Some f when not (is_jsonl f) -> Some f | _ -> cur.Telemetry.cfg_trace);
          cfg_jsonl = (match trace with Some f when is_jsonl f -> Some f | _ -> cur.Telemetry.cfg_jsonl);
          cfg_stats = stats || cur.Telemetry.cfg_stats;
        });
  match Session.load ?config ?spec ?deadline_ms ?heap_words ?hierarchical ?jobs prog with
  | Error msg ->
      Printf.eprintf "dca: %s\n" msg;
      1
  | Ok s ->
      Fun.protect
        ~finally:(fun () ->
          Session.close s;
          Telemetry.flush ())
        (fun () ->
          match f s with
          | () -> 0
          | exception Dca_frontend.Loc.Error (loc, msg) ->
              Printf.eprintf "dca: %s: %s\n" (Dca_frontend.Loc.to_string loc) msg;
              1
          | exception Dca_interp.Eval.Trap msg ->
              Printf.eprintf "dca: runtime trap: %s\n" msg;
              1
          | exception Dca_interp.Eval.Out_of_fuel ->
              Printf.eprintf "dca: execution exceeded the fuel bound\n";
              1
          | exception Dca_interp.Eval.Deadline_exceeded ->
              Printf.eprintf "dca: execution exceeded the wall-clock deadline\n";
              1
          | exception Dca_interp.Eval.Heap_exhausted ->
              Printf.eprintf "dca: execution exceeded the heap budget\n";
              1)

let prog_arg =
  let doc = "Program: a .mc source file or a built-in benchmark name (see $(b,dca list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROG" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the dynamic stage.  Defaults to $(b,DCA_JOBS) if set, otherwise the \
     recommended domain count.  Results are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write an execution trace to $(docv): Chrome trace-event JSON (load in Perfetto or \
     about://tracing), or a JSONL event stream if $(docv) ends in $(b,.jsonl)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the telemetry counter table to stderr on exit: deterministic work counters \
           (identical for every $(b,--jobs) value) and diagnostic counters.")

let faults_arg =
  let doc =
    "Deterministic fault plan, e.g. $(b,driver.loop[main:3(d1)]@1=raise; eval.step@100+=delay:2).  \
     Entries are $(i,site[ctx]@N=action) with action one of $(b,raise), $(b,trap), $(b,fuel), \
     $(b,delay:MS); $(b,@N+) fires from the Nth hit on.  Also honored from $(b,DCA_FAULTS) \
     (this flag wins).  Injected failures are contained per loop and reported as \
     $(b,aborted) verdicts."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock budget in milliseconds for each dynamic-stage invocation; exceeding it aborts \
     that loop's test (with one 4x-escalated retry), not the session."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let heap_arg =
  let doc =
    "Major-heap growth budget in words for each dynamic-stage invocation; exceeding it aborts \
     that loop's test, not the session."
  in
  Arg.(value & opt (some int) None & info [ "heap-words" ] ~docv:"W" ~doc)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %-5s %s\n" "name" "suite" "description";
    List.iter
      (fun bm ->
        Printf.printf "%-14s %-5s %s\n" bm.Dca_progs.Benchmark.bm_name
          (match bm.Dca_progs.Benchmark.bm_suite with
          | Dca_progs.Benchmark.Npb -> "NPB"
          | Dca_progs.Benchmark.Plds -> "PLDS")
          bm.Dca_progs.Benchmark.bm_description)
      Dca_progs.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark programs")
    Term.(const run $ const ())

let run_cmd =
  let run prog =
    with_session prog (fun s ->
        let ctx = Dca_interp.Eval.create ~input:(Session.input s) (Session.ir s) in
        Dca_interp.Eval.run_main ctx;
        List.iter print_endline (Dca_interp.Eval.outputs ctx);
        Printf.printf "(%d instructions executed)\n" (Dca_interp.Eval.steps ctx))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a MiniC program on the interpreter")
    Term.(const run $ prog_arg)

let ir_cmd =
  let run prog =
    with_session prog (fun s -> print_string (Dca_ir.Ir_printer.program_to_string (Session.ir s)))
  in
  Cmd.v (Cmd.info "ir" ~doc:"Dump the lowered intermediate representation")
    Term.(const run $ prog_arg)

let shuffles_arg =
  Arg.(value & opt int 3 & info [ "shuffles" ] ~docv:"N" ~doc:"Number of random shuffles to test.")

let no_escalate_arg =
  Arg.(
    value & flag
    & info [ "no-escalate" ]
        ~doc:"Disable whole-program verification; strict live-out digests only.")

let hierarchical_arg =
  Arg.(
    value & flag
    & info [ "hierarchical" ]
        ~doc:
          "Explore loops top-down: skip (as subsumed) loops nested inside a loop already found \
           commutative.")

let analyze_cmd =
  let run prog shuffles no_escalate hierarchical jobs trace stats faults deadline_ms heap_words =
    let config =
      {
        Dca_core.Commutativity.default_config with
        Dca_core.Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles ();
        cc_escalate = not no_escalate;
      }
    in
    with_session ~config ~hierarchical ?jobs ?trace ~stats ?faults ?deadline_ms ?heap_words prog
      (fun s -> print_string (Session.report s))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run Dynamic Commutativity Analysis on every loop of the program")
    Term.(
      const run $ prog_arg $ shuffles_arg $ no_escalate_arg $ hierarchical_arg $ jobs_arg $ trace_arg
      $ stats_arg $ faults_arg $ deadline_arg $ heap_arg)

let tools_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        let info = Session.proginfo s in
        let profile = Session.profile s in
        let dca = Session.dca_results s in
        let tool_results =
          List.map
            (fun tool ->
              (tool.Dca_baselines.Tool.tool_name, tool.Dca_baselines.Tool.tool_analyze info (Some profile)))
            Dca_baselines.Registry.all
        in
        Printf.printf "%-26s %s\n" "loop"
          (String.concat " "
             (List.map (fun (n, _) -> Printf.sprintf "%-9s" n) tool_results @ [ "DCA" ]));
        List.iter
          (fun (r : Dca_core.Driver.loop_result) ->
            let id = r.Dca_core.Driver.lr_loop.Dca_analysis.Loops.l_id in
            let marks =
              List.map
                (fun (_, results) ->
                  if List.mem id (Dca_baselines.Tool.parallel_ids results) then
                    Printf.sprintf "%-9s" "yes"
                  else Printf.sprintf "%-9s" ".")
                tool_results
            in
            Printf.printf "%-26s %s %s\n" r.Dca_core.Driver.lr_label (String.concat " " marks)
              (if Dca_core.Driver.is_commutative r then "yes" else "."))
          dca)
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"Compare the five baseline detectors and DCA, loop by loop")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

let workers_arg =
  Arg.(value & opt int 72 & info [ "workers" ] ~docv:"P" ~doc:"Simulated worker count.")

let speedup_cmd =
  let run prog workers jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        let machine = Dca_parallel.Machine.with_workers Dca_parallel.Machine.default workers in
        let plan = Session.plan ~machine s in
        let result = Dca_parallel.Speedup.simulate ~machine (Session.proginfo s) (Session.profile s) plan in
        Printf.printf "parallel plan:\n%s\n" (Dca_parallel.Plan.to_string plan);
        List.iter
          (fun sl ->
            Printf.printf "  %-24s seq %12.0f  par %12.0f  saved %12.0f\n"
              sl.Dca_parallel.Speedup.ls_loop_id sl.Dca_parallel.Speedup.ls_seq_cost
              sl.Dca_parallel.Speedup.ls_par_cost sl.Dca_parallel.Speedup.ls_saved)
          result.Dca_parallel.Speedup.sp_loops;
        Printf.printf "sequential work: %.0f\nsimulated parallel time (%d workers): %.0f\nspeedup: %.2fx\n"
          result.Dca_parallel.Speedup.sp_seq workers result.Dca_parallel.Speedup.sp_par
          result.Dca_parallel.Speedup.sp_speedup)
  in
  Cmd.v
    (Cmd.info "speedup"
       ~doc:"Parallelize the DCA-commutative loops and report the simulated speedup")
    Term.(const run $ prog_arg $ workers_arg $ jobs_arg $ trace_arg $ stats_arg)

let advise_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        print_string (Dca_core.Advisor.report (Session.advise s)))
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Full parallelism advisory: per loop, whether to parallelize (and with which OpenMP \
          clauses), leave serial, or keep sequential — with the evidence")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

let annotate_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        print_string
          (Dca_parallel.Codegen.annotate_source (Session.proginfo s) ~source:(Session.source s)
             (Session.plan s)))
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Emit the source with OpenMP-style pragmas inserted above every loop DCA parallelizes")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

let export_c_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        let info = Session.proginfo s in
        let plan = Session.plan s in
        let ast = Dca_frontend.Parser.parse_program ~file:(Session.file s) (Session.source s) in
        let pragmas =
          List.filter_map
            (fun lp ->
              match Dca_analysis.Proginfo.loop_by_id info lp.Dca_parallel.Plan.lp_loop_id with
              | Some (_, loop) ->
                  let line = loop.Dca_analysis.Loops.l_loc.Dca_frontend.Loc.line in
                  (* block-scoped declarations are automatically private in C *)
                  let inner = Dca_frontend.C_export.body_declared_names ast ~line in
                  let privates =
                    List.filter (fun n -> not (List.mem n inner)) lp.Dca_parallel.Plan.lp_private
                  in
                  let priv =
                    match privates with
                    | [] -> ""
                    | l -> " private(" ^ String.concat ", " l ^ ")"
                  in
                  let reds =
                    String.concat ""
                      (List.map
                         (fun (name, op) ->
                           Printf.sprintf " reduction(%s:%s)"
                             (Dca_analysis.Scalars.reduction_op_to_string op)
                             name)
                         lp.Dca_parallel.Plan.lp_reductions)
                  in
                  Some (line, Printf.sprintf "#pragma omp parallel for schedule(static)%s%s" priv reds)
              | None -> None)
            plan.Dca_parallel.Plan.plan_loops
        in
        print_string
          (Dca_frontend.C_export.export_source ~pragmas ~file:(Session.file s) (Session.source s)))
  in
  Cmd.v
    (Cmd.info "export-c"
       ~doc:
         "Export the program as compilable C99 with real OpenMP pragmas on every loop DCA \
          parallelizes (build with: cc -fopenmp prog.c -lm)")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

(* ------------------------------------------------------------------ *)

(* dca batch: sweep a directory of .mc files (and/or the registry) and
   keep going — one program's failure must never abort the sweep.  Exit
   0 iff no program crashed: a crash is an exception the per-loop
   containment did not absorb, or a loop-level Aborted verdict whose
   cause is a Crash.  Without --keep-going the sweep stops at the first
   non-ok program and exits 1. *)
let batch_cmd =
  let dir_arg =
    let doc = "Directory to sweep: every $(b,*.mc) file, in name order." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let registry_arg =
    Arg.(
      value & flag
      & info [ "registry" ]
          ~doc:"Also analyze every built-in benchmark (the default when no DIR is given).")
  in
  let keep_going_arg =
    Arg.(
      value & flag
      & info [ "keep-going"; "k" ]
          ~doc:
            "Analyze every program even after failures; the exit code then reflects only whether \
             any program $(i,crashed).")
  in
  let run dir registry keep_going jobs faults deadline_ms heap_words =
    Telemetry.init_from_env ();
    (match faults with Some plan -> Faultpoint.arm_string plan | None -> ());
    let dir_programs =
      match dir with
      | None -> Ok []
      | Some d ->
          if Sys.file_exists d && Sys.is_directory d then
            Ok
              (Sys.readdir d |> Array.to_list
              |> List.filter (fun f -> Filename.check_suffix f ".mc")
              |> List.sort compare
              |> List.map (Filename.concat d))
          else Error (Printf.sprintf "'%s' is not a directory" (Option.value dir ~default:""))
    in
    match dir_programs with
    | Error msg ->
        Printf.eprintf "dca batch: %s\n" msg;
        2
    | Ok from_dir -> (
        let programs =
          (if registry || dir = None then
             List.map (fun bm -> bm.Dca_progs.Benchmark.bm_name) Dca_progs.Registry.all
           else [])
          @ from_dir
        in
        match programs with
        | [] ->
            Printf.eprintf "dca batch: nothing to analyze\n";
            2
        | programs ->
            let module Driver = Dca_core.Driver in
            let analyze_one prog =
              (* re-zero the plan's hit counters so a one-shot fault
                 applies to every program independently *)
              Faultpoint.reset_hits ();
              match Session.load ?jobs ?deadline_ms ?heap_words prog with
              | Error msg -> `Error msg
              | Ok s -> (
                  Fun.protect
                    ~finally:(fun () -> Session.close s)
                    (fun () ->
                      match Session.dca_results s with
                      | results ->
                          let count p = List.length (List.filter p results) in
                          let contained =
                            count (fun (r : Driver.loop_result) ->
                                match r.Driver.lr_decision with
                                | Driver.Aborted { ab_cause = Driver.Crash _; _ } -> true
                                | _ -> false)
                          in
                          let aborted =
                            count (fun (r : Driver.loop_result) ->
                                match r.Driver.lr_decision with
                                | Driver.Aborted _ -> true
                                | _ -> false)
                          in
                          `Done
                            ( List.length results,
                              count Driver.is_commutative,
                              aborted,
                              contained )
                      | exception Dca_frontend.Loc.Error (loc, msg) ->
                          `Error (Dca_frontend.Loc.to_string loc ^ ": " ^ msg)
                      | exception Dca_interp.Eval.Trap msg -> `Error ("runtime trap: " ^ msg)
                      | exception Dca_interp.Eval.Out_of_fuel -> `Error "fuel bound exceeded"
                      | exception Dca_interp.Eval.Deadline_exceeded ->
                          `Error "wall-clock deadline exceeded"
                      | exception Dca_interp.Eval.Heap_exhausted -> `Error "heap budget exhausted"
                      | exception e -> `Crash (Printexc.to_string e)))
            in
            Printf.printf "%-36s %6s %6s %6s  %s\n" "program" "loops" "comm" "abrt" "status";
            let ok = ref 0 and errors = ref 0 and crashed = ref 0 in
            let stopped = ref false in
            List.iter
              (fun prog ->
                if not !stopped then begin
                  let row status = Printf.printf "%-36s %s\n" prog status in
                  let failed =
                    match analyze_one prog with
                    | `Done (loops, comm, abrt, contained) ->
                        Printf.printf "%-36s %6d %6d %6d  %s\n" prog loops comm abrt
                          (if contained > 0 then
                             Printf.sprintf "contained-crash(%d)" contained
                           else "ok");
                        if contained > 0 then incr crashed else incr ok;
                        contained > 0
                    | `Error msg ->
                        row ("error: " ^ msg);
                        incr errors;
                        true
                    | `Crash msg ->
                        row ("CRASH: " ^ msg);
                        incr crashed;
                        true
                  in
                  if failed && not keep_going then stopped := true
                end)
              programs;
            Printf.printf "batch: %d program(s): %d ok, %d error(s), %d crashed%s\n"
              (!ok + !errors + !crashed) !ok !errors !crashed
              (if !stopped then " (stopped at first failure; use --keep-going)" else "");
            if !crashed > 0 then 1 else if !stopped then 1 else 0)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze every .mc program of a directory (and/or every built-in benchmark) with per-loop \
          crash containment; exit 0 only if no program crashed")
    Term.(
      const run $ dir_arg $ registry_arg $ keep_going_arg $ jobs_arg $ faults_arg $ deadline_arg
      $ heap_arg)

(* Exit-code contract: 0 = clean run, 1 = soundness violation found,
   2 = usage error.  cmdliner reports its own parse failures as 124, so
   flag-value validation that must yield 2 happens here. *)
let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed for the program stream.")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let max_iters_arg =
    Arg.(
      value & opt int 4
      & info [ "max-iters" ] ~docv:"N"
          ~doc:
            "Largest trip count of the loop under test (2-7; the oracle runs all $(i,N)! \
             iteration orders).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Write shrunk counterexamples to $(docv) as .mc files.")
  in
  let no_metamorphic_arg =
    Arg.(
      value & flag
      & info [ "no-metamorphic" ]
          ~doc:
            "Skip the metamorphic invariants (report equality across --jobs 1/4 and checkpoint \
             modes); roughly 4x faster.")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report counterexamples without minimizing them.")
  in
  let fault_mode_arg =
    Arg.(
      value & flag
      & info [ "fault-mode" ]
          ~doc:
            "For every loop of every generated program, re-run the session with an injected \
             one-shot crash scoped to that loop's test and assert containment: the victim must \
             abort, every other loop's verdict must be byte-identical.")
  in
  let run seed count max_iters jobs corpus no_metamorphic no_shrink fault_mode =
    if count < 0 then begin
      Printf.eprintf "dca fuzz: --count must be non-negative (got %d)\n" count;
      2
    end
    else if max_iters < 2 || max_iters > Dca_gen.Oracle.max_trip then begin
      Printf.eprintf "dca fuzz: --max-iters must be in 2..%d (got %d)\n" Dca_gen.Oracle.max_trip
        max_iters;
      2
    end
    else if match jobs with Some j when j < 1 -> true | _ -> false then begin
      Printf.eprintf "dca fuzz: --jobs must be positive\n";
      2
    end
    else begin
      let cfg =
        {
          Dca_gen.Fuzz_driver.default_config with
          Dca_gen.Fuzz_driver.fz_seed = seed;
          fz_count = count;
          fz_max_iters = max_iters;
          fz_jobs = Option.value jobs ~default:1;
          fz_metamorphic = not no_metamorphic;
          fz_fault_mode = fault_mode;
          fz_shrink = not no_shrink;
          fz_corpus = corpus;
        }
      in
      let result = Dca_gen.Fuzz_driver.run cfg in
      print_string result.Dca_gen.Fuzz_driver.r_report;
      if result.Dca_gen.Fuzz_driver.r_violations = [] then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random loop programs, decide ground-truth commutativity \
          with an exhaustive permutation oracle, and cross-check the DCA verdicts both ways")
    Term.(
      const run $ seed_arg $ count_arg $ max_iters_arg $ jobs_arg $ corpus_arg $ no_metamorphic_arg
      $ no_shrink_arg $ fault_mode_arg)

(* Top-level exit-code contract: 0 = success, 1 = analysis/program
   failure, 2 = usage error (including a malformed fault plan), 3 =
   internal error (an exception no containment layer absorbed).  Set
   DCA_DEBUG=1 for a backtrace on internal errors. *)
let () =
  let debug = Sys.getenv_opt "DCA_DEBUG" = Some "1" in
  if debug then Printexc.record_backtrace true;
  let doc = "Loop parallelization using Dynamic Commutativity Analysis (CGO 2021 reproduction)" in
  let info = Cmd.info "dca" ~version:"1.0.0" ~doc in
  let code =
    try
      Cmd.eval' ~catch:false
        (Cmd.group info
           [
             list_cmd;
             run_cmd;
             ir_cmd;
             analyze_cmd;
             batch_cmd;
             tools_cmd;
             speedup_cmd;
             advise_cmd;
             annotate_cmd;
             export_c_cmd;
             fuzz_cmd;
           ])
    with
    | Faultpoint.Bad_plan msg ->
        Printf.eprintf "dca: invalid fault plan: %s\n" msg;
        2
    | e ->
        let bt = Printexc.get_backtrace () in
        Printf.eprintf "dca: internal error: %s\n" (Printexc.to_string e);
        if debug then prerr_string bt;
        3
  in
  exit code
