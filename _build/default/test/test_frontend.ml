(* Unit and property tests for the MiniC lexer, parser and type checker. *)

open Dca_frontend

let tokens_of src = List.map fst (Lexer.tokenize ~file:"<test>" src)

let token_list =
  Alcotest.testable
    (fun fmt ts -> Fmt.string fmt (String.concat " " (List.map Token.to_string ts)))
    ( = )

let test_lex_simple () =
  Alcotest.check token_list "arith"
    [ Token.Tident "x"; Token.Assign; Token.Tint_lit 1; Token.Plus; Token.Tint_lit 2; Token.Semi; Token.Eof ]
    (tokens_of "x = 1 + 2;")

let test_lex_operators () =
  Alcotest.check token_list "two-char ops"
    [ Token.Arrow; Token.Eq; Token.Neq; Token.Le; Token.Ge; Token.Andand; Token.Oror; Token.Eof ]
    (tokens_of "-> == != <= >= && ||")

let test_lex_floats () =
  match tokens_of "1.5 2e3 4.25e-2 7" with
  | [ Token.Tfloat_lit a; Token.Tfloat_lit b; Token.Tfloat_lit c; Token.Tint_lit 7; Token.Eof ] ->
      Alcotest.(check (float 1e-9)) "1.5" 1.5 a;
      Alcotest.(check (float 1e-9)) "2e3" 2000.0 b;
      Alcotest.(check (float 1e-9)) "4.25e-2" 0.0425 c
  | ts -> Alcotest.failf "unexpected tokens: %s" (String.concat " " (List.map Token.to_string ts))

let test_lex_comments () =
  Alcotest.check token_list "comments skipped"
    [ Token.Tint_lit 1; Token.Tint_lit 2; Token.Eof ]
    (tokens_of "1 // line\n/* block\n comment */ 2")

let test_lex_string () =
  match tokens_of {|"a\nb"|} with
  | [ Token.Tstring_lit s; Token.Eof ] -> Alcotest.(check string) "escape" "a\nb" s
  | _ -> Alcotest.fail "expected a string literal"

let test_lex_errors () =
  Alcotest.check_raises "bad char" (Loc.Error (Loc.make ~file:"<test>" ~line:1 ~col:1, "unexpected character '#'"))
    (fun () -> ignore (tokens_of "#"))

(* --------------------------------------------------------------- *)

let parse src = Parser.parse_program ~file:"<test>" src

let test_parse_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3 < 4 && x || !y" in
  Alcotest.(check string)
    "precedence" "((((1 + (2 * 3)) < 4) && x) || (!y))"
    (Ast_printer.expr_to_string e)

let test_parse_postfix () =
  let e = Parser.parse_expr_string "a[i][j].f->g" in
  Alcotest.(check string) "postfix chain" "a[i][j].f->g" (Ast_printer.expr_to_string e)

let test_parse_program () =
  let p =
    parse
      {|
      struct node { int val; struct node *next; }
      int total;
      float grid[4][8];
      int add(int a, int b) { return a + b; }
      void main() {
        int i;
        for (i = 0; i < 4; i = i + 1) { total = add(total, i); }
        while (total > 0) { total = total - 1; }
        if (total == 0) { prints("done"); } else { printi(total); }
      }
      |}
  in
  Alcotest.(check int) "structs" 1 (List.length p.Ast.structs);
  Alcotest.(check int) "globals" 2 (List.length p.Ast.globals);
  Alcotest.(check int) "funcs" 2 (List.length p.Ast.funcs)

let test_parse_new () =
  let e = Parser.parse_expr_string "new struct node" in
  (match e.Ast.edesc with
  | Ast.Enew_struct "node" -> ()
  | _ -> Alcotest.fail "expected new struct");
  let e = Parser.parse_expr_string "new float[2 * n]" in
  match e.Ast.edesc with
  | Ast.Enew_array (Ast.Tfloat, _) -> ()
  | _ -> Alcotest.fail "expected new array"

let test_parse_error () =
  match parse "void main() { x = ; }" with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

(* Round trip: parse → print → parse → print must be a fixpoint. *)
let test_roundtrip () =
  let src =
    {|
    struct pair { float a; float b; }
    float acc;
    void main() {
      struct pair *p = new struct pair;
      p->a = 1.5;
      acc = p->a + p->b * 2.0;
      int k = 0;
      while (k < 10) {
        if (k % 2 == 0) { acc = acc + itof(k); }
        k = k + 1;
      }
      print(acc);
    }
    |}
  in
  let p1 = parse src in
  let s1 = Ast_printer.program_to_string p1 in
  let p2 = parse s1 in
  let s2 = Ast_printer.program_to_string p2 in
  Alcotest.(check string) "fixpoint" s1 s2

(* --------------------------------------------------------------- *)

let typecheck src = Typecheck.check_program (parse src)

let expect_type_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match typecheck src with
      | exception Loc.Error _ -> ()
      | _ -> Alcotest.fail "expected a type error")

let test_typecheck_ok () =
  let p =
    typecheck
      {|
      struct node { int val; struct node *next; }
      struct node *head;
      void main() {
        struct node *p = head;
        while (p) { p->val = p->val + 1; p = p->next; }
        float x = 1;       // implicit int -> float
        x = x + 2;
        print(x);
      }
      |}
  in
  Alcotest.(check int) "funcs" 1 (List.length p.Tast.tp_funcs)

let test_typecheck_coercion () =
  let p = typecheck "void main() { float x = 1 + 2; print(x); }" in
  let f = List.hd p.Tast.tp_funcs in
  match (List.hd f.Tast.tf_body).Tast.tsdesc with
  | Tast.TSdecl (_, Some { tdesc = Tast.Titof _; _ }) -> ()
  | _ -> Alcotest.fail "expected an inserted int->float coercion"

let type_error_cases =
  [
    expect_type_error "unbound var" "void main() { x = 1; }";
    expect_type_error "void var" "void main() { void v; }";
    expect_type_error "float mod" "void main() { float x; x = 1.0; int y = x % 2; printi(y); }";
    expect_type_error "bad arity" "int f(int a) { return a; } void main() { int x = f(1, 2); printi(x); }";
    expect_type_error "no main" "int f() { return 0; }";
    expect_type_error "bad main sig" "int main() { return 0; }";
    expect_type_error "break outside loop" "void main() { break; }";
    expect_type_error "arrow on struct" "struct s { int x; } void main() { struct s v; v->x = 1; }";
    expect_type_error "dot on pointer" "struct s { int x; } void main() { struct s *v; v.x = 1; }";
    expect_type_error "assign to call" "int f() { return 0; } void main() { f() = 1; }";
    expect_type_error "float to int implicit" "void main() { int x = 1.5; printi(x); }";
    expect_type_error "recursive struct value" "struct s { struct s inner; } void main() { }";
    expect_type_error "duplicate local" "void main() { int x; int x; }";
    expect_type_error "non-const global init" "int g = f(); int f() { return 1; } void main() { }";
  ]

(* --------------------------------------------------------------- *)
(* Property: the printer/parser round trip holds on generated
   expressions. *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Eint (abs n)) small_int;
        map (fun name -> Ast.Evar name) (oneofl [ "x"; "y"; "z" ]);
      ]
  in
  let mk d = { Ast.edesc = d; eloc = Loc.dummy } in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then map mk leaf
          else
            frequency
              [
                (1, map mk leaf);
                ( 3,
                  map3
                    (fun op l r -> mk (Ast.Ebinop (op, l, r)))
                    (oneofl Ast.[ Add; Sub; Mul; Div; Lt; Le; Eq; And; Or ])
                    (self (n / 2)) (self (n / 2)) );
                (1, map (fun e -> mk (Ast.Eunop (Ast.Neg, e))) (self (n - 1)));
                (1, map2 (fun b i -> mk (Ast.Eindex (b, i))) (self (n / 2)) (self (n / 2)));
              ])
        n)

let prop_expr_roundtrip =
  QCheck.Test.make ~count:200 ~name:"printed expressions re-parse to the same tree"
    (QCheck.make gen_expr ~print:Ast_printer.expr_to_string)
    (fun e ->
      let s = Ast_printer.expr_to_string e in
      let e' = Parser.parse_expr_string s in
      Ast_printer.expr_to_string e' = s)

let suites =
  [
    ( "lexer",
      [
        Alcotest.test_case "simple" `Quick test_lex_simple;
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "floats" `Quick test_lex_floats;
        Alcotest.test_case "comments" `Quick test_lex_comments;
        Alcotest.test_case "strings" `Quick test_lex_string;
        Alcotest.test_case "errors" `Quick test_lex_errors;
      ] );
    ( "parser",
      [
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "postfix" `Quick test_parse_postfix;
        Alcotest.test_case "program" `Quick test_parse_program;
        Alcotest.test_case "new" `Quick test_parse_new;
        Alcotest.test_case "error" `Quick test_parse_error;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        QCheck_alcotest.to_alcotest prop_expr_roundtrip;
      ] );
    ( "typecheck",
      Alcotest.test_case "ok" `Quick test_typecheck_ok
      :: Alcotest.test_case "coercion" `Quick test_typecheck_coercion
      :: type_error_cases );
  ]

(* ---------------------------------------------------------------- *)
(* Additional frontend edge cases                                    *)
(* ---------------------------------------------------------------- *)

let test_else_if_chain () =
  let p =
    parse
      {|
      void main() {
        int x = reads();
        int y;
        if (x == 0) { y = 1; } else if (x == 1) { y = 2; } else { y = 3; }
        printi(y);
      }
      |}
  in
  Alcotest.(check int) "parses" 1 (List.length p.Ast.funcs)

let test_deeply_nested_expression () =
  let e = Parser.parse_expr_string "((((((((1 + 2))))))))" in
  Alcotest.(check string) "parens collapse" "(1 + 2)" (Ast_printer.expr_to_string e)

let test_comment_at_eof () =
  Alcotest.check token_list "line comment at eof" [ Token.Tint_lit 1; Token.Eof ]
    (tokens_of "1 // trailing")

let test_unterminated_block_comment () =
  match tokens_of "1 /* oops" with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail "expected a lex error"

let test_global_negative_literal () =
  let p = typecheck "int g = -5; float h = -2.5; void main() { printi(g); }" in
  Alcotest.(check int) "two globals" 2 (List.length p.Tast.tp_globals)

let test_array_decay_param () =
  let p =
    typecheck
      {|
      float grid[4][4];
      float first(float *cells) { return cells[0]; }
      void main() { print(first(grid)); }
      |}
  in
  Alcotest.(check int) "funcs" 2 (List.length p.Tast.tp_funcs)

let more_type_errors =
  [
    expect_type_error "compare distinct struct pointers"
      {|
      struct a { int x; }
      struct b { int y; }
      void main() {
        struct a *p = null;
        struct b *q = null;
        if (p == q) { printi(1); }
      }
      |};
    expect_type_error "void call in expression"
      "void f() { } void main() { int x = f(); printi(x); }";
    expect_type_error "index a scalar" "void main() { int x = 1; printi(x[0]); }";
    expect_type_error "call a variable" "void main() { int f = 1; printi(f(2)); }";
    expect_type_error "prints with non-literal"
      "void main() { int s = 1; prints(s); }";
  ]

let edge_suites =
  [
    ( "frontend-edge",
      [
        Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
        Alcotest.test_case "nested parens" `Quick test_deeply_nested_expression;
        Alcotest.test_case "comment at eof" `Quick test_comment_at_eof;
        Alcotest.test_case "unterminated comment" `Quick test_unterminated_block_comment;
        Alcotest.test_case "negative global literals" `Quick test_global_negative_literal;
        Alcotest.test_case "array decay" `Quick test_array_decay_param;
      ]
      @ more_type_errors );
  ]

let suites = suites @ edge_suites
