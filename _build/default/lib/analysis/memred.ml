open Dca_ir

type kind = Global_scalar of int | Array_cell of { subscript : Affine.affine option }

type rmw = { rmw_load : int; rmw_store : int; rmw_op : Scalars.reduction_op; rmw_kind : kind }

(* Structural equivalence of address computations up to recomputation:
   lowering re-emits the gep chain for the load and the store of
   [a[f(i)] op= e], so the two address temporaries differ but their
   definition trees agree.

   Soundness: definitions are expanded only for compiler temporaries —
   single-assignment values computed within the current iteration.  Named
   variables compare by identity alone; expanding them would conflate the
   values a loop-carried recurrence takes at different points (e.g. the
   [i] of [rowstart[i]] with the [i+1] of [rowstart[i+1]] through the
   step [i = i + 1], which would "recognize" a prefix sum as a
   reduction). *)
let rec operand_equiv unique_def depth a b =
  depth < 12
  &&
  match (a, b) with
  | Ir.Oint x, Ir.Oint y -> x = y
  | Ir.Ofloat x, Ir.Ofloat y -> x = y
  | Ir.Onull, Ir.Onull -> true
  | Ir.Ovar v1, Ir.Ovar v2 -> (
      v1.Ir.vid = v2.Ir.vid
      || v1.Ir.vtemp && v2.Ir.vtemp
         &&
         match (unique_def v1.Ir.vid, unique_def v2.Ir.vid) with
         | Some d1, Some d2 -> def_equiv unique_def (depth + 1) d1 d2
         | _ -> false)
  | _ -> false

and def_equiv unique_def depth (d1 : Ir.instr) (d2 : Ir.instr) =
  if d1.Ir.iid = d2.Ir.iid then true
  else
    let eq = operand_equiv unique_def depth in
    match (d1.Ir.idesc, d2.Ir.idesc) with
    | Ir.Gep (_, b1, i1, s1), Ir.Gep (_, b2, i2, s2) -> s1 = s2 && eq b1 b2 && eq i1 i2
    | Ir.Gaddr (_, g1), Ir.Gaddr (_, g2) -> g1.Ir.vslot = g2.Ir.vslot
    | Ir.Gload (_, g1), Ir.Gload (_, g2) -> g1.Ir.vslot = g2.Ir.vslot
    | Ir.Load (_, p1), Ir.Load (_, p2) -> eq p1 p2
    | Ir.Bin (_, op1, x1, y1), Ir.Bin (_, op2, x2, y2) -> op1 = op2 && eq x1 x2 && eq y1 y2
    | Ir.Un (_, op1, x1), Ir.Un (_, op2, x2) -> op1 = op2 && eq x1 x2
    | _ -> false

let find cfg affine (l : Loops.loop) =
  let instrs = Loops.instrs_of cfg l in
  let unique_def =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun i ->
        match Ir.def_of i.Ir.idesc with
        | Some v ->
            Hashtbl.replace tbl v.Ir.vid (if Hashtbl.mem tbl v.Ir.vid then None else Some i)
        | None -> ())
      instrs;
    fun vid -> Option.join (Hashtbl.find_opt tbl vid)
  in
  let chase_def (op : Ir.operand) =
    match op with Ir.Ovar v -> unique_def v.Ir.vid | _ -> None
  in
  let rmws = ref [] in
  List.iter
    (fun i ->
      match i.Ir.idesc with
      | Ir.Store (store_addr, stored) -> begin
          (* stored value must combine a load through an equivalent address *)
          match chase_def stored with
          | Some comb -> begin
              let load_through_same vid =
                match unique_def vid with
                | Some ({ Ir.idesc = Ir.Load (_, load_addr); _ } as ld)
                  when operand_equiv unique_def 0 load_addr store_addr ->
                    Some ld
                | _ -> None
              in
              let candidate_loads =
                Ir.uses_of comb.Ir.idesc |> List.filter_map (fun v -> load_through_same v.Ir.vid)
              in
              match candidate_loads with
              | ld :: _ -> begin
                  match
                    (match Ir.def_of ld.Ir.idesc with
                    | Some lv -> Scalars.combine_pattern lv.Ir.vid comb
                    | None -> None)
                  with
                  | Some op ->
                      let subscript =
                        match chase_def store_addr with
                        | Some { Ir.idesc = Ir.Gep (_, _, idx, _); _ } ->
                            Affine.affine_of_operand affine l idx
                        | _ -> None
                      in
                      rmws :=
                        {
                          rmw_load = ld.Ir.iid;
                          rmw_store = i.Ir.iid;
                          rmw_op = op;
                          rmw_kind = Array_cell { subscript };
                        }
                        :: !rmws
                  | None -> ()
                end
              | [] -> ()
            end
          | None -> ()
        end
      | Ir.Gstore (g, stored) -> begin
          match chase_def stored with
          | Some comb -> begin
              let load_of_global vid =
                match unique_def vid with
                | Some ({ Ir.idesc = Ir.Gload (_, g'); _ } as ld) when g'.Ir.vslot = g.Ir.vslot ->
                    Some ld
                | _ -> None
              in
              let candidate_loads =
                Ir.uses_of comb.Ir.idesc |> List.filter_map (fun v -> load_of_global v.Ir.vid)
              in
              match candidate_loads with
              | ld :: _ -> begin
                  match
                    (match Ir.def_of ld.Ir.idesc with
                    | Some lv -> Scalars.combine_pattern lv.Ir.vid comb
                    | None -> None)
                  with
                  | Some op ->
                      rmws :=
                        {
                          rmw_load = ld.Ir.iid;
                          rmw_store = i.Ir.iid;
                          rmw_op = op;
                          rmw_kind = Global_scalar g.Ir.vslot;
                        }
                        :: !rmws
                  | None -> ()
                end
              | [] -> ()
            end
          | None -> ()
        end
      | _ -> ())
    instrs;
  List.rev !rmws

let iid_pairs rmws = List.map (fun r -> (r.rmw_load, r.rmw_store)) rmws
