(** The unified entry point of the DCA pipeline.

    A session owns one program (from a source string, a file, or a
    built-in benchmark) together with the analysis configuration and a
    worker-pool width, and exposes every pipeline stage as a {e memoized}
    accessor:

    {v
      source ──▶ ir ──▶ proginfo ──┬──▶ profile ──┐
                                   └──▶ dca_results ──▶ plan
    v}

    Each stage is computed on first access and cached; repeated access
    returns the {e physically equal} value, so downstream consumers (the
    CLI commands, the advisor, the exporters) can be written independently
    without re-running earlier stages.  This replaces the
    compile → proginfo → profile → spec boilerplate previously duplicated
    across every front end.

    With [jobs] > 1 the dynamic stage runs on a {!Dca_support.Pool}
    shared by the session: per-loop commutativity tests and per-schedule
    permuted replays fan out across OCaml domains with a deterministic
    merge — verdicts and reports are bit-identical to [jobs = 1].  The
    pool is created lazily on the first stage that needs it and released
    by {!close} (or automatically by {!with_session}).

    {2 Configuring a session}

    All knobs live in one {!Options.t} record built from
    {!Options.default} with [with_*] setters:

    {[
      Session.with_session
        ~options:Session.Options.(default |> with_jobs 4 |> with_hierarchical true)
        origin f
    ]}

    The per-field optional arguments ([?jobs], [?config], [?spec],
    [?deadline_ms], [?heap_words], [?hierarchical]) still accepted by
    {!create}, {!load} and {!with_session} are {b deprecated} compatibility
    shims kept for one release: they are folded over [?options] (an
    explicit legacy argument wins over the corresponding options field)
    and will be removed — pass [~options] instead. *)

type origin =
  | Source of { file : string; source : string; input : int list }
      (** a MiniC source string; [file] is used in diagnostics, [input]
          feeds the program's [reads()] stream *)
  | Benchmark of Dca_progs.Benchmark.t  (** a built-in benchmark program *)

(** Session construction options.  Build with {!Options.default} and the
    [with_*] setters; every field has the same meaning as the historical
    optional argument of the same name. *)
module Options : sig
  type t = {
    jobs : int option;
        (** worker-pool width; [None] defaults to
            {!Dca_support.Pool.default_jobs} (the [DCA_JOBS] environment
            variable, else the recommended domain count) *)
    config : Commutativity.config option;
        (** dynamic-stage configuration; [None] = {!Commutativity.default_config} *)
    spec : Commutativity.run_spec option;
        (** explicit run spec; when set, [deadline_ms]/[heap_words] are
            ignored (the spec already carries its resource bounds) *)
    deadline_ms : int option;
        (** per-invocation wall-clock budget folded into the derived run
            spec *)
    heap_words : int option;
        (** per-invocation major-heap growth budget folded into the
            derived run spec *)
    hierarchical : bool;
        (** explore loops top-down, skipping loops subsumed by a
            commutative ancestor (default [false]) *)
    static : bool;
        (** run the {!Dca_analysis.Staticproof} fast-path before the
            dynamic stage (default [true]); [false] ([--no-static])
            forces every accepted loop through golden+replay for A/B
            comparisons — verdicts must not change, only work counters
            and provenance markers do *)
    telemetry : Dca_support.Telemetry.Ctx.t option;
        (** pin the session to a telemetry context: every stage
            computation runs under it (via
            {!Dca_support.Telemetry.with_ctx}) regardless of the
            caller's ambient, and {!telemetry} reports deltas on it.
            [None] (the default) leaves stages under the caller's
            ambient context — the historical process-global behavior. *)
  }

  val default : t
  val with_jobs : int -> t -> t
  val with_config : Commutativity.config -> t -> t
  val with_spec : Commutativity.run_spec -> t -> t
  val with_deadline_ms : int -> t -> t
  val with_heap_words : int -> t -> t
  val with_hierarchical : bool -> t -> t
  val with_static : bool -> t -> t
  val with_telemetry : Dca_support.Telemetry.Ctx.t -> t -> t

  val signature : t -> string
  (** Deterministic textual signature of every field that can change an
      analysis result (schedules, tolerances, budgets, inputs, job
      width).  Two options values with equal signatures configure
      interchangeable sessions — the serve daemon keys warm-session
      reuse on this.  [telemetry] is excluded: where counters land
      cannot change a verdict. *)
end

type t

val create :
  ?options:Options.t ->
  ?jobs:int ->
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?deadline_ms:int ->
  ?heap_words:int ->
  ?hierarchical:bool ->
  origin ->
  t
(** Build a session from [?options] (see {!Options}).  The remaining
    optional arguments are the deprecated pre-Options interface; when
    given they override the corresponding [options] field.

    Creation also arms telemetry from the environment
    ({!Dca_support.Telemetry.init_from_env}: [DCA_TRACE] names a trace
    file and enables spans, [DCA_STATS=1] enables counters and the exit
    summary) and fault injection ([DCA_FAULTS], see
    {!Dca_support.Faultpoint}) unless the embedder configured either
    explicitly first, and records the telemetry baseline {!telemetry}
    deltas are computed against. *)

val load :
  ?options:Options.t ->
  ?jobs:int ->
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?deadline_ms:int ->
  ?heap_words:int ->
  ?hierarchical:bool ->
  string ->
  (t, string) result
(** Resolve a program argument the way the CLI does: a built-in benchmark
    name from {!Dca_progs.Registry}, else a path to a [.mc] file.
    Options as in {!create}. *)

(** {1 Identity} *)

val name : t -> string
val file : t -> string
val source : t -> string
val input : t -> int list
val jobs : t -> int

(** {1 Resolved configuration} *)

val options : t -> Options.t
(** The options the session was created with (legacy arguments already
    folded in). *)

val config : t -> Commutativity.config
val spec : t -> Commutativity.run_spec
val hierarchical : t -> bool

val pool : t -> Dca_support.Pool.t option
(** The session's worker pool, started on first demand: [None] when
    [jobs t <= 1] or after {!close}.  Exposed so embedders that drive
    {!Driver.analyze_program} themselves (the serve daemon's cached
    engine) share the session's domains instead of spawning their own. *)

(** {1 Memoized pipeline stages} *)

val ir : t -> Dca_ir.Ir.program
(** Parse, type-check and lower the source. *)

val proginfo : t -> Dca_analysis.Proginfo.t
(** All static analyses over {!ir}. *)

val profile : t -> Dca_profiling.Depprof.profile
(** One instrumented run: dependences, costs, coverage. *)

val dca_results : t -> Driver.loop_result list
(** The DCA verdict for every loop, in program order.  Runs on the
    session pool when [jobs > 1]. *)

val plan :
  ?machine:Dca_parallel.Machine.t ->
  ?strategy:Dca_parallel.Planner.strategy ->
  t ->
  Dca_parallel.Plan.t
(** Parallelization plan over the DCA-commutative loops.  The
    default-machine, default-strategy plan is memoized; passing an
    explicit [machine] or [strategy] computes a fresh plan. *)

(** {1 Derived products} *)

val advise : t -> Advisor.advice list
val report : t -> string
(** {!Report.to_string} of {!dca_results}. *)

val telemetry : t -> (string * int) list
(** Counters attributable to {e this} session: the session context's
    {!Dca_support.Telemetry} counters minus their values when the
    session was created (name/delta pairs sorted by name, zero deltas
    elided; empty while counting is disabled).  The session context is
    the one pinned through {!Options.with_telemetry}, else the
    creator's ambient context (the global one by default).  In a
    process running many sessions — the serve daemon — each session
    sees only its own work.  The work-kind deltas ([dca.*]) are
    deterministic — bit-identical across [jobs] settings and checkpoint
    modes; the diagnostic ones ([store.*], [interp.instructions]) are
    not.

    Sequential sessions over one shared context are separable by the
    baseline subtraction alone; {e concurrent} sessions additionally
    need disjoint pinned contexts — with one each, the deltas stay
    exact because nothing else writes into them (the concurrent serve
    daemon relies on this). *)

val telemetry_global : t -> (string * int) list
(** The historical behavior of [telemetry]: a raw snapshot of the
    global context's counters — embedders running several sessions see
    their aggregate. *)

(** {1 Lifecycle} *)

val close : t -> unit
(** Release the worker pool (if one was started).  Idempotent; the
    memoized stages stay readable after [close], but further stage
    computations run sequentially. *)

val with_session :
  ?options:Options.t ->
  ?jobs:int ->
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?deadline_ms:int ->
  ?heap_words:int ->
  ?hierarchical:bool ->
  origin ->
  (t -> 'a) ->
  'a
(** [create], run, then {!close} (also on exception).  Options as in
    {!create}. *)
