lib/interp/store.mli: Dca_ir Value
