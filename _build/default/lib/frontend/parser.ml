open Ast

type state = { mutable toks : (Token.t * Loc.t) list }

let current st = match st.toks with [] -> (Token.Eof, Loc.dummy) | t :: _ -> t
let cur_tok st = fst (current st)
let cur_loc st = snd (current st)
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let peek_nth st n =
  let rec go toks n =
    match (toks, n) with
    | [], _ -> Token.Eof
    | (t, _) :: _, 0 -> t
    | _ :: rest, n -> go rest (n - 1)
  in
  go st.toks n

let expect st tok =
  if cur_tok st = tok then advance st
  else
    Loc.error (cur_loc st) "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (cur_tok st))

let expect_ident st =
  match cur_tok st with
  | Token.Tident name ->
      advance st;
      name
  | t -> Loc.error (cur_loc st) "expected identifier but found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(* A token sequence starts a type iff it is a type keyword or [struct]. *)
let starts_type st =
  match cur_tok st with Token.Kint | Token.Kfloat | Token.Kvoid | Token.Kstruct -> true | _ -> false

let parse_base_type st =
  match cur_tok st with
  | Token.Kint ->
      advance st;
      Tint
  | Token.Kfloat ->
      advance st;
      Tfloat
  | Token.Kvoid ->
      advance st;
      Tvoid
  | Token.Kstruct ->
      advance st;
      Tstruct (expect_ident st)
  | t -> Loc.error (cur_loc st) "expected a type but found '%s'" (Token.to_string t)

let parse_type st =
  let base = parse_base_type st in
  let rec stars ty = if cur_tok st = Token.Star then (advance st; stars (Tptr ty)) else ty in
  stars base

(* Constant array dimensions after a declared name: [4][8]... *)
let parse_dims st =
  let rec go acc =
    if cur_tok st = Token.Lbracket then begin
      advance st;
      let dim =
        match cur_tok st with
        | Token.Tint_lit n when n > 0 ->
            advance st;
            n
        | t ->
            Loc.error (cur_loc st) "array dimension must be a positive integer literal, found '%s'"
              (Token.to_string t)
      in
      expect st Token.Rbracket;
      go (dim :: acc)
    end
    else List.rev acc
  in
  go []

let apply_dims ty dims = if dims = [] then ty else Tarray (ty, dims)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | Token.Oror -> Some (Or, 1)
  | Token.Andand -> Some (And, 2)
  | Token.Eq -> Some (Eq, 3)
  | Token.Neq -> Some (Ne, 3)
  | Token.Lt -> Some (Lt, 3)
  | Token.Le -> Some (Le, 3)
  | Token.Gt -> Some (Gt, 3)
  | Token.Ge -> Some (Ge, 3)
  | Token.Plus -> Some (Add, 4)
  | Token.Minus -> Some (Sub, 4)
  | Token.Star -> Some (Mul, 5)
  | Token.Slash -> Some (Div, 5)
  | Token.Percent -> Some (Mod, 5)
  | _ -> None

let mk loc edesc = { edesc; eloc = loc }

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec go lhs =
    match binop_of_token (cur_tok st) with
    | Some (op, prec) when prec >= min_prec ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        go (mk loc (Ebinop (op, lhs, rhs)))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.Minus ->
      advance st;
      mk loc (Eunop (Neg, parse_unary st))
  | Token.Bang ->
      advance st;
      mk loc (Eunop (Not, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  let rec go e =
    let loc = cur_loc st in
    match cur_tok st with
    | Token.Lbracket ->
        advance st;
        let idx = parse_expr st in
        expect st Token.Rbracket;
        go (mk loc (Eindex (e, idx)))
    | Token.Dot ->
        advance st;
        go (mk loc (Efield (e, expect_ident st)))
    | Token.Arrow ->
        advance st;
        go (mk loc (Earrow (e, expect_ident st)))
    | _ -> e
  in
  go base

and parse_primary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.Tint_lit n ->
      advance st;
      mk loc (Eint n)
  | Token.Tfloat_lit f ->
      advance st;
      mk loc (Efloat f)
  | Token.Knull ->
      advance st;
      mk loc Enull
  | Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Knew -> begin
      advance st;
      (* [new struct S] or [new ty [ n ]] where ty may include '*'s. *)
      let ty = parse_type st in
      if cur_tok st = Token.Lbracket then begin
        advance st;
        let count = parse_expr st in
        expect st Token.Rbracket;
        mk loc (Enew_array (ty, count))
      end
      else
        match ty with
        | Tstruct name -> mk loc (Enew_struct name)
        | _ ->
            Loc.error loc "'new %s' must allocate a struct or an array ('new %s[n]')"
              (ty_to_string ty) (ty_to_string ty)
    end
  | Token.Tident name -> begin
      advance st;
      if cur_tok st = Token.Lparen then begin
        advance st;
        let args = parse_args st in
        mk loc (Ecall (name, args))
      end
      else mk loc (Evar name)
    end
  | t -> Loc.error loc "expected an expression but found '%s'" (Token.to_string t)

and parse_args st =
  if cur_tok st = Token.Rparen then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let arg = parse_expr st in
      match cur_tok st with
      | Token.Comma ->
          advance st;
          go (arg :: acc)
      | Token.Rparen ->
          advance st;
          List.rev (arg :: acc)
      | t -> Loc.error (cur_loc st) "expected ',' or ')' in call, found '%s'" (Token.to_string t)
    in
    go []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mk_stmt loc sdesc = { sdesc; sloc = loc }

let rec parse_stmt st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.Lbrace -> mk_stmt loc (Sblock (parse_block st))
  | Token.Kif -> parse_if st
  | Token.Kwhile -> begin
      advance st;
      expect st Token.Lparen;
      let cond = parse_expr st in
      expect st Token.Rparen;
      let body = parse_stmt_as_block st in
      mk_stmt loc (Swhile (cond, body))
    end
  | Token.Kfor -> parse_for st
  | Token.Kreturn -> begin
      advance st;
      if cur_tok st = Token.Semi then begin
        advance st;
        mk_stmt loc (Sreturn None)
      end
      else begin
        let e = parse_expr st in
        expect st Token.Semi;
        mk_stmt loc (Sreturn (Some e))
      end
    end
  | Token.Kbreak ->
      advance st;
      expect st Token.Semi;
      mk_stmt loc Sbreak
  | Token.Kcontinue ->
      advance st;
      expect st Token.Semi;
      mk_stmt loc Scontinue
  | _ when starts_type st -> begin
      let s = parse_decl st in
      expect st Token.Semi;
      s
    end
  | Token.Tident "prints" when peek_nth st 1 = Token.Lparen -> begin
      advance st;
      advance st;
      let text =
        match cur_tok st with
        | Token.Tstring_lit s ->
            advance st;
            s
        | t -> Loc.error (cur_loc st) "prints expects a string literal, found '%s'" (Token.to_string t)
      in
      expect st Token.Rparen;
      expect st Token.Semi;
      mk_stmt loc (Sprints text)
    end
  | _ -> begin
      let s = parse_assign_or_call st in
      expect st Token.Semi;
      s
    end

and parse_if st =
  let loc = cur_loc st in
  expect st Token.Kif;
  expect st Token.Lparen;
  let cond = parse_expr st in
  expect st Token.Rparen;
  let then_branch = parse_stmt_as_block st in
  let else_branch =
    if cur_tok st = Token.Kelse then begin
      advance st;
      parse_stmt_as_block st
    end
    else []
  in
  mk_stmt loc (Sif (cond, then_branch, else_branch))

and parse_for st =
  let loc = cur_loc st in
  expect st Token.Kfor;
  expect st Token.Lparen;
  let init =
    if cur_tok st = Token.Semi then None
    else if starts_type st then Some (parse_decl st)
    else Some (parse_assign_or_call st)
  in
  expect st Token.Semi;
  let cond = if cur_tok st = Token.Semi then None else Some (parse_expr st) in
  expect st Token.Semi;
  let step = if cur_tok st = Token.Rparen then None else Some (parse_assign_or_call st) in
  expect st Token.Rparen;
  let body = parse_stmt_as_block st in
  mk_stmt loc (Sfor (init, cond, step, body))

(* A declaration: type name dims? (= expr)? — the trailing ';' is consumed
   by the caller so that [for (int i = 0; ...)] can reuse this. *)
and parse_decl st =
  let loc = cur_loc st in
  let ty = parse_type st in
  let name = expect_ident st in
  let dims = parse_dims st in
  let ty = apply_dims ty dims in
  let init =
    if cur_tok st = Token.Assign then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  mk_stmt loc (Sdecl (ty, name, init))

and parse_assign_or_call st =
  let loc = cur_loc st in
  let e = parse_expr st in
  if cur_tok st = Token.Assign then begin
    advance st;
    let rhs = parse_expr st in
    mk_stmt loc (Sassign (e, rhs))
  end
  else
    match e.edesc with
    | Ecall _ -> mk_stmt loc (Sexpr e)
    | _ -> Loc.error loc "expression statement must be a call or an assignment"

and parse_block st =
  expect st Token.Lbrace;
  let rec go acc =
    if cur_tok st = Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else if cur_tok st = Token.Eof then Loc.error (cur_loc st) "unexpected end of file in block"
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt_as_block st =
  if cur_tok st = Token.Lbrace then parse_block st else [ parse_stmt st ]

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_struct_def st =
  let loc = cur_loc st in
  expect st Token.Kstruct;
  let name = expect_ident st in
  expect st Token.Lbrace;
  let rec fields acc =
    if cur_tok st = Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else begin
      let ty = parse_type st in
      let fname = expect_ident st in
      expect st Token.Semi;
      fields ((ty, fname) :: acc)
    end
  in
  let fs = fields [] in
  if cur_tok st = Token.Semi then advance st;
  { str_name = name; str_fields = fs; str_loc = loc }

(* Disambiguate [struct S { ... }] (definition) from [struct S x;] or
   [struct S *f(...) {...}] (declarations) by looking past the name. *)
let is_struct_definition st = cur_tok st = Token.Kstruct && peek_nth st 2 = Token.Lbrace

let parse_top_decl st =
  let loc = cur_loc st in
  let ty = parse_type st in
  let name = expect_ident st in
  if cur_tok st = Token.Lparen then begin
    (* function definition *)
    advance st;
    let params =
      if cur_tok st = Token.Rparen then begin
        advance st;
        []
      end
      else
        let rec go acc =
          let pty = parse_type st in
          let pname = expect_ident st in
          match cur_tok st with
          | Token.Comma ->
              advance st;
              go ((pty, pname) :: acc)
          | Token.Rparen ->
              advance st;
              List.rev ((pty, pname) :: acc)
          | t -> Loc.error (cur_loc st) "expected ',' or ')' in parameters, found '%s'" (Token.to_string t)
        in
        go []
    in
    let body = parse_block st in
    `Func { f_name = name; f_params = params; f_ret = ty; f_body = body; f_loc = loc }
  end
  else begin
    let dims = parse_dims st in
    let ty = apply_dims ty dims in
    let init =
      if cur_tok st = Token.Assign then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st Token.Semi;
    `Global { g_ty = ty; g_name = name; g_init = init; g_loc = loc }
  end

let parse_program ~file src =
  let st = { toks = Lexer.tokenize ~file src } in
  let structs = ref [] and globals = ref [] and funcs = ref [] in
  let rec go () =
    match cur_tok st with
    | Token.Eof -> ()
    | _ ->
        (if is_struct_definition st then structs := parse_struct_def st :: !structs
         else
           match parse_top_decl st with
           | `Func f -> funcs := f :: !funcs
           | `Global g -> globals := g :: !globals);
        go ()
  in
  go ();
  { structs = List.rev !structs; globals = List.rev !globals; funcs = List.rev !funcs }

let parse_expr_string src =
  let st = { toks = Lexer.tokenize ~file:"<expr>" src } in
  let e = parse_expr st in
  expect st Token.Eof;
  e
