(** Per-program analysis cache: CFGs, loop forests, liveness, affine
    contexts, PDGs and purity summaries for every function, computed once
    and shared by DCA, the baselines and the profilers. *)

type func_info = {
  fi_func : Dca_ir.Ir.func;
  fi_cfg : Dca_ir.Cfg.t;
  fi_forest : Loops.forest;
  fi_live : Liveness.t;
  fi_affine : Affine.t;
  fi_pdg : Pdg.t;
}

type t

val analyze : Dca_ir.Ir.program -> t

val program : t -> Dca_ir.Ir.program
val purity : t -> Purity.t
val func_info : t -> string -> func_info
(** Raises [Invalid_argument] for unknown functions. *)

val funcs : t -> func_info list

val all_loops : t -> (func_info * Loops.loop) list
(** Every loop of the program, grouped by function in program order,
    outermost first within a function. *)

val loop_by_id : t -> string -> (func_info * Loops.loop) option

val loop_label : t -> Loops.loop -> string
(** Human-readable "func:line(depth d)" label for tables. *)
