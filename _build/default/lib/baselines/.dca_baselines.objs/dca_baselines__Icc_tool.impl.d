lib/baselines/icc_tool.ml: Affine Dca_analysis List Loops Memred Printf Proginfo Purity Static_common Tool
