lib/experiments/ablation.mli:
