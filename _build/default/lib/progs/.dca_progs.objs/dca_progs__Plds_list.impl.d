lib/progs/plds_list.ml: Benchmark
