open Dca_support
open Dca_analysis
open Dca_ir

type rejection =
  | Has_io
  | Returns_inside
  | Mixed_branch
  | Ambiguous_interface of string
  | Empty_payload

type decision = Accepted of Iterator_rec.separation | Rejected of rejection

let rejection_to_string = function
  | Has_io -> "performs I/O"
  | Returns_inside -> "returns from inside the loop"
  | Mixed_branch -> "branch condition mixes iterator and payload definitions"
  | Ambiguous_interface v -> Printf.sprintf "interface variable '%s' has interleaved defs/uses" v
  | Empty_payload -> "empty payload (pure traversal)"

let loop_does_io info fi (l : Loops.loop) =
  let pur = Proginfo.purity info in
  List.exists
    (fun i -> Purity.instr_does_io pur i.Ir.idesc)
    (Loops.instrs_of fi.Proginfo.fi_cfg l)

let loop_returns_inside fi (l : Loops.loop) =
  Intset.exists
    (fun b ->
      match (Cfg.block fi.Proginfo.fi_cfg b).Ir.bterm with
      | Ir.Ret _ -> true
      | Ir.Br _ | Ir.Cbr _ -> false)
    l.Loops.l_blocks

let examine info fi l =
  if loop_does_io info fi l then Rejected Has_io
  else if loop_returns_inside fi l then Rejected Returns_inside
  else begin
    let sep = Iterator_rec.separate fi l in
    if sep.Iterator_rec.sep_mixed_cbr then Rejected Mixed_branch
    else
      match sep.Iterator_rec.sep_ambiguous with
      | v :: _ -> Rejected (Ambiguous_interface v.Ir.vname)
      | [] ->
          if Iterator_rec.is_iterator_only sep then Rejected Empty_payload else Accepted sep
  end
