(** The serve daemon's analysis core: a warm-session LRU in front of the
    two-level verdict cache ({!Vcache}), independent of any transport so
    tests can drive it directly.

    Requests are handled {e sequentially} — one request at a time owns
    the process-global telemetry and faultpoint state and the cache.
    Parallelism lives inside a request: unresolved loops run on the warm
    session's worker pool and are merged deterministically with the
    cached verdicts, so a reply assembled from any mix of cache hits and
    fresh work is byte-identical to a cold [dca analyze] run. *)

type t

val create :
  ?cache_dir:string -> ?cache_capacity:int -> ?sessions:int -> ?jobs:int -> unit -> t
(** [cache_dir] enables the persistent cache level (see {!Vcache.create});
    [sessions] bounds the warm-session LRU (default 8); [jobs] is the
    default pool width for requests that do not set one. *)

val handle : t -> Protocol.request -> Protocol.response
(** Serve one request.  [Analyze] failures of any kind — unknown program,
    parse error, resource-budget exhaustion, an injected fault escaping
    the per-loop containment — become error {e responses}; the engine
    survives and the next request starts from a clean faultpoint state.
    [Shutdown] is answered like [Ping]; stopping the accept loop is the
    transport's job ({!Server}). *)

val stats : t -> (string * int) list
(** Server and cache counters, as reported in [Stats] replies. *)

val cache : t -> Vcache.t
val close : t -> unit
(** Close every warm session (releasing their pools). *)
