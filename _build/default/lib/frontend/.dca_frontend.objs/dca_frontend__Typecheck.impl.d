lib/frontend/typecheck.ml: Ast Hashtbl List Loc Option Printf Tast
