(** Shared checks of the three static baselines (ICC-like, Polly-like,
    Idioms).  Each tool composes these with its own policy. *)

open Dca_analysis
open Dca_ir

(* Calls appearing textually inside the loop. *)
let calls_in fi (l : Loops.loop) =
  Loops.instrs_of fi.Proginfo.fi_cfg l
  |> List.filter_map (fun i ->
         match i.Ir.idesc with Ir.Call (_, name, _) -> Some name | _ -> None)

(* The loop and all loops nested inside it are well-formed counted loops. *)
let rec nest_is_counted fi (l : Loops.loop) =
  Affine.counted_header fi.Proginfo.fi_affine l
  && List.for_all
       (fun cid ->
         match Loops.find fi.Proginfo.fi_forest cid with
         | Some child -> nest_is_counted fi child
         | None -> false)
       l.Loops.l_children

(* Scalar classification failure: a loop-carried scalar the tool cannot
   handle.  [reductions_ok] filters which reduction ops the tool exploits. *)
let scalar_blocker fi (l : Loops.loop) ~reductions_ok =
  let classes =
    Scalars.classify_loop fi.Proginfo.fi_cfg fi.Proginfo.fi_affine fi.Proginfo.fi_live l
  in
  List.find_map
    (fun (vid, cls) ->
      match cls with
      | Scalars.Carried -> Some (Printf.sprintf "loop-carried scalar v%d" vid)
      | Scalars.Reduction op when not (reductions_ok op) ->
          Some (Printf.sprintf "unsupported %s reduction" (Scalars.reduction_op_to_string op))
      | Scalars.Induction | Scalars.Private | Scalars.Reduction _ -> None)
    classes

(* Memory dependence check over the accesses of [l].  Recognized
   reduction read-modify-write pairs are exempted {e pair-wise}: the rmw
   load may conflict with its own store, and the rmw store with itself
   across iterations, but the store still participates in dependence
   tests against every other access (so a wavefront like
   [rhs[i][j] += rhs[i-1][j]] is NOT excused by its same-cell pair). *)
let memory_blocker fi (l : Loops.loop) ~exempt_rmws ~allow_unknown_roots =
  let pairs = Memred.iid_pairs exempt_rmws in
  let stores = List.map snd pairs in
  let exempt_pair (a : Affine.access) (b : Affine.access) =
    let ia = a.Affine.acc_iid and ib = b.Affine.acc_iid in
    List.mem (ia, ib) pairs || List.mem (ib, ia) pairs
    || (ia = ib && List.mem ia stores)
  in
  let accesses = Affine.accesses_of_loop fi.Proginfo.fi_affine l in
  let unknown = List.find_opt (fun a -> a.Affine.acc_root = Affine.Runknown) accesses in
  match unknown with
  | Some a when not allow_unknown_roots ->
      Some (Printf.sprintf "unanalyzable access at %s" (Dca_frontend.Loc.to_string a.Affine.acc_loc))
  | _ -> (
      match Deptest.loop_has_dependence ~loop_id:l.Loops.l_id ~exempt:exempt_pair accesses with
      | Some (_, _, reason) -> Some ("may-dependence: " ^ reason)
      | None -> None)

let loop_does_io info fi (l : Loops.loop) =
  let pur = Proginfo.purity info in
  List.exists (fun i -> Purity.instr_does_io pur i.Ir.idesc) (Loops.instrs_of fi.Proginfo.fi_cfg l)
