open Dca_support

type origin =
  | Source of { file : string; source : string; input : int list }
  | Benchmark of Dca_progs.Benchmark.t

type t = {
  s_name : string;
  s_file : string;
  s_source : string;
  s_input : int list;
  s_jobs : int;
  s_config : Commutativity.config;
  s_spec : Commutativity.run_spec;
  s_hierarchical : bool;
  mutable s_pool : Pool.t option;
  mutable s_closed : bool;
  mutable s_ir : Dca_ir.Ir.program option;
  mutable s_info : Dca_analysis.Proginfo.t option;
  mutable s_profile : Dca_profiling.Depprof.profile option;
  mutable s_results : Driver.loop_result list option;
  mutable s_plan : Dca_parallel.Plan.t option;
}

let create ?jobs ?config ?spec ?deadline_ms ?heap_words ?(hierarchical = false) origin =
  let name, file, source, input =
    match origin with
    | Source { file; source; input } -> (Filename.basename file, file, source, input)
    | Benchmark bm ->
        ( bm.Dca_progs.Benchmark.bm_name,
          bm.Dca_progs.Benchmark.bm_name ^ ".mc",
          bm.Dca_progs.Benchmark.bm_source,
          bm.Dca_progs.Benchmark.bm_input )
  in
  (* honor DCA_TRACE / DCA_STATS unless the embedder already configured
     telemetry explicitly; a no-op on every later session *)
  Telemetry.init_from_env ();
  (* honor DCA_FAULTS the same way (a front end's --faults wins) *)
  Faultpoint.init_from_env ();
  let jobs = max 1 (match jobs with Some j -> j | None -> Pool.default_jobs ()) in
  let config = Option.value config ~default:Commutativity.default_config in
  let spec =
    match spec with
    | Some s -> s
    | None ->
        Commutativity.make_run_spec
          ?deadline_ns:(Option.map (fun ms -> ms * 1_000_000) deadline_ms)
          ?heap_words input
  in
  {
    s_name = name;
    s_file = file;
    s_source = source;
    s_input = input;
    s_jobs = jobs;
    s_config = config;
    s_spec = spec;
    s_hierarchical = hierarchical;
    s_pool = None;
    s_closed = false;
    s_ir = None;
    s_info = None;
    s_profile = None;
    s_results = None;
    s_plan = None;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical prog =
  match Dca_progs.Registry.find prog with
  | Some bm -> Ok (create ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical (Benchmark bm))
  | None ->
      if Sys.file_exists prog then
        Ok
          (create ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical
             (Source { file = prog; source = read_file prog; input = [] }))
      else Error (Printf.sprintf "'%s' is neither a built-in benchmark nor a file" prog)

let name t = t.s_name
let file t = t.s_file
let source t = t.s_source
let input t = t.s_input
let jobs t = t.s_jobs

let memo cell compute store =
  match cell with
  | Some v -> v
  | None ->
      let v = compute () in
      store v;
      v

let ir t =
  memo t.s_ir
    (fun () ->
      Telemetry.span ~cat:"frontend" "session.ir" (fun () ->
          Dca_ir.Lower.compile ~file:t.s_file t.s_source))
    (fun v -> t.s_ir <- Some v)

let proginfo t =
  memo t.s_info
    (fun () ->
      let prog = ir t in
      Telemetry.span ~cat:"static" "session.proginfo" (fun () -> Dca_analysis.Proginfo.analyze prog))
    (fun v -> t.s_info <- Some v)

let profile t =
  memo t.s_profile
    (fun () ->
      let info = proginfo t in
      Telemetry.span ~cat:"profile" "session.profile" (fun () ->
          Dca_profiling.Depprof.profile_program ~input:t.s_input info))
    (fun v -> t.s_profile <- Some v)

(* The pool exists only while the session wants parallel stages: started on
   first demand, torn down by [close].  A closed session (or [jobs = 1])
   yields no pool and the stages run sequentially. *)
let pool_of t =
  if t.s_jobs <= 1 || t.s_closed then None
  else
    match t.s_pool with
    | Some _ as p -> p
    | None ->
        let p = Pool.create ~jobs:t.s_jobs in
        t.s_pool <- Some p;
        Some p

let dca_results t =
  memo t.s_results
    (fun () ->
      let info = proginfo t in
      Telemetry.span ~cat:"dynamic" "session.dca" (fun () ->
          Driver.analyze_program ~config:t.s_config ~spec:t.s_spec ~hierarchical:t.s_hierarchical
            ?pool:(pool_of t) info))
    (fun v -> t.s_results <- Some v)

let compute_plan t ~machine ~strategy =
  let info = proginfo t in
  let prof = profile t in
  let detected = Driver.commutative_ids (dca_results t) in
  Telemetry.span ~cat:"plan" "session.plan" (fun () ->
      Dca_parallel.Planner.select ~machine info prof ~detected ~strategy)

let plan ?machine ?strategy t =
  match (machine, strategy) with
  | None, None ->
      memo t.s_plan
        (fun () ->
          compute_plan t ~machine:Dca_parallel.Machine.default ~strategy:Dca_parallel.Planner.Best_benefit)
        (fun v -> t.s_plan <- Some v)
  | _ ->
      compute_plan t
        ~machine:(Option.value machine ~default:Dca_parallel.Machine.default)
        ~strategy:(Option.value strategy ~default:Dca_parallel.Planner.Best_benefit)

let advise t = Advisor.advise (proginfo t) (profile t) (dca_results t)
let report t = Report.to_string (dca_results t)
let telemetry _t = Telemetry.counters ()

let close t =
  t.s_closed <- true;
  match t.s_pool with
  | Some p ->
      t.s_pool <- None;
      Pool.shutdown p
  | None -> ()

let with_session ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical origin f =
  let t = create ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical origin in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
