(* The paper's Fig. 2 walkthrough: BFS with frontier worklists.

   This example opens DCA's hood on the hardest motivating case:
   - iterator recognition finds the [pop]-driven iterator of the top-down
     step (§IV-A1);
   - the dynamic separability check catches the payload [push]es feeding
     the iterator through memory, and slice promotion absorbs them;
   - strict live-out digests differ after permutation (the next frontier
     is a reordered list), so verification escalates to whole-program
     output comparison — where the [dist] results agree (§IV-B3).

   Run with:  dune exec examples/bfs_commutativity.exe                   *)

open Dca_core

let () =
  print_endline "=== Fig. 2: BFS with frontier worklists ===\n";
  let bm = Dca_progs.Registry.find_exn "BFS" in
  let prog = Dca_progs.Benchmark.compile bm in
  let info = Dca_analysis.Proginfo.analyze prog in

  (* Static stage: iterator/payload separation of the top-down step. *)
  let fi = Dca_analysis.Proginfo.func_info info "bfs" in
  print_endline "Iterator/payload separation (before any promotion):";
  List.iter
    (fun l -> Printf.printf "  %s\n" (Iterator_rec.describe (Iterator_rec.separate fi l)))
    (Dca_analysis.Loops.loops fi.Dca_analysis.Proginfo.fi_forest);

  (* Dynamic stage: full DCA. *)
  print_endline "\nDynamic commutativity testing:";
  let results = Driver.analyze_program info in
  List.iter
    (fun (r : Driver.loop_result) ->
      if r.Driver.lr_loop.Dca_analysis.Loops.l_func = "bfs" then begin
        Printf.printf "  %s\n" (Report.summary_line r);
        match r.Driver.lr_outcome with
        | Some oc ->
            if oc.Commutativity.oc_promotions > 0 then
              print_endline
                "      ^ the payload pushes into next_frontier fed the iterator's pops;\n\
                \        DCA promoted them into the iterator slice and re-tested";
            if oc.Commutativity.oc_escalated then
              print_endline
                "      ^ the permuted frontier is a reordered list, so the strict live-out\n\
                \        digest differed; whole-program outputs (the dist array) matched"
        | None -> ()
      end)
    results;

  (* And what everything else says about the top-down step. *)
  let profile = Dca_profiling.Depprof.profile_program info in
  print_endline "\nThe five baselines on the same program (hot bfs loops):";
  List.iter
    (fun tool ->
      let res = tool.Dca_baselines.Tool.tool_analyze info (Some profile) in
      let bfs_loops =
        List.filter (fun r -> r.Dca_baselines.Tool.bl_loop.Dca_analysis.Loops.l_func = "bfs") res
      in
      let found = List.length (List.filter Dca_baselines.Tool.is_parallel bfs_loops) in
      Printf.printf "  %-14s %d/%d bfs loops parallel\n" tool.Dca_baselines.Tool.tool_name found
        (List.length bfs_loops))
    Dca_baselines.Registry.all;

  (* Finally: what the parallelism is worth on the machine model. *)
  let machine = Dca_parallel.Machine.default in
  let plan =
    Dca_parallel.Planner.select ~machine info profile ~detected:(Driver.commutative_ids results)
      ~strategy:Dca_parallel.Planner.Best_benefit
  in
  let speedup = Dca_parallel.Speedup.simulate ~machine info profile plan in
  Printf.printf "\nSimulated 72-worker speedup from the DCA plan: %.1fx (paper: ~21x on 72 cores)\n"
    speedup.Dca_parallel.Speedup.sp_speedup
