lib/interp/events.ml: Dca_ir Printf
