(* Unit and property tests for the static analyses: dominance, loop
   forest, liveness, PDG/control dependence, purity, affine recognition,
   dependence tests, scalar classification, memory-reduction patterns. *)

open Dca_support
open Dca_frontend
open Dca_ir
open Dca_analysis

let compile src = Lower.compile ~file:"<test>" src
let info_of src = Proginfo.analyze (compile src)

let fi info name = Proginfo.func_info info name

(* --------------------------------------------------------------- *)
(* Dominance                                                         *)
(* --------------------------------------------------------------- *)

let diamond_src =
  {|
  void main() {
    int x = reads();
    int y;
    if (x > 0) { y = 1; } else { y = 2; }
    printi(y);
  }
  |}

let test_dominance_diamond () =
  let info = info_of diamond_src in
  let cfg = (fi info "main").Proginfo.fi_cfg in
  let dom = Dominance.of_cfg cfg in
  let entry = Cfg.entry cfg in
  List.iter
    (fun b -> Alcotest.(check bool) (Printf.sprintf "entry dominates b%d" b) true (Dominance.dominates dom entry b))
    (Cfg.reverse_postorder cfg);
  (* the join block is dominated by the branch block but by neither arm *)
  let branch = entry in
  let join =
    List.find
      (fun b -> List.length (Cfg.preds cfg b) = 2)
      (Cfg.reverse_postorder cfg)
  in
  Alcotest.(check bool) "branch dominates join" true (Dominance.dominates dom branch join);
  let arms = Cfg.preds cfg join in
  List.iter
    (fun arm ->
      if arm <> branch then
        Alcotest.(check bool) "arm does not dominate join" false (Dominance.dominates dom arm join))
    arms

let test_dominance_loop_header () =
  let info = info_of "void main() { int i = 0; while (i < 5) { i = i + 1; } printi(i); }" in
  let f = fi info "main" in
  let cfg = f.Proginfo.fi_cfg in
  let dom = Dominance.of_cfg cfg in
  match Loops.loops f.Proginfo.fi_forest with
  | [ l ] ->
      Intset.iter
        (fun b ->
          Alcotest.(check bool) "header dominates body" true
            (Dominance.dominates dom l.Loops.l_header b))
        l.Loops.l_blocks
  | _ -> Alcotest.fail "expected one loop"

(* Property: on random structured programs, the dominator of every block's
   idom is an ancestor through which all paths pass — checked indirectly:
   idom is always a strict dominator and is itself dominated by the entry. *)
let gen_structured_program =
  let open QCheck.Gen in
  let rec gen_stmts depth n =
    if n <= 0 then return []
    else
      let* k = int_range 1 3 in
      let* stmt =
        if depth > 2 then return "x = x + 1;"
        else
          oneofl
            [
              "x = x + 1;";
              "if (x % 2 == 0) { x = x + 3; } else { x = x - 1; }";
              "while (x > 90) { x = x - 7; }";
              "for (y = 0; y < 3; y = y + 1) { x = x + y; }";
            ]
      in
      let* nested =
        if depth < 2 && stmt = "if (x % 2 == 0) { x = x + 3; } else { x = x - 1; }" then
          let* inner = gen_stmts (depth + 1) (n / 2) in
          return (Printf.sprintf "if (x > 10) { %s }" (String.concat " " inner))
        else return stmt
      in
      let* rest = gen_stmts depth (n - k) in
      return (nested :: rest)
  in
  let* body = gen_stmts 0 8 in
  return
    (Printf.sprintf "void main() { int x = 100; int y; %s printi(x); }" (String.concat "\n" body))

let prop_dominance_random =
  QCheck.Test.make ~count:60 ~name:"idom is a strict dominator on random programs"
    (QCheck.make gen_structured_program ~print:(fun s -> s))
    (fun src ->
      let info = info_of src in
      let cfg = (fi info "main").Proginfo.fi_cfg in
      let dom = Dominance.of_cfg cfg in
      List.for_all
        (fun b ->
          match Dominance.idom dom b with
          | None -> b = Cfg.entry cfg
          | Some d -> d <> b && Dominance.dominates dom d b)
        (Cfg.reverse_postorder cfg))

let prop_loops_well_formed =
  QCheck.Test.make ~count:60 ~name:"loop forest invariants on random programs"
    (QCheck.make gen_structured_program ~print:(fun s -> s))
    (fun src ->
      let info = info_of src in
      let f = fi info "main" in
      let forest = f.Proginfo.fi_forest in
      List.for_all
        (fun l ->
          Intset.mem l.Loops.l_header l.Loops.l_blocks
          && l.Loops.l_latches <> []
          && List.for_all (fun latch -> Intset.mem latch l.Loops.l_blocks) l.Loops.l_latches
          && List.for_all
               (fun (src_b, dst) ->
                 Intset.mem src_b l.Loops.l_blocks && not (Intset.mem dst l.Loops.l_blocks))
               l.Loops.l_exiting
          &&
          (* parent strictly contains child *)
          match l.Loops.l_parent with
          | None -> l.Loops.l_depth = 1
          | Some pid -> (
              match Loops.find forest pid with
              | Some p ->
                  Intset.subset l.Loops.l_blocks p.Loops.l_blocks
                  && p.Loops.l_depth = l.Loops.l_depth - 1
              | None -> false))
        (Loops.loops forest))

(* --------------------------------------------------------------- *)
(* Loops                                                             *)
(* --------------------------------------------------------------- *)

let test_loop_nesting () =
  let info =
    info_of
      {|
      void main() {
        int i;
        int j;
        int x = 0;
        for (i = 0; i < 3; i = i + 1) {
          for (j = 0; j < 3; j = j + 1) { x = x + i * j; }
        }
        while (x > 0) { x = x - 1; }
        printi(x);
      }
      |}
  in
  let forest = (fi info "main").Proginfo.fi_forest in
  let loops = Loops.loops forest in
  Alcotest.(check int) "three loops" 3 (List.length loops);
  let depths = List.map (fun l -> l.Loops.l_depth) loops |> List.sort compare in
  Alcotest.(check (list int)) "depths" [ 1; 1; 2 ] depths;
  let inner = List.find (fun l -> l.Loops.l_depth = 2) loops in
  let outer = List.find (fun l -> l.Loops.l_children <> []) loops in
  Alcotest.(check (option string)) "parent link" (Some outer.Loops.l_id) inner.Loops.l_parent;
  Alcotest.(check (list string)) "child link" [ inner.Loops.l_id ] outer.Loops.l_children

let test_innermost_containing () =
  let info =
    info_of
      "void main() { int i; int j; int x = 0; for (i = 0; i < 2; i = i + 1) { for (j = 0; j < 2; j = j + 1) { x = x + 1; } } printi(x); }"
  in
  let f = fi info "main" in
  let forest = f.Proginfo.fi_forest in
  let inner = List.find (fun l -> l.Loops.l_depth = 2) (Loops.loops forest) in
  Intset.iter
    (fun b ->
      match Loops.innermost_containing forest b with
      | Some l -> Alcotest.(check string) "innermost" inner.Loops.l_id l.Loops.l_id
      | None -> Alcotest.fail "block should be in a loop")
    inner.Loops.l_blocks

(* --------------------------------------------------------------- *)
(* Liveness                                                          *)
(* --------------------------------------------------------------- *)

let test_liveness_loop_live_out () =
  let info =
    info_of
      {|
      void main() {
        int i;
        int acc = 0;
        int dead = 0;
        for (i = 0; i < 10; i = i + 1) {
          acc = acc + i;
          dead = dead + 2;
        }
        printi(acc);
      }
      |}
  in
  let f = fi info "main" in
  match Loops.loops f.Proginfo.fi_forest with
  | [ l ] ->
      let live_out = Liveness.loop_live_out f.Proginfo.fi_live l in
      let names =
        Intset.elements live_out
        |> List.filter_map (fun vid -> Liveness.var_of_id f.Proginfo.fi_live vid)
        |> List.map (fun v -> v.Ir.vname)
      in
      Alcotest.(check bool) "acc live out" true (List.mem "acc" names);
      Alcotest.(check bool) "dead not live out" false (List.mem "dead" names)
  | _ -> Alcotest.fail "expected one loop"

let test_liveness_straightline () =
  let info = info_of "void main() { int a = 1; int b = a + 2; int c = b * b; printi(c); }" in
  let f = fi info "main" in
  let live = Liveness.live_in f.Proginfo.fi_live (Cfg.entry f.Proginfo.fi_cfg) in
  Alcotest.(check bool) "nothing live at entry" true (Intset.is_empty live)

(* --------------------------------------------------------------- *)
(* PDG / control dependence                                          *)
(* --------------------------------------------------------------- *)

let test_control_dependence () =
  let info =
    info_of
      {|
      void main() {
        int x = reads();
        int y = 0;
        if (x > 0) { y = 1; }
        printi(y);
      }
      |}
  in
  let f = fi info "main" in
  let cfg = f.Proginfo.fi_cfg in
  (* the then-arm is control dependent on the entry block's branch *)
  let then_block =
    List.find
      (fun b -> b <> Cfg.entry cfg && List.length (Cfg.succs cfg b) = 1 && Cfg.preds cfg b = [ Cfg.entry cfg ])
      (Cfg.reverse_postorder cfg)
  in
  let parents = Pdg.control_parents f.Proginfo.fi_pdg then_block in
  Alcotest.(check (list int)) "controlled by entry" [ Cfg.entry cfg ] parents

let test_backward_slice_for_loop () =
  let info =
    info_of
      "int a[8]; void main() { int i; for (i = 0; i < 8; i = i + 1) { a[i] = i * 2; } printi(a[3]); }"
  in
  let f = fi info "main" in
  match Loops.loops f.Proginfo.fi_forest with
  | [ l ] ->
      let pdg = f.Proginfo.fi_pdg in
      let within n = Intset.mem (Pdg.node_block pdg n) l.Loops.l_blocks in
      let seeds = List.map (fun (src, _) -> Pdg.Term src) l.Loops.l_exiting in
      let slice = Pdg.backward_closure pdg ~within seeds in
      (* slice contains the iterator update (Mov i) but not the store *)
      let slice_iids =
        Pdg.Nodeset.fold
          (fun n acc -> match n with Pdg.Instr i -> i :: acc | Pdg.Term _ -> acc)
          slice []
      in
      let has pred =
        List.exists (fun iid -> pred (Pdg.instr pdg iid).Ir.idesc) slice_iids
      in
      Alcotest.(check bool) "slice updates i" true
        (has (function Ir.Mov (v, _) -> v.Ir.vname = "i" | _ -> false));
      Alcotest.(check bool) "slice has no store" false (has (function Ir.Store _ -> true | _ -> false))
  | _ -> Alcotest.fail "expected one loop"

(* --------------------------------------------------------------- *)
(* Purity                                                            *)
(* --------------------------------------------------------------- *)

let test_purity () =
  let info =
    info_of
      {|
      int g;
      int pure_add(int a, int b) { return a + b; }
      int reads_global(int a) { return a + g; }
      void writes_global(int a) { g = a; }
      void prints_stuff() { printi(g); }
      int recursive(int n) { if (n <= 0) { return 0; } return recursive(n - 1) + 1; }
      void main() { g = pure_add(reads_global(1), recursive(3)); writes_global(2); prints_stuff(); }
      |}
  in
  let pur = Proginfo.purity info in
  Alcotest.(check bool) "pure_add pure" true (Purity.pure pur "pure_add");
  Alcotest.(check bool) "reads_global pure (read-only)" true (Purity.pure pur "reads_global");
  Alcotest.(check bool) "writes_global impure" false (Purity.pure pur "writes_global");
  Alcotest.(check bool) "prints_stuff does io" false (Purity.io_free pur "prints_stuff");
  Alcotest.(check bool) "recursive pure" true (Purity.pure pur "recursive");
  Alcotest.(check bool) "sqrt builtin pure" true (Purity.pure pur "sqrt");
  Alcotest.(check bool) "drand impure" false (Purity.pure pur "drand");
  Alcotest.(check bool) "unknown is impure" false (Purity.pure pur "no_such_function")

(* --------------------------------------------------------------- *)
(* Affine                                                            *)
(* --------------------------------------------------------------- *)

let single_loop_env src =
  let info = info_of src in
  let f = fi info "main" in
  match Loops.loops f.Proginfo.fi_forest with
  | l :: _ -> (f, l)
  | [] -> Alcotest.fail "expected a loop"

let test_affine_induction () =
  let f, l = single_loop_env "int a[8]; void main() { int i; for (i = 0; i < 8; i = i + 1) { a[i] = 1; } }" in
  match Affine.induction_var f.Proginfo.fi_affine l with
  | Some (v, step) ->
      Alcotest.(check string) "iv" "i" v.Ir.vname;
      Alcotest.(check int) "step" 1 step
  | None -> Alcotest.fail "no induction variable found"

let test_affine_downward () =
  let f, l = single_loop_env "int a[8]; void main() { int i; for (i = 7; i >= 0; i = i - 1) { a[i] = 1; } }" in
  match Affine.induction_var f.Proginfo.fi_affine l with
  | Some (_, step) -> Alcotest.(check int) "negative step" (-1) step
  | None -> Alcotest.fail "no induction variable found"

let test_counted_header_global_bound () =
  let f, l = single_loop_env "int n; int a[8]; void main() { n = 8; int i; for (i = 0; i < n; i = i + 1) { a[i] = 1; } }" in
  Alcotest.(check bool) "counted with global bound" true (Affine.counted_header f.Proginfo.fi_affine l)

let test_not_counted_plds () =
  let f, l =
    single_loop_env
      {|
      struct node { int v; struct node *next; }
      struct node *head;
      void main() { struct node *p = head; while (p) { p = p->next; } }
      |}
  in
  Alcotest.(check bool) "plds loop not counted" false (Affine.counted_header f.Proginfo.fi_affine l)

let test_access_roots () =
  let f, l =
    single_loop_env
      {|
      int a[8];
      int b[8];
      void main() {
        int i;
        for (i = 0; i < 8; i = i + 1) { a[i] = b[i] + 1; }
      }
      |}
  in
  let accesses = Affine.accesses_of_loop f.Proginfo.fi_affine l in
  let heap = List.filter (fun a -> match a.Affine.acc_root with Affine.Rglobal _ -> true | _ -> false) accesses in
  Alcotest.(check bool) "at least load+store resolved to globals" true (List.length heap >= 2);
  let roots =
    List.filter_map (fun a -> match a.Affine.acc_root with Affine.Rglobal g -> Some g | _ -> None) heap
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "two distinct global roots" 2 (List.length roots);
  List.iter
    (fun a -> Alcotest.(check bool) "subscript affine" true (a.Affine.acc_subscript <> None))
    heap

let test_nonaffine_subscript () =
  let f, l =
    single_loop_env
      "int a[64]; int key[64]; void main() { int i; for (i = 0; i < 64; i = i + 1) { a[key[i]] = 1; } }"
  in
  let accesses = Affine.accesses_of_loop f.Proginfo.fi_affine l in
  let stores = List.filter (fun a -> a.Affine.acc_write) accesses in
  Alcotest.(check bool) "indirect store has no affine subscript" true
    (List.exists (fun a -> a.Affine.acc_subscript = None) stores)

(* --------------------------------------------------------------- *)
(* Deptest                                                           *)
(* --------------------------------------------------------------- *)

let mk_access ?(write = false) root subscript =
  {
    Affine.acc_iid = 0;
    acc_write = write;
    acc_root = root;
    acc_subscript = subscript;
    acc_loc = Loc.dummy;
  }

let aff coeffs const = Some { Affine.coeffs; const }

let test_deptest_cases () =
  let lid = "main#1" in
  let iv c = (Affine.Tiv lid, c) in
  let check name expected a b =
    let verdict =
      match Deptest.cross_iteration ~loop_id:lid a b with
      | Deptest.No_dep -> "no"
      | Deptest.Dep _ -> "dep"
    in
    Alcotest.(check string) name expected verdict
  in
  let g = Affine.Rglobal 0 in
  (* a[i] vs a[i]: same cell only within an iteration *)
  check "a[i] vs a[i]" "no" (mk_access ~write:true g (aff [ iv 1 ] 0)) (mk_access g (aff [ iv 1 ] 0));
  (* a[i] vs a[i-1]: distance-1 carried dep *)
  check "a[i] vs a[i-1]" "dep" (mk_access ~write:true g (aff [ iv 1 ] 0)) (mk_access g (aff [ iv 1 ] (-1)));
  (* a[2i] vs a[2i+1]: disjoint parity *)
  check "a[2i] vs a[2i+1]" "no" (mk_access ~write:true g (aff [ iv 2 ] 0)) (mk_access g (aff [ iv 2 ] 1));
  (* a[0] write every iteration: carried *)
  check "a[0] vs a[0]" "dep" (mk_access ~write:true g (aff [] 0)) (mk_access g (aff [] 0));
  (* different fixed cells *)
  check "a[0] vs a[1]" "no" (mk_access ~write:true g (aff [] 0)) (mk_access g (aff [] 1));
  (* non-affine defeated *)
  check "non-affine" "dep" (mk_access ~write:true g None) (mk_access g (aff [ iv 1 ] 0));
  (* different globals never alias *)
  let verdict =
    Deptest.cross_iteration ~loop_id:lid
      (mk_access ~write:true (Affine.Rglobal 0) None)
      (mk_access (Affine.Rglobal 1) None)
  in
  Alcotest.(check bool) "distinct globals" true (verdict = Deptest.No_dep)

let test_may_alias () =
  Alcotest.(check bool) "g0 vs g0" true (Deptest.may_alias (Affine.Rglobal 0) (Affine.Rglobal 0));
  Alcotest.(check bool) "g0 vs g1" false (Deptest.may_alias (Affine.Rglobal 0) (Affine.Rglobal 1));
  Alcotest.(check bool) "alloc vs global" false (Deptest.may_alias (Affine.Ralloc 5) (Affine.Rglobal 0));
  Alcotest.(check bool) "unknown vs anything" true (Deptest.may_alias Affine.Runknown (Affine.Rglobal 0));
  Alcotest.(check bool) "param vs global" true (Deptest.may_alias (Affine.Rparam 3) (Affine.Rglobal 0))

(* The full ZIV / strong-SIV / GCD matrix the static prover leans on,
   normalized through the same affine arithmetic the analysis uses. *)
let zero_aff = { Affine.coeffs = []; const = 0 }
let norm_aff coeffs const = Affine.affine_sub { Affine.coeffs; const } zero_aff

let test_deptest_table () =
  let lid = "main#1" in
  let g = Affine.Rglobal 0 in
  let acc ?(write = false) coeffs const = mk_access ~write g (Some (norm_aff coeffs const)) in
  let iv c = (Affine.Tiv lid, c) in
  let sym v c = (Affine.Tsym v, c) in
  let cases =
    [
      (* ZIV: both subscripts loop-invariant constants *)
      ("ziv a[3] w vs a[5] r", "no", acc ~write:true [] 3, acc [] 5);
      ("ziv a[4] w vs a[4] r", "dep", acc ~write:true [] 4, acc [] 4);
      (* strong SIV: equal strides, constant distance *)
      ("siv a[i] w vs a[i] r", "no", acc ~write:true [ iv 1 ] 0, acc [ iv 1 ] 0);
      ("siv a[i] w vs a[i+1] r", "dep", acc ~write:true [ iv 1 ] 0, acc [ iv 1 ] 1);
      ("siv a[4i] w vs a[4i+2] r", "no", acc ~write:true [ iv 4 ] 0, acc [ iv 4 ] 2);
      ("siv a[4i] w vs a[4i+8] r", "dep", acc ~write:true [ iv 4 ] 0, acc [ iv 4 ] 8);
      ("siv a[-i] w vs a[-i-3] r", "dep", acc ~write:true [ iv (-1) ] 0, acc [ iv (-1) ] (-3));
      (* GCD: differing strides, decided on divisibility of the offset *)
      ("gcd a[2i] w vs a[4i+1] r", "no", acc ~write:true [ iv 2 ] 0, acc [ iv 4 ] 1);
      ("gcd a[2i] w vs a[4i+2] r", "dep", acc ~write:true [ iv 2 ] 0, acc [ iv 4 ] 2);
      ("gcd a[3i+1] w vs a[6i] r", "no", acc ~write:true [ iv 3 ] 1, acc [ iv 6 ] 0);
      ("gcd a[0] w vs a[i] r", "dep", acc ~write:true [] 0, acc [ iv 1 ] 0);
      (* symbolic remainders: equal symbolic parts cancel, differing
         ones are conservatively a dependence *)
      ("sym a[2i+n] w vs a[2i+n+1] r", "no", acc ~write:true [ iv 2; sym 7 1 ] 0,
        acc [ iv 2; sym 7 1 ] 1);
      ("sym a[i+n] w vs a[i+m] r", "dep", acc ~write:true [ iv 1; sym 7 1 ] 0,
        acc [ iv 1; sym 8 1 ] 0);
      ("sym a[2i+n] w vs a[3i] r", "dep", acc ~write:true [ iv 2; sym 7 1 ] 0, acc [ iv 3 ] 0);
      (* symbolic-bound conservatism: the test does not know the trip
         count, so even an offset far beyond any plausible bound stays a
         dependence — this is what sends wraparound shapes to the
         dynamic stage instead of a bogus static proof *)
      ("bound a[i] w vs a[i+100] r", "dep", acc ~write:true [ iv 1 ] 0, acc [ iv 1 ] 100);
      (* non-affine on either side defeats the test *)
      ("non-affine lhs", "dep", mk_access ~write:true g None, acc [ iv 1 ] 0);
      ("non-affine rhs", "dep", acc ~write:true [ iv 1 ] 0, mk_access g None);
    ]
  in
  List.iter
    (fun (name, expected, a, b) ->
      let verdict =
        match Deptest.cross_iteration ~loop_id:lid a b with
        | Deptest.No_dep -> "no"
        | Deptest.Dep _ -> "dep"
      in
      Alcotest.(check string) name expected verdict)
    cases

(* Soundness of the static tests, the property the prover's safety rests
   on: whenever two subscripts actually collide at distinct concrete
   iterations (under any valuation of the shared symbol), the static
   test must NOT refute the dependence.  The converse — reporting a
   dependence that never materializes — is mere conservatism. *)
let prop_concrete_dep_never_refuted =
  QCheck.Test.make ~count:1000 ~name:"concrete-index dependence never statically refuted"
    QCheck.(
      pair
        (triple (int_range (-4) 4) (int_range (-4) 4) (int_range (-8) 8))
        (triple (int_range (-4) 4) (int_range (-4) 4) (int_range (-8) 8)))
    (fun ((c1, s1, k1), (c2, s2, k2)) ->
      let lid = "main#1" in
      let mk w c s k =
        mk_access ~write:w (Affine.Rglobal 0)
          (Some (norm_aff [ (Affine.Tiv lid, c); (Affine.Tsym 7, s) ] k))
      in
      let refuted =
        Deptest.cross_iteration ~loop_id:lid (mk true c1 s1 k1) (mk false c2 s2 k2)
        = Deptest.No_dep
      in
      let collision = ref false in
      (* x, y: iteration indices; w: any value of the invariant symbol *)
      for x = 0 to 9 do
        for y = 0 to 9 do
          for w = -4 to 4 do
            if x <> y && (c1 * x) + (s1 * w) + k1 = (c2 * y) + (s2 * w) + k2 then
              collision := true
          done
        done
      done;
      not (!collision && refuted))

(* --------------------------------------------------------------- *)
(* Scalars                                                           *)
(* --------------------------------------------------------------- *)

let classify_in src =
  let f, l = single_loop_env src in
  let classes = Scalars.classify_loop f.Proginfo.fi_cfg f.Proginfo.fi_affine f.Proginfo.fi_live l in
  fun name ->
    List.find_map
      (fun (vid, c) ->
        match Liveness.var_of_id f.Proginfo.fi_live vid with
        | Some v when v.Ir.vname = name -> Some c
        | _ -> None)
      classes

let test_scalar_classes () =
  let lookup =
    classify_in
      {|
      float a[16];
      void main() {
        int i;
        float total = 0.0;
        float best = -1.0;
        float carried = 0.0;
        for (i = 0; i < 16; i = i + 1) {
          float t = a[i] * 2.0;        // private
          total = total + t;           // sum reduction
          best = fmax(best, t);        // max reduction
          carried = carried * 0.9 + t; // genuine carried scalar
        }
        print(total);
        print(best);
        print(carried);
      }
      |}
  in
  Alcotest.(check bool) "i induction" true (lookup "i" = Some Scalars.Induction);
  Alcotest.(check bool) "t private" true (lookup "t" = Some Scalars.Private);
  Alcotest.(check bool) "total sum" true (lookup "total" = Some (Scalars.Reduction Scalars.Rsum));
  Alcotest.(check bool) "best max" true (lookup "best" = Some (Scalars.Reduction Scalars.Rmax));
  Alcotest.(check bool) "carried" true (lookup "carried" = Some Scalars.Carried)

let test_reduction_var_used_elsewhere_is_carried () =
  let lookup =
    classify_in
      {|
      float a[16];
      void main() {
        int i;
        float total = 0.0;
        for (i = 0; i < 16; i = i + 1) {
          total = total + a[i];
          a[i] = total;                 // reads the running sum: not a reduction
        }
        print(total);
      }
      |}
  in
  Alcotest.(check bool) "total carried" true (lookup "total" = Some Scalars.Carried)

(* --------------------------------------------------------------- *)
(* Memred                                                            *)
(* --------------------------------------------------------------- *)

let memred_in src =
  let f, l = single_loop_env src in
  Memred.find f.Proginfo.fi_cfg f.Proginfo.fi_affine l

let test_memred_histogram () =
  let rmws =
    memred_in
      "int h[16]; int key[64]; void main() { int i; for (i = 0; i < 64; i = i + 1) { h[key[i]] = h[key[i]] + 1; } }"
  in
  match rmws with
  | [ r ] -> (
      Alcotest.(check bool) "sum op" true (r.Memred.rmw_op = Scalars.Rsum);
      match r.Memred.rmw_kind with
      | Memred.Array_cell { subscript = None } -> ()
      | _ -> Alcotest.fail "expected a histogram (non-affine subscript)")
  | rs -> Alcotest.failf "expected 1 rmw, got %d" (List.length rs)

let test_memred_global_scalar () =
  let rmws =
    memred_in
      "float total; float a[16]; void main() { int i; for (i = 0; i < 16; i = i + 1) { total = total + a[i]; } }"
  in
  Alcotest.(check bool) "global scalar rmw found" true
    (List.exists (fun r -> match r.Memred.rmw_kind with Memred.Global_scalar _ -> true | _ -> false) rmws)

(* Regression: a prefix sum must NOT be recognized as a reduction (the
   load and store addresses differ by the loop recurrence). *)
let test_memred_prefix_sum_rejected () =
  let rmws =
    memred_in
      "int p[17]; int c[16]; void main() { int i; for (i = 0; i < 16; i = i + 1) { p[i + 1] = p[i] + c[i]; } }"
  in
  Alcotest.(check int) "no rmw in prefix sum" 0 (List.length rmws)

(* Regression: a wavefront update reads its own array at other cells; the
   same-cell pair exists but must not excuse the neighbor dependence
   (checked at the tool level by the pair-wise exemption). *)
let test_memred_wavefront_pair_found_but_harmless () =
  let f, l =
    single_loop_env
      "float r[18]; void main() { int i; for (i = 1; i < 17; i = i + 1) { r[i] = r[i] + 0.5 * r[i - 1]; } }"
  in
  let rmws = Memred.find f.Proginfo.fi_cfg f.Proginfo.fi_affine l in
  (* the pair may be recognized ... *)
  ignore rmws;
  (* ... but the dependence test with pair-wise exemption still reports the
     carried neighbor dependence *)
  let pairs = Memred.iid_pairs rmws in
  let stores = List.map snd pairs in
  let exempt a b =
    let ia = a.Affine.acc_iid and ib = b.Affine.acc_iid in
    List.mem (ia, ib) pairs || List.mem (ib, ia) pairs || (ia = ib && List.mem ia stores)
  in
  let accesses = Affine.accesses_of_loop f.Proginfo.fi_affine l in
  Alcotest.(check bool) "wavefront dependence survives exemption" true
    (Deptest.loop_has_dependence ~loop_id:l.Loops.l_id ~exempt accesses <> None)

let suites =
  [
    ( "dominance",
      [
        Alcotest.test_case "diamond" `Quick test_dominance_diamond;
        Alcotest.test_case "loop header" `Quick test_dominance_loop_header;
        QCheck_alcotest.to_alcotest prop_dominance_random;
        QCheck_alcotest.to_alcotest prop_loops_well_formed;
      ] );
    ( "loops",
      [
        Alcotest.test_case "nesting" `Quick test_loop_nesting;
        Alcotest.test_case "innermost" `Quick test_innermost_containing;
      ] );
    ( "liveness",
      [
        Alcotest.test_case "loop live-out" `Quick test_liveness_loop_live_out;
        Alcotest.test_case "straightline" `Quick test_liveness_straightline;
      ] );
    ( "pdg",
      [
        Alcotest.test_case "control dependence" `Quick test_control_dependence;
        Alcotest.test_case "backward slice" `Quick test_backward_slice_for_loop;
      ] );
    ("purity", [ Alcotest.test_case "summaries" `Quick test_purity ]);
    ( "affine",
      [
        Alcotest.test_case "induction" `Quick test_affine_induction;
        Alcotest.test_case "downward" `Quick test_affine_downward;
        Alcotest.test_case "global bound counted" `Quick test_counted_header_global_bound;
        Alcotest.test_case "plds not counted" `Quick test_not_counted_plds;
        Alcotest.test_case "roots" `Quick test_access_roots;
        Alcotest.test_case "non-affine subscript" `Quick test_nonaffine_subscript;
      ] );
    ( "deptest",
      [
        Alcotest.test_case "siv/ziv cases" `Quick test_deptest_cases;
        Alcotest.test_case "may_alias" `Quick test_may_alias;
        Alcotest.test_case "ziv/siv/gcd table" `Quick test_deptest_table;
        QCheck_alcotest.to_alcotest prop_concrete_dep_never_refuted;
      ] );
    ( "scalars",
      [
        Alcotest.test_case "classes" `Quick test_scalar_classes;
        Alcotest.test_case "escaping reduction" `Quick test_reduction_var_used_elsewhere_is_carried;
      ] );
    ( "memred",
      [
        Alcotest.test_case "histogram" `Quick test_memred_histogram;
        Alcotest.test_case "global scalar" `Quick test_memred_global_scalar;
        Alcotest.test_case "prefix sum rejected" `Quick test_memred_prefix_sum_rejected;
        Alcotest.test_case "wavefront" `Quick test_memred_wavefront_pair_found_but_harmless;
      ] );
  ]
