(** Common shape of the five baseline parallelism detectors the paper
    compares DCA against (§V-A).  Each tool maps every loop of a program to
    a verdict; dynamic tools additionally consume a {!Dca_profiling.Depprof}
    profile of the same workload DCA used. *)

open Dca_analysis

type verdict = Parallel | Not_parallel of string

type result = { bl_loop : Loops.loop; bl_label : string; bl_verdict : verdict }

type t = {
  tool_name : string;
  tool_static : bool;
  tool_analyze : Proginfo.t -> Dca_profiling.Depprof.profile option -> result list;
}

let is_parallel r = match r.bl_verdict with Parallel -> true | Not_parallel _ -> false

let parallel_ids results =
  List.filter_map (fun r -> if is_parallel r then Some r.bl_loop.Loops.l_id else None) results

let verdict_to_string = function
  | Parallel -> "parallel"
  | Not_parallel why -> "not parallel: " ^ why

(* Shared helper: run a per-loop classifier over the whole program. *)
let per_loop info classify =
  List.map
    (fun (fi, loop) ->
      { bl_loop = loop; bl_label = Proginfo.loop_label info loop; bl_verdict = classify fi loop })
    (Proginfo.all_loops info)
