(* Tests for the five baseline detectors: each tool's characteristic
   strengths and blind spots on crafted loops. *)

open Dca_analysis

let eval_tools src =
  let prog = Dca_ir.Lower.compile ~file:"<test>" src in
  let info = Proginfo.analyze prog in
  let profile = Dca_profiling.Depprof.profile_program info in
  List.map
    (fun tool ->
      (tool.Dca_baselines.Tool.tool_name, tool.Dca_baselines.Tool.tool_analyze info (Some profile)))
    Dca_baselines.Registry.all

let verdict_of tools tool_name label =
  match List.assoc_opt tool_name tools with
  | None -> Alcotest.failf "unknown tool %s" tool_name
  | Some results -> (
      match
        List.find_opt
          (fun r -> r.Dca_baselines.Tool.bl_label = label)
          results
      with
      | Some r -> Dca_baselines.Tool.is_parallel r
      | None ->
          Alcotest.failf "no loop labelled %s (have: %s)" label
            (String.concat ", " (List.map (fun r -> r.Dca_baselines.Tool.bl_label) results)))

(* the single loop of main — by construction of the test sources *)
let single_verdicts src =
  let tools = eval_tools src in
  let label =
    match tools with
    | (_, r :: _) :: _ -> r.Dca_baselines.Tool.bl_label
    | _ -> Alcotest.fail "no loops"
  in
  fun tool -> verdict_of tools tool label

let affine_map = "int a[16]; void main() { int i; for (i = 0; i < 16; i = i + 1) { a[i] = i; } printi(a[3]); }"

let test_affine_map_all_detect () =
  let v = single_verdicts affine_map in
  List.iter
    (fun tool -> Alcotest.(check bool) (tool ^ " detects affine map") true (v tool))
    [ "DepProfiling"; "DiscoPoP"; "Polly"; "ICC" ];
  (* Idioms wants an accumulation idiom and skips plain maps *)
  Alcotest.(check bool) "Idioms skips plain map" false (v "Idioms")

let plds_map =
  {|
  struct node { int v; struct node *next; }
  struct node *head;
  void main() {
    int i;
    for (i = 0; i < 8; i = i + 1) {
      struct node *n = new struct node;
      n->v = i;
      n->next = head;
      head = n;
    }
    struct node *p = head;
    while (p) { p->v = p->v + 1; p = p->next; }
    printi(head->v);
  }
  |}

let test_plds_defeats_all () =
  let tools = eval_tools plds_map in
  (* the while loop is the second loop of main *)
  List.iter
    (fun (name, results) ->
      let while_loop = List.nth results 1 in
      Alcotest.(check bool)
        (name ^ " fails on the PLDS loop")
        false
        (Dca_baselines.Tool.is_parallel while_loop))
    tools

let histogram =
  "int h[8]; int k[32]; void main() { int i; for (i = 0; i < 32; i = i + 1) { h[k[i] % 8] = h[k[i] % 8] + 1; } printi(h[0]); }"

let test_histogram_idioms_only_static () =
  let v = single_verdicts histogram in
  Alcotest.(check bool) "Idioms detects histogram" true (v "Idioms");
  Alcotest.(check bool) "ICC misses histogram" false (v "ICC");
  Alcotest.(check bool) "Polly misses histogram" false (v "Polly");
  (* dynamic tools filter the RMW pair *)
  Alcotest.(check bool) "DepProfiling detects" true (v "DepProfiling");
  Alcotest.(check bool) "DiscoPoP detects" true (v "DiscoPoP")

let max_reduction =
  "float a[16]; float best; void main() { int i; for (i = 0; i < 16; i = i + 1) { best = fmax(best, a[i]); } print(best); }"

let test_minmax_differentiates_dynamic_tools () =
  let v = single_verdicts max_reduction in
  Alcotest.(check bool) "DepProfiling handles max reduction" true (v "DepProfiling");
  Alcotest.(check bool) "DiscoPoP misses max reduction" false (v "DiscoPoP")

let pure_call_loop =
  {|
  float a[16];
  float square(float x) { return x * x; }
  void main() { int i; for (i = 0; i < 16; i = i + 1) { a[i] = square(a[i]); } print(a[3]); }
  |}

let test_calls_differentiate_icc_polly () =
  let tools = eval_tools pure_call_loop in
  (* main's loop is the only loop *)
  let find name =
    List.assoc name tools |> List.hd |> Dca_baselines.Tool.is_parallel
  in
  Alcotest.(check bool) "ICC inlines the pure call" true (find "ICC");
  Alcotest.(check bool) "Polly rejects any call" false (find "Polly")

let wavefront =
  "float r[18]; void main() { int i; for (i = 1; i < 17; i = i + 1) { r[i] = r[i] + 0.5 * r[i - 1]; } print(r[16]); }"

let test_wavefront_rejected_by_all () =
  let v = single_verdicts wavefront in
  List.iter
    (fun tool -> Alcotest.(check bool) (tool ^ " rejects the wavefront") false (v tool))
    [ "DepProfiling"; "DiscoPoP"; "Idioms"; "Polly"; "ICC" ]

let global_sum =
  "float total; float a[16]; void main() { int i; for (i = 0; i < 16; i = i + 1) { total = total + a[i]; } print(total); }"

let test_global_reduction () =
  let v = single_verdicts global_sum in
  List.iter
    (fun tool -> Alcotest.(check bool) (tool ^ " exploits the global sum") true (v tool))
    [ "DepProfiling"; "DiscoPoP"; "Idioms"; "Polly"; "ICC" ]

let io_loop = "void main() { int i; for (i = 0; i < 4; i = i + 1) { printi(i); } }"

let test_io_rejected_by_all () =
  let v = single_verdicts io_loop in
  List.iter
    (fun tool -> Alcotest.(check bool) (tool ^ " rejects I/O loops") false (v tool))
    [ "DepProfiling"; "DiscoPoP"; "Idioms"; "Polly"; "ICC" ]

let unexecuted =
  "int flag; int a[4]; void main() { int i; if (flag) { for (i = 0; i < 4; i = i + 1) { a[i] = 1; } } printi(a[0]); }"

let test_dynamic_tools_need_execution () =
  let v = single_verdicts unexecuted in
  Alcotest.(check bool) "DepProfiling cannot judge unexecuted loops" false (v "DepProfiling");
  (* static tools still can *)
  Alcotest.(check bool) "ICC can" true (v "ICC")

let test_registry_shape () =
  Alcotest.(check int) "five tools" 5 (List.length Dca_baselines.Registry.all);
  Alcotest.(check int) "three static" 3 (List.length Dca_baselines.Registry.static_tools);
  Alcotest.(check int) "two dynamic" 2 (List.length Dca_baselines.Registry.dynamic_tools);
  List.iter
    (fun t -> Alcotest.(check bool) "static flag" true t.Dca_baselines.Tool.tool_static)
    Dca_baselines.Registry.static_tools

let test_combined () =
  (* combined = union of parallel ids, deduplicated *)
  let prog = Dca_ir.Lower.compile ~file:"<test>" affine_map in
  let info = Proginfo.analyze prog in
  let profile = Dca_profiling.Depprof.profile_program info in
  let per_tool =
    List.map (fun t -> t.Dca_baselines.Tool.tool_analyze info (Some profile)) Dca_baselines.Registry.static_tools
  in
  let combined = Dca_baselines.Registry.combined_parallel_ids per_tool in
  Alcotest.(check bool) "union non-empty" true (combined <> []);
  Alcotest.(check bool) "no duplicates" true
    (List.length combined = List.length (List.sort_uniq compare combined))

let suites =
  [
    ( "baselines",
      [
        Alcotest.test_case "affine map" `Quick test_affine_map_all_detect;
        Alcotest.test_case "plds defeats all" `Quick test_plds_defeats_all;
        Alcotest.test_case "histogram" `Quick test_histogram_idioms_only_static;
        Alcotest.test_case "min/max reduction split" `Quick test_minmax_differentiates_dynamic_tools;
        Alcotest.test_case "pure calls" `Quick test_calls_differentiate_icc_polly;
        Alcotest.test_case "wavefront" `Quick test_wavefront_rejected_by_all;
        Alcotest.test_case "global reduction" `Quick test_global_reduction;
        Alcotest.test_case "io" `Quick test_io_rejected_by_all;
        Alcotest.test_case "unexecuted" `Quick test_dynamic_tools_need_execution;
        Alcotest.test_case "registry" `Quick test_registry_shape;
        Alcotest.test_case "combined" `Quick test_combined;
      ] );
  ]
