open Ast
open Tast

type env = {
  structs : (string, struct_def) Hashtbl.t;
  funcs : (string, func_def) Hashtbl.t;
  globals : (string, var) Hashtbl.t;
  mutable scopes : (string, var) Hashtbl.t list;  (** innermost first *)
  mutable next_uid : int;
  mutable loop_depth : int;
  mutable current_ret : ty;
}

let fresh_var env name ty kind =
  let uid = env.next_uid in
  env.next_uid <- uid + 1;
  { v_uid = uid; v_name = name; v_ty = ty; v_kind = kind }

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = match env.scopes with [] -> () | _ :: rest -> env.scopes <- rest

let declare_local env loc var =
  match env.scopes with
  | [] -> Loc.error loc "internal error: no open scope"
  | scope :: _ ->
      if Hashtbl.mem scope var.v_name then
        Loc.error loc "variable '%s' is already declared in this scope" var.v_name;
      Hashtbl.replace scope var.v_name var

let lookup_var env loc name =
  let rec go = function
    | [] -> (
        match Hashtbl.find_opt env.globals name with
        | Some v -> v
        | None -> Loc.error loc "unbound variable '%s'" name)
    | scope :: rest -> ( match Hashtbl.find_opt scope name with Some v -> v | None -> go rest)
  in
  go env.scopes

let find_struct env loc name =
  match Hashtbl.find_opt env.structs name with
  | Some s -> s
  | None -> Loc.error loc "unknown struct '%s'" name

let find_field env loc sname fname =
  let s = find_struct env loc sname in
  let rec go idx = function
    | [] -> Loc.error loc "struct %s has no field '%s'" sname fname
    | (fty, name) :: _ when name = fname -> (fty, idx)
    | _ :: rest -> go (idx + 1) rest
  in
  go 0 s.str_fields

(* ------------------------------------------------------------------ *)
(* Sizes                                                               *)
(* ------------------------------------------------------------------ *)

let size_of structs ty =
  let tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tbl s.str_name s) structs;
  let rec go seen = function
    | Tint | Tfloat | Tptr _ -> 1
    | Tvoid -> 0
    | Tstruct name ->
        if List.mem name seen then
          failwith (Printf.sprintf "recursive struct value type '%s' (use a pointer)" name);
        let s =
          match Hashtbl.find_opt tbl name with
          | Some s -> s
          | None -> failwith (Printf.sprintf "unknown struct '%s'" name)
        in
        List.fold_left (fun acc (fty, _) -> acc + go (name :: seen) fty) 0 s.str_fields
    | Tarray (elem, dims) -> List.fold_left ( * ) (go seen elem) dims
  in
  go [] ty

(* ------------------------------------------------------------------ *)
(* Types of expressions                                                *)
(* ------------------------------------------------------------------ *)

let rec ty_equal a b =
  match (a, b) with
  | Tint, Tint | Tfloat, Tfloat | Tvoid, Tvoid -> true
  | Tptr x, Tptr y -> ty_equal x y
  | Tstruct s1, Tstruct s2 -> s1 = s2
  | Tarray (e1, d1), Tarray (e2, d2) -> ty_equal e1 e2 && d1 = d2
  | (Tint | Tfloat | Tvoid | Tptr _ | Tstruct _ | Tarray _), _ -> false

let is_scalar = function Tint | Tfloat | Tptr _ -> true | Tstruct _ | Tarray _ | Tvoid -> false

let mk ty loc tdesc = { tdesc; tty = ty; tloc = loc }

(* Coerce [e] to [target]: identity, int→float, null→pointer, or
   array→pointer decay (multi-dimensional arrays decay to a flat pointer to
   their element type). *)
let coerce loc target e =
  if ty_equal e.tty target then Some e
  else
    match (e.tty, target) with
    | Tint, Tfloat -> Some (mk Tfloat loc (Titof e))
    | Tptr _, Tptr _ when e.tdesc = Tnull -> Some { e with tty = target }
    | Tarray (elem, _), Tptr pelem when ty_equal elem pelem -> Some { e with tty = target }
    | _ -> None

let coerce_exn env_desc loc target e =
  match coerce loc target e with
  | Some e -> e
  | None ->
      Loc.error loc "%s: expected %s but found %s" env_desc (ty_to_string target)
        (ty_to_string e.tty)

(* Unify operand types of a binary operator (int→float widening only). *)
let unify_operands loc l r =
  if ty_equal l.tty r.tty then (l, r)
  else
    match (l.tty, r.tty) with
    | Tint, Tfloat -> (mk Tfloat loc (Titof l), r)
    | Tfloat, Tint -> (l, mk Tfloat loc (Titof r))
    | Tptr _, Tptr _ when l.tdesc = Tnull -> ({ l with tty = r.tty }, r)
    | Tptr _, Tptr _ when r.tdesc = Tnull -> (l, { r with tty = l.tty })
    | _ ->
        Loc.error loc "operands have incompatible types %s and %s" (ty_to_string l.tty)
          (ty_to_string r.tty)

let rec check_expr env (e : Ast.expr) : texpr =
  let loc = e.eloc in
  match e.edesc with
  | Eint n -> mk Tint loc (Tint_lit n)
  | Efloat f -> mk Tfloat loc (Tfloat_lit f)
  | Enull -> mk (Tptr Tint) loc Tnull
  | Evar name ->
      let v = lookup_var env loc name in
      mk v.v_ty loc (Tvar v)
  | Eunop (Neg, sub) -> begin
      let t = check_expr env sub in
      match t.tty with
      | Tint | Tfloat -> mk t.tty loc (Tunop (Neg, t))
      | ty -> Loc.error loc "cannot negate a value of type %s" (ty_to_string ty)
    end
  | Eunop (Not, sub) -> begin
      let t = check_expr env sub in
      match t.tty with
      | Tint | Tptr _ -> mk Tint loc (Tunop (Not, t))
      | ty -> Loc.error loc "'!' expects an int or pointer, found %s" (ty_to_string ty)
    end
  | Ebinop (op, l, r) -> check_binop env loc op l r
  | Eindex (base, idx) -> begin
      let tbase = check_expr env base in
      let tidx = coerce_exn "array index" loc Tint (check_expr env idx) in
      match tbase.tty with
      | Tarray (elem, [ _ ]) -> mk elem loc (Tindex (tbase, tidx))
      | Tarray (elem, _ :: rest) -> mk (Tarray (elem, rest)) loc (Tindex (tbase, tidx))
      | Tptr elem -> mk elem loc (Tindex (tbase, tidx))
      | ty -> Loc.error loc "cannot index a value of type %s" (ty_to_string ty)
    end
  | Efield (base, fname) -> begin
      let tbase = check_expr env base in
      match tbase.tty with
      | Tstruct sname ->
          let fty, fidx = find_field env loc sname fname in
          mk fty loc (Tfield (tbase, fname, fidx))
      | Tptr (Tstruct _) ->
          Loc.error loc "'.%s' applied to a struct pointer; use '->%s'" fname fname
      | ty -> Loc.error loc "'.%s' applied to non-struct type %s" fname (ty_to_string ty)
    end
  | Earrow (base, fname) -> begin
      let tbase = check_expr env base in
      match tbase.tty with
      | Tptr (Tstruct sname) ->
          let fty, fidx = find_field env loc sname fname in
          mk fty loc (Tarrow (tbase, fname, fidx))
      | ty -> Loc.error loc "'->%s' applied to non-struct-pointer type %s" fname (ty_to_string ty)
    end
  | Ecall (name, args) -> check_call env loc name args
  | Enew_struct sname ->
      ignore (find_struct env loc sname);
      mk (Tptr (Tstruct sname)) loc (Tnew_struct sname)
  | Enew_array (elem, count) -> begin
      (match elem with
      | Tvoid | Tarray _ -> Loc.error loc "cannot allocate an array of %s" (ty_to_string elem)
      | Tstruct sname -> ignore (find_struct env loc sname)
      | Tint | Tfloat | Tptr _ -> ());
      let tcount = coerce_exn "array size" loc Tint (check_expr env count) in
      mk (Tptr elem) loc (Tnew_array (elem, tcount))
    end

and check_binop env loc op l r =
  let tl = check_expr env l and tr = check_expr env r in
  match op with
  | Add | Sub | Mul | Div -> begin
      let tl, tr = unify_operands loc tl tr in
      match tl.tty with
      | Tint | Tfloat -> mk tl.tty loc (Tbinop (op, tl, tr))
      | ty -> Loc.error loc "arithmetic on non-numeric type %s" (ty_to_string ty)
    end
  | Mod -> begin
      match (tl.tty, tr.tty) with
      | Tint, Tint -> mk Tint loc (Tbinop (Mod, tl, tr))
      | _ -> Loc.error loc "'%%' expects int operands"
    end
  | Eq | Ne -> begin
      let tl, tr = unify_operands loc tl tr in
      match tl.tty with
      | Tint | Tfloat | Tptr _ -> mk Tint loc (Tbinop (op, tl, tr))
      | ty -> Loc.error loc "cannot compare values of type %s" (ty_to_string ty)
    end
  | Lt | Le | Gt | Ge -> begin
      let tl, tr = unify_operands loc tl tr in
      match tl.tty with
      | Tint | Tfloat -> mk Tint loc (Tbinop (op, tl, tr))
      | ty -> Loc.error loc "cannot order values of type %s" (ty_to_string ty)
    end
  | And | Or ->
      let cl = check_condition_expr loc tl and cr = check_condition_expr loc tr in
      mk Tint loc (Tbinop (op, cl, cr))

(* A condition may be an int or a pointer (non-null test). *)
and check_condition_expr loc t =
  match t.tty with
  | Tint -> t
  | Tptr _ -> mk Tint loc (Tbinop (Ne, t, { t with tdesc = Tnull }))
  | ty -> Loc.error loc "condition must be int or pointer, found %s" (ty_to_string ty)

and check_call env loc name args =
  let targs = List.map (check_expr env) args in
  match Hashtbl.find_opt env.funcs name with
  | Some f ->
      let nparams = List.length f.f_params and nargs = List.length targs in
      if nparams <> nargs then
        Loc.error loc "function '%s' expects %d argument(s), got %d" name nparams nargs;
      let coerced =
        List.map2
          (fun (pty, pname) arg ->
            coerce_exn (Printf.sprintf "argument '%s' of '%s'" pname name) loc pty arg)
          f.f_params targs
      in
      mk f.f_ret loc (Tcall (name, coerced))
  | None -> (
      match Ast.find_builtin name with
      | Some b ->
          let nparams = List.length b.bi_params and nargs = List.length targs in
          if nparams <> nargs then
            Loc.error loc "builtin '%s' expects %d argument(s), got %d" name nparams nargs;
          let coerced =
            List.map2 (fun pty arg -> coerce_exn ("argument of " ^ name) loc pty arg) b.bi_params
              targs
          in
          if name = "ftoi" then mk Tint loc (Tftoi (List.hd coerced))
          else if name = "itof" then mk Tfloat loc (Titof (List.hd coerced))
          else mk b.bi_ret loc (Tcall (name, coerced))
      | None -> Loc.error loc "call to undefined function '%s'" name)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mk_stmt loc tsdesc = { tsdesc; tsloc = loc }

let rec check_stmt env (s : Ast.stmt) : tstmt =
  let loc = s.sloc in
  match s.sdesc with
  | Sdecl (ty, name, init) -> begin
      (match ty with
      | Tvoid -> Loc.error loc "variable '%s' cannot have type void" name
      | Tarray (_, dims) when List.exists (fun d -> d <= 0) dims ->
          Loc.error loc "array '%s' has a non-positive dimension" name
      | _ -> ());
      let v = fresh_var env name ty Vlocal in
      let tinit =
        match init with
        | None -> None
        | Some e ->
            if not (is_scalar ty) then
              Loc.error loc "aggregate variable '%s' cannot have an initializer" name;
            Some (coerce_exn ("initializer of " ^ name) loc ty (check_expr env e))
      in
      declare_local env loc v;
      mk_stmt loc (TSdecl (v, tinit))
    end
  | Sassign (lhs, rhs) -> begin
      let tl = check_expr env lhs in
      if not (Tast.is_lvalue tl) then Loc.error loc "left-hand side of '=' is not assignable";
      if not (is_scalar tl.tty) then
        Loc.error loc "cannot assign aggregates of type %s" (ty_to_string tl.tty);
      let tr = coerce_exn "assignment" loc tl.tty (check_expr env rhs) in
      mk_stmt loc (TSassign (tl, tr))
    end
  | Sif (cond, then_b, else_b) ->
      let tc = check_condition env cond in
      mk_stmt loc (TSif (tc, check_block env then_b, check_block env else_b))
  | Swhile (cond, body) ->
      let tc = check_condition env cond in
      env.loop_depth <- env.loop_depth + 1;
      let tbody = check_block env body in
      env.loop_depth <- env.loop_depth - 1;
      mk_stmt loc (TSwhile (tc, tbody))
  | Sfor (init, cond, step, body) ->
      push_scope env;
      let tinit = Option.map (check_stmt env) init in
      let tcond = Option.map (check_condition env) cond in
      let tstep = Option.map (check_stmt env) step in
      env.loop_depth <- env.loop_depth + 1;
      let tbody = check_block_no_scope env body in
      env.loop_depth <- env.loop_depth - 1;
      pop_scope env;
      mk_stmt loc (TSfor (tinit, tcond, tstep, tbody))
  | Sreturn None ->
      if not (ty_equal env.current_ret Tvoid) then
        Loc.error loc "non-void function must return a value";
      mk_stmt loc (TSreturn None)
  | Sreturn (Some e) ->
      if ty_equal env.current_ret Tvoid then Loc.error loc "void function cannot return a value";
      let t = coerce_exn "return" loc env.current_ret (check_expr env e) in
      mk_stmt loc (TSreturn (Some t))
  | Sexpr e -> begin
      match e.edesc with
      | Ecall _ -> mk_stmt loc (TSexpr (check_expr env e))
      | _ -> Loc.error loc "expression statement must be a call"
    end
  | Sprints text -> mk_stmt loc (TSprints text)
  | Sbreak ->
      if env.loop_depth = 0 then Loc.error loc "'break' outside of a loop";
      mk_stmt loc TSbreak
  | Scontinue ->
      if env.loop_depth = 0 then Loc.error loc "'continue' outside of a loop";
      mk_stmt loc TScontinue
  | Sblock body -> mk_stmt loc (TSblock (check_block env body))

and check_condition env e = check_condition_expr e.eloc (check_expr env e)

and check_block env stmts =
  push_scope env;
  let ts = check_block_no_scope env stmts in
  pop_scope env;
  ts

and check_block_no_scope env stmts = List.map (check_stmt env) stmts

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let check_struct_def env (s : struct_def) =
  List.iter
    (fun (fty, fname) ->
      match fty with
      | Tint | Tfloat | Tptr _ | Tstruct _ -> ()
      | Tvoid | Tarray _ ->
          Loc.error s.str_loc "field '%s' of struct %s has unsupported type %s" fname s.str_name
            (ty_to_string fty))
    s.str_fields;
  (* Reject recursive struct *values* (pointers are fine). *)
  (try ignore (size_of (Hashtbl.fold (fun _ s acc -> s :: acc) env.structs []) (Tstruct s.str_name))
   with Failure msg -> Loc.error s.str_loc "%s" msg);
  let dup = Hashtbl.create 4 in
  List.iter
    (fun (_, fname) ->
      if Hashtbl.mem dup fname then
        Loc.error s.str_loc "duplicate field '%s' in struct %s" fname s.str_name;
      Hashtbl.replace dup fname ())
    s.str_fields

let check_global env (g : global_def) =
  (match g.g_ty with
  | Tvoid -> Loc.error g.g_loc "global '%s' cannot have type void" g.g_name
  | _ -> ());
  if Hashtbl.mem env.globals g.g_name then
    Loc.error g.g_loc "global '%s' is declared twice" g.g_name;
  let v = fresh_var env g.g_name g.g_ty Vglobal in
  Hashtbl.replace env.globals g.g_name v;
  let tinit =
    match g.g_init with
    | None -> None
    | Some e -> begin
        if not (is_scalar g.g_ty) then
          Loc.error g.g_loc "aggregate global '%s' cannot have an initializer" g.g_name;
        (* Globals are initialized before [main] runs, so only constants
           make sense here. *)
        let t = coerce_exn ("initializer of " ^ g.g_name) g.g_loc g.g_ty (check_expr env e) in
        let rec constant t =
          match t.tdesc with
          | Tint_lit _ | Tfloat_lit _ | Tnull -> true
          | Tunop (Ast.Neg, sub) | Titof sub -> constant sub
          | _ -> false
        in
        if not (constant t) then
          Loc.error g.g_loc "initializer of global '%s' must be a constant" g.g_name;
        Some t
      end
  in
  (v, tinit)

let check_func env (f : func_def) =
  env.current_ret <- f.f_ret;
  push_scope env;
  let params =
    List.map
      (fun (pty, pname) ->
        (match pty with
        | Tvoid -> Loc.error f.f_loc "parameter '%s' cannot have type void" pname
        | Tarray _ ->
            Loc.error f.f_loc "parameter '%s': pass arrays as pointers (%s)" pname
              (ty_to_string pty)
        | _ -> ());
        let v = fresh_var env pname pty Vparam in
        declare_local env f.f_loc v;
        v)
      f.f_params
  in
  let body = check_block_no_scope env f.f_body in
  pop_scope env;
  { tf_name = f.f_name; tf_params = params; tf_ret = f.f_ret; tf_body = body; tf_loc = f.f_loc }

let check_program (p : Ast.program) : tprogram =
  let env =
    {
      structs = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      scopes = [];
      next_uid = 0;
      loop_depth = 0;
      current_ret = Tvoid;
    }
  in
  List.iter
    (fun s ->
      if Hashtbl.mem env.structs s.str_name then
        Loc.error s.str_loc "struct '%s' is defined twice" s.str_name;
      Hashtbl.replace env.structs s.str_name s)
    p.structs;
  List.iter (check_struct_def env) p.structs;
  List.iter
    (fun f ->
      if Hashtbl.mem env.funcs f.f_name then
        Loc.error f.f_loc "function '%s' is defined twice" f.f_name;
      if Ast.find_builtin f.f_name <> None then
        Loc.error f.f_loc "function '%s' shadows a builtin" f.f_name;
      Hashtbl.replace env.funcs f.f_name f)
    p.funcs;
  let globals = List.map (check_global env) p.globals in
  let funcs = List.map (check_func env) p.funcs in
  (match Hashtbl.find_opt env.funcs "main" with
  | Some f ->
      if f.f_params <> [] || not (ty_equal f.f_ret Tvoid) then
        Loc.error f.f_loc "main must have signature 'void main()'"
  | None -> Loc.error Loc.dummy "program has no 'main' function");
  { tp_structs = p.structs; tp_globals = globals; tp_funcs = funcs }
