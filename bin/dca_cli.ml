(* dca — command-line front end of the Dynamic Commutativity Analysis
   reproduction.

     dca list                      enumerate built-in benchmark programs
     dca run <prog>                execute a MiniC program
     dca ir <prog>                 dump the lowered IR
     dca analyze <prog>            DCA verdict for every loop
     dca tools <prog>              compare the five baseline detectors
     dca speedup <prog>            plan + simulated multicore speedup

   <prog> is a path to a .mc file or the name of a built-in benchmark.

   Every analysis command goes through Dca_core.Session: one memoized
   pipeline (ir → proginfo → profile → dca_results → plan) and one worker
   pool, selected with --jobs (or the DCA_JOBS environment variable). *)

open Cmdliner
module Session = Dca_core.Session
module Telemetry = Dca_support.Telemetry

(* Open a session for PROG and run [f] on it, mapping the standard failure
   modes to exit codes.  [trace]/[stats] layer the command-line telemetry
   flags over whatever DCA_TRACE / DCA_STATS configured; the sinks are
   flushed on every exit path so a trace survives a trap. *)
let with_session ?config ?spec ?hierarchical ?jobs ?trace ?(stats = false) prog f =
  Telemetry.init_from_env ();
  (match (trace, stats) with
  | None, false -> ()
  | _ ->
      let cur = Telemetry.config () in
      let is_jsonl f = Filename.check_suffix f ".jsonl" in
      Telemetry.configure
        {
          Telemetry.cfg_trace =
            (match trace with Some f when not (is_jsonl f) -> Some f | _ -> cur.Telemetry.cfg_trace);
          cfg_jsonl = (match trace with Some f when is_jsonl f -> Some f | _ -> cur.Telemetry.cfg_jsonl);
          cfg_stats = stats || cur.Telemetry.cfg_stats;
        });
  match Session.load ?config ?spec ?hierarchical ?jobs prog with
  | Error msg ->
      Printf.eprintf "dca: %s\n" msg;
      1
  | Ok s ->
      Fun.protect
        ~finally:(fun () ->
          Session.close s;
          Telemetry.flush ())
        (fun () ->
          match f s with
          | () -> 0
          | exception Dca_frontend.Loc.Error (loc, msg) ->
              Printf.eprintf "dca: %s: %s\n" (Dca_frontend.Loc.to_string loc) msg;
              1
          | exception Dca_interp.Eval.Trap msg ->
              Printf.eprintf "dca: runtime trap: %s\n" msg;
              1
          | exception Dca_interp.Eval.Out_of_fuel ->
              Printf.eprintf "dca: execution exceeded the fuel bound\n";
              1)

let prog_arg =
  let doc = "Program: a .mc source file or a built-in benchmark name (see $(b,dca list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROG" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the dynamic stage.  Defaults to $(b,DCA_JOBS) if set, otherwise the \
     recommended domain count.  Results are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write an execution trace to $(docv): Chrome trace-event JSON (load in Perfetto or \
     about://tracing), or a JSONL event stream if $(docv) ends in $(b,.jsonl)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the telemetry counter table to stderr on exit: deterministic work counters \
           (identical for every $(b,--jobs) value) and diagnostic counters.")

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %-5s %s\n" "name" "suite" "description";
    List.iter
      (fun bm ->
        Printf.printf "%-14s %-5s %s\n" bm.Dca_progs.Benchmark.bm_name
          (match bm.Dca_progs.Benchmark.bm_suite with
          | Dca_progs.Benchmark.Npb -> "NPB"
          | Dca_progs.Benchmark.Plds -> "PLDS")
          bm.Dca_progs.Benchmark.bm_description)
      Dca_progs.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark programs")
    Term.(const run $ const ())

let run_cmd =
  let run prog =
    with_session prog (fun s ->
        let ctx = Dca_interp.Eval.create ~input:(Session.input s) (Session.ir s) in
        Dca_interp.Eval.run_main ctx;
        List.iter print_endline (Dca_interp.Eval.outputs ctx);
        Printf.printf "(%d instructions executed)\n" (Dca_interp.Eval.steps ctx))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a MiniC program on the interpreter")
    Term.(const run $ prog_arg)

let ir_cmd =
  let run prog =
    with_session prog (fun s -> print_string (Dca_ir.Ir_printer.program_to_string (Session.ir s)))
  in
  Cmd.v (Cmd.info "ir" ~doc:"Dump the lowered intermediate representation")
    Term.(const run $ prog_arg)

let shuffles_arg =
  Arg.(value & opt int 3 & info [ "shuffles" ] ~docv:"N" ~doc:"Number of random shuffles to test.")

let no_escalate_arg =
  Arg.(
    value & flag
    & info [ "no-escalate" ]
        ~doc:"Disable whole-program verification; strict live-out digests only.")

let hierarchical_arg =
  Arg.(
    value & flag
    & info [ "hierarchical" ]
        ~doc:
          "Explore loops top-down: skip (as subsumed) loops nested inside a loop already found \
           commutative.")

let analyze_cmd =
  let run prog shuffles no_escalate hierarchical jobs trace stats =
    let config =
      {
        Dca_core.Commutativity.default_config with
        Dca_core.Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles ();
        cc_escalate = not no_escalate;
      }
    in
    with_session ~config ~hierarchical ?jobs ?trace ~stats prog (fun s ->
        print_string (Session.report s))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run Dynamic Commutativity Analysis on every loop of the program")
    Term.(
      const run $ prog_arg $ shuffles_arg $ no_escalate_arg $ hierarchical_arg $ jobs_arg $ trace_arg
      $ stats_arg)

let tools_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        let info = Session.proginfo s in
        let profile = Session.profile s in
        let dca = Session.dca_results s in
        let tool_results =
          List.map
            (fun tool ->
              (tool.Dca_baselines.Tool.tool_name, tool.Dca_baselines.Tool.tool_analyze info (Some profile)))
            Dca_baselines.Registry.all
        in
        Printf.printf "%-26s %s\n" "loop"
          (String.concat " "
             (List.map (fun (n, _) -> Printf.sprintf "%-9s" n) tool_results @ [ "DCA" ]));
        List.iter
          (fun (r : Dca_core.Driver.loop_result) ->
            let id = r.Dca_core.Driver.lr_loop.Dca_analysis.Loops.l_id in
            let marks =
              List.map
                (fun (_, results) ->
                  if List.mem id (Dca_baselines.Tool.parallel_ids results) then
                    Printf.sprintf "%-9s" "yes"
                  else Printf.sprintf "%-9s" ".")
                tool_results
            in
            Printf.printf "%-26s %s %s\n" r.Dca_core.Driver.lr_label (String.concat " " marks)
              (if Dca_core.Driver.is_commutative r then "yes" else "."))
          dca)
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"Compare the five baseline detectors and DCA, loop by loop")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

let workers_arg =
  Arg.(value & opt int 72 & info [ "workers" ] ~docv:"P" ~doc:"Simulated worker count.")

let speedup_cmd =
  let run prog workers jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        let machine = Dca_parallel.Machine.with_workers Dca_parallel.Machine.default workers in
        let plan = Session.plan ~machine s in
        let result = Dca_parallel.Speedup.simulate ~machine (Session.proginfo s) (Session.profile s) plan in
        Printf.printf "parallel plan:\n%s\n" (Dca_parallel.Plan.to_string plan);
        List.iter
          (fun sl ->
            Printf.printf "  %-24s seq %12.0f  par %12.0f  saved %12.0f\n"
              sl.Dca_parallel.Speedup.ls_loop_id sl.Dca_parallel.Speedup.ls_seq_cost
              sl.Dca_parallel.Speedup.ls_par_cost sl.Dca_parallel.Speedup.ls_saved)
          result.Dca_parallel.Speedup.sp_loops;
        Printf.printf "sequential work: %.0f\nsimulated parallel time (%d workers): %.0f\nspeedup: %.2fx\n"
          result.Dca_parallel.Speedup.sp_seq workers result.Dca_parallel.Speedup.sp_par
          result.Dca_parallel.Speedup.sp_speedup)
  in
  Cmd.v
    (Cmd.info "speedup"
       ~doc:"Parallelize the DCA-commutative loops and report the simulated speedup")
    Term.(const run $ prog_arg $ workers_arg $ jobs_arg $ trace_arg $ stats_arg)

let advise_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        print_string (Dca_core.Advisor.report (Session.advise s)))
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Full parallelism advisory: per loop, whether to parallelize (and with which OpenMP \
          clauses), leave serial, or keep sequential — with the evidence")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

let annotate_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        print_string
          (Dca_parallel.Codegen.annotate_source (Session.proginfo s) ~source:(Session.source s)
             (Session.plan s)))
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Emit the source with OpenMP-style pragmas inserted above every loop DCA parallelizes")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

let export_c_cmd =
  let run prog jobs trace stats =
    with_session ?jobs ?trace ~stats prog (fun s ->
        let info = Session.proginfo s in
        let plan = Session.plan s in
        let ast = Dca_frontend.Parser.parse_program ~file:(Session.file s) (Session.source s) in
        let pragmas =
          List.filter_map
            (fun lp ->
              match Dca_analysis.Proginfo.loop_by_id info lp.Dca_parallel.Plan.lp_loop_id with
              | Some (_, loop) ->
                  let line = loop.Dca_analysis.Loops.l_loc.Dca_frontend.Loc.line in
                  (* block-scoped declarations are automatically private in C *)
                  let inner = Dca_frontend.C_export.body_declared_names ast ~line in
                  let privates =
                    List.filter (fun n -> not (List.mem n inner)) lp.Dca_parallel.Plan.lp_private
                  in
                  let priv =
                    match privates with
                    | [] -> ""
                    | l -> " private(" ^ String.concat ", " l ^ ")"
                  in
                  let reds =
                    String.concat ""
                      (List.map
                         (fun (name, op) ->
                           Printf.sprintf " reduction(%s:%s)"
                             (Dca_analysis.Scalars.reduction_op_to_string op)
                             name)
                         lp.Dca_parallel.Plan.lp_reductions)
                  in
                  Some (line, Printf.sprintf "#pragma omp parallel for schedule(static)%s%s" priv reds)
              | None -> None)
            plan.Dca_parallel.Plan.plan_loops
        in
        print_string
          (Dca_frontend.C_export.export_source ~pragmas ~file:(Session.file s) (Session.source s)))
  in
  Cmd.v
    (Cmd.info "export-c"
       ~doc:
         "Export the program as compilable C99 with real OpenMP pragmas on every loop DCA \
          parallelizes (build with: cc -fopenmp prog.c -lm)")
    Term.(const run $ prog_arg $ jobs_arg $ trace_arg $ stats_arg)

(* Exit-code contract: 0 = clean run, 1 = soundness violation found,
   2 = usage error.  cmdliner reports its own parse failures as 124, so
   flag-value validation that must yield 2 happens here. *)
let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed for the program stream.")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let max_iters_arg =
    Arg.(
      value & opt int 4
      & info [ "max-iters" ] ~docv:"N"
          ~doc:
            "Largest trip count of the loop under test (2-7; the oracle runs all $(i,N)! \
             iteration orders).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Write shrunk counterexamples to $(docv) as .mc files.")
  in
  let no_metamorphic_arg =
    Arg.(
      value & flag
      & info [ "no-metamorphic" ]
          ~doc:
            "Skip the metamorphic invariants (report equality across --jobs 1/4 and checkpoint \
             modes); roughly 4x faster.")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report counterexamples without minimizing them.")
  in
  let run seed count max_iters jobs corpus no_metamorphic no_shrink =
    if count < 0 then begin
      Printf.eprintf "dca fuzz: --count must be non-negative (got %d)\n" count;
      2
    end
    else if max_iters < 2 || max_iters > Dca_gen.Oracle.max_trip then begin
      Printf.eprintf "dca fuzz: --max-iters must be in 2..%d (got %d)\n" Dca_gen.Oracle.max_trip
        max_iters;
      2
    end
    else if match jobs with Some j when j < 1 -> true | _ -> false then begin
      Printf.eprintf "dca fuzz: --jobs must be positive\n";
      2
    end
    else begin
      let cfg =
        {
          Dca_gen.Fuzz_driver.default_config with
          Dca_gen.Fuzz_driver.fz_seed = seed;
          fz_count = count;
          fz_max_iters = max_iters;
          fz_jobs = Option.value jobs ~default:1;
          fz_metamorphic = not no_metamorphic;
          fz_shrink = not no_shrink;
          fz_corpus = corpus;
        }
      in
      let result = Dca_gen.Fuzz_driver.run cfg in
      print_string result.Dca_gen.Fuzz_driver.r_report;
      if result.Dca_gen.Fuzz_driver.r_violations = [] then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random loop programs, decide ground-truth commutativity \
          with an exhaustive permutation oracle, and cross-check the DCA verdicts both ways")
    Term.(
      const run $ seed_arg $ count_arg $ max_iters_arg $ jobs_arg $ corpus_arg $ no_metamorphic_arg
      $ no_shrink_arg)

let () =
  let doc = "Loop parallelization using Dynamic Commutativity Analysis (CGO 2021 reproduction)" in
  let info = Cmd.info "dca" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; ir_cmd; analyze_cmd; tools_cmd; speedup_cmd; advise_cmd; annotate_cmd; export_c_cmd; fuzz_cmd ]))
