examples/advisor_workflow.ml: Dca_analysis Dca_core Dca_ir Dca_parallel Dca_profiling List Printf
