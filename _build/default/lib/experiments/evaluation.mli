(** Shared evaluation pipeline: compile a benchmark, run DCA over every
    loop, profile the workload, and run the five baselines — the raw
    material every table and figure of the paper's evaluation section is
    generated from.  Results are cached per benchmark (the same evaluation
    feeds Tables I, III, IV and Figs. 5–7). *)

type t = {
  ev_bm : Dca_progs.Benchmark.t;
  ev_info : Dca_analysis.Proginfo.t;
  ev_dca : Dca_core.Driver.loop_result list;
  ev_profile : Dca_profiling.Depprof.profile;
  ev_tools : (string * Dca_baselines.Tool.result list) list;
      (** tool name → per-loop verdicts, for all five baselines *)
}

val evaluate : ?config:Dca_core.Commutativity.config -> Dca_progs.Benchmark.t -> t

val evaluate_cached : ?config:Dca_core.Commutativity.config -> Dca_progs.Benchmark.t -> t
(** Memoized by benchmark name (ignores config differences after the first
    call — callers that sweep configs must use {!evaluate}). *)

val total_loops : t -> int
val dca_commutative : t -> string list
val tool_parallel : t -> string -> string list
(** Loop ids a named baseline reports parallel. *)

val combined_static : t -> string list
val expert_loop_ids : t -> string list
val known_sequential_ids : t -> string list
val coverage : t -> string list -> float

val machine : Dca_parallel.Machine.t
(** The simulated 72-core machine every figure uses. *)

val clear_cache : unit -> unit
