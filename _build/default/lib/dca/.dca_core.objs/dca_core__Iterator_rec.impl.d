lib/dca/iterator_rec.ml: Array Cfg Dca_analysis Dca_ir Dca_support Hashtbl Intset Ir List Loops Pdg Printf Proginfo String
