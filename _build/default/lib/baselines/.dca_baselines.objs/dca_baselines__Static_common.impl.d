lib/baselines/static_common.ml: Affine Dca_analysis Dca_frontend Dca_ir Deptest Ir List Loops Memred Printf Proginfo Purity Scalars
