lib/analysis/loops.mli: Dca_frontend Dca_ir Dca_support
