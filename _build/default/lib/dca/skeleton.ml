open Dca_analysis
open Dca_ir

type shape = Map | Reduction of { histogram : bool } | Map_reduce | Worklist

type t = {
  sk_shape : shape;
  sk_pointer_based : bool;
  sk_reductions : (string * Scalars.reduction_op) list;
}

let shape_to_string = function
  | Map -> "map"
  | Reduction { histogram = true } -> "histogram reduction"
  | Reduction { histogram = false } -> "reduction"
  | Map_reduce -> "map+reduce"
  | Worklist -> "worklist"

(* Does the (possibly promoted) iterator slice chase pointers?  True when
   a slice instruction loads a pointer-typed value that feeds the
   iterator — approximated as: some slice instruction is a [Load] or
   [Gep] whose destination is pointer-typed. *)
let pointer_chasing (fi : Proginfo.func_info) (sep : Iterator_rec.separation) =
  Dca_support.Intset.exists
    (fun iid ->
      match (Pdg.instr fi.Proginfo.fi_pdg iid).Ir.idesc with
      | Ir.Load (d, _) -> ( match d.Ir.vty with Dca_frontend.Ast.Tptr _ -> true | _ -> false)
      | _ -> false)
    sep.Iterator_rec.sep_slice

let classify info fi (outcome : Commutativity.outcome) =
  let sep = outcome.Commutativity.oc_separation in
  let loop = sep.Iterator_rec.sep_loop in
  let reductions = Dca_parallel.Planner.reductions_of info loop.Loops.l_id in
  let rmws = Memred.find fi.Proginfo.fi_cfg fi.Proginfo.fi_affine loop in
  let histogram =
    List.exists
      (fun r ->
        match r.Memred.rmw_kind with
        | Memred.Array_cell { subscript = None } -> true
        | _ -> false)
      rmws
  in
  (* payload stores that are not part of a recognized RMW pair *)
  let rmw_iids = List.concat_map (fun (a, b) -> [ a; b ]) (Memred.iid_pairs rmws) in
  let plain_stores =
    Dca_support.Intset.exists
      (fun iid ->
        (not (List.mem iid rmw_iids))
        &&
        match (Pdg.instr fi.Proginfo.fi_pdg iid).Ir.idesc with
        | Ir.Store _ | Ir.Gstore _ -> true
        | _ -> false)
      sep.Iterator_rec.sep_payload
  in
  let has_reductions = reductions <> [] || rmws <> [] in
  let shape =
    if outcome.Commutativity.oc_promotions > 0 then Worklist
    else if has_reductions && not plain_stores then Reduction { histogram }
    else if has_reductions then Map_reduce
    else Map
  in
  { sk_shape = shape; sk_pointer_based = pointer_chasing fi sep; sk_reductions = reductions }

let to_string t =
  Printf.sprintf "%s%s%s" (shape_to_string t.sk_shape)
    (if t.sk_pointer_based then " over a pointer-linked structure" else "")
    (match t.sk_reductions with
    | [] -> ""
    | rs ->
        " ["
        ^ String.concat ", "
            (List.map (fun (n, op) -> Scalars.reduction_op_to_string op ^ ":" ^ n) rs)
        ^ "]")
