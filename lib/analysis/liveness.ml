open Dca_support
open Dca_ir

module Df = Dataflow.Make (struct
  type t = Intset.t

  let bottom = Intset.empty
  let equal = Intset.equal
  let join = Intset.union
end)

type t = {
  cfg : Cfg.t;
  live_in : Intset.t array;
  live_out : Intset.t array;
  uses : Intset.t array;  (** upward-exposed uses per block *)
  defs : Intset.t array;
  vars : (int, Ir.var) Hashtbl.t;
}

let instr_uses i = List.map (fun v -> v.Ir.vid) (Ir.uses_of i.Ir.idesc)
let instr_def i = Option.map (fun v -> v.Ir.vid) (Ir.def_of i.Ir.idesc)

(* Per-block gen (upward-exposed uses) and kill (defs) sets. *)
let block_summary blk =
  let uses = ref Intset.empty and defs = ref Intset.empty in
  List.iter
    (fun i ->
      List.iter (fun u -> if not (Intset.mem u !defs) then uses := Intset.add u !uses) (instr_uses i);
      match instr_def i with Some d -> defs := Intset.add d !defs | None -> ())
    blk.Ir.instrs;
  List.iter
    (fun v ->
      let u = v.Ir.vid in
      if not (Intset.mem u !defs) then uses := Intset.add u !uses)
    (Ir.term_uses blk.Ir.bterm);
  (!uses, !defs)

let analyze cfg =
  let n = Cfg.nblocks cfg in
  let uses = Array.make n Intset.empty and defs = Array.make n Intset.empty in
  let vars = Hashtbl.create 64 in
  let note_var v = Hashtbl.replace vars v.Ir.vid v in
  Array.iter
    (fun blk ->
      List.iter
        (fun i ->
          List.iter note_var (Ir.uses_of i.Ir.idesc);
          Option.iter note_var (Ir.def_of i.Ir.idesc))
        blk.Ir.instrs;
      List.iter note_var (Ir.term_uses blk.Ir.bterm);
      let u, d = block_summary blk in
      uses.(blk.Ir.bid) <- u;
      defs.(blk.Ir.bid) <- d)
    (Cfg.func cfg).Ir.fblocks;
  let transfer b out = Intset.union uses.(b) (Intset.diff out defs.(b)) in
  let result = Df.backward cfg ~exit:Intset.empty ~transfer in
  (* for backward problems: inputs = at block exit, outputs = at entry *)
  { cfg; live_in = result.Df.outputs; live_out = result.Df.inputs; uses; defs; vars }

let live_in t b = t.live_in.(b)
let live_out t b = t.live_out.(b)
let block_uses t b = t.uses.(b)
let block_defs t b = t.defs.(b)

let loop_defs t (l : Loops.loop) =
  Intset.fold (fun b acc -> Intset.union acc t.defs.(b)) l.Loops.l_blocks Intset.empty

let loop_live_exit t (l : Loops.loop) =
  let live_at_exits =
    List.fold_left
      (fun acc (src, target) ->
        ignore src;
        Intset.union acc t.live_in.(target))
      Intset.empty l.Loops.l_exiting
  in
  (* A Ret inside the loop also exposes its operand. *)
  let ret_uses =
    Intset.fold
      (fun b acc ->
        match (Cfg.block t.cfg b).Ir.bterm with
        | Ir.Ret (Some op) -> (
            match Ir.operand_var op with Some v -> Intset.add v.Ir.vid acc | None -> acc)
        | _ -> acc)
      l.Loops.l_blocks Intset.empty
  in
  Intset.union live_at_exits ret_uses

let loop_live_out t (l : Loops.loop) = Intset.inter (loop_defs t l) (loop_live_exit t l)

let loop_live_in t (l : Loops.loop) = t.live_in.(l.Loops.l_header)

let var_of_id t id = Hashtbl.find_opt t.vars id
