(* Minimal JSON for the serve protocol.  The repo already writes JSON by
   hand in three places (telemetry sinks, bench emitters); this module
   adds the one thing those don't need — a parser — without pulling a
   dependency into the image.  Integers are kept distinct from floats
   (request ids, counters); numbers with a fraction or exponent parse as
   [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* %.17g round-trips every double; strip a trailing ".0" ambiguity
         by never printing integers through this constructor *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  let n = String.length st.src in
  while st.pos < n && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.src.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let v = parse_hex4 st in
                (* protocol strings are byte strings: encode the code
                   point as UTF-8 (we only ever emit \u00XX ourselves) *)
                if v < 0x80 then Buffer.add_char buf (Char.chr v)
                else if v < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
                end
            | c -> fail st (Printf.sprintf "bad escape '\\%c'" c));
            loop ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  let is_float = ref false in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  while
    st.pos < n
    &&
    match st.src.[st.pos] with
    | '0' .. '9' -> true
    | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
    | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  let lit = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt lit with Some f -> Float f | None -> fail st "bad number"
  else
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> ( match float_of_string_opt lit with Some f -> Float f | None -> fail st "bad number")

let parse_literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_string_result s = match of_string s with v -> Ok v | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
