(** Content addressing of analysis inputs (DESIGN.md §12).

    The verdict cache keys a loop's verdict on
    [(function closure digest, loop id, run-spec digest, config digest)].
    Digests are computed over the {e lowered IR}'s canonical printer
    text, so formatting-only source changes hash identically while
    anything that moves an instruction does not.  A function's {e closure
    digest} covers its own IR, every function reachable from it through
    calls, and the global table — an edit to one function invalidates
    only that function's loops and the loops of its transitive callers.

    Caveat (documented, deliberate): a loop's dynamic verdict is
    established by running the whole program, so an edit outside the
    loop's call closure can in principle change the invocation context
    the loop is tested under.  The cache accepts this approximation for
    plain entries; entries whose outcome used whole-program verification
    are additionally pinned to the whole-program digest (see
    {!Vcache}). *)

type t

val of_program : Dca_ir.Ir.program -> t

val program_digest : t -> string
(** Hex digest of the whole lowered program (globals included). *)

val func_digest : t -> string -> string option
(** Hex closure digest of the named function. *)

val spec_digest : Dca_core.Commutativity.run_spec -> string
(** Input stream + fuel + deadline + heap budgets. *)

val config_digest : hierarchical:bool -> ?static:bool -> Dca_core.Commutativity.config -> string
(** Schedule list, tolerance, escalation, invocation budget, promotion
    budget, the hierarchical-exploration flag, and the static fast-path:
    digested as {!Dca_analysis.Staticproof.version} when enabled
    (default) or as ["off"], so verdicts from different prover versions
    — or from [--no-static] runs — never share cache entries. *)

val loop_key :
  t -> config_digest:string -> spec_digest:string -> func:string -> loop_id:string -> string
(** The cache key: hex, filename-safe, 32 characters. *)
