lib/progs/npb_is.ml: Benchmark
