(** Structural well-formedness checks over lowered programs, run by the
    test suite on every benchmark and usable as a debugging aid after IR
    surgery:

    - branch targets are valid block ids of the function;
    - frame-variable slots are within the frame; global slots within the
      global table;
    - instruction ids are globally unique;
    - every used frame variable has a definition in the function (as a
      parameter, or by some instruction — a flow-insensitive check);
    - blocks reachable from the entry are terminator-consistent (a [Cbr]
      condition is an int-typed operand, calls to [print]/[prints] never
      appear as [Call] instructions). *)

val verify_program : Ir.program -> (unit, string list) result
(** [Ok ()] or the list of violation messages. *)

val verify_func : Ir.program -> Ir.func -> string list
