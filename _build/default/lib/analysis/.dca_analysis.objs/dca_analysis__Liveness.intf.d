lib/analysis/liveness.mli: Dca_ir Dca_support Loops
