lib/experiments/figures.ml: Benchmark Buffer Dca_parallel Dca_progs Evaluation Float List Paper_data Plan Planner Printf Registry Speedup
