(** Iteration permutation schedules (paper §IV-B2).

    Exhaustive permutation testing is exponential, so DCA ships reduced
    presets: the identity (golden reference), the reverse order, a rotation
    by half, and a configurable number of seeded random shuffles.  Every
    schedule is a bijection on [0 .. n-1]; the property tests check this. *)

type t =
  | Identity
  | Reverse
  | Rotate  (** rotate by ⌈n/2⌉ *)
  | Shuffle of int  (** Fisher–Yates with this seed *)

val apply : t -> int -> int array
(** [apply t n] is the permutation of [0 .. n-1] this schedule induces. *)

val presets : ?shuffles:int -> ?seed:int -> unit -> t list
(** The testing set (identity excluded): reverse, rotate, then [shuffles]
    seeded shuffles (default 3, seed 2021). *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} (used by the fuzzer to recover the witness
    schedule named in a non-commutative verdict message). *)

val sift : t list -> int -> (t * int array) list * int
(** [sift schedules n] drops, for trip count [n], every schedule whose
    induced permutation is the identity or duplicates the permutation of
    an earlier schedule in the list; the survivors come back paired with
    their permutation, in input order, together with the dropped count.
    Sifting never drops a {e distinct} permutation — the property tests
    check that the kept permutation set equals the distinct non-identity
    permutation set of the input. *)
