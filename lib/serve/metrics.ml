(* The daemon's metrics plane: counters, gauges, and fixed-bucket
   latency histograms (DESIGN.md §13).

   Families are declared once at [create]; after that every operation is
   an atomic read-modify-write on a preallocated cell — no locks, no
   allocation on the hot path, safe from any worker domain.  A
   [snapshot] is a plain value that round-trips through JSON (the
   [stats] protocol verb ships it to clients) and renders to a
   Prometheus-style text exposition, so the same data feeds `dca client
   --metrics`, the `--metrics-file` scrape target, and tests.

   Histograms use a fixed bucket ladder in nanoseconds (1ms … 10s);
   observations land in the first bucket whose upper bound is >= the
   value, with a +Inf overflow bucket.  Bucket counts are stored
   non-cumulative and summed into the Prometheus cumulative form at
   exposition time — a snapshot taken while observations are in flight
   is still internally consistent per cell (each count is exact; only
   the cross-cell view can lag by an in-flight observation). *)

type hist = {
  h_counts : int Atomic.t array;  (* one per bucket + the +Inf overflow *)
  h_sum_ns : int Atomic.t;
  h_count : int Atomic.t;
}

type t = {
  m_counters : (string * int Atomic.t) list;
  m_gauges : (string * int Atomic.t) list;
  m_hists : (string * hist) list;
}

(* 1ms, 2.5ms, 5ms … 10s: wide enough for a warm ping and a cold
   whole-program analysis on the same ladder. *)
let bucket_bounds_ns =
  [|
    1_000_000;
    2_500_000;
    5_000_000;
    10_000_000;
    25_000_000;
    50_000_000;
    100_000_000;
    250_000_000;
    500_000_000;
    1_000_000_000;
    2_500_000_000;
    5_000_000_000;
    10_000_000_000;
  |]

let create ~counters ~gauges ~histograms () =
  let cell n = (n, Atomic.make 0) in
  {
    m_counters = List.map cell counters;
    m_gauges = List.map cell gauges;
    m_hists =
      List.map
        (fun n ->
          ( n,
            {
              h_counts = Array.init (Array.length bucket_bounds_ns + 1) (fun _ -> Atomic.make 0);
              h_sum_ns = Atomic.make 0;
              h_count = Atomic.make 0;
            } ))
        histograms;
  }

let family kind assoc name =
  match List.assoc_opt name assoc with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Metrics: unknown %s %S" kind name)

let add t name n = ignore (Atomic.fetch_and_add (family "counter" t.m_counters name) n)
let incr t name = add t name 1
let gauge_add t name n = ignore (Atomic.fetch_and_add (family "gauge" t.m_gauges name) n)

let gauge_set t name v = Atomic.set (family "gauge" t.m_gauges name) v

let observe_ns t name v =
  let h = family "histogram" t.m_hists name in
  let rec bucket i =
    if i >= Array.length bucket_bounds_ns || v <= bucket_bounds_ns.(i) then i else bucket (i + 1)
  in
  ignore (Atomic.fetch_and_add h.h_counts.(bucket 0) 1);
  ignore (Atomic.fetch_and_add h.h_sum_ns (max 0 v));
  ignore (Atomic.fetch_and_add h.h_count 1)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  hs_bounds_ns : int array;  (* upper bounds; the implicit last bucket is +Inf *)
  hs_counts : int array;  (* length = bounds + 1, non-cumulative *)
  hs_sum_ns : int;
  hs_count : int;
}

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * int) list;
  sn_hists : (string * hist_snapshot) list;
}

let snapshot t =
  {
    sn_counters = List.map (fun (n, c) -> (n, Atomic.get c)) t.m_counters;
    sn_gauges = List.map (fun (n, c) -> (n, Atomic.get c)) t.m_gauges;
    sn_hists =
      List.map
        (fun (n, h) ->
          ( n,
            {
              hs_bounds_ns = Array.copy bucket_bounds_ns;
              hs_counts = Array.map Atomic.get h.h_counts;
              hs_sum_ns = Atomic.get h.h_sum_ns;
              hs_count = Atomic.get h.h_count;
            } ))
        t.m_hists;
  }

(* Quantile estimate from the bucket counts, the standard Prometheus
   [histogram_quantile] interpolation: find the bucket holding the
   rank-th observation, assume observations are uniform inside it, and
   interpolate between its bounds.  The +Inf bucket has no upper bound
   to interpolate toward, so it clamps to the last finite bound — a
   deliberate under-estimate, like Prometheus. *)
let quantile h q =
  if h.hs_count <= 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.hs_count))) in
    let n_bounds = Array.length h.hs_bounds_ns in
    let rec find i cum =
      let cum' = cum + h.hs_counts.(i) in
      if cum' >= rank || i = n_bounds then (i, cum, h.hs_counts.(i))
      else find (i + 1) cum'
    in
    let i, below, in_bucket = find 0 0 in
    let lo = if i = 0 then 0 else h.hs_bounds_ns.(i - 1) in
    let hi = if i < n_bounds then h.hs_bounds_ns.(i) else h.hs_bounds_ns.(n_bounds - 1) in
    let ns =
      if i >= n_bounds || in_bucket <= 0 then float_of_int hi
      else
        float_of_int lo
        +. (float_of_int (hi - lo) *. (float_of_int (rank - below) /. float_of_int in_bucket))
    in
    ns /. 1e9
  end

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let snapshot_to_json s =
  let ints kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs) in
  let hist (n, h) =
    ( n,
      Json.Obj
        [
          ("bounds_ns", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) h.hs_bounds_ns)));
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.hs_counts)));
          ("sum_ns", Json.Int h.hs_sum_ns);
          ("count", Json.Int h.hs_count);
        ] )
  in
  Json.Obj
    [
      ("counters", ints s.sn_counters);
      ("gauges", ints s.sn_gauges);
      ("histograms", Json.Obj (List.map hist s.sn_hists));
    ]

let snapshot_of_json j =
  let ints name =
    match Json.member name j with
    | Some (Json.Obj kvs) ->
        Ok
          (List.filter_map
             (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int_opt v))
             kvs)
    | _ -> Error (Printf.sprintf "metrics snapshot: missing %S object" name)
  in
  let hist (n, hj) =
    let int_array field =
      match Json.member field hj with
      | Some (Json.List xs) -> Some (Array.of_list (List.filter_map Json.to_int_opt xs))
      | _ -> None
    in
    match (int_array "bounds_ns", int_array "counts") with
    | Some bounds, Some counts
      when Array.length counts = Array.length bounds + 1 ->
        let int field =
          Option.value ~default:0 (Option.bind (Json.member field hj) Json.to_int_opt)
        in
        Some
          ( n,
            {
              hs_bounds_ns = bounds;
              hs_counts = counts;
              hs_sum_ns = int "sum_ns";
              hs_count = int "count";
            } )
    | _ -> None
  in
  match (ints "counters", ints "gauges") with
  | Ok counters, Ok gauges ->
      let hists =
        match Json.member "histograms" j with
        | Some (Json.Obj kvs) -> List.filter_map hist kvs
        | _ -> []
      in
      Ok { sn_counters = counters; sn_gauges = gauges; sn_hists = hists }
  | Error e, _ | _, Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Prometheus-style text exposition                                    *)
(* ------------------------------------------------------------------ *)

(* Grammar (a subset of the Prometheus text format, DESIGN.md §13):
   one `# TYPE name kind` comment per family, then one sample per line,
   histogram buckets cumulative with `le` in seconds and a closing
   `+Inf`, plus `_sum` (seconds) and `_count`. *)
let exposition s =
  let buf = Buffer.create 1024 in
  let sample name v = Buffer.add_string buf (Printf.sprintf "%s %d\n" name v) in
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      sample n v)
    s.sn_counters;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      sample n v)
    s.sn_gauges;
  List.iter
    (fun (n, h) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      Array.iteri
        (fun i bound ->
          cum := !cum + h.hs_counts.(i);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" n
               (float_of_int bound /. 1e9)
               !cum))
        h.hs_bounds_ns;
      cum := !cum + h.hs_counts.(Array.length h.hs_bounds_ns);
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n !cum);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %.9f\n" n (float_of_int h.hs_sum_ns /. 1e9));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.hs_count))
    s.sn_hists;
  Buffer.contents buf
