(** The dynamic stage of DCA (paper §IV-B): iterator recording, permuted
    re-execution, and live-out verification.

    For each tested dynamic invocation of a candidate loop the engine:

    + snapshots the program state at loop entry;
    + runs the loop once in the original order under instrumentation,
      recording (a) the control-flow path, (b) the interface-variable
      values at every iteration boundary (the "linearized iterator",
      §IV-A3), (c) the live-out digest of the golden execution, and
      (d) which memory locations iterator and payload instructions touch;
    + checks {e memory separability}: payload writes must not feed iterator
      reads or writes (and vice versa).  Worklist idioms — payload pushes
      feeding iterator pops — fail this check at first; the engine then
      {e promotes} the offending instructions into the iterator slice
      (closing under the PDG) and retries, which is how BFS-style loops
      from Fig. 2 become testable;
    + re-executes the loop from the snapshot under the identity schedule
      (a self-check of the whole record/replay mechanism — any mismatch
      makes the loop untestable rather than mis-verdicted), then under
      each configured permutation schedule.  A re-execution is an
      {e iterator pass} (slice instructions only, golden control path)
      followed by a {e payload pass} (payload instructions only, one
      iteration per scheduled index, interface variables preset from the
      recording, payload branches evaluated live);
    + compares each permuted live-out digest with the golden digest.
      On a strict mismatch the engine optionally {e escalates} to
      whole-program verification: the entire program is re-run with the
      loop permuted in place, and the program's outputs are compared —
      state differences that are not observable downstream (a reordered
      but semantically unordered worklist) do not count as violations.

    Traps or divergence during a {e permuted} replay are evidence of
    non-commutativity (paper §IV-E: "we reliably detect these
    situations"); failures during the golden run or the identity
    self-check make the loop untestable instead. *)

type config = {
  cc_schedules : Schedule.t list;
  cc_eps : float;  (** relative float tolerance of the digest comparison *)
  cc_escalate : bool;  (** whole-program verification on strict mismatch *)
  cc_max_invocations : int;  (** dynamic invocations tested per loop *)
  cc_promote_rounds : int;  (** worklist-promotion retries *)
}

val default_config : config

type verdict =
  | Commutative
  | Non_commutative of string
  | Untestable of string

type outcome = {
  oc_verdict : verdict;
  oc_invocations : int;  (** dynamic invocations actually tested *)
  oc_escalated : bool;
  oc_promotions : int;  (** worklist promotion rounds applied *)
  oc_skipped_schedules : int;
      (** schedule replays skipped across all tested invocations because
          the induced permutation was the identity (trip count <= 1) or
          duplicated an earlier schedule's permutation.  Skipping never
          changes the verdict: a skipped duplicate inherits its
          representative's loop-local decision. *)
  oc_golden_runs : int;
      (** loop-local golden recordings (one per separability-widening
          attempt of every tested invocation; whole-program verification
          runs are counted separately by the [dca.wp_*] counters) *)
  oc_replays : int;
      (** permuted replays whose decision was consumed, identity
          self-checks included.  Replays a parallel engine ran
          speculatively but discarded (schedules past a trap) are not
          counted, so this total — like every field of this record — is
          identical across worker counts. *)
  oc_replay_steps : int;  (** interpreter instructions those replays executed *)
  oc_separation : Iterator_rec.separation;  (** final (possibly widened) separation *)
  oc_per_invocation : verdict list;
      (** verdict of each tested dynamic invocation, in execution order —
          the raw material for the context-sensitivity the paper leaves as
          future work (§IV-E): a loop commutative in some calling contexts
          and not in others shows up as a mixed list here *)
}

type run_spec = {
  rs_input : int list;
  rs_fuel : int;  (** instruction budget per evaluator *)
  rs_deadline_ns : int option;  (** wall-clock budget per evaluator; [None] = unlimited *)
  rs_heap_words : int option;  (** major-heap growth budget; [None] = unlimited *)
}

val default_fuel : int
(** 200 million instructions — the one fuel default shared by every
    entry point ({!default_run_spec}, [Session]). *)

val make_run_spec : ?fuel:int -> ?deadline_ns:int -> ?heap_words:int -> int list -> run_spec
(** [make_run_spec input] with all resource bounds defaulted —
    prefer this over record literals so new bounds don't ripple. *)

val default_run_spec : run_spec

val test_loop :
  ?pool:Dca_support.Pool.t ->
  config ->
  Dca_analysis.Proginfo.t ->
  run_spec ->
  Dca_analysis.Proginfo.func_info ->
  Iterator_rec.separation ->
  outcome
(** Run the whole program once with the loop under test intercepted (plus
    whole-program verification runs if escalation triggers).

    With [?pool] of width > 1, the per-schedule work fans out across
    domains: every permuted replay of an invocation runs on an
    {!Dca_interp.Eval.fork}ed replica of the entry state, and every
    whole-program verification run (which builds its own evaluator anyway)
    becomes one pool task.  Outcomes are merged in schedule order under
    the sequential decision rule, so the verdict, the escalation trail and
    [oc_per_invocation] are bit-identical to the [jobs = 1] path — the
    parallel engine only ever runs {e speculatively}, never decides
    differently. *)

val test_loop_inputs :
  ?pool:Dca_support.Pool.t ->
  config ->
  Dca_analysis.Proginfo.t ->
  run_spec list ->
  Dca_analysis.Proginfo.func_info ->
  Iterator_rec.separation ->
  outcome
(** Combined testing over several workloads (the paper's §V-D future-work
    direction): the loop is commutative only if every input agrees; a
    single non-commutative input refutes it; inputs that never execute the
    loop contribute nothing.  [run_spec list] must be non-empty. *)

val verdict_to_string : verdict -> string
