lib/ir/lower.ml: Array Ast Dca_frontend Hashtbl Ir Layout List Loc Option Parser Printf Tast Typecheck
