lib/analysis/dominance.mli: Dca_ir
