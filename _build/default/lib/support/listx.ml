let fold_lefti f init l =
  let rec go acc i = function
    | [] -> acc
    | x :: rest -> go (f acc i x) (i + 1) rest
  in
  go init 0 l

let rec take n l =
  if n <= 0 then []
  else
    match l with
    | [] -> []
    | x :: rest -> x :: take (n - 1) rest

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: rest -> drop (n - 1) rest

let index_of pred l =
  let rec go i = function
    | [] -> None
    | x :: rest -> if pred x then Some i else go (i + 1) rest
  in
  go 0 l

let dedup_keep_order eq l =
  let rec go seen = function
    | [] -> List.rev seen
    | x :: rest -> if List.exists (eq x) seen then go seen rest else go (x :: seen) rest
  in
  go [] l

let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.0

let max_float = function
  | [] -> invalid_arg "Listx.max_float: empty list"
  | x :: rest -> List.fold_left Float.max x rest

let group_by key l =
  let groups = ref [] in
  let add x =
    let k = key x in
    match List.assoc_opt k !groups with
    | Some members -> members := x :: !members
    | None -> groups := !groups @ [ (k, ref [ x ]) ]
  in
  List.iter add l;
  List.map (fun (k, members) -> (k, List.rev !members)) !groups

let topological_sort succs nodes =
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let order = ref [] in
  let in_nodes x = List.mem x nodes in
  let exception Cycle in
  let rec visit x =
    if Hashtbl.mem done_ x then ()
    else if Hashtbl.mem visiting x then raise Cycle
    else begin
      Hashtbl.replace visiting x ();
      List.iter (fun s -> if in_nodes s then visit s) (succs x);
      Hashtbl.remove visiting x;
      Hashtbl.replace done_ x ();
      order := x :: !order
    end
  in
  match List.iter visit nodes with
  | () -> Some !order
  | exception Cycle -> None
