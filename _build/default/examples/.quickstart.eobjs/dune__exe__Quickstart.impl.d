examples/quickstart.ml: Dca_analysis Dca_baselines Dca_core Dca_ir Dca_profiling List Printf
