lib/analysis/loops.ml: Cfg Dca_frontend Dca_ir Dca_support Dominance Hashtbl Intset Ir List Option Printf
