open Dca_frontend
open Tast
open Ir

type builder = {
  layout : Layout.t;
  varmap : (int, Ir.var) Hashtbl.t;  (** Tast uid → IR var *)
  mutable blocks : Ir.block list;  (** finished blocks, reversed *)
  mutable cur_id : int;  (** id of the block under construction *)
  mutable cur_instrs : Ir.instr list;  (** reversed *)
  mutable cur_loc : Loc.t;
  mutable next_block : int;
  mutable next_slot : int;
  mutable next_temp : int;
  mutable local_aggs : Ir.var list;
  mutable loop_stack : (int * int) list;  (** (continue target, break target) *)
  next_vid : unit -> int;
  next_iid : unit -> int;
}

let fresh_temp b ty =
  let slot = b.next_slot in
  b.next_slot <- slot + 1;
  let id = b.next_temp in
  b.next_temp <- id + 1;
  {
    vid = b.next_vid ();
    vname = Printf.sprintf "%%t%d" id;
    vty = ty;
    vglobal = false;
    vslot = slot;
    vtemp = true;
  }

let emit b loc idesc = b.cur_instrs <- { iid = b.next_iid (); idesc; iloc = loc } :: b.cur_instrs

let new_block_id b =
  let id = b.next_block in
  b.next_block <- id + 1;
  id

(* Finish the current block with [term] and continue building into [next]. *)
let finish_block b term =
  let blk = { bid = b.cur_id; instrs = List.rev b.cur_instrs; bterm = term; bloc = b.cur_loc } in
  b.blocks <- blk :: b.blocks

let start_block b id loc =
  b.cur_id <- id;
  b.cur_instrs <- [];
  b.cur_loc <- loc

let ty_is_float = function Ast.Tfloat -> true | _ -> false

let arith_op ty (op : Ast.binop) =
  match (op, ty_is_float ty) with
  | Ast.Add, false -> Add
  | Ast.Sub, false -> Sub
  | Ast.Mul, false -> Mul
  | Ast.Div, false -> Div
  | Ast.Add, true -> Fadd
  | Ast.Sub, true -> Fsub
  | Ast.Mul, true -> Fmul
  | Ast.Div, true -> Fdiv
  | Ast.Mod, _ -> Mod
  | _ -> invalid_arg "Lower.arith_op: not an arithmetic operator"

let rel_of = function
  | Ast.Eq -> Req
  | Ast.Ne -> Rne
  | Ast.Lt -> Rlt
  | Ast.Le -> Rle
  | Ast.Gt -> Rgt
  | Ast.Ge -> Rge
  | _ -> invalid_arg "Lower.rel_of: not a comparison"

(* The result type of indexing a value of type [ty] once. *)
let indexed_ty ty =
  match ty with
  | Ast.Tarray (elem, [ _ ]) -> elem
  | Ast.Tarray (elem, _ :: rest) -> Ast.Tarray (elem, rest)
  | Ast.Tptr elem -> elem
  | _ -> invalid_arg "Lower.indexed_ty"

let is_aggregate = function Ast.Tarray _ | Ast.Tstruct _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Lower an expression to an operand holding its value.  Aggregate-typed
   expressions evaluate to a pointer to their first cell. *)
let rec lower_expr b (e : texpr) : operand =
  let loc = e.tloc in
  match e.tdesc with
  | Tint_lit n -> Oint n
  | Tfloat_lit f -> Ofloat f
  | Tnull -> Onull
  | Tvar v -> lower_var_read b loc v
  | Tunop (Ast.Neg, sub) ->
      let op = if ty_is_float sub.tty then Fneg else Neg in
      lower_unop b loc op sub e.tty
  | Tunop (Ast.Not, sub) -> begin
      match sub.tty with
      | Ast.Tptr _ ->
          (* [!p] on pointers is a null test. *)
          let src = lower_expr b sub in
          let dst = fresh_temp b Ast.Tint in
          emit b loc (Bin (dst, Cmp Req, src, Onull));
          Ovar dst
      | _ -> lower_unop b loc Not sub e.tty
    end
  | Titof sub -> lower_unop b loc Itof sub e.tty
  | Tftoi sub -> lower_unop b loc Ftoi sub e.tty
  | Tbinop ((Ast.And | Ast.Or) as op, l, r) -> lower_short_circuit b loc op l r
  | Tbinop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, l, r) ->
      let lo = lower_expr b l and ro = lower_expr b r in
      let dst = fresh_temp b Ast.Tint in
      emit b loc (Bin (dst, Cmp (rel_of op), lo, ro));
      Ovar dst
  | Tbinop (op, l, r) ->
      let lo = lower_expr b l and ro = lower_expr b r in
      let dst = fresh_temp b e.tty in
      emit b loc (Bin (dst, arith_op l.tty op, lo, ro));
      Ovar dst
  | Tindex _ | Tfield _ | Tarrow _ ->
      let addr, ty = lower_address b e in
      if is_aggregate ty then addr
      else begin
        let dst = fresh_temp b ty in
        emit b loc (Load (dst, addr));
        Ovar dst
      end
  | Tcall (name, args) ->
      let ops = List.map (lower_expr b) args in
      let dst = if e.tty = Ast.Tvoid then None else Some (fresh_temp b e.tty) in
      lower_call b loc dst name ops;
      (match dst with Some v -> Ovar v | None -> Oint 0)
  | Tnew_struct sname ->
      let dst = fresh_temp b e.tty in
      emit b loc (Alloc (dst, Ast.Tstruct sname, Oint 1));
      Ovar dst
  | Tnew_array (elem, count) ->
      let c = lower_expr b count in
      let dst = fresh_temp b e.tty in
      emit b loc (Alloc (dst, elem, c));
      Ovar dst

and lower_unop b loc op sub ty =
  let src = lower_expr b sub in
  let dst = fresh_temp b ty in
  emit b loc (Un (dst, op, src));
  Ovar dst

(* print/printi have dedicated IR instructions so that the I/O analysis can
   recognize them structurally. *)
and lower_call b loc dst name ops =
  match (name, ops) with
  | "print", [ op ] | "printi", [ op ] -> emit b loc (Print op)
  | _ -> emit b loc (Call (dst, name, ops))

and lower_var_read b loc v =
  let iv = Hashtbl.find b.varmap v.v_uid in
  if iv.vglobal then
    if is_aggregate iv.vty then begin
      let dst = fresh_temp b (Ast.Tptr iv.vty) in
      emit b loc (Gaddr (dst, iv));
      Ovar dst
    end
    else begin
      let dst = fresh_temp b iv.vty in
      emit b loc (Gload (dst, iv));
      Ovar dst
    end
  else Ovar iv (* local aggregates: the slot already holds the block pointer *)

and lower_short_circuit b loc op l r =
  let result = fresh_temp b Ast.Tint in
  let rhs_block = new_block_id b in
  let short_block = new_block_id b in
  let join = new_block_id b in
  let lo = lower_expr b l in
  (match op with
  | Ast.And -> finish_block b (Cbr (lo, rhs_block, short_block))
  | Ast.Or -> finish_block b (Cbr (lo, short_block, rhs_block))
  | _ -> assert false);
  start_block b rhs_block loc;
  let ro = lower_expr b r in
  (* normalize to 0/1 *)
  emit b loc (Bin (result, Cmp Rne, ro, Oint 0));
  finish_block b (Br join);
  start_block b short_block loc;
  emit b loc (Mov (result, Oint (match op with Ast.And -> 0 | _ -> 1)));
  finish_block b (Br join);
  start_block b join loc;
  Ovar result

(* Lower an lvalue-ish expression to the address of its storage.  Returns
   the address operand and the type of the addressed object.  Also used for
   aggregate-valued expressions (which evaluate to addresses). *)
and lower_address b (e : texpr) : operand * Ast.ty =
  let loc = e.tloc in
  match e.tdesc with
  | Tvar v ->
      let iv = Hashtbl.find b.varmap v.v_uid in
      if not (is_aggregate iv.vty) then
        invalid_arg ("Lower.lower_address: scalar variable " ^ iv.vname);
      if iv.vglobal then begin
        let dst = fresh_temp b (Ast.Tptr iv.vty) in
        emit b loc (Gaddr (dst, iv));
        (Ovar dst, iv.vty)
      end
      else (Ovar iv, iv.vty)
  | Tindex (base, idx) ->
      let base_addr, base_ty =
        match base.tty with
        | Ast.Tptr elem ->
            (* base is a pointer value *)
            (lower_expr b base, Ast.Tptr elem)
        | Ast.Tarray _ -> lower_address b base
        | _ -> invalid_arg "Lower.lower_address: bad index base"
      in
      let elem_ty = indexed_ty base_ty in
      let scale = Layout.size b.layout elem_ty in
      let idx_op = lower_expr b idx in
      let dst = fresh_temp b (Ast.Tptr elem_ty) in
      emit b loc (Gep (dst, base_addr, idx_op, scale));
      (Ovar dst, elem_ty)
  | Tfield (base, _, fidx) -> begin
      let base_addr, base_ty = lower_address b base in
      match base_ty with
      | Ast.Tstruct sname ->
          let off = Layout.field_offset b.layout sname fidx in
          let fty = Layout.field_type b.layout sname fidx in
          let dst = fresh_temp b (Ast.Tptr fty) in
          emit b loc (Gep (dst, base_addr, Oint off, 1));
          (Ovar dst, fty)
      | _ -> invalid_arg "Lower.lower_address: field of non-struct"
    end
  | Tarrow (base, _, fidx) -> begin
      let ptr = lower_expr b base in
      match base.tty with
      | Ast.Tptr (Ast.Tstruct sname) ->
          let off = Layout.field_offset b.layout sname fidx in
          let fty = Layout.field_type b.layout sname fidx in
          let dst = fresh_temp b (Ast.Tptr fty) in
          emit b loc (Gep (dst, ptr, Oint off, 1));
          (Ovar dst, fty)
      | _ -> invalid_arg "Lower.lower_address: arrow on non-struct-pointer"
    end
  | _ -> invalid_arg "Lower.lower_address: not an lvalue"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let declare_local b (v : Tast.var) =
  let slot = b.next_slot in
  b.next_slot <- slot + 1;
  let iv =
    { vid = b.next_vid (); vname = v.v_name; vty = v.v_ty; vglobal = false; vslot = slot; vtemp = false }
  in
  Hashtbl.replace b.varmap v.v_uid iv;
  iv

let rec lower_stmt b (s : tstmt) : unit =
  let loc = s.tsloc in
  match s.tsdesc with
  | TSdecl (v, init) ->
      let iv = declare_local b v in
      if is_aggregate iv.vty then begin
        b.local_aggs <- iv :: b.local_aggs;
        let elem, count =
          match iv.vty with
          | Ast.Tarray (elem, dims) -> (elem, List.fold_left ( * ) 1 dims)
          | ty -> (ty, 1)
        in
        emit b loc (Alloc (iv, elem, Oint count))
      end
      else begin
        match init with
        | Some e ->
            let op = lower_expr b e in
            emit b loc (Mov (iv, op))
        | None -> ()
      end
  | TSassign (lhs, rhs) -> begin
      match lhs.tdesc with
      | Tvar v ->
          let iv = Hashtbl.find b.varmap v.v_uid in
          let op = lower_expr b rhs in
          if iv.vglobal then emit b loc (Gstore (iv, op)) else emit b loc (Mov (iv, op))
      | _ ->
          let addr, _ = lower_address b lhs in
          let op = lower_expr b rhs in
          emit b loc (Store (addr, op))
    end
  | TSif (cond, then_b, else_b) -> begin
      let c = lower_expr b cond in
      let then_id = new_block_id b in
      let join = new_block_id b in
      let else_id = if else_b = [] then join else new_block_id b in
      finish_block b (Cbr (c, then_id, else_id));
      start_block b then_id loc;
      List.iter (lower_stmt b) then_b;
      finish_block b (Br join);
      if else_b <> [] then begin
        start_block b else_id loc;
        List.iter (lower_stmt b) else_b;
        finish_block b (Br join)
      end;
      start_block b join loc
    end
  | TSwhile (cond, body) -> begin
      let header = new_block_id b in
      finish_block b (Br header);
      start_block b header loc;
      let c = lower_expr b cond in
      let body_id = new_block_id b in
      let exit_id = new_block_id b in
      finish_block b (Cbr (c, body_id, exit_id));
      start_block b body_id loc;
      b.loop_stack <- (header, exit_id) :: b.loop_stack;
      List.iter (lower_stmt b) body;
      b.loop_stack <- List.tl b.loop_stack;
      finish_block b (Br header);
      start_block b exit_id loc
    end
  | TSfor (init, cond, step, body) -> begin
      Option.iter (lower_stmt b) init;
      let header = new_block_id b in
      finish_block b (Br header);
      start_block b header loc;
      let body_id = new_block_id b in
      let exit_id = new_block_id b in
      (match cond with
      | Some c ->
          let co = lower_expr b c in
          finish_block b (Cbr (co, body_id, exit_id))
      | None -> finish_block b (Br body_id));
      let step_id = new_block_id b in
      start_block b body_id loc;
      b.loop_stack <- (step_id, exit_id) :: b.loop_stack;
      List.iter (lower_stmt b) body;
      b.loop_stack <- List.tl b.loop_stack;
      finish_block b (Br step_id);
      start_block b step_id loc;
      Option.iter (lower_stmt b) step;
      finish_block b (Br header);
      start_block b exit_id loc
    end
  | TSreturn eopt ->
      let op = Option.map (lower_expr b) eopt in
      finish_block b (Ret op);
      (* dead continuation block for any trailing statements *)
      start_block b (new_block_id b) loc
  | TSexpr e -> ignore (lower_expr b e)
  | TSprints text -> emit b loc (Prints text)
  | TSbreak -> begin
      match b.loop_stack with
      | (_, break_target) :: _ ->
          finish_block b (Br break_target);
          start_block b (new_block_id b) loc
      | [] -> invalid_arg "Lower: break outside loop (typechecker bug)"
    end
  | TScontinue -> begin
      match b.loop_stack with
      | (continue_target, _) :: _ ->
          finish_block b (Br continue_target);
          start_block b (new_block_id b) loc
      | [] -> invalid_arg "Lower: continue outside loop (typechecker bug)"
    end
  | TSblock body -> List.iter (lower_stmt b) body

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let lower_func layout varmap next_vid next_iid (f : tfunc) : Ir.func =
  let b =
    {
      layout;
      varmap;
      blocks = [];
      cur_id = 0;
      cur_instrs = [];
      cur_loc = f.tf_loc;
      next_block = 1;
      next_slot = 0;
      next_temp = 0;
      local_aggs = [];
      loop_stack = [];
      next_vid;
      next_iid;
    }
  in
  let params = List.map (declare_local b) f.tf_params in
  List.iter (lower_stmt b) f.tf_body;
  finish_block b (Ret None);
  let blocks = List.rev b.blocks in
  let nblocks = b.next_block in
  let arr =
    Array.init nblocks (fun i ->
        { bid = i; instrs = []; bterm = Ret None; bloc = f.tf_loc })
  in
  List.iter (fun blk -> arr.(blk.bid) <- blk) blocks;
  {
    fname = f.tf_name;
    fparams = params;
    fret = f.tf_ret;
    fblocks = arr;
    fentry = 0;
    fnslots = b.next_slot;
    flocal_aggs = List.rev b.local_aggs;
    floc = f.tf_loc;
  }

let lower_program (p : tprogram) : Ir.program =
  let layout = Layout.create p.tp_structs in
  let varmap = Hashtbl.create 64 in
  let vid = ref 0 and iid = ref 0 in
  let next_vid () =
    let v = !vid in
    incr vid;
    v
  in
  let next_iid () =
    let i = !iid in
    incr iid;
    i
  in
  let globals =
    List.mapi
      (fun slot ((v : Tast.var), init) ->
        let iv =
          {
            vid = next_vid ();
            vname = v.v_name;
            vty = v.v_ty;
            vglobal = true;
            vslot = slot;
            vtemp = false;
          }
        in
        Hashtbl.replace varmap v.v_uid iv;
        let aggregate = is_aggregate v.v_ty in
        let size = if aggregate then Layout.size layout v.v_ty else 1 in
        let kinds = Layout.cell_kinds layout v.v_ty in
        let g_init =
          match init with
          | None -> None
          | Some e ->
              let rec const (t : texpr) =
                match t.tdesc with
                | Tint_lit n -> Oint n
                | Tfloat_lit f -> Ofloat f
                | Tnull -> Onull
                | Tunop (Ast.Neg, sub) -> begin
                    match const sub with
                    | Oint n -> Oint (-n)
                    | Ofloat f -> Ofloat (-.f)
                    | op -> op
                  end
                | Titof sub -> begin
                    match const sub with Oint n -> Ofloat (float_of_int n) | op -> op
                  end
                | _ -> invalid_arg "Lower: non-constant global initializer (typechecker bug)"
              in
              Some (const e)
        in
        { g_var = iv; g_aggregate = aggregate; g_size = size; g_kinds = kinds; g_init })
      p.tp_globals
  in
  let funcs = List.map (lower_func layout varmap next_vid next_iid) p.tp_funcs in
  { p_structs = p.tp_structs; p_layout = layout; p_globals = Array.of_list globals; p_funcs = funcs }

let compile ~file src =
  let module T = Dca_support.Telemetry in
  let ast = T.span ~cat:"frontend" "parse" (fun () -> Parser.parse_program ~file src) in
  let tast = T.span ~cat:"frontend" "typecheck" (fun () -> Typecheck.check_program ast) in
  T.span ~cat:"frontend" "lower" (fun () -> lower_program tast)
