(* Tests for the machine model, planner and speedup accounting. *)

open Dca_parallel

let machine = Machine.default

let test_makespan_empty () =
  let m = Machine.makespan machine [||] ~reductions:0 in
  Alcotest.(check (float 1e-9)) "empty = overhead" (Machine.launch_overhead machine ~reductions:0) m

let test_makespan_single_worker () =
  let m1 = Machine.with_workers machine 1 in
  let costs = [| 10; 20; 30 |] in
  let span = Machine.makespan m1 costs ~reductions:0 in
  Alcotest.(check bool) "one worker pays the full sum" true
    (span >= Machine.sequential_time costs)

let test_makespan_reduction_overhead () =
  let base = Machine.makespan machine [| 100 |] ~reductions:0 in
  let with_red = Machine.makespan machine [| 100 |] ~reductions:3 in
  Alcotest.(check bool) "reductions cost extra" true (with_red > base)

let prop_makespan_bounds =
  QCheck.Test.make ~count:300 ~name:"makespan is bounded by max-cost and sum-cost"
    QCheck.(pair (list_of_size Gen.(int_range 1 60) (int_bound 1000)) (int_range 1 200))
    (fun (costs, workers) ->
      let costs = Array.of_list costs in
      let m = Machine.with_workers machine workers in
      let span = Machine.makespan m costs ~reductions:0 in
      let overhead = Machine.launch_overhead m ~reductions:0 in
      let maxc = Array.fold_left (fun acc c -> Float.max acc (float_of_int c)) 0.0 costs in
      span >= maxc +. overhead -. 1e-6
      && span <= Machine.sequential_time costs +. overhead +. (float_of_int (Array.length costs) *. m.Machine.m_chunk_cost) +. 1e-6)

(* Note: chunked makespan is NOT monotone in the worker count in general —
   contiguous chunk boundaries shift when ⌈n/P⌉ changes and can group two
   expensive iterations that were previously split.  The properties that do
   hold: enough workers ⇒ one iteration per chunk, and that configuration
   is optimal among all worker counts. *)
let prop_enough_workers_is_optimal =
  QCheck.Test.make ~count:200 ~name:"one-iteration chunks are the floor of the chunked makespan"
    QCheck.(list_of_size Gen.(int_range 1 80) (int_bound 500))
    (fun costs ->
      let costs = Array.of_list costs in
      let n = Array.length costs in
      let chunk_time workers =
        let m = Machine.with_workers machine workers in
        Machine.makespan m costs ~reductions:0 -. Machine.launch_overhead m ~reductions:0
      in
      let saturated = chunk_time n in
      let maxc = Array.fold_left (fun acc c -> Float.max acc (float_of_int c)) 0.0 costs in
      Float.abs (saturated -. (maxc +. machine.Machine.m_chunk_cost)) < 1e-6
      && List.for_all (fun w -> chunk_time w +. 1e-6 >= saturated) [ 1; 2; 8; 16; 64 ])

(* --------------------------------------------------------------- *)
(* Planner and speedup on a real program                             *)
(* --------------------------------------------------------------- *)

let hot_program =
  {|
  float a[64];
  float total;
  void main() {
    int i;
    int r;
    for (r = 0; r < 20; r = r + 1) {
      for (i = 0; i < 64; i = i + 1) { a[i] = a[i] + hrand(i + r * 64) * 0.25; }
    }
    for (i = 0; i < 64; i = i + 1) { total = total + a[i]; }
    print(total);
  }
  |}

let evaluate src =
  let prog = Dca_ir.Lower.compile ~file:"<test>" src in
  let info = Dca_analysis.Proginfo.analyze prog in
  let profile = Dca_profiling.Depprof.profile_program info in
  let dca = Dca_core.Driver.analyze_program info in
  (info, profile, dca)

let test_planner_avoids_nesting_conflicts () =
  let info, profile, dca = evaluate hot_program in
  let plan =
    Planner.select ~machine info profile
      ~detected:(Dca_core.Driver.commutative_ids dca)
      ~strategy:Planner.Best_benefit
  in
  (* no two selected loops may be dynamically nested *)
  let ids = Plan.loop_ids plan in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s do not co-occur" a b)
              false
              (List.exists
                 (fun (stack, _) -> List.mem a stack && List.mem b stack)
                 profile.Dca_profiling.Depprof.pr_buckets))
        ids)
    ids;
  Alcotest.(check bool) "plan is non-empty" true (ids <> [])

let test_speedup_sane () =
  let info, profile, dca = evaluate hot_program in
  let plan =
    Planner.select ~machine info profile
      ~detected:(Dca_core.Driver.commutative_ids dca)
      ~strategy:Planner.Best_benefit
  in
  let result = Speedup.simulate ~machine info profile plan in
  Alcotest.(check bool) "speedup > 1.5" true (result.Speedup.sp_speedup > 1.5);
  Alcotest.(check bool) "speedup below worker count" true
    (result.Speedup.sp_speedup <= float_of_int machine.Machine.m_workers);
  Alcotest.(check bool) "parallel time below sequential" true
    (result.Speedup.sp_par < result.Speedup.sp_seq)

let test_empty_plan_is_speedup_one () =
  let info, profile, _ = evaluate hot_program in
  let result = Speedup.simulate ~machine info profile Plan.empty in
  Alcotest.(check (float 1e-9)) "no plan, no speedup" 1.0 result.Speedup.sp_speedup

let test_extra_parallel_fraction () =
  let info, profile, _ = evaluate hot_program in
  let base = Speedup.simulate ~machine info profile Plan.empty in
  let restructured =
    Speedup.simulate ~extra_parallel:(0.5, 8) ~machine info profile Plan.empty
  in
  Alcotest.(check bool) "restructuring reduces serial time" true
    (restructured.Speedup.sp_speedup > base.Speedup.sp_speedup);
  (* Amdahl: f=0.5 at 8 workers caps below 1/(0.5 + 0.5/8) *)
  Alcotest.(check bool) "bounded by Amdahl" true
    (restructured.Speedup.sp_speedup <= 1.0 /. (0.5 +. (0.5 /. 8.0)) +. 1e-6)

let test_plan_pragmas () =
  let info, profile, dca = evaluate hot_program in
  let plan =
    Planner.select ~machine info profile
      ~detected:(Dca_core.Driver.commutative_ids dca)
      ~strategy:Planner.Best_benefit
  in
  let text = Plan.to_string plan in
  Alcotest.(check bool) "pragma text mentions omp" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 4 <= String.length text && (String.sub text i 4 = "#pra" || contains (i + 1))
    in
    contains 0)

let test_unprofitable_not_selected () =
  (* a tiny loop is not worth a launch *)
  let info, profile, dca =
    evaluate "int a[3]; void main() { int i; for (i = 0; i < 3; i = i + 1) { a[i] = i; } printi(a[0]); }"
  in
  let plan =
    Planner.select ~machine info profile
      ~detected:(Dca_core.Driver.commutative_ids dca)
      ~strategy:Planner.Best_benefit
  in
  Alcotest.(check int) "nothing profitable" 0 (List.length plan.Plan.plan_loops)

let suites =
  [
    ( "machine",
      [
        Alcotest.test_case "empty invocation" `Quick test_makespan_empty;
        Alcotest.test_case "single worker" `Quick test_makespan_single_worker;
        Alcotest.test_case "reduction overhead" `Quick test_makespan_reduction_overhead;
        QCheck_alcotest.to_alcotest prop_makespan_bounds;
        QCheck_alcotest.to_alcotest prop_enough_workers_is_optimal;
      ] );
    ( "planner",
      [
        Alcotest.test_case "nesting conflicts" `Quick test_planner_avoids_nesting_conflicts;
        Alcotest.test_case "speedup sane" `Quick test_speedup_sane;
        Alcotest.test_case "empty plan" `Quick test_empty_plan_is_speedup_one;
        Alcotest.test_case "extra parallel fraction" `Quick test_extra_parallel_fraction;
        Alcotest.test_case "pragmas" `Quick test_plan_pragmas;
        Alcotest.test_case "unprofitable" `Quick test_unprofitable_not_selected;
      ] );
  ]
