open Dca_ir

type t = {
  entry : int;
  idom : int option array;
  rpo_index : int array;  (** -1 for unreachable nodes *)
  children : int list array;
}

let compute ~nnodes ~entry ~preds ~rpo =
  let rpo_index = Array.make nnodes (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = Array.make nnodes None in
  idom.(entry) <- Some entry;
  let intersect a b =
    (* walk up the (partial) dominator tree by rpo index *)
    let rec go a b =
      if a = b then a
      else if rpo_index.(a) > rpo_index.(b) then
        go (match idom.(a) with Some x -> x | None -> assert false) b
      else go a (match idom.(b) with Some x -> x | None -> assert false)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let processed = List.filter (fun p -> idom.(p) <> None && rpo_index.(p) >= 0) (preds b) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> Some new_idom then begin
                idom.(b) <- Some new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let children = Array.make nnodes [] in
  Array.iteri
    (fun b -> function
      | Some d when d <> b -> children.(d) <- b :: children.(d)
      | _ -> ())
    idom;
  (* entry's self-idom is an implementation artifact; expose None *)
  let exposed = Array.mapi (fun b d -> if b = entry then None else d) idom in
  { entry; idom = exposed; rpo_index; children }

let of_cfg cfg =
  compute
    ~nnodes:(Cfg.nblocks cfg)
    ~entry:(Cfg.entry cfg)
    ~preds:(Cfg.preds cfg)
    ~rpo:(Cfg.reverse_postorder cfg)

(* Post-dominance: reverse edges and add a virtual exit node that succeeds
   every Ret block (in the reversed graph: precedes them). *)
let post_of_cfg cfg =
  let n = Cfg.nblocks cfg in
  let virtual_exit = n in
  let exits = Cfg.exit_blocks cfg in
  let rpreds b = if b = virtual_exit then [] else Cfg.succs cfg b @ (if List.mem b exits then [ virtual_exit ] else []) in
  (* reverse postorder of the reversed graph, from the virtual exit *)
  let visited = Array.make (n + 1) false in
  let order = ref [] in
  let rsuccs b =
    if b = virtual_exit then exits
    else Cfg.preds cfg b
  in
  let rec visit b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter visit (rsuccs b);
      order := b :: !order
    end
  in
  visit virtual_exit;
  let rpo = !order in
  (* In the reversed graph, predecessors are the original successors (plus
     the virtual exit edge). *)
  (compute ~nnodes:(n + 1) ~entry:virtual_exit ~preds:rpreds ~rpo, virtual_exit)

let idom t b = t.idom.(b)

let dominates t a b =
  let rec go b = if a = b then true else match t.idom.(b) with Some d -> go d | None -> false in
  go b

let children t b = t.children.(b)
