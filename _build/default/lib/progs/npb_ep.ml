(** EP — Embarrassingly Parallel (NPB).

    Gaussian-pair sampling via a stateless hash PRNG, accumulating sum
    reductions ([sx], [sy]) and an annulus histogram ([q]) — the "complex
    reduction loop" of paper §V-C2.  The hot block loop is a [while] so
    the counted-loop static baselines only see the inner trial loop, while
    DCA tests both uniformly.  A [drand]-chained warmup loop is genuinely
    order-dependent (the generator state is a loop-carried dependence),
    and the result-printing loop performs I/O: both are correctly not
    reported by DCA. *)

let source =
  {|
// NPB EP kernel, MiniC port (scaled down).
int    nblocks;
int    ntrials;
float  sx;
float  sy;
float  q[10];
float  blockmaxs[256];
float  warmup;
int    verified;

float  gauss_pairs(int k) {
  // one block of trials: returns the block's |max annulus index| marker
  int t;
  float blockmax = 0.0;
  for (t = 0; t < ntrials; t = t + 1) {
    int idx = k * ntrials + t;
    float x1 = 2.0 * hrand(2 * idx) - 1.0;
    float x2 = 2.0 * hrand(2 * idx + 1) - 1.0;
    float r2 = x1 * x1 + x2 * x2;
    if (r2 <= 1.0 && r2 > 0.0) {
      float fac = sqrt(-2.0 * log(r2) / r2);
      float gx = x1 * fac;
      float gy = x2 * fac;
      sx = sx + gx;
      sy = sy + gy;
      float big = fmax(fabs(gx), fabs(gy));
      int bin = ftoi(big);
      if (bin > 9) { bin = 9; }
      q[bin] = q[bin] + 1.0;
      blockmax = fmax(blockmax, big);
    }
  }
  return blockmax;
}

void main() {
  nblocks = 256;
  ntrials = 64;
  int i;
  // init the histogram
  for (i = 0; i < 10; i = i + 1) { q[i] = 0.0; }
  // sequential generator warmup: genuinely order-dependent
  dseed(271828);
  for (i = 0; i < 16; i = i + 1) { warmup = warmup * 0.5 + drand() * itof(i + 1); }
  // hot block loop (while-style: outside the scope of counted-loop tools)
  float maxdev = 0.0;
  int k = 0;
  while (k < nblocks) {
    float m = gauss_pairs(k);
    blockmaxs[k] = m;
    maxdev = fmax(maxdev, m);
    k = k + 1;
  }
  // verification: counts must equal accepted trials
  float total = 0.0;
  for (i = 0; i < 10; i = i + 1) { total = total + q[i]; }
  // per-block maxima must agree with the global maximum (reduction)
  float recomputed = 0.0;
  for (i = 0; i < nblocks; i = i + 1) { recomputed = fmax(recomputed, blockmaxs[i]); }
  verified = 1;
  if (total < 1.0) { verified = 0; }
  if (fabs(sx) > total) { verified = 0; }
  if (fabs(recomputed - maxdev) > 0.000001) { verified = 0; }
  // report
  print(sx);
  print(sy);
  print(maxdev);
  for (i = 0; i < 10; i = i + 1) { print(q[i]); }
  print(warmup);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"EP" ~suite:Benchmark.Npb
       ~description:
         "embarrassingly parallel Gaussian sampling with sum reductions and an annulus histogram"
       ~source)
    with
    Benchmark.bm_expert_loops = [ Benchmark.Nth_in_func ("main", 2) (* hot block loop *) ];
    bm_expert_sections = [ [ Benchmark.Nth_in_func ("main", 2) ] ];
    bm_expert_extra = 0.0;
    bm_known_sequential = [ Benchmark.Nth_in_func ("main", 1) (* drand warmup chain *) ];
  }
