lib/parallel/plan.ml: Dca_analysis List Printf Scalars String
