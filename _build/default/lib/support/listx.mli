(** Small extensions over [Stdlib.List] and [Stdlib.Array] used throughout
    the analyses. *)

val fold_lefti : ('a -> int -> 'b -> 'a) -> 'a -> 'b list -> 'a
(** Left fold carrying the element index. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if the list is shorter). *)

val drop : int -> 'a list -> 'a list

val index_of : ('a -> bool) -> 'a list -> int option
(** Index of the first element satisfying the predicate. *)

val dedup_keep_order : ('a -> 'a -> bool) -> 'a list -> 'a list
(** Remove duplicates (by the given equality), keeping first occurrences in
    order.  Quadratic; used on small lists only. *)

val sum_int : int list -> int
val sum_float : float list -> float
val max_float : float list -> float
(** Maximum of a non-empty list; raises [Invalid_argument] on []. *)

val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Group elements by key (polymorphic equality on keys), keys in first-seen
    order, members in original order. *)

val topological_sort : ('a -> 'a list) -> 'a list -> 'a list option
(** [topological_sort succs nodes] orders [nodes] such that every node
    precedes its successors; [None] if the graph restricted to [nodes] has a
    cycle.  Uses polymorphic equality/hashing on nodes. *)
