(* The semi-automatic workflow the paper envisions (§I, §IV-D): DCA as a
   parallelism advisor with the user holding the final word.

   The example takes a program with a mix of loops — hot and cold, ordered
   and commutative, worklist and affine — and walks the full advisory:

   1. detect (hierarchical, so inner loops of parallel outer loops are
      skipped, §IV-E);
   2. advise (per loop: parallelize / review / leave serial, with the
      evidence and the detected parallel skeleton);
   3. emit the OpenMP-annotated source the user would review and commit.

   Run with:  dune exec examples/advisor_workflow.exe                     *)

let source =
  {|
  struct task { int weight; struct task *next; }

  float grid[32][32];
  float total;
  int   processed;
  struct task *queue;

  void enqueue(int w) {
    struct task *t = new struct task;
    t->weight = w;
    t->next = queue;
    queue = t;
  }

  void main() {
    int i;
    int j;
    // hot stencil sweep: parallel nest
    int step;
    for (step = 0; step < 6; step = step + 1) {
      for (i = 1; i < 31; i = i + 1) {
        for (j = 1; j < 31; j = j + 1) {
          grid[i][j] = grid[i][j] + 0.25 * hrand(step * 1024 + i * 32 + j);
        }
      }
    }
    // reduction over the grid
    total = 0.0;
    for (i = 0; i < 32; i = i + 1) {
      for (j = 0; j < 32; j = j + 1) { total = total + grid[i][j]; }
    }
    // a worklist: tasks spawn smaller tasks
    enqueue(16);
    enqueue(12);
    processed = 0;
    while (queue) {
      struct task *t = queue;
      queue = t->next;
      processed = processed + t->weight;
      if (t->weight > 1) {
        enqueue(t->weight / 2);
      }
    }
    // an ordered recurrence: must stay sequential
    float smooth = 0.0;
    for (i = 0; i < 32; i = i + 1) {
      smooth = smooth * 0.9 + grid[i][i] * itof(i);
    }
    print(total);
    printi(processed);
    print(smooth);
  }
  |}

let () =
  print_endline "=== Parallelism advisor workflow ===\n";
  (* The whole advisory rides on one Session: detection, profiling and
     planning are memoized stages, so each is computed exactly once no
     matter how many products below consume it. *)
  Dca_core.Session.with_session
    ~options:Dca_core.Session.Options.(default |> with_jobs 1 |> with_hierarchical true)
    (Dca_core.Session.Source { file = "advisor.mc"; source; input = [] })
  @@ fun session ->
  (* 1. hierarchical detection *)
  let results = Dca_core.Session.dca_results session in
  Printf.printf "1. hierarchical detection (%d loops):\n" (List.length results);
  Dca_core.Report.print results;

  (* 2. the advisory *)
  print_endline "\n2. advisory:";
  print_string (Dca_core.Advisor.report (Dca_core.Session.advise session));

  (* 3. the artifact the user reviews *)
  let info = Dca_core.Session.proginfo session in
  print_endline "3. annotated source (review and commit):\n";
  print_string
    (Dca_parallel.Codegen.annotate_source info ~source (Dca_core.Session.plan session))
