type t = {
  m_workers : int;
  m_spawn_cost : float;
  m_barrier_cost : float;
  m_chunk_cost : float;
  m_reduction_cost : float;
}

let default =
  { m_workers = 72; m_spawn_cost = 400.0; m_barrier_cost = 80.0; m_chunk_cost = 8.0; m_reduction_cost = 25.0 }

let with_workers t w = { t with m_workers = w }

let log2 x = log x /. log 2.0

let launch_overhead t ~reductions =
  let lg = log2 (float_of_int (max 2 t.m_workers)) in
  t.m_spawn_cost +. (t.m_barrier_cost *. lg) +. (float_of_int reductions *. t.m_reduction_cost *. lg)

let sequential_time costs = Array.fold_left (fun acc c -> acc +. float_of_int c) 0.0 costs

(* Static chunking: W contiguous chunks of ⌈n/W⌉ iterations. *)
let makespan t costs ~reductions =
  let n = Array.length costs in
  let overhead = launch_overhead t ~reductions in
  if n = 0 then overhead
  else begin
    let w = max 1 t.m_workers in
    let chunk = (n + w - 1) / w in
    let worst = ref 0.0 in
    let i = ref 0 in
    while !i < n do
      let stop = min n (!i + chunk) in
      let sum = ref t.m_chunk_cost in
      for k = !i to stop - 1 do
        sum := !sum +. float_of_int costs.(k)
      done;
      if !sum > !worst then worst := !sum;
      i := stop
    done;
    !worst +. overhead
  end
