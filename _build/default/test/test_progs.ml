(* Tests for the benchmark suite: every port compiles, runs, self-verifies
   and is deterministic; structural loop annotations resolve. *)

open Dca_progs

let run bm =
  let prog = Benchmark.compile bm in
  let ctx = Dca_interp.Eval.create ~input:bm.Benchmark.bm_input prog in
  Dca_interp.Eval.run_main ctx;
  Dca_interp.Eval.outputs ctx

let per_benchmark_cases () =
  List.concat_map
    (fun bm ->
      let name = bm.Benchmark.bm_name in
      [
        Alcotest.test_case (name ^ " self-verifies") `Quick (fun () ->
            match List.rev (run bm) with
            | last :: _ -> Alcotest.(check string) (name ^ " verified flag") "1" last
            | [] -> Alcotest.fail "no output");
        Alcotest.test_case (name ^ " is deterministic") `Quick (fun () ->
            Alcotest.(check (list string)) name (run bm) (run bm));
        Alcotest.test_case (name ^ " annotations resolve") `Quick (fun () ->
            let info = Dca_analysis.Proginfo.analyze (Benchmark.compile bm) in
            let check_refs what refs =
              List.iter
                (fun r ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: %s resolves" what (Benchmark.loop_ref_to_string r))
                    true
                    (Benchmark.resolve info [ r ] <> []))
                refs
            in
            check_refs "expert" bm.Benchmark.bm_expert_loops;
            check_refs "sequential" bm.Benchmark.bm_known_sequential;
            List.iter (check_refs "section") bm.Benchmark.bm_expert_sections);
      ])
    Registry.all

let test_registry () =
  Alcotest.(check int) "ten NPB programs" 10 (List.length Registry.npb);
  Alcotest.(check int) "fourteen PLDS programs" 14 (List.length Registry.plds);
  Alcotest.(check bool) "lookup works" true (Registry.find "BFS" <> None);
  Alcotest.(check bool) "unknown is None" true (Registry.find "nope" = None);
  (* names are unique *)
  let names = List.map (fun bm -> bm.Benchmark.bm_name) Registry.all in
  Alcotest.(check int) "unique names" (List.length names) (List.length (List.sort_uniq compare names))

let test_suite_loop_population () =
  (* the NPB ports together must expose a non-trivial loop population *)
  let total =
    List.fold_left
      (fun acc bm ->
        let info = Dca_analysis.Proginfo.analyze (Benchmark.compile bm) in
        acc + List.length (Dca_analysis.Proginfo.all_loops info))
      0 Registry.npb
  in
  Alcotest.(check bool) (Printf.sprintf "NPB has >= 100 loops (got %d)" total) true (total >= 100)

let test_loop_ref_matching () =
  let bm = Registry.find_exn "EP" in
  let info = Dca_analysis.Proginfo.analyze (Benchmark.compile bm) in
  let all = Benchmark.resolve info [ Benchmark.In_func "main" ] in
  let outer = Benchmark.resolve info [ Benchmark.Outermost "main" ] in
  let nth = Benchmark.resolve info [ Benchmark.Nth_in_func ("main", 0) ] in
  Alcotest.(check bool) "In_func superset of Outermost" true
    (List.for_all (fun id -> List.mem id all) outer);
  Alcotest.(check int) "Nth picks one" 1 (List.length nth);
  Alcotest.(check (list string)) "no match for unknown function" []
    (Benchmark.resolve info [ Benchmark.In_func "nope" ])

let suites =
  [
    ( "progs-registry",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "loop population" `Quick test_suite_loop_population;
        Alcotest.test_case "loop refs" `Quick test_loop_ref_matching;
      ] );
    ("progs-benchmarks", per_benchmark_cases ());
  ]
