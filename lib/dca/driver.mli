(** Whole-program DCA pipeline: static candidate selection followed by one
    dynamic commutativity test per loop (paper Fig. 3).  Loops are tested
    one per program execution, as in §IV-E. *)

type abort_cause =
  | Trap of string  (** a guest trap escaped the harness's own handling *)
  | Fuel  (** instruction budget exhausted (after any retry) *)
  | Deadline  (** wall-clock budget exhausted (after any retry) *)
  | Heap  (** heap growth budget exhausted *)
  | Crash of { exn : string; backtrace : string }
      (** unexpected analyzer exception; the backtrace is carried for
          debugging but never printed into reports (which must stay
          deterministic) *)

type decision =
  | Commutative
  | Non_commutative of string
  | Untestable of string
  | Rejected of Candidate.rejection  (** excluded by the static stage *)
  | Subsumed of string
      (** hierarchical mode only: an enclosing loop (by id) is already
          commutative, so this loop was not tested (paper §IV-E explores
          loops top-down) *)
  | Aborted of { ab_cause : abort_cause; ab_retries : int }
      (** this loop's examine/test raised; the exception was contained at
          the loop boundary and classified, and every other loop still
          ran.  [ab_retries] counts fuel/deadline-escalated retries that
          were consumed before giving up (at most one). *)

val abort_cause_to_string : abort_cause -> string

type provenance =
  | Dynamic  (** verdict from the golden-run + replay stage (or its rejection/abort paths) *)
  | Static
      (** verdict proved by {!Dca_analysis.Staticproof} — no golden run or
          replay was executed for this loop *)

type loop_result = {
  lr_loop : Dca_analysis.Loops.loop;
  lr_label : string;
  lr_decision : decision;
  lr_outcome : Commutativity.outcome option;  (** present when the dynamic stage ran *)
  lr_provenance : provenance;
}

val analyze_program :
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?hierarchical:bool ->
  ?static:bool ->
  ?pool:Dca_support.Pool.t ->
  ?lookup:(Dca_analysis.Proginfo.func_info -> Dca_analysis.Loops.loop -> loop_result option) ->
  Dca_analysis.Proginfo.t ->
  loop_result list
(** Results in program order (function order, then outermost-first).

    [?lookup] lets a cache front end (the serve daemon's verdict cache)
    resolve a loop without testing it: consulted before any per-loop work
    is queued, a [Some result] is used verbatim — it participates in
    hierarchical subsumption like a freshly computed verdict but ticks no
    work counters.  The function must be pure and safe to call from
    worker domains.  Subsumption is decided {e before} the lookup, so a
    cached verdict never resurrects a loop the sequential engine would
    have skipped.

    With [~static:true] (the default), every loop the static candidate
    stage {e accepts} first goes to the {!Dca_analysis.Staticproof}
    prover; a [Proved] loop is decided [Commutative] with [Static]
    provenance and skips the golden run and every replay.  The prover
    runs {e inside} the per-loop containment boundary, after the
    [driver.loop] fault point and after [Candidate.examine] — so
    rejected loops keep their rejections, injected faults fire exactly
    as without the prover, and a prover crash degrades to a bailout that
    falls through to the dynamic stage.  Statically proved loops
    participate in hierarchical subsumption like any other commutative
    verdict.  Cache [?lookup] still runs first: a cached verdict —
    whatever its provenance — short-circuits the prover too.
    [~static:false] ([--no-static]) disables the fast-path for A/B runs;
    verdicts must not change, only [dca.golden-runs]/[dca.replays] work
    and the provenance markers do.
    With [~hierarchical:true] (default [false]), loops nested inside a
    loop already found commutative are not tested and come back
    [Subsumed] — the paper's top-down exploration, which saves dynamic
    test invocations when outer parallelism is preferred anyway.

    With [?pool] of width > 1 the per-loop dynamic tests fan out across
    domains (each test owns its evaluator; the program info is shared
    read-only), and the pool is also threaded into each test's
    per-schedule replays.  Results are returned in program order and are
    bit-identical to the sequential path.  Hierarchical mode proceeds in
    nesting-depth waves: by the time a wave is scheduled, every ancestor
    verdict is final, so subsumed descendants are cancelled before any
    work is queued for them — the parallel engine never tests a loop the
    sequential engine would have skipped.

    {b Crash containment}: no exception raised by one loop's examine or
    dynamic test escapes this function.  Escapes are classified into
    {!abort_cause} and returned as [Aborted] results; [Fuel]/[Deadline]
    causes get one retry with 4x-escalated budgets first.  Containment
    happens inside the per-loop task, so the deterministic merge (and
    jobs=1 vs jobs=n bit-identity) is preserved under faults that fire
    at deterministic points. *)

val analyze_source :
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?hierarchical:bool ->
  ?static:bool ->
  ?pool:Dca_support.Pool.t ->
  file:string ->
  string ->
  Dca_analysis.Proginfo.t * loop_result list
(** Convenience: parse, type-check, lower, analyze. *)

val commutative_ids : loop_result list -> string list

val is_commutative : loop_result -> bool

val decision_to_string : decision -> string
