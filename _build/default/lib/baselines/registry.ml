(** The five baselines of the paper's evaluation, and helpers to run them
    together (the "Combined Static" column of Table III). *)

let static_tools = [ Idioms_tool.tool; Polly_tool.tool; Icc_tool.tool ]
let dynamic_tools = [ Depprofiling_tool.tool; Discopop_tool.tool ]
let all = dynamic_tools @ static_tools

let run tool info profile = tool.Tool.tool_analyze info profile

(** Loops reported parallel by at least one of the given tools' results. *)
let combined_parallel_ids (per_tool : Tool.result list list) =
  List.concat_map Tool.parallel_ids per_tool |> List.sort_uniq compare
