(** The interpreter's mutable program state: the heap, the global table,
    the output stream, the [drand] generator state and the [reads] input
    cursor.  Everything is captured by {!snapshot} and brought back by
    {!restore} — the primitive DCA's dynamic stage uses to re-execute a
    loop from its entry state under different iteration schedules. *)

type t

type snapshot

val create : Dca_ir.Ir.program -> input:int list -> t
(** Fresh state with globals zero-initialized (or set to their constant
    initializers) and aggregate globals backed by fresh heap blocks. *)

val alloc : t -> Dca_ir.Layout.cellkind array -> count:int -> int
(** Allocate a block of [count] repetitions of the kind pattern, zero
    initialized; returns the block id. *)

val load : t -> block:int -> off:int -> Value.t
(** Raises [Failure] on a dangling block or out-of-bounds offset. *)

val store : t -> block:int -> off:int -> Value.t -> unit

val block_size : t -> int -> int option

val read_global : t -> int -> Value.t
val write_global : t -> int -> Value.t -> unit

val print_value : t -> Value.t -> unit
val print_string_ : t -> string -> unit
val outputs : t -> string list
(** Output lines, oldest first. *)

val drand : t -> float
(** Next value of the stateful generator (xorshift64*, in [0,1)). *)

val dseed : t -> int -> unit
val read_input : t -> int
(** Next integer of the input stream; 0 when exhausted. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val copy : t -> t
(** Deep copy: heap blocks and the global table are duplicated, so the
    copy can be mutated by another domain without affecting the original.
    The (immutable) input stream is shared. *)

val heap_blocks : t -> int
(** Number of live blocks (diagnostics). *)
