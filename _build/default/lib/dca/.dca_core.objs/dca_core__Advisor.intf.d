lib/dca/advisor.mli: Dca_analysis Dca_parallel Dca_profiling Driver
