lib/analysis/pdg.mli: Dca_ir Set
