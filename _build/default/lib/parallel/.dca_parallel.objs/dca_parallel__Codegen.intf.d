lib/parallel/codegen.mli: Dca_analysis Plan
