(* The differential fuzzing subsystem: generator well-formedness, the
   exhaustive permutation oracle, schedule properties, the shrinker, the
   driver's cross-checks, and replay of the checked-in counterexample
   corpus. *)

open Dca_support
open Dca_frontend
module Schedule = Dca_core.Schedule
module Driver = Dca_core.Driver
module Gen_program = Dca_gen.Gen_program
module Oracle = Dca_gen.Oracle
module Shrink = Dca_gen.Shrink
module Fuzz_driver = Dca_gen.Fuzz_driver

let parse source = Parser.parse_program ~file:"<test>" source

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_well_formed () =
  let root = Prng.create 7 in
  for _ = 1 to 25 do
    let g = Gen_program.generate ~max_iters:4 (Prng.split root) in
    (* generate already type-checked the program; re-parse its print *)
    let ast = parse g.Gen_program.g_source in
    ignore (Typecheck.check_program ast);
    (match Oracle.find_marked_loop ast with
    | Ok spec ->
        Alcotest.(check bool) "trip in bounds" true (spec.Oracle.sp_trip >= 2 && spec.Oracle.sp_trip <= 4)
    | Error msg -> Alcotest.failf "no marked loop: %s" msg);
    Alcotest.(check bool) "has recipes" true (g.Gen_program.g_recipes <> [])
  done

let test_generator_deterministic () =
  let gen seed = (Gen_program.generate ~max_iters:4 (Prng.create seed)).Gen_program.g_source in
  Alcotest.(check string) "same seed, same program" (gen 11) (gen 11);
  Alcotest.(check bool) "different seeds diverge somewhere" true
    (List.exists (fun s -> gen s <> gen (s + 1000)) [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let test_permutations_exhaustive () =
  let fact n = List.fold_left ( * ) 1 (List.init n (fun i -> i + 1)) in
  List.iter
    (fun n ->
      let perms = List.of_seq (Oracle.permutations n) in
      Alcotest.(check int) (Printf.sprintf "count %d" n) (fact n) (List.length perms);
      Alcotest.(check bool) "identity first" true
        (match perms with
        | first :: _ -> first = Array.init n (fun i -> i)
        | [] -> n = 0);
      let sorted = List.sort_uniq compare (List.map Array.to_list perms) in
      Alcotest.(check int) "all distinct" (fact n) (List.length sorted))
    [ 1; 2; 3; 4 ]

let oracle_verdict source =
  let ast = parse source in
  match Oracle.find_marked_loop ast with
  | Error msg -> Alcotest.failf "marked loop: %s" msg
  | Ok spec -> (Oracle.decide ~input:[] ast spec, ast, spec)

let test_oracle_commutative () =
  let v, _, _ =
    oracle_verdict
      {|
void main() {
  int a[8];
  int t = 0;
  while (t < 8) { a[t] = t; t = t + 1; }
  prints("DCA_FUZZ_LOOP");
  for (int i = 0; i < 4; i = i + 1) {
    a[i] = (a[i] * 2);
  }
  int q = 0;
  while (q < 8) { printi(a[q]); q = q + 1; }
}
|}
  in
  Alcotest.(check bool) "disjoint writes commute" true (v = Oracle.Commutative)

let test_oracle_non_commutative () =
  let v, ast, spec =
    oracle_verdict
      {|
void main() {
  int s = 1;
  prints("DCA_FUZZ_LOOP");
  for (int i = 0; i < 3; i = i + 1) {
    s = ((s * 2) + i);
  }
  printi(s);
}
|}
  in
  match v with
  | Oracle.Non_commutative perm ->
      (* the discovered witness must reproduce in a fresh re-execution *)
      Alcotest.(check bool) "witness reproduces" true
        (Oracle.check_witness ~input:[] ast spec perm = `Mismatch)
  | _ -> Alcotest.fail "scalar recurrence must be non-commutative"

let test_oracle_trip_bound () =
  let v, _, _ =
    oracle_verdict
      {|
void main() {
  int s = 0;
  prints("DCA_FUZZ_LOOP");
  for (int i = 0; i < 9; i = i + 1) {
    s = s + i;
  }
  printi(s);
}
|}
  in
  Alcotest.(check bool) "trip 9 unsupported" true
    (match v with Oracle.Unsupported _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Schedule properties (qcheck)                                        *)
(* ------------------------------------------------------------------ *)

let schedule_gen =
  QCheck.Gen.(
    oneof
      [
        return Schedule.Identity;
        return Schedule.Reverse;
        return Schedule.Rotate;
        map (fun s -> Schedule.Shuffle s) (int_bound 5000);
      ])

let arbitrary_schedule = QCheck.make ~print:Schedule.to_string schedule_gen

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun x ->
      x >= 0 && x < n
      &&
      if seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    a

let prop_apply_is_permutation =
  QCheck.Test.make ~count:300 ~name:"Schedule.apply yields a valid permutation"
    QCheck.(pair arbitrary_schedule (int_range 0 40))
    (fun (sched, n) -> is_permutation (Schedule.apply sched n))

let prop_reverse_involution =
  QCheck.Test.make ~count:100 ~name:"reverse o reverse = identity"
    QCheck.(int_range 0 40)
    (fun n ->
      let r = Schedule.apply Schedule.Reverse n in
      Array.init n (fun i -> r.(r.(i))) = Array.init n (fun i -> i))

let prop_of_string_roundtrip =
  QCheck.Test.make ~count:100 ~name:"Schedule.of_string o to_string = id" arbitrary_schedule
    (fun sched -> Schedule.of_string (Schedule.to_string sched) = Some sched)

let prop_sift_no_distinct_loss =
  QCheck.Test.make ~count:300 ~name:"sift keeps every distinct non-identity permutation"
    QCheck.(pair (list_of_size Gen.(int_range 0 8) arbitrary_schedule) (int_range 0 7))
    (fun (schedules, n) ->
      let kept, skipped = Schedule.sift schedules n in
      let identity = Array.init n (fun i -> i) in
      let kept_perms = List.map snd kept in
      (* counts add up *)
      List.length kept + skipped = List.length schedules
      (* kept permutations are distinct and never the identity *)
      && List.length (List.sort_uniq compare kept_perms) = List.length kept
      && (not (List.mem identity kept_perms))
      (* no distinct non-identity permutation was dropped *)
      && List.for_all
           (fun sched ->
             let p = Schedule.apply sched n in
             p = identity || List.mem p kept_perms)
           schedules
      (* and every kept pair is consistent with apply *)
      && List.for_all (fun (sched, p) -> Schedule.apply sched n = p) kept)

(* ------------------------------------------------------------------ *)
(* Printer round trip (qcheck over generated programs)                 *)
(* ------------------------------------------------------------------ *)

let prop_printer_roundtrip =
  QCheck.Test.make ~count:60 ~name:"generated programs: print o parse o print is a fixpoint"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = Gen_program.generate ~max_iters:4 (Prng.create seed) in
      let src = g.Gen_program.g_source in
      let ast = parse src in
      ignore (Typecheck.check_program ast);
      Ast_printer.program_to_string ast = src)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrink_terminates_and_minimizes () =
  let source =
    {|
void main() {
  int s = 1;
  int unused = 42;
  prints("DCA_FUZZ_LOOP");
  for (int i = 0; i < 3; i = i + 1) {
    s = ((s * 2) + i);
    unused = (unused + 7);
  }
  printi(s);
  printi(unused);
}
|}
  in
  let keep p =
    match
      let src = Ast_printer.program_to_string p in
      let ast = parse src in
      match Oracle.find_marked_loop ast with
      | Error _ -> false
      | Ok spec -> (
          match Oracle.decide ~input:[] ast spec with Oracle.Non_commutative _ -> true | _ -> false)
    with
    | r -> r
    | exception _ -> false
  in
  let p0 = parse source in
  Alcotest.(check bool) "original fails" true (keep p0);
  let minimal = Shrink.program ~keep p0 in
  Alcotest.(check bool) "shrunk still fails" true (keep minimal);
  let n0, _ = Shrink.size p0 and n1, _ = Shrink.size minimal in
  Alcotest.(check bool) "strictly smaller" true (n1 < n0);
  (* the commutative decoration around the recurrence must be gone *)
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let printed = Ast_printer.program_to_string minimal in
  Alcotest.(check bool) "unused accumulator dropped" false (contains_sub printed "unused")

(* ------------------------------------------------------------------ *)
(* Driver cross-checks                                                 *)
(* ------------------------------------------------------------------ *)

let test_fuzz_run_clean () =
  let cfg =
    { Fuzz_driver.default_config with Fuzz_driver.fz_seed = 5; fz_count = 8; fz_max_iters = 3 }
  in
  let r = Fuzz_driver.run cfg in
  Alcotest.(check int) "no violations" 0 (List.length r.Fuzz_driver.r_violations)

let test_fuzz_report_deterministic () =
  let cfg =
    {
      Fuzz_driver.default_config with
      Fuzz_driver.fz_seed = 9;
      fz_count = 6;
      fz_max_iters = 3;
      fz_metamorphic = false;
    }
  in
  let r1 = Fuzz_driver.run cfg in
  let r2 = Fuzz_driver.run cfg in
  Alcotest.(check string) "same seed, same report" r1.Fuzz_driver.r_report r2.Fuzz_driver.r_report;
  let r4 = Fuzz_driver.run { cfg with Fuzz_driver.fz_jobs = 4 } in
  Alcotest.(check string) "jobs=4 report identical" r1.Fuzz_driver.r_report r4.Fuzz_driver.r_report

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs the executable inside test/, `dune exec` from the
   workspace root — accept either. *)
let corpus_dir () = if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  let dir = corpus_dir () in
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".mc")
      |> List.sort compare
      |> List.map (fun f -> Filename.concat dir f)
  | exception Sys_error _ -> []

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus present" true (List.length files >= 5);
  List.iteri
    (fun index path ->
      let source = read_file path in
      let out = Fuzz_driver.check_source ~index source in
      List.iter
        (fun v ->
          Alcotest.failf "%s: %s: %s" path
            (Fuzz_driver.violation_kind_to_string v.Fuzz_driver.vi_kind)
            v.Fuzz_driver.vi_detail)
        out.Fuzz_driver.po_violations;
      (* regression bite: on these small loops DCA's preset schedules are
         exhaustive enough that its verdict must MATCH the ground truth,
         not merely avoid unsoundness — the checked-in non-commutative
         programs are exactly the ones the old local-array digest missed *)
      match (out.Fuzz_driver.po_oracle, out.Fuzz_driver.po_dca) with
      | Oracle.Commutative, Some Driver.Commutative -> ()
      | Oracle.Non_commutative _, Some (Driver.Non_commutative _) -> ()
      | o, d ->
          Alcotest.failf "%s: oracle %s vs DCA %s" path
            (match o with
            | Oracle.Commutative -> "commutative"
            | Oracle.Non_commutative _ -> "non-commutative"
            | Oracle.Unsupported m -> "unsupported: " ^ m)
            (match d with
            | Some Driver.Commutative -> "commutative"
            | Some (Driver.Non_commutative m) -> "non-commutative: " ^ m
            | Some (Driver.Untestable m) -> "untestable: " ^ m
            | Some (Driver.Rejected _) -> "rejected"
            | Some (Driver.Subsumed _) -> "subsumed"
            | Some (Driver.Aborted _) -> "aborted"
            | None -> "missing"))
    files

let suites =
  [
    ( "fuzz-generator",
      [
        Alcotest.test_case "well-formed output" `Quick test_generator_well_formed;
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        QCheck_alcotest.to_alcotest prop_printer_roundtrip;
      ] );
    ( "fuzz-oracle",
      [
        Alcotest.test_case "permutation enumeration" `Quick test_permutations_exhaustive;
        Alcotest.test_case "commutative loop" `Quick test_oracle_commutative;
        Alcotest.test_case "non-commutative loop" `Quick test_oracle_non_commutative;
        Alcotest.test_case "trip bound" `Quick test_oracle_trip_bound;
      ] );
    ( "fuzz-schedule-props",
      [
        QCheck_alcotest.to_alcotest prop_apply_is_permutation;
        QCheck_alcotest.to_alcotest prop_reverse_involution;
        QCheck_alcotest.to_alcotest prop_of_string_roundtrip;
        QCheck_alcotest.to_alcotest prop_sift_no_distinct_loss;
      ] );
    ( "fuzz-shrink",
      [ Alcotest.test_case "terminates and minimizes" `Quick test_shrink_terminates_and_minimizes ] );
    ( "fuzz-driver",
      [
        Alcotest.test_case "small run is clean" `Quick test_fuzz_run_clean;
        Alcotest.test_case "report deterministic across jobs" `Quick test_fuzz_report_deterministic;
        Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
      ] );
  ]
