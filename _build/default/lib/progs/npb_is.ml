(** IS — Integer Sort (NPB).

    Bucket/counting sort: key histogram (the idiom the constraint-based
    detector is built for), an order-dependent prefix sum over bucket
    counts, and the scatter phase.  The scatter increments per-key
    cursors, which looks like a fatal dependence to every
    dependence-based tool — yet permuting it only permutes {e equal}
    keys, so the live-out array is unchanged and DCA correctly reports it
    commutative. *)

let source =
  {|
// NPB IS kernel, MiniC port (counting sort of hashed keys).
int nkeys;
int maxkey;
int keys[512];
int counts[64];
int offsets[64];
int sorted[512];
int rank_of[512];
int density[8];
int verified;

void main() {
  nkeys = 512;
  maxkey = 64;
  int i;
  // key generation (pure hash randoms)
  for (i = 0; i < nkeys; i = i + 1) {
    keys[i] = ftoi(hrand(i) * itof(maxkey));
    if (keys[i] >= maxkey) { keys[i] = maxkey - 1; }
  }
  // histogram
  for (i = 0; i < maxkey; i = i + 1) { counts[i] = 0; }
  for (i = 0; i < nkeys; i = i + 1) { counts[keys[i]] = counts[keys[i]] + 1; }
  // prefix sum over buckets: order-dependent
  offsets[0] = 0;
  for (i = 1; i < maxkey; i = i + 1) { offsets[i] = offsets[i - 1] + counts[i - 1]; }
  // scatter: per-key cursors advance, but equal keys are interchangeable
  for (i = 0; i < nkeys; i = i + 1) {
    int k = keys[i];
    int pos = offsets[k];
    offsets[k] = pos + 1;
    sorted[pos] = k;
  }
  // rank assignment from the sorted array (parallel, disjoint writes)
  for (i = 0; i < nkeys; i = i + 1) { rank_of[i] = sorted[i]; }
  // key-density summary over coarse buckets (histogram)
  for (i = 0; i < 8; i = i + 1) { density[i] = 0; }
  for (i = 0; i < nkeys; i = i + 1) {
    density[keys[i] * 8 / maxkey] = density[keys[i] * 8 / maxkey] + 1;
  }
  // verification: sorted order and content
  verified = 1;
  for (i = 1; i < nkeys; i = i + 1) {
    if (sorted[i - 1] > sorted[i]) { verified = 0; }
  }
  int total = 0;
  for (i = 0; i < maxkey; i = i + 1) { total = total + counts[i]; }
  if (total != nkeys) { verified = 0; }
  int dtotal = 0;
  for (i = 0; i < 8; i = i + 1) { dtotal = dtotal + density[i]; }
  if (dtotal != nkeys) { verified = 0; }
  // full_verify: every rank must match its sorted key (reduction of mismatches)
  int mismatches = 0;
  for (i = 0; i < nkeys; i = i + 1) {
    if (rank_of[i] != sorted[i]) { mismatches = mismatches + 1; }
  }
  if (mismatches != 0) { verified = 0; }
  printi(sorted[0]);
  printi(sorted[nkeys - 1]);
  printi(total);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"IS" ~suite:Benchmark.Npb
       ~description:"counting sort: histogram, prefix sum, scatter" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.Nth_in_func ("main", 0) (* key generation *);
        Benchmark.Nth_in_func ("main", 1) (* bucket clear *);
        Benchmark.Nth_in_func ("main", 2) (* key histogram *);
        Benchmark.Nth_in_func ("main", 5) (* rank assignment *);
        Benchmark.Nth_in_func ("main", 7) (* density histogram *);
        Benchmark.Nth_in_func ("main", 9) (* bucket total *);
        Benchmark.Nth_in_func ("main", 11) (* full_verify *);
      ];
    bm_expert_sections =
      [ [ Benchmark.Nth_in_func ("main", 1); Benchmark.Nth_in_func ("main", 2) ] ];
    bm_expert_extra = 0.1;
    bm_known_sequential = [ Benchmark.Nth_in_func ("main", 3) (* bucket prefix sum *) ];
  }
