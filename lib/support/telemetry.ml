external now_ns : unit -> int = "dca_monotonic_now_ns" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* Collection flags                                                    *)
(* ------------------------------------------------------------------ *)

(* Atomics, not plain refs: the flags are read from pool worker domains.
   The reads compile to plain loads — the disabled fast path is one load
   and one branch, with no allocation. *)
let tracing_flag = Atomic.make false
let counting_flag = Atomic.make false

let tracing () = Atomic.get tracing_flag
let counting () = Atomic.get counting_flag
let set_tracing b = Atomic.set tracing_flag b
let set_counting b = Atomic.set counting_flag b

type config = { cfg_trace : string option; cfg_jsonl : string option; cfg_stats : bool }

let current_config = ref { cfg_trace = None; cfg_jsonl = None; cfg_stats = false }
let explicitly_configured = ref false
let env_inited = ref false

let configure cfg =
  explicitly_configured := true;
  current_config := cfg;
  let tracing = cfg.cfg_trace <> None || cfg.cfg_jsonl <> None in
  set_tracing tracing;
  set_counting (tracing || cfg.cfg_stats)

let config () = !current_config

let init_from_env () =
  if not (!explicitly_configured || !env_inited) then begin
    env_inited := true;
    let trace = Sys.getenv_opt "DCA_TRACE" in
    let stats =
      match Sys.getenv_opt "DCA_STATS" with Some "" | Some "0" | None -> false | Some _ -> true
    in
    let cfg =
      match trace with
      | Some f when f <> "" ->
          if Filename.check_suffix f ".jsonl" then
            { cfg_trace = None; cfg_jsonl = Some f; cfg_stats = stats }
          else { cfg_trace = Some f; cfg_jsonl = None; cfg_stats = stats }
      | _ -> { cfg_trace = None; cfg_jsonl = None; cfg_stats = stats }
    in
    current_config := cfg;
    let tracing = cfg.cfg_trace <> None || cfg.cfg_jsonl <> None in
    set_tracing tracing;
    set_counting (tracing || cfg.cfg_stats)
  end

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type kind = Work | Diag

type counter = { c_name : string; c_kind : kind; c_cell : int Atomic.t }

let registry : counter list ref = ref []
let registry_mutex = Mutex.create ()

let counter ?(kind = Work) name =
  Mutex.protect registry_mutex (fun () ->
      match List.find_opt (fun c -> c.c_name = name) !registry with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_kind = kind; c_cell = Atomic.make 0 } in
          registry := c :: !registry;
          c)

let add c n = if Atomic.get counting_flag then ignore (Atomic.fetch_and_add c.c_cell n)

let incr c = add c 1

let add_max c n =
  if Atomic.get counting_flag then begin
    let rec bump () =
      let cur = Atomic.get c.c_cell in
      if n > cur && not (Atomic.compare_and_set c.c_cell cur n) then bump ()
    in
    bump ()
  end

let value c = Atomic.get c.c_cell

let counters ?kind () =
  Mutex.protect registry_mutex (fun () ->
      List.filter (fun c -> match kind with None -> true | Some k -> c.c_kind = k) !registry)
  |> List.map (fun c -> (c.c_name, Atomic.get c.c_cell))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Per-domain event buffers                                            *)
(* ------------------------------------------------------------------ *)

type event = {
  e_ph : char;
  e_name : string;
  e_cat : string;
  e_ts : int;
  e_tid : int;
  e_args : (string * string) list;
}

(* One buffer per domain, registered on the domain's first event.  Events
   are consed locally (newest first) with no cross-domain synchronization;
   sinks read the buffers only from the main domain, after the workers
   have gone quiet (pool maps are synchronous).  [reset] swaps the inner
   refs rather than the registry so stale DLS handles stay harmless. *)
let buffers : event list ref list ref = ref []
let buffers_mutex = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = ref [] in
      Mutex.protect buffers_mutex (fun () -> buffers := b :: !buffers);
      b)

let record ph ?(args = []) ~cat name =
  let ev =
    {
      e_ph = ph;
      e_name = name;
      e_cat = cat;
      e_ts = now_ns ();
      e_tid = (Domain.self () :> int);
      e_args = args;
    }
  in
  let b = Domain.DLS.get buffer_key in
  b := ev :: !b

let begin_span ?(cat = "") name = if Atomic.get tracing_flag then record 'B' ~cat name

let end_span ?args name = if Atomic.get tracing_flag then record 'E' ?args ~cat:"" name

let span ?cat name f =
  if Atomic.get tracing_flag then begin
    begin_span ?cat name;
    Fun.protect ~finally:(fun () -> end_span name) f
  end
  else f ()

let instant ?args name = if Atomic.get tracing_flag then record 'i' ?args ~cat:"" name

let events () =
  Mutex.protect buffers_mutex (fun () -> List.rev !buffers)
  |> List.concat_map (fun b -> List.rev !b)

let reset () =
  Mutex.protect registry_mutex (fun () ->
      List.iter (fun c -> Atomic.set c.c_cell 0) !registry);
  Mutex.protect buffers_mutex (fun () -> List.iter (fun b -> b := []) !buffers)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let stats_table () =
  let render title kind buf =
    let nonzero = List.filter (fun (_, v) -> v <> 0) (counters ~kind ()) in
    if nonzero <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%s\n" title);
      List.iter (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-36s %14d\n" n v)) nonzero
    end
  in
  let buf = Buffer.create 512 in
  render "-- work counters (deterministic across jobs and checkpoint modes) --" Work buf;
  render "-- diagnostic counters (machine- and schedule-dependent) --" Diag buf;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no counters recorded)\n";
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  if args = [] then ""
  else
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) args))

let with_out file f =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let write_chrome_trace file =
  let evs = events () in
  let t0 = List.fold_left (fun acc e -> min acc e.e_ts) max_int evs in
  with_out file (fun oc ->
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i e ->
          if i > 0 then output_string oc ",";
          (* microsecond timestamps, rebased to the first event *)
          Printf.fprintf oc "\n{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\"%s%s}"
            e.e_ph e.e_tid
            (float_of_int (e.e_ts - t0) /. 1000.0)
            (json_escape e.e_name)
            (if e.e_cat = "" then "" else Printf.sprintf ",\"cat\":\"%s\"" (json_escape e.e_cat))
            (args_json e.e_args))
        evs;
      output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n")

let write_jsonl file =
  with_out file (fun oc ->
      List.iter
        (fun e ->
          Printf.fprintf oc "{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"name\":\"%s\"%s%s}\n"
            e.e_ph e.e_tid e.e_ts (json_escape e.e_name)
            (if e.e_cat = "" then "" else Printf.sprintf ",\"cat\":\"%s\"" (json_escape e.e_cat))
            (args_json e.e_args))
        (events ()))

let flush () =
  let cfg = !current_config in
  (match cfg.cfg_trace with Some f -> write_chrome_trace f | None -> ());
  (match cfg.cfg_jsonl with Some f -> write_jsonl f | None -> ());
  if cfg.cfg_stats then prerr_string (stats_table ())
