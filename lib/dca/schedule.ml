open Dca_support

type t = Identity | Reverse | Rotate | Shuffle of int

let apply t n =
  match t with
  | Identity -> Array.init n (fun i -> i)
  | Reverse -> Array.init n (fun i -> n - 1 - i)
  | Rotate ->
      let half = (n + 1) / 2 in
      Array.init n (fun i -> (i + half) mod n)
  | Shuffle seed ->
      let prng = Prng.create (seed * 0x9E3779B9) in
      Prng.permutation prng n

let presets ?(shuffles = 3) ?(seed = 2021) () =
  [ Reverse; Rotate ] @ List.init shuffles (fun k -> Shuffle (seed + k))

let to_string = function
  | Identity -> "identity"
  | Reverse -> "reverse"
  | Rotate -> "rotate-half"
  | Shuffle seed -> Printf.sprintf "shuffle(%d)" seed

let of_string s =
  match s with
  | "identity" -> Some Identity
  | "reverse" -> Some Reverse
  | "rotate-half" -> Some Rotate
  | _ ->
      if String.length s > 8 && String.sub s 0 8 = "shuffle(" && s.[String.length s - 1] = ')' then
        match int_of_string_opt (String.sub s 8 (String.length s - 9)) with
        | Some seed -> Some (Shuffle seed)
        | None -> None
      else None

(* Sift the schedule list for one trip count: drop schedules whose induced
   permutation is the identity (trip count <= 1 makes them all identity) or
   duplicates an earlier schedule's permutation at this [n].  Returns the
   kept schedules (with their permutation) and the number sifted out. *)
let sift schedules n =
  let identity = Array.init n (fun i -> i) in
  let rec go kept skipped = function
    | [] -> (List.rev kept, skipped)
    | sched :: rest ->
        let perm = apply sched n in
        if perm = identity || List.exists (fun (_, p) -> p = perm) kept then
          go kept (skipped + 1) rest
        else go ((sched, perm) :: kept) skipped rest
  in
  go [] 0 schedules
