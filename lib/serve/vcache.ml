(* Two-level content-addressed verdict cache.

   Level 1 is an in-memory LRU over marshal-free entries; level 2 is an
   on-disk store (one file per key) that survives daemon restarts.  Keys
   come from Progdigest.loop_key; values are the per-loop (decision,
   outcome) pair — everything Report needs to render a summary line and
   the counters footer byte-identically to a cold run.  The containing
   Loops.loop and the label are *not* stored: they are rebuilt from the
   fresh static analysis on every request (the cheap part), which also
   guarantees a hit can never resurrect stale structural data.

   Disk format (all bytes after the header are Marshal output):

     DCAV1\n<hex md5 of payload>\n<payload>

   The digest line makes torn writes and bit rot detectable: any
   mismatch, short file, bad magic, or Marshal failure counts as
   [st_corrupt] and degrades to a recompute — never a crash.  Writes go
   through a temp file + rename, so a concurrently reading process sees
   either the old entry or the new one, never a torn one.

   One mutex serializes the whole cache — table, LRU clock, and the
   stats fields (plain mutable ints, exact because every touch happens
   under the lock).  The concurrent daemon probes and stores from many
   worker domains; holding the lock across the disk read/write keeps
   the hit/miss/store accounting a single consistent story per call,
   and the I/O it covers is small (one verdict record) next to the
   dynamic-stage work a miss implies.  Two *processes* sharing a
   directory still at worst recompute (atomic rename keeps the files
   well-formed). *)

module Driver = Dca_core.Driver
module Commutativity = Dca_core.Commutativity
module Report = Dca_core.Report
module Faultpoint = Dca_support.Faultpoint

(* Fault site for the disk-write path: an injected raise here models
   ENOSPC/EIO and must downgrade the cache to memory-only, never fail
   the request. *)
let fp_write = Faultpoint.site "vcache.write"

type entry = {
  e_decision : Driver.decision;
  e_outcome : Commutativity.outcome option;
  e_provenance : Report.provenance;
  e_prog_digest : string;
      (* whole-program digest at creation: entries whose outcome used
         whole-program verification are only valid while it matches *)
}

type stats = {
  st_mem_hits : int;
  st_disk_hits : int;
  st_misses : int;
  st_stores : int;
  st_corrupt : int;
  st_evictions : int;
  st_write_errors : int;
}

type t = {
  dir : string option;
  capacity : int;
  on_degrade : string -> unit;
  lock : Mutex.t;
  mem : (string, entry * int ref) Hashtbl.t;  (* key → entry, last-use tick *)
  mutable clock : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
  mutable evictions : int;
  mutable write_errors : int;
  mutable degraded : bool;  (* disk writes disabled after the first failure *)
}

let magic = "DCAV1"

let create ?dir ?(capacity = 4096) ?(on_degrade = fun _ -> ()) () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  {
    dir;
    capacity = max 1 capacity;
    on_degrade;
    lock = Mutex.create ();
    mem = Hashtbl.create 256;
    clock = 0;
    mem_hits = 0;
    disk_hits = 0;
    misses = 0;
    stores = 0;
    corrupt = 0;
    evictions = 0;
    write_errors = 0;
    degraded = false;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let path t key = match t.dir with None -> None | Some d -> Some (Filename.concat d (key ^ ".v"))

(* Evict the least-recently-used entries down to capacity.  A linear scan
   per eviction is O(capacity) — with the default capacity and one
   eviction per insert-at-full, amortized cost is negligible next to one
   dynamic-stage replay. *)
let enforce_capacity t =
  while Hashtbl.length t.mem > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun k (_, last) ->
        match !victim with
        | Some (_, lbest) when !last >= lbest -> ()
        | _ -> victim := Some (k, !last))
      t.mem;
    match !victim with
    | Some (k, _) ->
        Hashtbl.remove t.mem k;
        t.evictions <- t.evictions + 1
    | None -> ()
  done

let mem_insert t key entry =
  Hashtbl.replace t.mem key (entry, ref (tick t));
  enforce_capacity t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let disk_read t key =
  match path t key with
  | None -> None
  | Some file ->
      if not (Sys.file_exists file) then None
      else begin
        match
          let raw = read_file file in
          (* header: magic line, digest line, payload *)
          let nl1 = String.index raw '\n' in
          let nl2 = String.index_from raw (nl1 + 1) '\n' in
          let head = String.sub raw 0 nl1 in
          let want = String.sub raw (nl1 + 1) (nl2 - nl1 - 1) in
          let payload = String.sub raw (nl2 + 1) (String.length raw - nl2 - 1) in
          if head <> magic then failwith "bad magic";
          if Digest.to_hex (Digest.string payload) <> want then failwith "digest mismatch";
          (Marshal.from_string payload 0 : entry)
        with
        | entry -> Some entry
        | exception _ ->
            t.corrupt <- t.corrupt + 1;
            None
      end

(* A failed disk write (ENOSPC, EIO, read-only directory, injected
   [vcache.write] fault) latches [degraded]: the cache downgrades to
   memory-only operation — later stores skip the disk entirely rather
   than paying a doomed syscall per verdict — and [on_degrade] fires
   exactly once so the embedder can log and count the event.  Reads keep
   probing the disk: a read-only directory still serves its old entries.
   A daemon restart re-probes the disk (degradation is per-instance). *)
let disk_write t key entry =
  match path t key with
  | None -> ()
  | Some file -> (
      if not t.degraded then
        try
          Faultpoint.hit_unit fp_write;
          let payload = Marshal.to_string entry [] in
          let tmp = file ^ ".tmp" in
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc magic;
              output_char oc '\n';
              output_string oc (Digest.to_hex (Digest.string payload));
              output_char oc '\n';
              output_string oc payload);
          Sys.rename tmp file
        with e ->
          (* a full or read-only disk degrades the cache, never the reply *)
          t.write_errors <- t.write_errors + 1;
          t.degraded <- true;
          (try Sys.remove (file ^ ".tmp") with Sys_error _ -> ());
          t.on_degrade (Printexc.to_string e))

(* An entry that escalated to whole-program verification had its verdict
   decided by the *whole* program's outputs, so the per-function closure
   key under-approximates its dependencies: demand the whole-program
   digest too. *)
let valid ~prog_digest entry =
  match entry.e_outcome with
  | Some oc when oc.Commutativity.oc_escalated -> entry.e_prog_digest = prog_digest
  | _ -> true

let find t ~prog_digest key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.mem key with
      | Some (entry, last) when valid ~prog_digest entry ->
          last := tick t;
          t.mem_hits <- t.mem_hits + 1;
          Some entry
      | Some _ ->
          Hashtbl.remove t.mem key;
          t.misses <- t.misses + 1;
          None
      | None -> (
          match disk_read t key with
          | Some entry when valid ~prog_digest entry ->
              t.disk_hits <- t.disk_hits + 1;
              mem_insert t key entry;
              Some entry
          | _ ->
              t.misses <- t.misses + 1;
              None))

let store t key entry =
  Mutex.protect t.lock (fun () ->
      t.stores <- t.stores + 1;
      mem_insert t key entry;
      disk_write t key entry)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        st_mem_hits = t.mem_hits;
        st_disk_hits = t.disk_hits;
        st_misses = t.misses;
        st_stores = t.stores;
        st_corrupt = t.corrupt;
        st_evictions = t.evictions;
        st_write_errors = t.write_errors;
      })

let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.mem)
let degraded t = Mutex.protect t.lock (fun () -> t.degraded)
