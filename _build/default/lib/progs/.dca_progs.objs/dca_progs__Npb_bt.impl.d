lib/progs/npb_bt.ml: Benchmark
