open Dca_analysis
open Dca_profiling

type strategy = Best_benefit | Among of string list

(* Simulated parallel cost of the loop's whole dynamic extent, scaled from
   the recorded invocations to the loop's totals. *)
let parallel_cost ~machine (lp : Depprof.loop_profile) ~reductions =
  let recorded = lp.Depprof.lp_invocations in
  if recorded = [] then float_of_int lp.Depprof.lp_total_cost
  else begin
    let sim_recorded =
      List.fold_left
        (fun acc inv -> acc +. Machine.makespan machine inv.Depprof.inv_iter_costs ~reductions)
        0.0 recorded
    in
    let seq_recorded =
      List.fold_left
        (fun acc inv -> acc +. Machine.sequential_time inv.Depprof.inv_iter_costs)
        0.0 recorded
    in
    if seq_recorded <= 0.0 then sim_recorded
    else sim_recorded *. (float_of_int lp.Depprof.lp_total_cost /. seq_recorded)
  end

let reductions_of info loop_id =
  match Proginfo.loop_by_id info loop_id with
  | None -> []
  | Some (fi, loop) ->
      let classes =
        Scalars.classify_loop fi.Proginfo.fi_cfg fi.Proginfo.fi_affine fi.Proginfo.fi_live loop
      in
      List.filter_map
        (fun (vid, c) ->
          match c with
          | Scalars.Reduction op ->
              let name =
                match Liveness.var_of_id fi.Proginfo.fi_live vid with
                | Some v -> v.Dca_ir.Ir.vname
                | None -> Printf.sprintf "v%d" vid
              in
              Some (name, op)
          | _ -> None)
        classes
      @ List.filter_map
          (fun r ->
            match r.Memred.rmw_kind with
            | Memred.Global_scalar slot ->
                let prog = Proginfo.program info in
                let name = prog.Dca_ir.Ir.p_globals.(slot).Dca_ir.Ir.g_var.Dca_ir.Ir.vname in
                Some (name, r.Memred.rmw_op)
            | Memred.Array_cell _ -> None)
          (Memred.find fi.Proginfo.fi_cfg fi.Proginfo.fi_affine loop)

let privates_of info loop_id =
  match Proginfo.loop_by_id info loop_id with
  | None -> []
  | Some (fi, loop) ->
      Scalars.classify_loop fi.Proginfo.fi_cfg fi.Proginfo.fi_affine fi.Proginfo.fi_live loop
      |> List.filter_map (fun (vid, c) ->
             match c with
             | Scalars.Private -> (
                 match Liveness.var_of_id fi.Proginfo.fi_live vid with
                 | Some v when not v.Dca_ir.Ir.vtemp -> Some v.Dca_ir.Ir.vname
                 | _ -> None)
             | _ -> None)
      |> List.sort_uniq compare

let benefit_of info machine profile loop_id =
  match Depprof.loop_profile profile loop_id with
  | None -> neg_infinity
  | Some lp ->
      let reductions = List.length (reductions_of info loop_id) in
      float_of_int lp.Depprof.lp_total_cost -. parallel_cost ~machine lp ~reductions

(* Two loops conflict when some executed instruction had both active —
   i.e. they appear together in a coverage bucket. *)
let conflicts profile a b =
  List.exists
    (fun (stack, _) -> List.mem a stack && List.mem b stack)
    profile.Depprof.pr_buckets

let select ~machine info profile ~detected ~strategy =
  let pool =
    match strategy with
    | Best_benefit -> detected
    | Among ids -> List.filter (fun id -> List.mem id ids) detected
  in
  let scored =
    List.map (fun id -> (id, benefit_of info machine profile id)) pool
    |> List.filter (fun (_, b) -> b > 0.0)
    |> List.sort (fun (_, b1) (_, b2) -> compare b2 b1)
  in
  let chosen =
    List.fold_left
      (fun acc (id, _) -> if List.exists (fun c -> conflicts profile c id) acc then acc else id :: acc)
      [] scored
    |> List.rev
  in
  let mk_plan id =
    let label =
      match Proginfo.loop_by_id info id with
      | Some (_, loop) -> Proginfo.loop_label info loop
      | None -> id
    in
    {
      Plan.lp_loop_id = id;
      lp_label = label;
      lp_private = privates_of info id;
      lp_reductions = reductions_of info id;
      lp_fused_group = None;
    }
  in
  { Plan.plan_loops = List.map mk_plan chosen }

let estimated_benefit ~machine profile loop_id =
  match Depprof.loop_profile profile loop_id with
  | None -> neg_infinity
  | Some lp ->
      float_of_int lp.Depprof.lp_total_cost -. parallel_cost ~machine lp ~reductions:0
