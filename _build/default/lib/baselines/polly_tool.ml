(** Polly-like polyhedral parallelization (paper §V-A), with
    [-polly-process-unprofitable] so no profitability filtering.

    A loop is parallelizable when it forms a static control part: every
    loop of the nest is a counted loop, there are no calls at all inside
    (Polly rejects non-intrinsic calls), all memory accesses have affine
    subscripts on statically known base objects, scalars are induction /
    private / sum-or-product reductions, and the dependence test proves
    the absence of carried dependences. *)

open Dca_analysis

let name = "Polly"

let classify info fi (loop : Loops.loop) : Tool.verdict =
  if Static_common.loop_does_io info fi loop then Tool.Not_parallel "I/O inside loop"
  else if Static_common.calls_in fi loop <> [] then Tool.Not_parallel "call inside SCoP"
  else if not (Static_common.nest_is_counted fi loop) then
    Tool.Not_parallel "nest is not affine-counted"
  else begin
    match
      Static_common.scalar_blocker fi loop ~reductions_ok:(function
        | Scalars.Rsum | Scalars.Rprod -> true
        | Scalars.Rmin | Scalars.Rmax -> false)
    with
    | Some why -> Tool.Not_parallel why
    | None -> begin
        let rmws =
          Memred.find fi.Proginfo.fi_cfg fi.Proginfo.fi_affine loop
          |> List.filter (fun r ->
                 match (r.Memred.rmw_kind, r.Memred.rmw_op) with
                 | Memred.Global_scalar _, (Scalars.Rsum | Scalars.Rprod) -> true
                 | _ -> false)
        in
        (* every access must be affine inside a SCoP *)
        let accesses = Affine.accesses_of_loop fi.Proginfo.fi_affine loop in
        match List.find_opt (fun a -> a.Affine.acc_subscript = None) accesses with
        | Some a ->
            Tool.Not_parallel
              (Printf.sprintf "non-affine access at %s" (Dca_frontend.Loc.to_string a.Affine.acc_loc))
        | None -> (
            match Static_common.memory_blocker fi loop ~exempt_rmws:rmws ~allow_unknown_roots:false with
            | Some why -> Tool.Not_parallel why
            | None -> Tool.Parallel)
      end
  end

let tool =
  {
    Tool.tool_name = name;
    tool_static = true;
    tool_analyze = (fun info _ -> Tool.per_loop info (classify info));
  }
