test/test_experiments.ml: Alcotest Dca_experiments Dca_progs Figures Lazy List Paper_data Printf Tables
