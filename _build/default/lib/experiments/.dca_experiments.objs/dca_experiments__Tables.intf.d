lib/experiments/tables.mli:
