(** Tokens of the MiniC surface language. *)

type t =
  | Tident of string
  | Tint_lit of int
  | Tfloat_lit of float
  | Tstring_lit of string
  (* keywords *)
  | Kint
  | Kfloat
  | Kvoid
  | Kstruct
  | Kif
  | Kelse
  | Kwhile
  | Kfor
  | Kreturn
  | Kbreak
  | Kcontinue
  | Knull
  | Knew
  (* punctuation and operators *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Arrow
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Bang
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Andand
  | Oror
  | Eof

let keyword_of_string = function
  | "int" -> Some Kint
  | "float" -> Some Kfloat
  | "void" -> Some Kvoid
  | "struct" -> Some Kstruct
  | "if" -> Some Kif
  | "else" -> Some Kelse
  | "while" -> Some Kwhile
  | "for" -> Some Kfor
  | "return" -> Some Kreturn
  | "break" -> Some Kbreak
  | "continue" -> Some Kcontinue
  | "null" -> Some Knull
  | "new" -> Some Knew
  | _ -> None

let to_string = function
  | Tident s -> s
  | Tint_lit n -> string_of_int n
  | Tfloat_lit f -> string_of_float f
  | Tstring_lit s -> Printf.sprintf "%S" s
  | Kint -> "int"
  | Kfloat -> "float"
  | Kvoid -> "void"
  | Kstruct -> "struct"
  | Kif -> "if"
  | Kelse -> "else"
  | Kwhile -> "while"
  | Kfor -> "for"
  | Kreturn -> "return"
  | Kbreak -> "break"
  | Kcontinue -> "continue"
  | Knull -> "null"
  | Knew -> "new"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Dot -> "."
  | Arrow -> "->"
  | Assign -> "="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Bang -> "!"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Andand -> "&&"
  | Oror -> "||"
  | Eof -> "<eof>"
