open Dca_frontend
open Dca_ir

type summary = {
  s_reads_memory : bool;
  s_writes_memory : bool;
  s_io : bool;
  s_calls_unknown : bool;
}

type t = (string, summary) Hashtbl.t

let bottom = { s_reads_memory = false; s_writes_memory = false; s_io = false; s_calls_unknown = false }
let top = { s_reads_memory = true; s_writes_memory = true; s_io = true; s_calls_unknown = true }

let join a b =
  {
    s_reads_memory = a.s_reads_memory || b.s_reads_memory;
    s_writes_memory = a.s_writes_memory || b.s_writes_memory;
    s_io = a.s_io || b.s_io;
    s_calls_unknown = a.s_calls_unknown || b.s_calls_unknown;
  }

let builtin_summary (b : Ast.builtin) =
  if b.bi_io then { s_reads_memory = true; s_writes_memory = true; s_io = true; s_calls_unknown = false }
  else if b.bi_pure then bottom
  else
    (* drand/dseed: thread the generator state, modelled as memory. *)
    { s_reads_memory = true; s_writes_memory = true; s_io = false; s_calls_unknown = false }

let call_targets f =
  Array.to_list f.Ir.fblocks
  |> List.concat_map (fun blk ->
         List.filter_map
           (fun i -> match i.Ir.idesc with Ir.Call (_, name, _) -> Some name | _ -> None)
           blk.Ir.instrs)
  |> List.sort_uniq compare

(* Direct (call-free) effects of one instruction. *)
let direct_effects = function
  | Ir.Load _ | Ir.Gload _ -> { bottom with s_reads_memory = true }
  | Ir.Store _ | Ir.Gstore _ | Ir.Alloc _ -> { bottom with s_writes_memory = true }
  | Ir.Print _ | Ir.Prints _ -> { bottom with s_io = true }
  | Ir.Call _ -> bottom (* handled via the call graph *)
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Gep _ | Ir.Gaddr _ -> bottom

let analyze (p : Ir.program) : t =
  let tbl : t = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace tbl b.Ast.bi_name (builtin_summary b)) Ast.builtins;
  List.iter (fun f -> Hashtbl.replace tbl f.Ir.fname bottom) p.Ir.p_funcs;
  let lookup name = match Hashtbl.find_opt tbl name with Some s -> s | None -> top in
  let summarize f =
    Array.fold_left
      (fun acc blk ->
        List.fold_left
          (fun acc i ->
            let acc = join acc (direct_effects i.Ir.idesc) in
            match i.Ir.idesc with
            | Ir.Call (_, name, _) ->
                if Hashtbl.mem tbl name || Ast.find_builtin name <> None then join acc (lookup name)
                else join acc top
            | _ -> acc)
          acc blk.Ir.instrs)
      bottom f.Ir.fblocks
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let s = summarize f in
        if s <> lookup f.Ir.fname then begin
          Hashtbl.replace tbl f.Ir.fname s;
          changed := true
        end)
      p.Ir.p_funcs
  done;
  tbl

let summary t name = match Hashtbl.find_opt t name with Some s -> s | None -> top
let pure t name = let s = summary t name in (not s.s_writes_memory) && not s.s_io
let io_free t name = not (summary t name).s_io

let instr_does_io t = function
  | Ir.Print _ | Ir.Prints _ -> true
  | Ir.Call (_, name, _) -> not (io_free t name)
  | _ -> false
