type cell =
  | CInt of int
  | CFloat of float
  | CPtr of int * int  (** canonical block id, offset *)
  | CNull
  | CUndef

type t = { obs_scalars : cell list; obs_blocks : cell array list }

(* Canonicalize: BFS over blocks from the roots, assigning canonical ids in
   first-visit order.  The visit order is deterministic because scalars and
   roots come in fixed order and cells are scanned left to right. *)
let capture st ~scalars ~roots =
  let canon = Hashtbl.create 64 in
  let queue = Queue.create () in
  let next_id = ref 0 in
  let canon_of_block b =
    match Hashtbl.find_opt canon b with
    | Some id -> id
    | None ->
        let id = !next_id in
        incr next_id;
        Hashtbl.replace canon b id;
        Queue.add b queue;
        id
  in
  let cell_of_value = function
    | Value.VInt n -> CInt n
    | Value.VFloat f -> CFloat f
    | Value.VNull -> CNull
    | Value.VUndef -> CUndef
    | Value.VPtr (b, o) ->
        if Store.block_size st b = None then (* dangling after a restore *) CUndef
        else CPtr (canon_of_block b, o)
  in
  let obs_scalars = List.map cell_of_value (scalars @ roots) in
  let blocks_rev = ref [] in
  let rec drain () =
    if not (Queue.is_empty queue) then begin
      let b = Queue.take queue in
      let size = match Store.block_size st b with Some s -> s | None -> 0 in
      let cells = Array.init size (fun off -> cell_of_value (Store.load st ~block:b ~off)) in
      blocks_rev := cells :: !blocks_rev;
      drain ()
    end
  in
  drain ();
  { obs_scalars; obs_blocks = List.rev !blocks_rev }

let float_close eps a b =
  a = b
  || Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let cell_equal eps a b =
  match (a, b) with
  | CFloat x, CFloat y -> float_close eps x y
  | CInt x, CInt y -> x = y
  | CPtr (b1, o1), CPtr (b2, o2) -> b1 = b2 && o1 = o2
  | CNull, CNull | CUndef, CUndef -> true
  | _ -> false

let equal ?(eps = 1e-9) t1 t2 =
  List.length t1.obs_scalars = List.length t2.obs_scalars
  && List.for_all2 (cell_equal eps) t1.obs_scalars t2.obs_scalars
  && List.length t1.obs_blocks = List.length t2.obs_blocks
  && List.for_all2
       (fun c1 c2 ->
         Array.length c1 = Array.length c2
         &&
         let ok = ref true in
         Array.iteri (fun i x -> if not (cell_equal eps x c2.(i)) then ok := false) c1;
         !ok)
       t1.obs_blocks t2.obs_blocks

let size t =
  List.length t.obs_scalars + List.fold_left (fun acc c -> acc + Array.length c) 0 t.obs_blocks

let cell_to_string = function
  | CInt n -> string_of_int n
  | CFloat f -> Printf.sprintf "%.12g" f
  | CPtr (b, o) -> Printf.sprintf "&%d.%d" b o
  | CNull -> "null"
  | CUndef -> "undef"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "scalars: ";
  Buffer.add_string buf (String.concat ", " (List.map cell_to_string t.obs_scalars));
  List.iteri
    (fun i cells ->
      Buffer.add_string buf (Printf.sprintf "\nblock %d: " i);
      Buffer.add_string buf (String.concat ", " (Array.to_list (Array.map cell_to_string cells))))
    t.obs_blocks;
  Buffer.contents buf

let outputs_equal ?(eps = 1e-9) a b =
  let line_equal x y =
    x = y
    ||
    match (float_of_string_opt x, float_of_string_opt y) with
    | Some fx, Some fy -> float_close eps fx fy
    | _ -> false
  in
  List.length a = List.length b && List.for_all2 line_equal a b
