(** Deterministic fault injection for robustness testing.

    A {e fault point} is a named site in the analyzer (e.g.
    [eval.step], [store.snapshot], [pool.task], [commutativity.replay],
    [driver.loop]) or the serve plane ([serve.worker] models a worker
    domain crash, [engine.analyze] an engine failure, [vcache.write] a
    full or read-only cache disk) that consults a process-wide {e fault
    plan} each time
    execution passes through it.  A plan entry fires at the Nth hit of a
    site — optionally filtered to one {e context} (a loop label, a
    schedule name) — and injects one of four actions:

    - [raise]: raise {!Injected} at the site (models an analyzer bug);
    - [trap]: ask the caller to raise its domain-specific trap
      (a guest-program fault, e.g. [Eval.Trap]);
    - [fuel]: ask the caller to raise its resource-exhaustion signal
      (e.g. [Eval.Out_of_fuel]);
    - [delay:MS]: busy-wait MS milliseconds, then continue (models a
      slow dependency; pairs with wall-clock deadline guards).

    The same atomic-flag discipline as {!Telemetry} applies: with no
    plan armed (the default) {!hit} is one atomic load plus a branch and
    allocates nothing.

    {2 Determinism}

    Hit counting is per plan entry, under a single mutex on the armed
    slow path.  A plan entry scoped to a context whose hits occur
    sequentially (one loop's test, one schedule's replay) fires at a
    deterministic hit regardless of [--jobs]; an {e unscoped} entry on a
    site that is hit from several worker domains (e.g. a bare
    [pool.task]) can fire on a different task under different job
    counts, so jobs-invariance claims hold only for context-scoped
    plans.

    {2 Plan grammar}

    {v
    plan   := entry (';' entry)*
    entry  := site [ '[' ctx ']' ] [ '@' N [ '+' ] ] '=' action
    action := 'raise' | 'trap' | 'fuel' | 'delay:' MS
    v}

    [@N] selects the Nth matching hit (default 1); a trailing [+] makes
    the entry fire on every hit from the Nth on instead of exactly once.
    Example: [driver.loop[main:3(d1)]@1=raise; eval.step@100+=delay:2]. *)

exception Injected of string
(** Raised at a site by a [raise] action.  The payload is
    {!injected_msg} for the site and context, so reports stay
    deterministic and recognizable ({!is_injected_message}). *)

exception Bad_plan of string
(** Raised by {!arm_string} / {!init_from_env} on a malformed plan. *)

type action =
  | Raise
  | Trap
  | Fuel
  | Delay_ms of int

type spec = {
  sp_site : string;
  sp_ctx : string option;  (** [None]: match any context *)
  sp_nth : int;  (** fire at the [sp_nth]-th matching hit, 1-based *)
  sp_repeat : bool;  (** fire on every hit from the Nth on *)
  sp_action : action;
}

val parse : string -> (spec list, string) result
val spec_to_string : spec -> string
val plan_to_string : spec list -> string

(** {1 Arming} *)

val arm : spec list -> unit
(** Install a plan (replacing any previous one) with all hit counters
    zeroed.  An empty list disarms. *)

val arm_string : string -> unit
(** [parse] + {!arm}; raises {!Bad_plan} on a parse error. *)

val disarm : unit -> unit
val armed : unit -> bool

val reset_hits : unit -> unit
(** Zero every entry's hit counter without changing the plan — called
    between programs of a batch sweep so a one-shot plan applies to each
    program independently. *)

val init_from_env : unit -> unit
(** One-shot environment wiring: the first call arms the [DCA_FAULTS]
    plan if the variable is set (raising {!Bad_plan} if malformed);
    later calls — and calls after an explicit {!arm} — are no-ops, so a
    front end's [--faults] always wins. *)

val fired : unit -> int
(** Total plan-entry firings since the last {!arm}. *)

(** {1 Sites} *)

type site

val site : string -> site
(** Find-or-create the named site (top-level [let] at the instrumented
    module, like {!Telemetry.counter}). *)

val known_sites : unit -> string list
(** Names registered so far, sorted — registration happens at module
    initialization of the instrumented libraries. *)

type fire =
  | Pass  (** nothing fired (or a [delay] already served its wait) *)
  | Fire_trap  (** caller should raise its trap exception *)
  | Fire_fuel  (** caller should raise its fuel-exhaustion exception *)

val hit : ?ctx:string -> site -> fire
(** Pass through the site.  Disarmed: one atomic load, returns [Pass],
    allocates nothing.  Armed: bumps matching entries' hit counters and
    performs the first firing action — [Raise] raises {!Injected} right
    here, [Delay_ms] sleeps then returns [Pass], [Trap]/[Fuel] are
    returned for the caller to map onto its own exceptions. *)

val hit_unit : ?ctx:string -> site -> unit
(** Like {!hit} for sites with no evaluator to interpret [trap]/[fuel]:
    any firing action other than a delay raises {!Injected}. *)

val injected_msg : ?ctx:string -> string -> string
(** ["injected fault at SITE"] (or [SITE[CTX]]): the canonical message
    carried by {!Injected} and by injected guest traps. *)

val is_injected_message : string -> bool
(** Does the message (a verdict explanation, an exception payload)
    originate from an injected fault?  Used to tick the
    [dca.faults-injected] counter deterministically. *)
