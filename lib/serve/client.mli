(** Blocking JSON-lines client for the [dca serve] Unix-domain socket. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's socket path. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request line, block for the matching response line. *)

val close : t -> unit

val with_client : string -> (t -> ('a, string) result) -> ('a, string) result
(** [connect], run, then {!close} (also on exception). *)
