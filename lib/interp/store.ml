open Dca_ir
open Value

type t = {
  mutable blocks : Value.t array array;  (** indexed by block id; [||] = never allocated *)
  mutable next_block : int;
  globals : Value.t array;
  mutable out_rev : string list;
  mutable rng : int64;
  input : int array;
  mutable input_pos : int;
}

type snapshot = {
  s_blocks : Value.t array array;
  s_next_block : int;
  s_globals : Value.t array;
  s_out_rev : string list;
  s_rng : int64;
  s_input_pos : int;
}

let initial_capacity = 1024

let alloc_raw t cells =
  let id = t.next_block in
  t.next_block <- id + 1;
  let cap = Array.length t.blocks in
  if id >= cap then begin
    let bigger = Array.make (max (2 * cap) (id + 1)) [||] in
    Array.blit t.blocks 0 bigger 0 cap;
    t.blocks <- bigger
  end;
  t.blocks.(id) <- cells;
  id

let alloc t kinds ~count =
  let m = Array.length kinds in
  let cells = Array.init (count * m) (fun i -> zero_of_kind kinds.(i mod m)) in
  alloc_raw t cells

let create (p : Ir.program) ~input =
  let t =
    {
      blocks = Array.make initial_capacity [||];
      next_block = 0;
      globals = Array.make (Array.length p.Ir.p_globals) VUndef;
      out_rev = [];
      rng = 0x2545F4914F6CDD1DL;
      input = Array.of_list input;
      input_pos = 0;
    }
  in
  Array.iteri
    (fun slot g ->
      if g.Ir.g_aggregate then begin
        let cells = Array.map zero_of_kind g.Ir.g_kinds in
        let id = alloc_raw t cells in
        t.globals.(slot) <- VPtr (id, 0)
      end
      else
        t.globals.(slot) <-
          (match g.Ir.g_init with
          | Some (Ir.Oint n) -> VInt n
          | Some (Ir.Ofloat f) -> VFloat f
          | Some Ir.Onull | None -> zero_of_kind g.Ir.g_kinds.(0)
          | Some (Ir.Ovar _) -> invalid_arg "Store.create: variable global initializer"))
    p.Ir.p_globals;
  t

let bounds_fail what block off =
  failwith (Printf.sprintf "memory trap: %s at block %d offset %d" what block off)

let load t ~block ~off =
  if block < 0 || block >= t.next_block then bounds_fail "load from invalid block" block off;
  let cells = t.blocks.(block) in
  if off < 0 || off >= Array.length cells then bounds_fail "out-of-bounds load" block off;
  cells.(off)

let store t ~block ~off v =
  if block < 0 || block >= t.next_block then bounds_fail "store to invalid block" block off;
  let cells = t.blocks.(block) in
  if off < 0 || off >= Array.length cells then bounds_fail "out-of-bounds store" block off;
  cells.(off) <- v

let block_size t id =
  if id < 0 || id >= t.next_block then None else Some (Array.length t.blocks.(id))

let read_global t slot = t.globals.(slot)
let write_global t slot v = t.globals.(slot) <- v

let print_value t v = t.out_rev <- Value.to_string v :: t.out_rev
let print_string_ t s = t.out_rev <- s :: t.out_rev
let outputs t = List.rev t.out_rev

(* xorshift64* — deterministic, checkpointable in one int64. *)
let drand t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  let mixed = Int64.mul x 0x2545F4914F6CDD1DL in
  Int64.to_float (Int64.shift_right_logical mixed 11) /. 9007199254740992.0

let dseed t seed = t.rng <- Int64.logor (Int64.of_int seed) 1L

let read_input t =
  if t.input_pos < Array.length t.input then begin
    let v = t.input.(t.input_pos) in
    t.input_pos <- t.input_pos + 1;
    v
  end
  else 0

let snapshot t =
  {
    s_blocks = Array.init t.next_block (fun i -> Array.copy t.blocks.(i));
    s_next_block = t.next_block;
    s_globals = Array.copy t.globals;
    s_out_rev = t.out_rev;
    s_rng = t.rng;
    s_input_pos = t.input_pos;
  }

let restore t s =
  if Array.length t.blocks < s.s_next_block then t.blocks <- Array.make (max initial_capacity s.s_next_block) [||];
  for i = 0 to s.s_next_block - 1 do
    t.blocks.(i) <- Array.copy s.s_blocks.(i)
  done;
  (* blocks allocated after the snapshot become dangling *)
  for i = s.s_next_block to t.next_block - 1 do
    if i < Array.length t.blocks then t.blocks.(i) <- [||]
  done;
  t.next_block <- s.s_next_block;
  Array.blit s.s_globals 0 t.globals 0 (Array.length s.s_globals);
  t.out_rev <- s.s_out_rev;
  t.rng <- s.s_rng;
  t.input_pos <- s.s_input_pos

let heap_blocks t = t.next_block

let copy t =
  {
    blocks = Array.init t.next_block (fun i -> Array.copy t.blocks.(i));
    next_block = t.next_block;
    globals = Array.copy t.globals;
    out_rev = t.out_rev;
    rng = t.rng;
    input = t.input;
    input_pos = t.input_pos;
  }
