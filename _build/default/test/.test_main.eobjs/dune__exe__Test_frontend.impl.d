test/test_frontend.ml: Alcotest Ast Ast_printer Dca_frontend Fmt Lexer List Loc Parser QCheck QCheck_alcotest String Tast Token Typecheck
