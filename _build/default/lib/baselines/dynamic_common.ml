(** Shared dependence-filtering logic of the two dynamic baselines.

    A profiled loop is reported parallelizable when every observed
    cross-iteration RAW dependence is attributable to a construct the tool
    knows how to parallelize around: the loop's induction variable(s),
    recognized scalar reductions, or recognized memory-reduction
    read-modify-write pairs.  WAR and WAW dependences are assumed
    removable by privatization (Tournavitis et al.), so only RAWs count. *)

open Dca_analysis
open Dca_interp
open Dca_profiling

type filters = {
  fl_scalar_ok : int -> bool;  (** variable id carries a tolerated scalar dependence *)
  fl_rmw_pairs : (int * int) list;  (** (load iid, store iid) reduction pairs *)
}

let raw_blockers (profile : Depprof.profile) (loop : Loops.loop) (filters : filters) =
  match Depprof.loop_profile profile loop.Loops.l_id with
  | None -> Error "loop not executed by the workload"
  | Some lp ->
      let blocking =
        List.filter
          (fun (d : Depprof.dep) ->
            match d.Depprof.d_kind with
            | Depprof.War | Depprof.Waw -> false
            | Depprof.Raw -> (
                match d.Depprof.d_loc with
                | Events.Lreg vid -> not (filters.fl_scalar_ok vid)
                | Events.Lrng -> true
                | Events.Lheap _ | Events.Lglob _ ->
                    (* RAW carries (write = the store, read = the load) of
                       a recognized read-modify-write reduction pair *)
                    not
                      (List.mem
                         (d.Depprof.d_read_iid, d.Depprof.d_write_iid)
                         filters.fl_rmw_pairs)))
          lp.Depprof.lp_deps
      in
      Ok blocking

let classify_with profile filters_of info fi (loop : Loops.loop) : Tool.verdict =
  if Static_common.loop_does_io info fi loop then Tool.Not_parallel "I/O inside loop"
  else
    match raw_blockers profile loop (filters_of fi loop) with
    | Error why -> Tool.Not_parallel why
    | Ok [] -> Tool.Parallel
    | Ok ((d : Depprof.dep) :: _) ->
        Tool.Not_parallel
          (Printf.sprintf "cross-iteration RAW on %s (i%d -> i%d)"
             (Events.loc_to_string d.Depprof.d_loc) d.Depprof.d_write_iid d.Depprof.d_read_iid)
