lib/baselines/tool.ml: Dca_analysis Dca_profiling List Loops Proginfo
