(** Algorithmic-skeleton classification of commutative loops — a concrete
    take on the paper's concluding direction ("the ultimate goal to support
    the detection of parallel algorithmic skeletons in legacy code", §VII,
    building on the liveness-based characterization of von Koch et al.
    CC'18 the paper's §II-C cites).

    Classification combines the iterator/payload separation with the
    static reduction facts:

    - [Worklist]: the iterator needed slice promotion — the iteration space
      is produced by the payload (BFS, treeadd, perimeter);
    - [Reduction]: every payload memory effect is a recognized commutative
      read-modify-write (dot products, histograms with [histogram = true]);
    - [Map_reduce]: disjoint per-iteration writes plus reduction updates
      (EP's Gaussian sweep);
    - [Map]: disjoint per-iteration effects, no reductions (array/PLDS
      maps, stencils into a separate array);
    - [Traversal]: a pointer-chasing iterator with a [Map]/[Reduction]
      payload is additionally flagged pointer-based. *)

type shape = Map | Reduction of { histogram : bool } | Map_reduce | Worklist

type t = {
  sk_shape : shape;
  sk_pointer_based : bool;  (** the iterator chases pointers rather than counting *)
  sk_reductions : (string * Dca_analysis.Scalars.reduction_op) list;
}

val classify :
  Dca_analysis.Proginfo.t ->
  Dca_analysis.Proginfo.func_info ->
  Commutativity.outcome ->
  t
(** Classify a loop found commutative (callers should not pass refuted
    loops; the classification describes the parallel structure DCA
    exposed). *)

val shape_to_string : shape -> string
val to_string : t -> string
