(** Side-effect summaries for functions: a call-graph fixpoint that
    classifies each function (and builtin) by whether it may read or write
    memory (heap cells, global scalars, the [drand] generator state) and
    whether it may perform I/O.

    DCA's candidate selection (paper §IV-E) excludes loops that perform
    I/O; the static baselines use [pure] to decide whether a call inside a
    loop is analyzable (our stand-in for ICC's aggressive inlining of pure
    functions, §V-C1). *)

type summary = {
  s_reads_memory : bool;
  s_writes_memory : bool;
  s_io : bool;
  s_calls_unknown : bool;  (** calls a function with no definition *)
}

type t

val analyze : Dca_ir.Ir.program -> t

val summary : t -> string -> summary
(** Summary of a defined function or builtin; unknown names are maximally
    impure. *)

val pure : t -> string -> bool
(** Neither writes memory nor performs I/O (may read memory). *)

val io_free : t -> string -> bool

val instr_does_io : t -> Dca_ir.Ir.idesc -> bool
(** Does this instruction perform I/O, directly or through a call? *)

val call_targets : Dca_ir.Ir.func -> string list
(** Names called anywhere in the function body. *)
