lib/dca/driver.ml: Candidate Commutativity Dca_analysis Dca_ir Hashtbl List Loops Printf Proginfo
