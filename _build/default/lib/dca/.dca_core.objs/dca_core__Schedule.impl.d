lib/dca/schedule.ml: Array Dca_support List Printf Prng
