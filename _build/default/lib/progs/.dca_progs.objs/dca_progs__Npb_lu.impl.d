lib/progs/npb_lu.ml: Benchmark
