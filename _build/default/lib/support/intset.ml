(** Integer sets and maps used pervasively by the analyses (variable ids,
    instruction ids, block ids). *)

include Set.Make (Int)

let of_option = function None -> empty | Some x -> singleton x
let to_sorted_list s = elements s
let unions l = List.fold_left union empty l

module Map = struct
  include Stdlib.Map.Make (Int)

  let find_default key default m = match find_opt key m with Some v -> v | None -> default

  let add_to_list_entry key x m =
    update key (function None -> Some [ x ] | Some l -> Some (x :: l)) m
end
