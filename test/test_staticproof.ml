(* Tests for the static affine pre-pass (Staticproof) and its
   integration: prover verdicts on canonical shapes, corpus replay with
   asserted provenance, report rendering, the jobs-invariance of the new
   counters, the cache-versioning of the static flag, the full-registry
   static-on/off A/B, and a small static-xcheck fuzz sweep. *)

module Session = Dca_core.Session
module Driver = Dca_core.Driver
module Commutativity = Dca_core.Commutativity
module Report = Dca_core.Report
module Telemetry = Dca_support.Telemetry
module Proginfo = Dca_analysis.Proginfo
module Loops = Dca_analysis.Loops
module Staticproof = Dca_analysis.Staticproof
module Registry = Dca_progs.Registry
module Benchmark = Dca_progs.Benchmark
module Fuzz_driver = Dca_gen.Fuzz_driver

(* ------------------------------------------------------------------ *)
(* Prover unit tests on canonical shapes                               *)
(* ------------------------------------------------------------------ *)

(* Prove the unique top-level loop of [main]. *)
let prove_main_loop src =
  let prog = Dca_ir.Lower.compile ~file:"<test>" src in
  let info = Proginfo.analyze prog in
  let fi = Proginfo.func_info info "main" in
  match Loops.top_level fi.Proginfo.fi_forest with
  | [ loop ] -> Staticproof.prove info fi loop
  | ls -> Alcotest.failf "expected 1 top-level loop, got %d" (List.length ls)

let kind_of = function
  | Staticproof.Proved _ -> "proved"
  | Staticproof.Fission _ -> "fission"
  | Staticproof.Bail _ -> "bail"

let check_kind name expected src =
  Alcotest.(check string) name expected (kind_of (prove_main_loop src))

let test_prover_shapes () =
  (* own-cell map: the bread-and-butter proof *)
  check_kind "map loop proved" "proved"
    "int a[16]; void main() { int i; for (i = 0; i < 16; i = i + 1) { a[i] = i * 2; } }";
  (* integer sum reduction discharges as a scalar obligation *)
  check_kind "int reduction proved" "proved"
    {|int a[16]; void main() {
        int i; int s = 0;
        for (i = 0; i < 16; i = i + 1) { s = s + a[i]; }
        printi(s); }|};
  (* float reduction reassociates inexactly: no proof *)
  check_kind "float reduction bails" "bail"
    {|float a[16]; void main() {
        int i; float s = 0.0;
        for (i = 0; i < 16; i = i + 1) { s = s + a[i]; }
        print(s); }|};
  (* user call: callee effects are not analyzed *)
  check_kind "user call bails" "bail"
    {|int a[16];
      int f(int x) { return x + 1; }
      void main() { int i; for (i = 0; i < 16; i = i + 1) { a[i] = f(i); } }|};
  (* distance-1 carried dependence *)
  check_kind "carried dep bails" "bail"
    {|int a[16]; void main() {
        int i;
        for (i = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + 1; } }|};
  (* indirect subscript *)
  check_kind "indirect store bails" "bail"
    {|int a[16]; int k[16]; void main() {
        int i;
        for (i = 0; i < 16; i = i + 1) { a[k[i]] = i; } }|};
  (* provable map + unprovable histogram: a fission opportunity *)
  check_kind "half-provable body fissions" "fission"
    {|int a[16]; int h[16]; int k[16]; void main() {
        int i;
        for (i = 0; i < 16; i = i + 1) {
          a[i] = i * 3;
          h[k[i]] = h[k[i]] + 1;
        } }|};
  (* proved store feeding off a residual-group load: fission blocked *)
  check_kind "residual-fed store blocks fission" "bail"
    {|int a[16]; int h[16]; int k[16]; void main() {
        int i;
        for (i = 0; i < 16; i = i + 1) {
          h[k[i]] = h[k[i]] + 1;
          a[i] = h[k[i]];
        } }|}

(* ------------------------------------------------------------------ *)
(* Corpus replay with asserted verdict + provenance                    *)
(* ------------------------------------------------------------------ *)

let corpus_dir () = if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* The marked loop starts on the line after the DCA_FUZZ_LOOP marker;
   its result label is "main:<line>(..." — the fuzz driver's convention. *)
let marked_label_prefix source =
  let lines = String.split_on_char '\n' source in
  let rec find n = function
    | [] -> Alcotest.fail "no DCA_FUZZ_LOOP marker"
    | l :: rest ->
        if contains_sub l "DCA_FUZZ_LOOP" then Printf.sprintf "main:%d(" (n + 1)
        else find (n + 1) rest
  in
  find 1 lines

let marked_result source results =
  let prefix = marked_label_prefix source in
  let plen = String.length prefix in
  List.find_opt
    (fun (r : Driver.loop_result) ->
      String.length r.Driver.lr_label >= plen && String.sub r.Driver.lr_label 0 plen = prefix)
    results

let run_static_corpus name =
  let path = Filename.concat (corpus_dir ()) name in
  let source = read_file path in
  let results =
    Session.with_session
      ~options:Session.Options.(default |> with_jobs 1)
      (Session.Source { file = name; source; input = [] })
      Session.dca_results
  in
  match marked_result source results with
  | Some r -> r
  | None -> Alcotest.failf "%s: marked loop not found" name

let check_marked name expected_decision expected_prov =
  let r = run_static_corpus name in
  let d = Driver.decision_to_string r.Driver.lr_decision in
  let prefix_ok =
    String.length d >= String.length expected_decision
    && String.sub d 0 (String.length expected_decision) = expected_decision
  in
  if not prefix_ok then Alcotest.failf "%s: expected %s, got %s" name expected_decision d;
  Alcotest.(check bool)
    (name ^ " provenance")
    true
    (r.Driver.lr_provenance = expected_prov)

let test_corpus_alias_samecell () =
  check_marked "static_alias_samecell.mc" "non-commutative" Driver.Dynamic

let test_corpus_wraparound () = check_marked "static_wraparound.mc" "commutative" Driver.Dynamic
let test_corpus_condwrite () = check_marked "static_condwrite.mc" "commutative" Driver.Static

let test_corpus_halfreduction () =
  let was = Telemetry.counting () in
  Telemetry.set_counting true;
  let fission = Telemetry.counter "dca.static-fission" in
  let before = Telemetry.value fission in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_counting was)
    (fun () ->
      check_marked "static_halfreduction.mc" "commutative" Driver.Dynamic;
      Alcotest.(check bool) "fission counter ticked" true (Telemetry.value fission > before))

(* ------------------------------------------------------------------ *)
(* Report rendering and Dynamic-only byte-stability                    *)
(* ------------------------------------------------------------------ *)

let report_of ?(static = true) source =
  Session.with_session
    ~options:Session.Options.(default |> with_jobs 1 |> with_static static)
    (Session.Source { file = "t.mc"; source; input = [] })
    Session.report

let test_report_static_marker () =
  let src = "int a[8]; void main() { int i; for (i = 0; i < 8; i = i + 1) { a[i] = i; } }" in
  let on = report_of src in
  Alcotest.(check bool) "proved loop renders [static]" true (contains_sub on "[static]");
  let off = report_of ~static:false src in
  Alcotest.(check bool) "prover off renders no [static]" false (contains_sub off "[static]");
  Alcotest.(check bool) "dynamic line keeps invocation marker" true (contains_sub off "[tested")

(* A program whose only loop is unprovable (indirect histogram): every
   verdict is Dynamic, so enabling the prover must not move a byte. *)
let test_report_dynamic_only_stable () =
  let src =
    {|int h[8]; int k[8]; void main() {
        int i;
        for (i = 0; i < 8; i = i + 1) { h[k[i]] = h[k[i]] + 1; }
        printi(h[0]); }|}
  in
  Alcotest.(check string) "dynamic-only report byte-identical" (report_of ~static:false src)
    (report_of src)

(* ------------------------------------------------------------------ *)
(* Counter determinism across job counts                               *)
(* ------------------------------------------------------------------ *)

let static_counters = [ "dca.static-proved"; "dca.static-fission"; "dca.static-bailouts" ]

let session_static_deltas bm jobs =
  let was = Telemetry.counting () in
  Telemetry.set_counting true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_counting was)
    (fun () ->
      let deltas =
        Session.with_session
          ~options:Session.Options.(default |> with_jobs jobs)
          (Session.Benchmark bm) (fun s ->
            ignore (Session.report s);
            Session.telemetry s)
      in
      List.map
        (fun name -> (name, match List.assoc_opt name deltas with Some v -> v | None -> 0))
        static_counters)

let test_counters_jobs_invariant () =
  let bm = Registry.find_exn "EP" in
  let j1 = session_static_deltas bm 1 in
  let j4 = session_static_deltas bm 4 in
  List.iter2
    (fun (name, a) (_, b) -> Alcotest.(check int) (name ^ " j1=j4") a b)
    j1 j4;
  Alcotest.(check bool) "prover did some work" true
    (List.exists (fun (_, v) -> v > 0) j1)

(* ------------------------------------------------------------------ *)
(* Cache versioning of the static flag                                 *)
(* ------------------------------------------------------------------ *)

let test_config_digest_static_versioned () =
  let c = Commutativity.default_config in
  let on = Dca_serve.Progdigest.config_digest ~hierarchical:false ~static:true c in
  let off = Dca_serve.Progdigest.config_digest ~hierarchical:false ~static:false c in
  let default = Dca_serve.Progdigest.config_digest ~hierarchical:false c in
  Alcotest.(check bool) "static on/off digests differ" true (on <> off);
  Alcotest.(check string) "static defaults on" on default

(* ------------------------------------------------------------------ *)
(* Registry A/B: prover on vs off                                      *)
(* ------------------------------------------------------------------ *)

let light_config =
  {
    Commutativity.default_config with
    Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles:1 ();
    cc_max_invocations = 2;
  }

type ab = {
  ab_rows : (string * string * Driver.provenance) list;
  ab_plan : string;
  ab_golden : int;
}

let analyze_ab bm static =
  let was = Telemetry.counting () in
  Telemetry.set_counting true;
  let golden = Telemetry.counter "dca.golden_runs" in
  let before = Telemetry.value golden in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_counting was)
    (fun () ->
      Session.with_session
        ~options:
          Session.Options.(
            default |> with_jobs 1 |> with_config light_config |> with_static static)
        (Session.Benchmark bm)
        (fun s ->
          let rows =
            List.map
              (fun (r : Driver.loop_result) ->
                ( r.Driver.lr_label,
                  Driver.decision_to_string r.Driver.lr_decision,
                  r.Driver.lr_provenance ))
              (Session.dca_results s)
          in
          let plan = Dca_parallel.Plan.to_string (Session.plan s) in
          { ab_rows = rows; ab_plan = plan; ab_golden = Telemetry.value golden - before }))

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* The acceptance sweep: across the whole registry, enabling the prover
   must not flip any verdict (the one legitimate strengthening is
   untestable -> statically proved commutative), must keep every plan
   identical, and must strictly reduce golden-run work on at least one
   benchmark that gained Static loops. *)
let test_registry_static_ab () =
  let gained_static = ref 0 and reduced_golden = ref 0 and clean_gain = ref 0 in
  List.iter
    (fun bm ->
      let name = bm.Benchmark.bm_name in
      let on = analyze_ab bm true and off = analyze_ab bm false in
      Alcotest.(check int) (name ^ ": same loop count") (List.length off.ab_rows)
        (List.length on.ab_rows);
      let verdicts_unchanged = ref true in
      List.iter2
        (fun (l_on, d_on, p_on) (l_off, d_off, p_off) ->
          Alcotest.(check string) (name ^ ": loop order") l_off l_on;
          Alcotest.(check bool) (name ^ ": prover-off rows are Dynamic") true
            (p_off = Driver.Dynamic);
          if d_on <> d_off then begin
            verdicts_unchanged := false;
            (* only legitimate difference: a proof where the dynamic
               stage could not even run the loop *)
            if not (p_on = Driver.Static && d_on = "commutative" && has_prefix "untestable" d_off)
            then
              Alcotest.failf "%s %s: prover flipped %s to %s" name l_on d_off d_on
          end;
          if p_on = Driver.Static then begin
            incr gained_static;
            Alcotest.(check string) (name ^ " " ^ l_on ^ ": static verdicts are commutative")
              "commutative" d_on
          end)
        on.ab_rows off.ab_rows;
      Alcotest.(check string) (name ^ ": plan unchanged") off.ab_plan on.ab_plan;
      Alcotest.(check bool)
        (name ^ ": prover never adds golden runs")
        true (on.ab_golden <= off.ab_golden);
      if on.ab_golden < off.ab_golden then begin
        incr reduced_golden;
        if !verdicts_unchanged then incr clean_gain
      end)
    Registry.all;
  Alcotest.(check bool) "some registry loop proved statically" true (!gained_static > 0);
  Alcotest.(check bool) "golden-run work strictly reduced somewhere" true (!reduced_golden > 0);
  Alcotest.(check bool) "a benchmark gained with verdicts unchanged" true (!clean_gain > 0)

(* ------------------------------------------------------------------ *)
(* static-xcheck fuzz smoke                                            *)
(* ------------------------------------------------------------------ *)

(* The CI job runs 500 programs; here a small deterministic slice keeps
   the differential harness itself under test. *)
let test_static_xcheck_smoke () =
  let cfg =
    {
      Fuzz_driver.default_config with
      Fuzz_driver.fz_seed = 7;
      fz_count = 25;
      fz_max_iters = 3;
      fz_metamorphic = false;
      fz_static_xcheck = true;
    }
  in
  let r = Fuzz_driver.run cfg in
  List.iter
    (fun v ->
      Alcotest.failf "program %d: %s: %s" v.Fuzz_driver.vi_program
        (Fuzz_driver.violation_kind_to_string v.Fuzz_driver.vi_kind)
        v.Fuzz_driver.vi_detail)
    r.Fuzz_driver.r_violations

let suites =
  [
    ( "static.prover",
      [
        Alcotest.test_case "canonical shapes" `Quick test_prover_shapes;
        Alcotest.test_case "config digest versioned" `Quick test_config_digest_static_versioned;
      ] );
    ( "static.corpus",
      [
        Alcotest.test_case "alias same-cell stays dynamic" `Quick test_corpus_alias_samecell;
        Alcotest.test_case "wraparound stays dynamic" `Quick test_corpus_wraparound;
        Alcotest.test_case "cond write proved" `Quick test_corpus_condwrite;
        Alcotest.test_case "half reduction fissions" `Quick test_corpus_halfreduction;
      ] );
    ( "static.report",
      [
        Alcotest.test_case "provenance marker" `Quick test_report_static_marker;
        Alcotest.test_case "dynamic-only bytes stable" `Quick test_report_dynamic_only_stable;
      ] );
    ( "static.counters",
      [ Alcotest.test_case "jobs invariant" `Quick test_counters_jobs_invariant ] );
    ( "static.registry",
      [ Alcotest.test_case "on/off A-B sweep" `Quick test_registry_static_ab ] );
    ( "static.xcheck",
      [ Alcotest.test_case "fuzz smoke" `Quick test_static_xcheck_smoke ] );
  ]
