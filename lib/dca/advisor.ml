open Dca_analysis
open Dca_parallel

type recommendation =
  | Parallelize
  | Parallelize_with_review of string
  | Not_profitable of string
  | Keep_sequential of string

type advice = {
  ad_loop : Loops.loop;
  ad_label : string;
  ad_recommendation : recommendation;
  ad_pragma : string option;
  ad_loop_speedup : float option;
  ad_coverage : float;
  ad_notes : string list;
}

let pragma_for info profile loop_id =
  ignore profile;
  let privates = Planner.privates_of info loop_id in
  let reductions = Planner.reductions_of info loop_id in
  let priv = match privates with [] -> "" | l -> " private(" ^ String.concat ", " l ^ ")" in
  let reds =
    String.concat ""
      (List.map
         (fun (name, op) ->
           Printf.sprintf " reduction(%s:%s)" (Dca_analysis.Scalars.reduction_op_to_string op) name)
         reductions)
  in
  Printf.sprintf "#pragma omp parallel for schedule(static)%s%s" priv reds

let advise ?(machine = Machine.default) info profile (results : Driver.loop_result list) =
  let advice_of (r : Driver.loop_result) =
    let id = r.Driver.lr_loop.Loops.l_id in
    let coverage = Dca_profiling.Depprof.coverage_of profile [ id ] in
    let loop_speedup =
      match Dca_profiling.Depprof.loop_profile profile id with
      | Some lp when lp.Dca_profiling.Depprof.lp_total_cost > 0 ->
          let reductions = List.length (Planner.reductions_of info id) in
          let par = Planner.parallel_cost ~machine lp ~reductions in
          if par > 0.0 then Some (float_of_int lp.Dca_profiling.Depprof.lp_total_cost /. par)
          else None
      | _ -> None
    in
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    (match r.Driver.lr_outcome with
    | Some oc ->
        note "tested %d dynamic invocation(s)" oc.Commutativity.oc_invocations;
        if oc.Commutativity.oc_promotions > 0 then
          note "worklist idiom: %d slice promotion(s) were needed" oc.Commutativity.oc_promotions;
        if oc.Commutativity.oc_escalated then
          note "strict live-out state differed under permutation; whole-program outputs matched";
        if r.Driver.lr_decision = Driver.Commutative then begin
          match Proginfo.loop_by_id info id with
          | Some (fi, _) ->
              note "parallel skeleton: %s" (Skeleton.to_string (Skeleton.classify info fi oc))
          | None -> ()
        end
    | None -> ());
    (* A statically proved loop has no outcome record; say why instead of
       leaving an unexplained silence where the tested-invocations note
       would be.  The recommendation logic below is provenance-blind, so
       plans are identical with and without the fast-path. *)
    (match (r.Driver.lr_provenance, r.Driver.lr_decision) with
    | Driver.Static, Driver.Commutative ->
        note "proved commutative statically (affine dependence distances); no dynamic test was run"
    | _ -> ());
    let recommendation, pragma =
      match r.Driver.lr_decision with
      | Driver.Rejected reason -> (Keep_sequential (Candidate.rejection_to_string reason), None)
      | Driver.Non_commutative why -> (Keep_sequential ("order-dependent: " ^ why), None)
      | Driver.Untestable why -> (Keep_sequential ("could not be tested: " ^ why), None)
      | Driver.Aborted _ as d -> (Keep_sequential ("analysis " ^ Driver.decision_to_string d), None)
      | Driver.Subsumed parent ->
          (Not_profitable (Printf.sprintf "enclosing loop %s is already parallel" parent), None)
      | Driver.Commutative -> (
          let profitable =
            match Dca_profiling.Depprof.loop_profile profile id with
            | Some _ -> Planner.estimated_benefit ~machine profile id > 0.0
            | None -> false
          in
          let pragma = pragma_for info profile id in
          if not profitable then
            (Not_profitable "the launch overheads exceed the parallel gain at this input size", Some pragma)
          else
            match r.Driver.lr_outcome with
            | Some oc when oc.Commutativity.oc_escalated ->
                ( Parallelize_with_review
                    "verification relied on whole-program outputs; confirm no other consumer of \
                     the reordered state",
                  Some pragma )
            | Some oc when oc.Commutativity.oc_invocations <= 1 ->
                ( Parallelize_with_review
                    "only one dynamic invocation was observed; consider more inputs",
                  Some pragma )
            | _ -> (Parallelize, Some pragma))
    in
    {
      ad_loop = r.Driver.lr_loop;
      ad_label = r.Driver.lr_label;
      ad_recommendation = recommendation;
      ad_pragma = pragma;
      ad_loop_speedup = loop_speedup;
      ad_coverage = coverage;
      ad_notes = List.rev !notes;
    }
  in
  results |> List.map advice_of
  |> List.sort (fun a b -> compare b.ad_coverage a.ad_coverage)

let recommendation_to_string = function
  | Parallelize -> "PARALLELIZE"
  | Parallelize_with_review why -> "PARALLELIZE after review: " ^ why
  | Not_profitable why -> "leave serial (not profitable): " ^ why
  | Keep_sequential why -> "keep sequential: " ^ why

let to_string a =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s  [%.0f%% of execution%s]\n" a.ad_label (100.0 *. a.ad_coverage)
       (match a.ad_loop_speedup with
       | Some s -> Printf.sprintf ", loop speedup ~%.1fx" s
       | None -> ""));
  Buffer.add_string buf ("  " ^ recommendation_to_string a.ad_recommendation ^ "\n");
  (match a.ad_pragma with
  | Some p -> Buffer.add_string buf ("  " ^ p ^ "\n")
  | None -> ());
  List.iter (fun n -> Buffer.add_string buf ("  - " ^ n ^ "\n")) a.ad_notes;
  Buffer.contents buf

let report advices =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Parallelism advisory (hottest loops first):\n\n";
  List.iter (fun a -> Buffer.add_string buf (to_string a ^ "\n")) advices;
  Buffer.contents buf
