(* Integration tests over the full evaluation: the qualitative shape of
   every table and figure of the paper must hold on our ports.  These
   share the memoized per-benchmark evaluations, so the whole suite costs
   one pass over the 24 programs. *)

open Dca_experiments

let t1 = lazy (Tables.table1 ())
let t2 = lazy (Tables.table2 ())
let t3 = lazy (Tables.table3 ())
let t4 = lazy (Tables.table4 ())

let test_table1_dca_dominates_dynamic () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: DCA >= DepProfiling (%d vs %d)" r.Tables.t1_name r.Tables.t1_dca
           r.Tables.t1_depprof)
        true
        (r.Tables.t1_dca >= r.Tables.t1_depprof);
      Alcotest.(check bool)
        (Printf.sprintf "%s: DCA >= DiscoPoP" r.Tables.t1_name)
        true
        (r.Tables.t1_dca >= r.Tables.t1_discopop))
    (Lazy.force t1)

let test_table1_totals () =
  let rows = Lazy.force t1 in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Alcotest.(check int) "ten rows" 10 (List.length rows);
  Alcotest.(check bool) "suite is large" true (total (fun r -> r.Tables.t1_loops) >= 100);
  (* headline: DCA detects the large majority of NPB loops *)
  let frac =
    float_of_int (total (fun r -> r.Tables.t1_dca)) /. float_of_int (total (fun r -> r.Tables.t1_loops))
  in
  Alcotest.(check bool) (Printf.sprintf "DCA detects > 60%% (got %.0f%%)" (100. *. frac)) true (frac > 0.6)

let test_table2_headline () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Tables.t2_name ^ ": DCA detects the hot PLDS loop") true r.Tables.t2_dca_detects;
      Alcotest.(check int) (r.Tables.t2_name ^ ": no baseline detects it") 0 r.Tables.t2_baselines_detect)
    (Lazy.force t2)

let test_table3_static_ordering () =
  let rows = Lazy.force t3 in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let idioms = total (fun r -> r.Tables.t3_idioms) in
  let polly = total (fun r -> r.Tables.t3_polly) in
  let icc = total (fun r -> r.Tables.t3_icc) in
  let combined = total (fun r -> r.Tables.t3_combined) in
  let dca = total (fun r -> r.Tables.t3_dca) in
  Alcotest.(check bool) (Printf.sprintf "ICC (%d) > Polly (%d)" icc polly) true (icc > polly);
  Alcotest.(check bool) (Printf.sprintf "Polly (%d) >= Idioms (%d)" polly idioms) true (polly >= idioms);
  Alcotest.(check bool) "combined <= sum of parts" true (combined <= idioms + polly + icc);
  Alcotest.(check bool)
    (Printf.sprintf "DCA (%d) detects ~half more than combined static (%d)" dca combined)
    true
    (float_of_int dca >= 1.3 *. float_of_int combined);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Tables.t3_name ^ ": combined >= each tool") true
        (r.Tables.t3_combined >= r.Tables.t3_icc
        && r.Tables.t3_combined >= r.Tables.t3_polly
        && r.Tables.t3_combined >= r.Tables.t3_idioms))
    rows

let test_table4_precision () =
  List.iter
    (fun r ->
      Alcotest.(check int) (r.Tables.t4_name ^ ": no false positives") 0 r.Tables.t4_false_pos;
      Alcotest.(check int) (r.Tables.t4_name ^ ": no false negatives") 0 r.Tables.t4_false_neg;
      Alcotest.(check bool) (r.Tables.t4_name ^ ": DCA coverage >= static coverage") true
        (r.Tables.t4_dca_coverage >= r.Tables.t4_static_coverage -. 1e-9))
    (Lazy.force t4)

let test_table4_coverage_high () =
  let high =
    List.filter (fun r -> r.Tables.t4_dca_coverage > 0.8) (Lazy.force t4)
  in
  (* paper: above 80% for eight of ten *)
  Alcotest.(check bool)
    (Printf.sprintf "coverage > 80%% for at least 7 benchmarks (got %d)" (List.length high))
    true
    (List.length high >= 7)

let test_fig5_profitable () =
  let rows = Figures.fig5 () in
  Alcotest.(check int) "seven programs" 7 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s speeds up (%.1fx)" r.Figures.f5_name r.Figures.f5_speedup)
        true
        (r.Figures.f5_speedup > 1.2))
    rows

let test_fig6_dca_wins () =
  let rows = Figures.fig6 () in
  let gm f = Figures.geomean (List.map f rows) in
  let dca = gm (fun r -> r.Figures.f6_dca) in
  Alcotest.(check bool) (Printf.sprintf "DCA gmean (%.1f) > every static tool" dca) true
    (dca > gm (fun r -> r.Figures.f6_idioms)
    && dca > gm (fun r -> r.Figures.f6_polly)
    && dca > gm (fun r -> r.Figures.f6_icc));
  Alcotest.(check bool) (Printf.sprintf "DCA gmean in the paper's range (%.1f)" dca) true
    (dca >= 2.0 && dca <= 8.0);
  let ep = List.find (fun r -> r.Figures.f6_name = "EP") rows in
  Alcotest.(check bool) (Printf.sprintf "EP headline speedup (%.0fx)" ep.Figures.f6_dca) true
    (ep.Figures.f6_dca > 30.0)

let test_fig7_ordering () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: expert-full (%.1f) >= expert-loop (%.1f) - eps" r.Figures.f7_name
           r.Figures.f7_expert_full r.Figures.f7_expert_loop)
        true
        (r.Figures.f7_expert_full >= r.Figures.f7_expert_loop -. 0.05);
      Alcotest.(check bool)
        (Printf.sprintf "%s: DCA within 25%% of expert-loop" r.Figures.f7_name)
        true
        (r.Figures.f7_dca >= (0.75 *. r.Figures.f7_expert_loop) -. 0.05))
    (Figures.fig7 ())

let test_paper_data_consistency () =
  Alcotest.(check int) "ten NPB reference rows" 10 (List.length Paper_data.npb);
  Alcotest.(check int) "fourteen PLDS reference rows" 14 (List.length Paper_data.plds);
  List.iter
    (fun bm ->
      Alcotest.(check bool)
        (bm.Dca_progs.Benchmark.bm_name ^ " has a reference row")
        true
        (match bm.Dca_progs.Benchmark.bm_suite with
        | Dca_progs.Benchmark.Npb ->
            List.exists (fun r -> r.Paper_data.p_name = bm.Dca_progs.Benchmark.bm_name) Paper_data.npb
        | Dca_progs.Benchmark.Plds ->
            List.exists (fun r -> r.Paper_data.q_name = bm.Dca_progs.Benchmark.bm_name) Paper_data.plds))
    Dca_progs.Registry.all

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "table1 DCA >= dynamic tools" `Slow test_table1_dca_dominates_dynamic;
        Alcotest.test_case "table1 totals" `Slow test_table1_totals;
        Alcotest.test_case "table2 headline" `Slow test_table2_headline;
        Alcotest.test_case "table3 static ordering" `Slow test_table3_static_ordering;
        Alcotest.test_case "table4 precision" `Slow test_table4_precision;
        Alcotest.test_case "table4 coverage" `Slow test_table4_coverage_high;
        Alcotest.test_case "fig5 profitable" `Slow test_fig5_profitable;
        Alcotest.test_case "fig6 dca wins" `Slow test_fig6_dca_wins;
        Alcotest.test_case "fig7 ordering" `Slow test_fig7_ordering;
        Alcotest.test_case "paper reference data" `Quick test_paper_data_consistency;
      ] );
  ]
