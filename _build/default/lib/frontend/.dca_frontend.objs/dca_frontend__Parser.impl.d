lib/frontend/parser.ml: Ast Lexer List Loc Token
