lib/frontend/ast.ml: List Loc Printf String
