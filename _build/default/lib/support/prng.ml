type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the high bits to avoid low-bit bias of multiplicative mixes. *)
  let raw = Int64.shift_right_logical (next_int64 t) 2 in
  Int64.to_int (Int64.rem raw (Int64.of_int bound))

let float t =
  let raw = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float raw /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle_in_place t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let split t =
  let seed = next_int64 t in
  { state = mix seed }
