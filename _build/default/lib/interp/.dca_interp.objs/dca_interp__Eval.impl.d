lib/interp/eval.ml: Array Dca_frontend Dca_ir Events Float Fun Hashtbl Int64 Ir Layout List Option Printf Store Value
