(** Union–find over dense integer elements, with path compression and union
    by rank.  Used by the alias-class partitioning in the static baselines. *)

type t

val create : int -> t
(** [create n] has elements [0 .. n-1], each in its own class. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val classes : t -> int list list
(** All equivalence classes, members ascending, classes ordered by their
    smallest member. *)
