(** Reference numbers from the paper (Tables I–IV, Figs. 5–7), printed
    alongside our measurements so every report is a paper-vs-measured
    comparison.  Loop counts are absolute numbers from the paper's NPB
    3.3/SNU build and are not expected to match our scaled-down ports;
    the *shape* (who detects more, where the gaps are) is the target. *)

type npb_row = {
  p_name : string;
  p_loops : int;
  p_depprof : int option;  (** Table I; None = tool reported no results *)
  p_discopop : int option;
  p_idioms : int;  (** Table III *)
  p_polly : int;
  p_icc : int;
  p_combined : int;
  p_dca : int;
  p_dca_coverage : int;  (** Table IV, % *)
  p_static_coverage : int;  (** Table IV, % *)
  p_dca_speedup : float;  (** Fig. 6/7, approximate bar heights *)
  p_expert_loop_speedup : float;
  p_expert_full_speedup : float;
}

let npb =
  [
    { p_name = "BT"; p_loops = 182; p_depprof = Some 168; p_discopop = Some 176; p_idioms = 5;
      p_polly = 34; p_icc = 50; p_combined = 80; p_dca = 168; p_dca_coverage = 100;
      p_static_coverage = 36; p_dca_speedup = 8.6; p_expert_loop_speedup = 8.6; p_expert_full_speedup = 8.6 };
    { p_name = "CG"; p_loops = 47; p_depprof = Some 33; p_discopop = Some 21; p_idioms = 9;
      p_polly = 8; p_icc = 23; p_combined = 25; p_dca = 33; p_dca_coverage = 91;
      p_static_coverage = 7; p_dca_speedup = 2.6; p_expert_loop_speedup = 2.6; p_expert_full_speedup = 4.4 };
    { p_name = "DC"; p_loops = 105; p_depprof = None; p_discopop = None; p_idioms = 14;
      p_polly = 11; p_icc = 23; p_combined = 39; p_dca = 41; p_dca_coverage = 0;
      p_static_coverage = 0; p_dca_speedup = 1.0; p_expert_loop_speedup = 1.1; p_expert_full_speedup = 3.8 };
    { p_name = "EP"; p_loops = 9; p_depprof = Some 6; p_discopop = Some 8; p_idioms = 2;
      p_polly = 2; p_icc = 3; p_combined = 4; p_dca = 6; p_dca_coverage = 100;
      p_static_coverage = 37; p_dca_speedup = 55.2; p_expert_loop_speedup = 55.2; p_expert_full_speedup = 55.2 };
    { p_name = "FT"; p_loops = 42; p_depprof = Some 36; p_discopop = Some 34; p_idioms = 1;
      p_polly = 6; p_icc = 1; p_combined = 8; p_dca = 36; p_dca_coverage = 91;
      p_static_coverage = 42; p_dca_speedup = 1.2; p_expert_loop_speedup = 1.6; p_expert_full_speedup = 5.3 };
    { p_name = "IS"; p_loops = 16; p_depprof = Some 12; p_discopop = Some 20; p_idioms = 7;
      p_polly = 3; p_icc = 3; p_combined = 11; p_dca = 12; p_dca_coverage = 60;
      p_static_coverage = 56; p_dca_speedup = 1.3; p_expert_loop_speedup = 1.5; p_expert_full_speedup = 4.2 };
    { p_name = "LU"; p_loops = 186; p_depprof = Some 160; p_discopop = Some 164; p_idioms = 3;
      p_polly = 19; p_icc = 81; p_combined = 90; p_dca = 160; p_dca_coverage = 84;
      p_static_coverage = 56; p_dca_speedup = 1.3; p_expert_loop_speedup = 2.0; p_expert_full_speedup = 7.4 };
    { p_name = "MG"; p_loops = 81; p_depprof = Some 48; p_discopop = Some 66; p_idioms = 8;
      p_polly = 5; p_icc = 21; p_combined = 32; p_dca = 48; p_dca_coverage = 87;
      p_static_coverage = 56; p_dca_speedup = 4.5; p_expert_loop_speedup = 5.5; p_expert_full_speedup = 7.6 };
    { p_name = "SP"; p_loops = 250; p_depprof = Some 233; p_discopop = Some 231; p_idioms = 2;
      p_polly = 38; p_icc = 93; p_combined = 113; p_dca = 233; p_dca_coverage = 94;
      p_static_coverage = 77; p_dca_speedup = 6.1; p_expert_loop_speedup = 6.1; p_expert_full_speedup = 6.1 };
    { p_name = "UA"; p_loops = 479; p_depprof = None; p_discopop = None; p_idioms = 23;
      p_polly = 43; p_icc = 180; p_combined = 209; p_dca = 466; p_dca_coverage = 86;
      p_static_coverage = 57; p_dca_speedup = 13.0; p_expert_loop_speedup = 14.0; p_expert_full_speedup = 16.0 };
  ]

type plds_row = {
  q_name : string;
  q_origin : string;
  q_function : string;  (** the loop-containing function, paper Table II *)
  q_coverage : int;  (** % sequential coverage reported by the paper *)
  q_potential : string;  (** potential speedup column (literature) *)
  q_technique : string;  (** expert-manual detection technique column *)
  q_fig5 : float option;  (** approximate Fig. 5 bar for DCA, when shown *)
}

let plds =
  [
    { q_name = "429.mcf"; q_origin = "SPEC CPU2006"; q_function = "refresh_potential";
      q_coverage = 30; q_potential = "2.2 (loop)"; q_technique = "DSWP variant 1"; q_fig5 = None };
    { q_name = "300.twolf"; q_origin = "SPEC CPU2000"; q_function = "new_dbox_a";
      q_coverage = 30; q_potential = "1.5 (loop)"; q_technique = "DSWP variant 2"; q_fig5 = None };
    { q_name = "ks"; q_origin = "PtrDist"; q_function = "FindMaxGpAndSwap";
      q_coverage = 99; q_potential = "1.5 (loop)"; q_technique = "DSWP variant 1"; q_fig5 = Some 1.5 };
    { q_name = "otter"; q_origin = "FOSS"; q_function = "find_lightest_geo_child";
      q_coverage = 15; q_potential = "2.5 (loop)"; q_technique = "DSWP variant 2"; q_fig5 = None };
    { q_name = "em3d"; q_origin = "Olden"; q_function = "compute_nodes";
      q_coverage = 100; q_potential = "~2 (loop)"; q_technique = "DSWP variant 1"; q_fig5 = None };
    { q_name = "mst"; q_origin = "Olden"; q_function = "BlueRule";
      q_coverage = 100; q_potential = "1.5 (loop)"; q_technique = "DSWP variant 1"; q_fig5 = None };
    { q_name = "bh"; q_origin = "Olden"; q_function = "walksub";
      q_coverage = 100; q_potential = "2.75 (loop)"; q_technique = "DSWP variant 1"; q_fig5 = None };
    { q_name = "perimeter"; q_origin = "Olden"; q_function = "perimeter";
      q_coverage = 100; q_potential = "2.25 (loop)"; q_technique = "DSWP variant 1"; q_fig5 = Some 2.0 };
    { q_name = "treeadd"; q_origin = "Olden"; q_function = "TreeAdd";
      q_coverage = 100; q_potential = "~7 (overall)"; q_technique = "Partitioning"; q_fig5 = Some 7.0 };
    { q_name = "hash"; q_origin = "Shootout"; q_function = "ht_find";
      q_coverage = 50; q_potential = "~4 (overall)"; q_technique = "Partitioning"; q_fig5 = None };
    { q_name = "BFS"; q_origin = "Lonestar"; q_function = "BFS";
      q_coverage = 99; q_potential = "21 (overall)"; q_technique = "Galois"; q_fig5 = Some 21.0 };
    { q_name = "ising"; q_origin = "community"; q_function = "main";
      q_coverage = 95; q_potential = "~6 (overall)"; q_technique = "ASC"; q_fig5 = Some 6.0 };
    { q_name = "spmatmat"; q_origin = "SPARK00"; q_function = "main";
      q_coverage = 89; q_potential = "~4 (overall)"; q_technique = "APOLLO"; q_fig5 = Some 4.0 };
    { q_name = "water-spatial"; q_origin = "SPLASH3"; q_function = "INTERF";
      q_coverage = 63; q_potential = "2 (overall)"; q_technique = "OPENMP"; q_fig5 = Some 2.0 };
  ]

let fig5_programs = [ "treeadd"; "perimeter"; "water-spatial"; "ks"; "spmatmat"; "BFS"; "ising" ]

let npb_row name = List.find (fun r -> r.p_name = name) npb
let plds_row name = List.find (fun r -> r.q_name = name) plds
