open Dca_analysis

let pragma_line (lp : Plan.loop_plan) =
  let priv = match lp.Plan.lp_private with [] -> "" | l -> " private(" ^ String.concat ", " l ^ ")" in
  let reds =
    String.concat ""
      (List.map
         (fun (name, op) ->
           Printf.sprintf " reduction(%s:%s)" (Scalars.reduction_op_to_string op) name)
         lp.Plan.lp_reductions)
  in
  Printf.sprintf "// #pragma omp parallel for schedule(static)%s%s" priv reds

let annotate_source info ~source plan =
  let lines = String.split_on_char '\n' source |> Array.of_list in
  (* line number (1-based) → pragmas to insert above it *)
  let inserts : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let unplaced = ref [] in
  List.iter
    (fun lp ->
      match Proginfo.loop_by_id info lp.Plan.lp_loop_id with
      | Some (_, loop) ->
          let line = loop.Loops.l_loc.Dca_frontend.Loc.line in
          if line >= 1 && line <= Array.length lines then
            Hashtbl.replace inserts line
              (pragma_line lp :: (try Hashtbl.find inserts line with Not_found -> []))
          else unplaced := lp :: !unplaced
      | None -> unplaced := lp :: !unplaced)
    plan.Plan.plan_loops;
  let buf = Buffer.create (String.length source + 256) in
  Array.iteri
    (fun idx text ->
      let lineno = idx + 1 in
      (match Hashtbl.find_opt inserts lineno with
      | Some pragmas ->
          let indent =
            let n = ref 0 in
            while !n < String.length text && text.[!n] = ' ' do
              incr n
            done;
            String.make !n ' '
          in
          List.iter (fun p -> Buffer.add_string buf (indent ^ p ^ "\n")) pragmas
      | None -> ());
      Buffer.add_string buf text;
      if idx < Array.length lines - 1 then Buffer.add_char buf '\n')
    lines;
  List.iter
    (fun lp ->
      Buffer.add_string buf
        (Printf.sprintf "\n// NOTE: loop %s was planned but its source line could not be recovered:\n%s\n"
           lp.Plan.lp_loop_id (pragma_line lp)))
    !unplaced;
  Buffer.contents buf
