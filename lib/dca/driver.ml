open Dca_support
open Dca_analysis

type decision =
  | Commutative
  | Non_commutative of string
  | Untestable of string
  | Rejected of Candidate.rejection
  | Subsumed of string

type loop_result = {
  lr_loop : Loops.loop;
  lr_label : string;
  lr_decision : decision;
  lr_outcome : Commutativity.outcome option;
}

(* Work counters: one tick per loop outcome, always at the point where
   the result record is built — reached exactly once per loop in both the
   sequential and the pool-mapped paths, so totals are jobs-invariant. *)
let c_examined = Telemetry.counter "dca.loops_examined"
let c_rejected = Telemetry.counter "dca.loops_rejected"
let c_subsumed = Telemetry.counter "dca.loops_subsumed"

let decision_to_string = function
  | Commutative -> "commutative"
  | Non_commutative why -> Printf.sprintf "non-commutative: %s" why
  | Untestable why -> Printf.sprintf "untestable: %s" why
  | Rejected r -> Printf.sprintf "rejected: %s" (Candidate.rejection_to_string r)
  | Subsumed parent -> Printf.sprintf "subsumed by commutative ancestor %s" parent

let analyze_program ?(config = Commutativity.default_config)
    ?(spec = Commutativity.default_run_spec) ?(hierarchical = false) ?pool info =
  (* loops arrive outermost-first within each function, so a commutative
     ancestor is always decided before its descendants *)
  let commutative_ancestors : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let subsuming_ancestor (fi : Proginfo.func_info) (loop : Loops.loop) =
    if not hierarchical then None
    else
      Loops.nesting_path fi.Proginfo.fi_forest loop
      |> List.find_opt (fun anc ->
             anc.Loops.l_id <> loop.Loops.l_id && Hashtbl.mem commutative_ancestors anc.Loops.l_id)
  in
  (* [examine_and_test] is free of shared mutable state, so calls for
     distinct loops can run on distinct domains: each dynamic test builds
     its own evaluator over the (read-only) program info. *)
  let examine_and_test (fi, loop) =
    let label = Proginfo.loop_label info loop in
    Telemetry.incr c_examined;
    Telemetry.span ~cat:"dynamic" ("loop " ^ label) (fun () ->
        match Telemetry.span ~cat:"static" "examine" (fun () -> Candidate.examine info fi loop) with
        | Candidate.Rejected r ->
            Telemetry.incr c_rejected;
            { lr_loop = loop; lr_label = label; lr_decision = Rejected r; lr_outcome = None }
        | Candidate.Accepted sep ->
            let outcome = Commutativity.test_loop ?pool config info spec fi sep in
            let decision =
              match outcome.Commutativity.oc_verdict with
              | Commutativity.Commutative -> Commutative
              | Commutativity.Non_commutative why -> Non_commutative why
              | Commutativity.Untestable why -> Untestable why
            in
            { lr_loop = loop; lr_label = label; lr_decision = decision; lr_outcome = Some outcome })
  in
  let note_commutative r =
    match r.lr_decision with
    | Commutative -> Hashtbl.replace commutative_ancestors r.lr_loop.Loops.l_id ()
    | _ -> ()
  in
  let loops = Proginfo.all_loops info in
  match pool with
  | Some p when Pool.jobs p > 1 ->
      if not hierarchical then
        (* every loop's test is independent: one pool task per loop,
           results collected in program order *)
        Pool.map p examine_and_test loops
      else begin
        (* Hierarchical mode tests in waves of equal nesting depth.  A
           loop's only inter-loop dependence is on its ancestors (all of
           strictly smaller depth), so when a wave starts, every ancestor
           verdict is final — the wave can check subsumption up front,
           skip the subsumed loops entirely (the sequential cancellation
           semantics), and fan the surviving tests out in parallel. *)
        let indexed = List.mapi (fun i fl -> (i, fl)) loops in
        let waves =
          Listx.group_by (fun (_, (_, loop)) -> loop.Loops.l_depth) indexed
          |> List.sort (fun (d1, _) (d2, _) -> compare d1 d2)
          |> List.map snd
        in
        let results : (int, loop_result) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun wave ->
            let to_test =
              List.filter
                (fun (i, (fi, loop)) ->
                  match subsuming_ancestor fi loop with
                  | Some anc ->
                      Telemetry.incr c_subsumed;
                      Hashtbl.replace results i
                        {
                          lr_loop = loop;
                          lr_label = Proginfo.loop_label info loop;
                          lr_decision = Subsumed anc.Loops.l_id;
                          lr_outcome = None;
                        };
                      false
                  | None -> true)
                wave
            in
            let tested = Pool.map p (fun (_, fl) -> examine_and_test fl) to_test in
            List.iter2
              (fun (i, _) r ->
                note_commutative r;
                Hashtbl.replace results i r)
              to_test tested)
          waves;
        List.mapi (fun i _ -> Hashtbl.find results i) loops
      end
  | _ ->
      List.map
        (fun (fi, loop) ->
          match subsuming_ancestor fi loop with
          | Some anc ->
              Telemetry.incr c_subsumed;
              {
                lr_loop = loop;
                lr_label = Proginfo.loop_label info loop;
                lr_decision = Subsumed anc.Loops.l_id;
                lr_outcome = None;
              }
          | None ->
              let r = examine_and_test (fi, loop) in
              note_commutative r;
              r)
        loops

let analyze_source ?config ?spec ?hierarchical ?pool ~file src =
  let prog = Dca_ir.Lower.compile ~file src in
  let info = Proginfo.analyze prog in
  (info, analyze_program ?config ?spec ?hierarchical ?pool info)

let is_commutative r = match r.lr_decision with Commutative -> true | _ -> false

let commutative_ids results =
  List.filter_map (fun r -> if is_commutative r then Some r.lr_loop.Loops.l_id else None) results
