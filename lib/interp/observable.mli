(** Canonical capture of the observable (live-out) program state.

    DCA's live-out verification (paper §IV-B3) compares the state a loop
    leaves behind under the original iteration order against the state left
    by each permuted execution.  The comparison must be

    - {e address-insensitive}: two heaps that are isomorphic as labelled
      graphs must compare equal even when allocation produced different
      block ids (permuted executions may allocate in different orders);
    - {e transient-insensitive}: only state reachable from the live-out
      roots participates — a dead worklist or the iterator's own chain of
      cells is ignored, which is exactly the "liveness-based" part of the
      paper's commutativity notion;
    - {e rounding-tolerant}: permuting a floating-point reduction changes
      the rounding of the result, so floats compare with a relative
      tolerance rather than bit equality.

    A capture walks the heap from the given roots in deterministic order,
    renames blocks to canonical ids in first-visit order, and records every
    reachable cell. *)

type t

val capture : Store.t -> scalars:Value.t list -> roots:Value.t list -> t
(** [scalars] are the live-out scalar values in a fixed order (they also
    act as traversal roots when they are pointers); [roots] are additional
    pointer roots (global aggregates, live-out global pointers), also in a
    fixed order. *)

val equal : ?eps:float -> t -> t -> bool
(** Structural equality with relative float tolerance (default 1e-9). *)

val matches : ?eps:float -> t -> Store.t -> scalars:Value.t list -> roots:Value.t list -> bool
(** [matches golden st ~scalars ~roots] is [equal golden (capture st
    ~scalars ~roots)] without materializing the second capture: the live
    state is walked in capture order and compared cell-by-cell against
    [golden], allocating only the canonical-renaming table.  This is the
    replay hot path — one digest is captured per golden run and every
    schedule replay checks the state it left behind against it. *)

val size : t -> int
(** Number of captured cells (diagnostics). *)

val to_string : t -> string
(** Canonical rendering, for reports and debugging. *)

val outputs_equal : ?eps:float -> string list -> string list -> bool
(** Tolerant comparison of program output streams: lines that both parse
    as numbers compare with relative tolerance, others byte-wise.  Used by
    the whole-program escalation of the verifier. *)
