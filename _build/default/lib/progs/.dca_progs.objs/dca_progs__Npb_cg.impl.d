lib/progs/npb_cg.ml: Benchmark
