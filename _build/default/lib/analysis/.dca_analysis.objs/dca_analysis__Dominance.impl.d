lib/analysis/dominance.ml: Array Cfg Dca_ir List
