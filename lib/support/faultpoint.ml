exception Injected of string
exception Bad_plan of string

type action =
  | Raise
  | Trap
  | Fuel
  | Delay_ms of int

type spec = {
  sp_site : string;
  sp_ctx : string option;
  sp_nth : int;
  sp_repeat : bool;
  sp_action : action;
}

let injected_msg ?ctx name =
  match ctx with
  | None -> "injected fault at " ^ name
  | Some c -> Printf.sprintf "injected fault at %s[%s]" name c

let injected_marker = "injected fault at "

let is_injected_message msg =
  (* substring search: the marker may sit behind a prefix such as
     "trap under reverse: " *)
  let n = String.length injected_marker and m = String.length msg in
  let rec scan i = i + n <= m && (String.sub msg i n = injected_marker || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Plan text                                                           *)
(* ------------------------------------------------------------------ *)

let action_to_string = function
  | Raise -> "raise"
  | Trap -> "trap"
  | Fuel -> "fuel"
  | Delay_ms ms -> Printf.sprintf "delay:%d" ms

let spec_to_string s =
  Printf.sprintf "%s%s@%d%s=%s" s.sp_site
    (match s.sp_ctx with None -> "" | Some c -> "[" ^ c ^ "]")
    s.sp_nth
    (if s.sp_repeat then "+" else "")
    (action_to_string s.sp_action)

let plan_to_string plan = String.concat "; " (List.map spec_to_string plan)

let parse_action entry s =
  match s with
  | "raise" -> Ok Raise
  | "trap" -> Ok Trap
  | "fuel" -> Ok Fuel
  | _ when String.length s > 6 && String.sub s 0 6 = "delay:" -> (
      let ms = String.sub s 6 (String.length s - 6) in
      match int_of_string_opt ms with
      | Some ms when ms >= 0 -> Ok (Delay_ms ms)
      | _ -> Error (Printf.sprintf "%S: bad delay %S (want delay:MS)" entry ms))
  | _ -> Error (Printf.sprintf "%S: unknown action %S (want raise|trap|fuel|delay:MS)" entry s)

(* entry := site [ '[' ctx ']' ] [ '@' N [ '+' ] ] '=' action *)
let parse_entry entry =
  match String.index_opt entry '=' with
  | None -> Error (Printf.sprintf "%S: missing '=action'" entry)
  | Some eq -> (
      let lhs = String.trim (String.sub entry 0 eq) in
      let rhs = String.trim (String.sub entry (eq + 1) (String.length entry - eq - 1)) in
      let site_ctx, nth_part =
        (* the '@' selector follows any ']' so a ctx may contain '@' *)
        let from = match String.rindex_opt lhs ']' with Some i -> i | None -> 0 in
        match String.index_from_opt lhs from '@' with
        | None -> (lhs, None)
        | Some at ->
            (String.sub lhs 0 at, Some (String.sub lhs (at + 1) (String.length lhs - at - 1)))
      in
      let site, ctx =
        match String.index_opt site_ctx '[' with
        | None -> (Ok site_ctx, None)
        | Some lb ->
            if String.length site_ctx > 0 && site_ctx.[String.length site_ctx - 1] = ']' then
              ( Ok (String.sub site_ctx 0 lb),
                Some (String.sub site_ctx (lb + 1) (String.length site_ctx - lb - 2)) )
            else (Error (Printf.sprintf "%S: unterminated '[ctx]'" entry), None)
      in
      let nth, repeat =
        match nth_part with
        | None -> (Ok 1, false)
        | Some n ->
            let n, repeat =
              if String.length n > 0 && n.[String.length n - 1] = '+' then
                (String.sub n 0 (String.length n - 1), true)
              else (n, false)
            in
            ( (match int_of_string_opt n with
              | Some k when k >= 1 -> Ok k
              | _ -> Error (Printf.sprintf "%S: bad hit index %S (want @N, N >= 1)" entry n)),
              repeat )
      in
      match (site, nth, parse_action entry rhs) with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok site, Ok nth, Ok action ->
          if site = "" then Error (Printf.sprintf "%S: empty site name" entry)
          else
            Ok { sp_site = site; sp_ctx = ctx; sp_nth = nth; sp_repeat = repeat; sp_action = action })

let parse text =
  let entries =
    String.split_on_char ';' text |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> ( match parse_entry e with Ok s -> go (s :: acc) rest | Error _ as err -> err)
  in
  go [] entries

(* ------------------------------------------------------------------ *)
(* Armed state                                                         *)
(* ------------------------------------------------------------------ *)

type armed_spec = { a_spec : spec; mutable a_hits : int }

let armed_flag = Atomic.make false
let mutex = Mutex.create ()
let plan_state : armed_spec list ref = ref []
let fired_total = ref 0
let env_inited = ref false
let explicitly_armed = ref false

let arm plan =
  Mutex.protect mutex (fun () ->
      plan_state := List.map (fun s -> { a_spec = s; a_hits = 0 }) plan;
      fired_total := 0;
      explicitly_armed := true;
      Atomic.set armed_flag (plan <> []))

let arm_string text =
  match parse text with Ok plan -> arm plan | Error e -> raise (Bad_plan e)

let disarm () = arm []
let armed () = Atomic.get armed_flag

let reset_hits () =
  Mutex.protect mutex (fun () -> List.iter (fun a -> a.a_hits <- 0) !plan_state)

let init_from_env () =
  let run =
    Mutex.protect mutex (fun () ->
        if !env_inited || !explicitly_armed then false
        else begin
          env_inited := true;
          true
        end)
  in
  if run then
    match Sys.getenv_opt "DCA_FAULTS" with
    | None | Some "" -> ()
    | Some text -> arm_string text

let fired () = Mutex.protect mutex (fun () -> !fired_total)

(* ------------------------------------------------------------------ *)
(* Sites and hits                                                      *)
(* ------------------------------------------------------------------ *)

type site = { s_name : string }

let sites : (string, site) Hashtbl.t = Hashtbl.create 16

let site name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt sites name with
      | Some s -> s
      | None ->
          let s = { s_name = name } in
          Hashtbl.add sites name s;
          s)

let known_sites () =
  Mutex.protect mutex (fun () -> Hashtbl.fold (fun n _ acc -> n :: acc) sites [])
  |> List.sort compare

type fire =
  | Pass
  | Fire_trap
  | Fire_fuel

let busy_wait_ms ms =
  let until = Telemetry.now_ns () + (ms * 1_000_000) in
  while Telemetry.now_ns () < until do
    Domain.cpu_relax ()
  done

let hit_slow ctx site =
  let firing =
    Mutex.protect mutex (fun () ->
        List.fold_left
          (fun acc a ->
            if
              a.a_spec.sp_site = site.s_name
              && (match a.a_spec.sp_ctx with None -> true | Some c -> Some c = ctx)
            then begin
              a.a_hits <- a.a_hits + 1;
              let fires =
                if a.a_spec.sp_repeat then a.a_hits >= a.a_spec.sp_nth
                else a.a_hits = a.a_spec.sp_nth
              in
              if fires then begin
                incr fired_total;
                match acc with None -> Some a.a_spec.sp_action | Some _ -> acc
              end
              else acc
            end
            else acc)
          None !plan_state)
  in
  match firing with
  | None -> Pass
  | Some Raise -> raise (Injected (injected_msg ?ctx site.s_name))
  | Some Trap -> Fire_trap
  | Some Fuel -> Fire_fuel
  | Some (Delay_ms ms) ->
      busy_wait_ms ms;
      Pass

let hit ?ctx site = if not (Atomic.get armed_flag) then Pass else hit_slow ctx site

let hit_unit ?ctx site =
  match hit ?ctx site with
  | Pass -> ()
  | Fire_trap | Fire_fuel -> raise (Injected (injected_msg ?ctx site.s_name))
