(** PLDS ports, part 3: worklist traversals and hashed structures.

    [treeadd] and [perimeter] pop work from a list and push children —
    the payload-feeds-iterator idiom that DCA handles by promoting the
    pushes into the iterator slice; [hash] batch-probes bucket chains. *)

let treeadd =
  Benchmark.default ~name:"treeadd" ~suite:Benchmark.Plds
    ~description:"worklist tree sum (payload pushes feed iterator pops)"
    ~source:
      {|
struct tnode {
  int value;
  struct tnode *left;
  struct tnode *right;
}
struct work {
  struct tnode *node;
  struct work *next;
}

struct tnode *root;
struct work *worklist;
int total;

struct tnode *build(int depth, int salt) {
  struct tnode *t = new struct tnode;
  t->value = 1 + (salt % 7);
  if (depth > 0) {
    t->left = build(depth - 1, salt * 2 + 1);
    t->right = build(depth - 1, salt * 2 + 2);
  } else {
    t->left = null;
    t->right = null;
  }
  return t;
}

int tree_add() {
  // the hot TreeAdd loop
  int sum = 0;
  worklist = new struct work;
  worklist->node = root;
  worklist->next = null;
  while (worklist) {
    struct tnode *n = worklist->node;
    worklist = worklist->next;
    sum = sum + n->value;
    if (n->left) {
      struct work *w = new struct work;
      w->node = n->left;
      w->next = worklist;
      worklist = w;
    }
    if (n->right) {
      struct work *w = new struct work;
      w->node = n->right;
      w->next = worklist;
      worklist = w;
    }
  }
  return sum;
}

void main() {
  root = build(9, 1);
  total = 0;
  int pass;
  for (pass = 0; pass < 4; pass = pass + 1) {
    total = total + tree_add();
  }
  printi(total);
  printi(1);
}
|}

let perimeter =
  Benchmark.default ~name:"perimeter" ~suite:Benchmark.Plds
    ~description:"quadtree perimeter accumulation over an explicit worklist"
    ~source:
      {|
struct quad {
  int color;              // 0 white, 1 black, 2 grey (internal)
  int size;
  struct quad *nw;
  struct quad *ne;
  struct quad *sw;
  struct quad *se;
}
struct work {
  struct quad *node;
  struct work *next;
}

struct quad *root;
struct work *agenda;
int perimeter_total;

struct quad *build(int depth, int salt) {
  struct quad *q = new struct quad;
  q->size = 1;
  int i = depth;
  while (i > 0) {
    q->size = q->size * 2;
    i = i - 1;
  }
  if (depth > 0 && hrand(salt) < 0.7) {
    q->color = 2;
    q->nw = build(depth - 1, salt * 4 + 1);
    q->ne = build(depth - 1, salt * 4 + 2);
    q->sw = build(depth - 1, salt * 4 + 3);
    q->se = build(depth - 1, salt * 4 + 4);
  } else {
    if (hrand(salt + 13) < 0.5) { q->color = 1; } else { q->color = 0; }
    q->nw = null;
    q->ne = null;
    q->sw = null;
    q->se = null;
  }
  return q;
}

void perimeter() {
  agenda = new struct work;
  agenda->node = root;
  agenda->next = null;
  while (agenda) {
    struct quad *q = agenda->node;
    agenda = agenda->next;
    if (q->color == 2) {
      struct work *w1 = new struct work;
      w1->node = q->nw;
      w1->next = agenda;
      agenda = w1;
      struct work *w2 = new struct work;
      w2->node = q->ne;
      w2->next = agenda;
      agenda = w2;
      struct work *w3 = new struct work;
      w3->node = q->sw;
      w3->next = agenda;
      agenda = w3;
      struct work *w4 = new struct work;
      w4->node = q->se;
      w4->next = agenda;
      agenda = w4;
    } else {
      if (q->color == 1) {
        // black leaf: contribute an approximation of its boundary
        perimeter_total = perimeter_total + 4 * q->size;
      }
    }
  }
}

void main() {
  root = build(7, 1);
  perimeter_total = 0;
  perimeter();
  printi(perimeter_total);
  printi(1);
}
|}

let hash =
  Benchmark.default ~name:"hash" ~suite:Benchmark.Plds
    ~description:"ht_find-style batch lookups over hash bucket chains"
    ~source:
      {|
struct entry {
  int key;
  int value;
  struct entry *next;
}

struct query {
  int key;
  struct query *next;
}

struct entry *buckets[64];
struct query *queries;
int nprobes;
int found_sum;

void ht_insert(int key, int value) {
  int b = key % 64;
  struct entry *e = new struct entry;
  e->key = key;
  e->value = value;
  e->next = buckets[b];
  buckets[b] = e;
}

int ht_find(int key) {
  int b = key % 64;
  struct entry *e = buckets[b];
  while (e) {
    if (e->key == key) { return e->value; }
    e = e->next;
  }
  return 0;
}

// hot batch-probe loop: a PLDS traversal over the query list
void ht_find_batch() {
  struct query *q = queries;
  while (q) {
    found_sum = found_sum + ht_find(q->key);
    q = q->next;
  }
}

void main() {
  int i;
  for (i = 0; i < 64; i = i + 1) { buckets[i] = null; }
  for (i = 0; i < 256; i = i + 1) { ht_insert(i * 7 % 512, i); }
  nprobes = 600;
  queries = null;
  for (i = 0; i < nprobes; i = i + 1) {
    struct query *q = new struct query;
    q->key = i * 3 % 512;
    q->next = queries;
    queries = q;
  }
  found_sum = 0;
  ht_find_batch();
  printi(found_sum);
  printi(1);
}
|}

let benchmarks = [ treeadd; perimeter; hash ]
