(* dca — command-line front end of the Dynamic Commutativity Analysis
   reproduction.

     dca list                      enumerate built-in benchmark programs
     dca run <prog>                execute a MiniC program
     dca ir <prog>                 dump the lowered IR
     dca analyze <prog>            DCA verdict for every loop
     dca tools <prog>              compare the five baseline detectors
     dca speedup <prog>            plan + simulated multicore speedup

   <prog> is a path to a .mc file or the name of a built-in benchmark. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Resolve a program argument to (name, source, input). *)
let load prog =
  match Dca_progs.Registry.find prog with
  | Some bm ->
      Ok (bm.Dca_progs.Benchmark.bm_name, bm.Dca_progs.Benchmark.bm_source, bm.Dca_progs.Benchmark.bm_input)
  | None ->
      if Sys.file_exists prog then Ok (Filename.basename prog, read_file prog, [])
      else Error (Printf.sprintf "'%s' is neither a built-in benchmark nor a file" prog)

let with_program prog f =
  match load prog with
  | Error msg ->
      Printf.eprintf "dca: %s\n" msg;
      1
  | Ok (name, source, input) -> (
      match f name source input with
      | () -> 0
      | exception Dca_frontend.Loc.Error (loc, msg) ->
          Printf.eprintf "dca: %s: %s\n" (Dca_frontend.Loc.to_string loc) msg;
          1
      | exception Dca_interp.Eval.Trap msg ->
          Printf.eprintf "dca: runtime trap: %s\n" msg;
          1
      | exception Dca_interp.Eval.Out_of_fuel ->
          Printf.eprintf "dca: execution exceeded the fuel bound\n";
          1)

let prog_arg =
  let doc = "Program: a .mc source file or a built-in benchmark name (see $(b,dca list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROG" ~doc)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %-5s %s\n" "name" "suite" "description";
    List.iter
      (fun bm ->
        Printf.printf "%-14s %-5s %s\n" bm.Dca_progs.Benchmark.bm_name
          (match bm.Dca_progs.Benchmark.bm_suite with
          | Dca_progs.Benchmark.Npb -> "NPB"
          | Dca_progs.Benchmark.Plds -> "PLDS")
          bm.Dca_progs.Benchmark.bm_description)
      Dca_progs.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark programs")
    Term.(const run $ const ())

let run_cmd =
  let run prog =
    with_program prog (fun _name source input ->
        let p = Dca_ir.Lower.compile ~file:prog source in
        let ctx = Dca_interp.Eval.create ~input p in
        Dca_interp.Eval.run_main ctx;
        List.iter print_endline (Dca_interp.Eval.outputs ctx);
        Printf.printf "(%d instructions executed)\n" (Dca_interp.Eval.steps ctx))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a MiniC program on the interpreter")
    Term.(const run $ prog_arg)

let ir_cmd =
  let run prog =
    with_program prog (fun _name source _input ->
        let p = Dca_ir.Lower.compile ~file:prog source in
        print_string (Dca_ir.Ir_printer.program_to_string p))
  in
  Cmd.v (Cmd.info "ir" ~doc:"Dump the lowered intermediate representation")
    Term.(const run $ prog_arg)

let shuffles_arg =
  Arg.(value & opt int 3 & info [ "shuffles" ] ~docv:"N" ~doc:"Number of random shuffles to test.")

let no_escalate_arg =
  Arg.(
    value & flag
    & info [ "no-escalate" ]
        ~doc:"Disable whole-program verification; strict live-out digests only.")

let analyze_cmd =
  let run prog shuffles no_escalate =
    with_program prog (fun _name source input ->
        let config =
          {
            Dca_core.Commutativity.default_config with
            Dca_core.Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles ();
            cc_escalate = not no_escalate;
          }
        in
        let spec = { Dca_core.Commutativity.rs_input = input; rs_fuel = 200_000_000 } in
        let _, results = Dca_core.Driver.analyze_source ~config ~spec ~file:prog source in
        Dca_core.Report.print results)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run Dynamic Commutativity Analysis on every loop of the program")
    Term.(const run $ prog_arg $ shuffles_arg $ no_escalate_arg)

let tools_cmd =
  let run prog =
    with_program prog (fun _name source input ->
        let p = Dca_ir.Lower.compile ~file:prog source in
        let info = Dca_analysis.Proginfo.analyze p in
        let profile = Dca_profiling.Depprof.profile_program ~input info in
        let spec = { Dca_core.Commutativity.rs_input = input; rs_fuel = 200_000_000 } in
        let dca = Dca_core.Driver.analyze_program ~spec info in
        let tool_results =
          List.map
            (fun tool ->
              (tool.Dca_baselines.Tool.tool_name, tool.Dca_baselines.Tool.tool_analyze info (Some profile)))
            Dca_baselines.Registry.all
        in
        Printf.printf "%-26s %s\n" "loop"
          (String.concat " "
             (List.map (fun (n, _) -> Printf.sprintf "%-9s" n) tool_results @ [ "DCA" ]));
        List.iter
          (fun (r : Dca_core.Driver.loop_result) ->
            let id = r.Dca_core.Driver.lr_loop.Dca_analysis.Loops.l_id in
            let marks =
              List.map
                (fun (_, results) ->
                  if List.mem id (Dca_baselines.Tool.parallel_ids results) then
                    Printf.sprintf "%-9s" "yes"
                  else Printf.sprintf "%-9s" ".")
                tool_results
            in
            Printf.printf "%-26s %s %s\n" r.Dca_core.Driver.lr_label (String.concat " " marks)
              (if Dca_core.Driver.is_commutative r then "yes" else "."))
          dca)
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"Compare the five baseline detectors and DCA, loop by loop")
    Term.(const run $ prog_arg)

let workers_arg =
  Arg.(value & opt int 72 & info [ "workers" ] ~docv:"P" ~doc:"Simulated worker count.")

let speedup_cmd =
  let run prog workers =
    with_program prog (fun _name source input ->
        let p = Dca_ir.Lower.compile ~file:prog source in
        let info = Dca_analysis.Proginfo.analyze p in
        let profile = Dca_profiling.Depprof.profile_program ~input info in
        let spec = { Dca_core.Commutativity.rs_input = input; rs_fuel = 200_000_000 } in
        let dca = Dca_core.Driver.analyze_program ~spec info in
        let machine = Dca_parallel.Machine.with_workers Dca_parallel.Machine.default workers in
        let plan =
          Dca_parallel.Planner.select ~machine info profile
            ~detected:(Dca_core.Driver.commutative_ids dca)
            ~strategy:Dca_parallel.Planner.Best_benefit
        in
        let result = Dca_parallel.Speedup.simulate ~machine info profile plan in
        Printf.printf "parallel plan:\n%s\n" (Dca_parallel.Plan.to_string plan);
        List.iter
          (fun s ->
            Printf.printf "  %-24s seq %12.0f  par %12.0f  saved %12.0f\n"
              s.Dca_parallel.Speedup.ls_loop_id s.Dca_parallel.Speedup.ls_seq_cost
              s.Dca_parallel.Speedup.ls_par_cost s.Dca_parallel.Speedup.ls_saved)
          result.Dca_parallel.Speedup.sp_loops;
        Printf.printf "sequential work: %.0f\nsimulated parallel time (%d workers): %.0f\nspeedup: %.2fx\n"
          result.Dca_parallel.Speedup.sp_seq workers result.Dca_parallel.Speedup.sp_par
          result.Dca_parallel.Speedup.sp_speedup)
  in
  Cmd.v
    (Cmd.info "speedup"
       ~doc:"Parallelize the DCA-commutative loops and report the simulated speedup")
    Term.(const run $ prog_arg $ workers_arg)

let advise_cmd =
  let run prog =
    with_program prog (fun _name source input ->
        let p = Dca_ir.Lower.compile ~file:prog source in
        let info = Dca_analysis.Proginfo.analyze p in
        let profile = Dca_profiling.Depprof.profile_program ~input info in
        let spec = { Dca_core.Commutativity.rs_input = input; rs_fuel = 200_000_000 } in
        let results = Dca_core.Driver.analyze_program ~spec info in
        let advices = Dca_core.Advisor.advise info profile results in
        print_string (Dca_core.Advisor.report advices))
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Full parallelism advisory: per loop, whether to parallelize (and with which OpenMP \
          clauses), leave serial, or keep sequential — with the evidence")
    Term.(const run $ prog_arg)

let annotate_cmd =
  let run prog =
    with_program prog (fun _name source input ->
        let p = Dca_ir.Lower.compile ~file:prog source in
        let info = Dca_analysis.Proginfo.analyze p in
        let profile = Dca_profiling.Depprof.profile_program ~input info in
        let spec = { Dca_core.Commutativity.rs_input = input; rs_fuel = 200_000_000 } in
        let results = Dca_core.Driver.analyze_program ~spec info in
        let plan =
          Dca_parallel.Planner.select ~machine:Dca_parallel.Machine.default info profile
            ~detected:(Dca_core.Driver.commutative_ids results)
            ~strategy:Dca_parallel.Planner.Best_benefit
        in
        print_string (Dca_parallel.Codegen.annotate_source info ~source plan))
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Emit the source with OpenMP-style pragmas inserted above every loop DCA parallelizes")
    Term.(const run $ prog_arg)

let export_c_cmd =
  let run prog =
    with_program prog (fun _name source input ->
        let p = Dca_ir.Lower.compile ~file:prog source in
        let info = Dca_analysis.Proginfo.analyze p in
        let profile = Dca_profiling.Depprof.profile_program ~input info in
        let spec = { Dca_core.Commutativity.rs_input = input; rs_fuel = 200_000_000 } in
        let results = Dca_core.Driver.analyze_program ~spec info in
        let plan =
          Dca_parallel.Planner.select ~machine:Dca_parallel.Machine.default info profile
            ~detected:(Dca_core.Driver.commutative_ids results)
            ~strategy:Dca_parallel.Planner.Best_benefit
        in
        let ast = Dca_frontend.Parser.parse_program ~file:prog source in
        let pragmas =
          List.filter_map
            (fun lp ->
              match Dca_analysis.Proginfo.loop_by_id info lp.Dca_parallel.Plan.lp_loop_id with
              | Some (_, loop) ->
                  let line = loop.Dca_analysis.Loops.l_loc.Dca_frontend.Loc.line in
                  (* block-scoped declarations are automatically private in C *)
                  let inner = Dca_frontend.C_export.body_declared_names ast ~line in
                  let privates =
                    List.filter (fun n -> not (List.mem n inner)) lp.Dca_parallel.Plan.lp_private
                  in
                  let priv =
                    match privates with
                    | [] -> ""
                    | l -> " private(" ^ String.concat ", " l ^ ")"
                  in
                  let reds =
                    String.concat ""
                      (List.map
                         (fun (name, op) ->
                           Printf.sprintf " reduction(%s:%s)"
                             (Dca_analysis.Scalars.reduction_op_to_string op)
                             name)
                         lp.Dca_parallel.Plan.lp_reductions)
                  in
                  Some (line, Printf.sprintf "#pragma omp parallel for schedule(static)%s%s" priv reds)
              | None -> None)
            plan.Dca_parallel.Plan.plan_loops
        in
        print_string (Dca_frontend.C_export.export_source ~pragmas ~file:prog source))
  in
  Cmd.v
    (Cmd.info "export-c"
       ~doc:
         "Export the program as compilable C99 with real OpenMP pragmas on every loop DCA           parallelizes (build with: cc -fopenmp prog.c -lm)")
    Term.(const run $ prog_arg)

let () =
  let doc = "Loop parallelization using Dynamic Commutativity Analysis (CGO 2021 reproduction)" in
  let info = Cmd.info "dca" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; ir_cmd; analyze_cmd; tools_cmd; speedup_cmd; advise_cmd; annotate_cmd; export_c_cmd ]))
