(** Source-to-source output of a parallelization plan: the original MiniC
    text with an OpenMP-style pragma comment inserted above every planned
    loop — the reproduction's stand-in for the paper's OpenMP code
    generation (§IV-C), usable as a diffable artifact for the user to
    review (§IV-D). *)

val annotate_source :
  Dca_analysis.Proginfo.t -> source:string -> Plan.t -> string
(** Insert one pragma line (matching the target line's indentation) above
    the header line of each planned loop.  Loops whose source line cannot
    be recovered are listed in a trailing comment instead of silently
    dropped. *)

val pragma_line : Plan.loop_plan -> string
