(** Export a MiniC program as compilable C99.

    The output is the program translated one-to-one (MiniC [float] becomes
    C [double]; [new] becomes [calloc]; builtins become a small static
    runtime preamble whose [hrand]/[drand] reproduce the interpreter's
    generators bit for bit), so a compiled binary prints the same lines the
    interpreter does — the test suite differentially checks this against
    gcc when one is installed.

    [pragmas] maps source lines (of loop statements) to OpenMP pragma
    lines to emit immediately above them, which is how [dca export-c]
    ships DCA's parallelization decisions as real OpenMP code
    (paper §IV-C). *)

val export : ?pragmas:(int * string) list -> Ast.program -> string

val export_source : ?pragmas:(int * string) list -> file:string -> string -> string
(** Parse (and type-check) first, then export. *)

val body_declared_names : Ast.program -> line:int -> string list
(** Names declared inside the body of the loop statement starting at the
    given source line.  In the exported C these are block-scoped and hence
    automatically private, so they must not appear in a [private(...)]
    clause. *)
