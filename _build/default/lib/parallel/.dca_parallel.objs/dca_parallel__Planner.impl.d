lib/parallel/planner.ml: Array Dca_analysis Dca_ir Dca_profiling Depprof List Liveness Machine Memred Plan Printf Proginfo Scalars
