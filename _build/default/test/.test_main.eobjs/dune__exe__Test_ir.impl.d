test/test_ir.ml: Alcotest Array Ast Cfg Dca_frontend Dca_ir Ir Ir_printer Layout List Lower String
