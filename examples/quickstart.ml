(* Quickstart: the paper's Fig. 1 in five minutes.

   Two loops perform the same map operation — one over an array, one over
   a linked list.  Dependence analysis handles the first and is inherently
   defeated by the second ([ptr = ptr->next] is a cross-iteration RAW);
   DCA detects both as commutative, uniformly.

   Run with:  dune exec examples/quickstart.exe                          *)

let source =
  {|
  struct node { int val; struct node *next; }

  int array[64];
  struct node *head;

  void build_list() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
      struct node *n = new struct node;
      n->val = i;
      n->next = head;
      head = n;
    }
  }

  void main() {
    build_list();
    // Fig. 1(a): array-based map loop
    int i;
    for (i = 0; i < 64; i = i + 1) {
      array[i] = array[i] + 1;
    }
    // Fig. 1(b): PLDS-based map loop -- same computation, defeats
    // dependence analysis
    struct node *ptr = head;
    while (ptr) {
      ptr->val = ptr->val + 1;
      ptr = ptr->next;
    }
    printi(array[10]);
    printi(head->val);
  }
  |}

let () =
  print_endline "=== DCA quickstart: the paper's Fig. 1 ===\n";

  (* One Session is the whole pipeline: every stage (ir, proginfo, profile,
     dca_results, plan) is computed on first access and memoized.  All
     knobs live in one Options record; [with_jobs] picks the worker-pool
     width for the dynamic stage, and results are bit-identical for every
     value, so examples default to 1. *)
  Dca_core.Session.with_session
    ~options:Dca_core.Session.Options.(default |> with_jobs 1)
    (Dca_core.Session.Source { file = "quickstart.mc"; source; input = [] })
  @@ fun session ->
  (* 1. Compile: parse, type-check, lower to the IR. *)
  let prog = Dca_core.Session.ir session in
  let info = Dca_core.Session.proginfo session in
  Printf.printf "compiled: %d function(s), %d loop(s) total\n\n"
    (List.length prog.Dca_ir.Ir.p_funcs)
    (List.length (Dca_analysis.Proginfo.all_loops info));

  (* 2. Run DCA on every loop. *)
  let results = Dca_core.Session.dca_results session in
  print_endline "DCA verdicts:";
  Dca_core.Report.print results;

  (* 3. Contrast with a dependence-based dynamic tool. *)
  let profile = Dca_core.Session.profile session in
  let dp = Dca_baselines.Depprofiling_tool.tool.Dca_baselines.Tool.tool_analyze info (Some profile) in
  print_endline "\nDependence profiling (Tournavitis-style) verdicts:";
  List.iter
    (fun r ->
      Printf.printf "  %-24s %s\n" r.Dca_baselines.Tool.bl_label
        (Dca_baselines.Tool.verdict_to_string r.Dca_baselines.Tool.bl_verdict))
    dp;
  print_endline
    "\nNote how the PLDS loop (main, the while) is commutative for DCA but\n\
     carries a fatal-looking RAW dependence for the dependence-based tool —\n\
     exactly the paper's motivating observation."
