(* A tour of the substrate: write your own MiniC program, inspect every
   stage — tokens, AST, IR, CFG, loops, liveness, iterator recognition —
   then execute it and test your own loop for commutativity under a custom
   schedule set.

   Run with:  dune exec examples/custom_language_tour.exe                *)

open Dca_frontend
open Dca_ir
open Dca_analysis

let source =
  {|
  // histogram of hash values, plus a running maximum
  int bins[16];
  int maxcount;

  void main() {
    int i;
    for (i = 0; i < 200; i = i + 1) {
      int b = ftoi(hrand(i) * 16.0);
      if (b > 15) { b = 15; }
      bins[b] = bins[b] + 1;
      maxcount = imax(maxcount, bins[b]);
    }
    printi(maxcount);
  }
  |}

let () =
  print_endline "=== MiniC substrate tour ===\n";

  (* 1. Lexing *)
  let tokens = Lexer.tokenize ~file:"tour.mc" source in
  Printf.printf "1. lexer: %d tokens, first five: %s\n" (List.length tokens)
    (String.concat " " (List.map (fun (t, _) -> Token.to_string t) (Dca_support.Listx.take 5 tokens)));

  (* 2. Parsing and type checking *)
  let ast = Parser.parse_program ~file:"tour.mc" source in
  Printf.printf "2. parser: %d globals, %d functions\n" (List.length ast.Ast.globals)
    (List.length ast.Ast.funcs);
  let tast = Typecheck.check_program ast in
  Printf.printf "   typechecker: ok (%d checked functions)\n" (List.length tast.Tast.tp_funcs);

  (* 3. Lowering to the IR *)
  let prog = Lower.lower_program tast in
  print_endline "3. IR for main:";
  print_string (Ir_printer.func_to_string (Ir.find_func_exn prog "main"));

  (* 4. CFG, loops, liveness *)
  let info = Proginfo.analyze prog in
  let fi = Proginfo.func_info info "main" in
  List.iter
    (fun l ->
      let live_out = Liveness.loop_live_out fi.Proginfo.fi_live l in
      Printf.printf "4. loop %s: header b%d, %d blocks, live-out scalars: %s\n"
        l.Loops.l_id l.Loops.l_header
        (Dca_support.Intset.cardinal l.Loops.l_blocks)
        (String.concat ", "
           (List.filter_map
              (fun vid ->
                Option.map (fun v -> v.Ir.vname) (Liveness.var_of_id fi.Proginfo.fi_live vid))
              (Dca_support.Intset.elements live_out))))
    (Loops.loops fi.Proginfo.fi_forest);

  (* 5. Iterator recognition *)
  List.iter
    (fun l ->
      Printf.printf "5. %s\n" (Dca_core.Iterator_rec.describe (Dca_core.Iterator_rec.separate fi l)))
    (Loops.loops fi.Proginfo.fi_forest);

  (* 6. Execute *)
  let ctx = Dca_interp.Eval.create prog in
  Dca_interp.Eval.run_main ctx;
  Printf.printf "6. program output: %s (%d instructions)\n"
    (String.concat ", " (Dca_interp.Eval.outputs ctx))
    (Dca_interp.Eval.steps ctx);

  (* 7. Commutativity with a custom, heavier schedule set *)
  let config =
    {
      Dca_core.Commutativity.default_config with
      Dca_core.Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles:8 ~seed:7 ();
    }
  in
  let results = Dca_core.Driver.analyze_program ~config info in
  print_endline "7. DCA verdict under 8 random shuffles:";
  Dca_core.Report.print results;
  print_endline
    "\nThe histogram updates collide across iterations (a RAW dependence on\n\
     bins[b]) and maxcount is a running max — yet every interleaving yields\n\
     the same bins and the same maximum, so the loop is commutative."
