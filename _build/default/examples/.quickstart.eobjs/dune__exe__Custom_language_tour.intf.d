examples/custom_language_tour.mli:
