(** Control-flow-graph utilities over {!Ir.func}.

    Block ids are dense indices into [fblocks].  Unreachable blocks (created
    by lowering after [return]/[break]) are reported by {!reachable} and
    excluded from the traversal orders. *)

type t

val of_func : Ir.func -> t

val func : t -> Ir.func
val nblocks : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list
val reachable : t -> bool array
val entry : t -> int

val reverse_postorder : t -> int list
(** Reachable blocks in reverse postorder (entry first); the canonical
    iteration order for forward dataflow. *)

val postorder : t -> int list

val exit_blocks : t -> int list
(** Reachable blocks terminated by [Ret]. *)

val block : t -> int -> Ir.block

val instrs_in_order : t -> Ir.instr list
(** All instructions of reachable blocks in reverse postorder. *)

val pp_dot : Format.formatter -> t -> unit
(** Graphviz dump for debugging. *)

