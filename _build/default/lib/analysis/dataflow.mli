(** Generic iterative dataflow solver over a {!Dca_ir.Cfg.t}.

    The solver iterates round-robin over the CFG in reverse postorder
    (forward problems) or postorder (backward problems) until a fixpoint.
    Domains must be join-semilattices with a bottom element and finite
    ascending chains; the union-of-sets domains used here converge in a
    few passes in these orders. *)

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (D : DOMAIN) : sig
  type result = { inputs : D.t array; outputs : D.t array }
  (** Per-block dataflow facts: for forward problems, [inputs] holds facts
      at block entry; for backward problems, [inputs] holds facts at block
      *exit* (the "input" of the backward transfer). *)

  val forward : Dca_ir.Cfg.t -> entry:D.t -> transfer:(int -> D.t -> D.t) -> result
  (** [transfer b fact] maps the fact at the entry of block [b] to the fact
      at its exit. *)

  val backward : Dca_ir.Cfg.t -> exit:D.t -> transfer:(int -> D.t -> D.t) -> result
  (** [transfer b fact] maps the fact at the exit of block [b] to the fact
      at its entry.  [exit] seeds blocks that end in [Ret]. *)
end
