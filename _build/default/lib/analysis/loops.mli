(** Natural-loop detection and the loop-nesting forest.

    A back edge is an edge [b → h] where [h] dominates [b]; the natural
    loop of [h] is the set of blocks that can reach some latch [b] without
    passing through [h].  Loops sharing a header are merged.  The paper's
    analyses all operate on this per-function loop forest. *)

type loop = {
  l_id : string;  (** stable id: "<func>#<header-block>" *)
  l_func : string;
  l_header : int;
  l_blocks : Dca_support.Intset.t;
  l_latches : int list;  (** sources of back edges *)
  l_exiting : (int * int) list;  (** (block in loop, successor outside) edges *)
  l_depth : int;  (** 1 = outermost *)
  l_parent : string option;
  mutable l_children : string list;
  l_loc : Dca_frontend.Loc.t;  (** source location of the header block *)
}

type forest

val analyze : Dca_ir.Cfg.t -> forest

val loops : forest -> loop list
(** All loops of the function, outermost first (pre-order of the forest,
    then by header id). *)

val find : forest -> string -> loop option
val loop_of_header : forest -> int -> loop option

val innermost_containing : forest -> int -> loop option
(** Innermost loop whose body contains the block. *)

val contains_block : loop -> int -> bool
val top_level : forest -> loop list

val instrs_of : Dca_ir.Cfg.t -> loop -> Dca_ir.Ir.instr list
(** All instructions of the loop's blocks. *)

val nesting_path : forest -> loop -> loop list
(** Chain from outermost ancestor down to the loop itself. *)
