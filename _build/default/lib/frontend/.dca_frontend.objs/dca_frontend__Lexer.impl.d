lib/frontend/lexer.ml: Buffer List Loc String Token
