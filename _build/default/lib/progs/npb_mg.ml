(** MG — Multigrid (NPB).

    A 1-D V-cycle: Jacobi smoothing, residual computation, restriction
    and prolongation at each level.  Mirrors the oddities the paper notes
    for MG (§V-C1): I/O inside a nested loop (the per-cycle norm report),
    which excludes that loop from DCA's scope, and loops that the
    workload never exercises (the deepest-level smoother), which DCA
    reports untestable. *)

let source =
  {|
// NPB MG kernel, MiniC port (1-D multigrid V-cycle).
int   nfine;
float u[257];
float f[257];
float res[257];
float coarse_f[129];
float coarse_u[129];
float norm;
float norm0;
int   verified;

void smooth(float *uu, float *ff, int len) {
  // weighted-Jacobi into scratch, then copy back
  float tmp[257];
  int i;
  for (i = 1; i < len - 1; i = i + 1) {
    tmp[i] = uu[i] + 0.6 * 0.5 * (uu[i - 1] + uu[i + 1] - 2.0 * uu[i] + ff[i]);
  }
  for (i = 1; i < len - 1; i = i + 1) { uu[i] = tmp[i]; }
}

void residual(float *uu, float *ff, float *rr, int len) {
  int i;
  for (i = 1; i < len - 1; i = i + 1) {
    rr[i] = ff[i] - (2.0 * uu[i] - uu[i - 1] - uu[i + 1]);
  }
}

void restrict_(float *rr, float *cf, int len) {
  int i;
  for (i = 1; i < (len - 1) / 2; i = i + 1) {
    cf[i] = 0.25 * (rr[2 * i - 1] + 2.0 * rr[2 * i] + rr[2 * i + 1]);
  }
}

void prolongate(float *uu, float *cu, int len) {
  int i;
  for (i = 1; i < (len - 1) / 2; i = i + 1) {
    uu[2 * i] = uu[2 * i] + cu[i];
    uu[2 * i + 1] = uu[2 * i + 1] + 0.5 * (cu[i] + cu[i + 1]);
  }
}

float norm_of(float *rr, int len) {
  float s = 0.0;
  int i;
  for (i = 1; i < len - 1; i = i + 1) { s = s + rr[i] * rr[i]; }
  return sqrt(s);
}

// zran3-like pseudo-random seeding of the charge distribution
void zran3(float *ff, int len) {
  int i;
  for (i = 0; i < len; i = i + 1) {
    ff[i] = ff[i] + 0.001 * (hrand(i) - 0.5);
  }
}

// comm3-like periodic boundary exchange (the two halo cells)
void comm3(float *uu, int len) {
  uu[0] = uu[len - 2];
  uu[len - 1] = uu[1];
}

// interpolation error indicator per interior point (parallel)
float interp_error(float *uu, int len) {
  float worst = 0.0;
  int i;
  for (i = 1; i < len - 1; i = i + 1) {
    float mid = 0.5 * (uu[i - 1] + uu[i + 1]);
    worst = fmax(worst, fabs(uu[i] - mid));
  }
  return worst;
}

void deep_smooth() {
  // the deepest level is never reached by this workload
  int i;
  for (i = 1; i < 64; i = i + 1) { coarse_u[i] = coarse_u[i] * 0.5; }
}

void main() {
  nfine = 257;
  int i;
  for (i = 0; i < nfine; i = i + 1) {
    u[i] = 0.0;
    f[i] = sin(3.14159265358979 * 64.0 * itof(i) / itof(nfine - 1)) + 0.5 * sin(3.14159265358979 * 24.0 * itof(i) / itof(nfine - 1));
  }
  zran3(f, nfine);
  residual(u, f, res, nfine);
  norm0 = norm_of(res, nfine);
  int cycle;
  for (cycle = 0; cycle < 8; cycle = cycle + 1) {
    smooth(u, f, nfine);
    residual(u, f, res, nfine);
    restrict_(res, coarse_f, nfine);
    // coarse solve: a few smoothing sweeps at the coarse level
    for (i = 0; i < 129; i = i + 1) { coarse_u[i] = 0.0; }
    int s;
    for (s = 0; s < 3; s = s + 1) { smooth(coarse_u, coarse_f, 129); }
    prolongate(u, coarse_u, nfine);
    smooth(u, f, nfine);
    comm3(u, nfine);
    // per-cycle norm report: I/O inside a loop nest
    residual(u, f, res, nfine);
    norm = norm_of(res, nfine);
    int dbg;
    for (dbg = 0; dbg < 1; dbg = dbg + 1) { print(norm); }
    if (norm < 0.0) { deep_smooth(); }
  }
  float smoothness = interp_error(u, nfine);
  verified = 0;
  if (norm < 0.2 * norm0) { verified = 1; }
  print(norm0);
  print(norm);
  print(smoothness);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"MG" ~suite:Benchmark.Npb
       ~description:"1-D multigrid V-cycle with smoothing, restriction and prolongation" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.In_func "smooth";
        Benchmark.In_func "residual";
        Benchmark.In_func "restrict_";
        Benchmark.In_func "prolongate";
        Benchmark.In_func "norm_of";
        Benchmark.In_func "zran3";
        Benchmark.In_func "interp_error";
        Benchmark.Nth_in_func ("main", 0);
      ];
    bm_expert_sections =
      [ [ Benchmark.In_func "smooth"; Benchmark.In_func "residual"; Benchmark.In_func "restrict_" ] ];
    bm_expert_extra = 0.2;
    bm_known_sequential = [ Benchmark.Nth_in_func ("main", 1) (* V-cycle loop *) ];
  }
