lib/frontend/ast_printer.ml: Ast Buffer List Printf String
