(** Selection of which detected loops to actually parallelize, and
    construction of their plans (privatization and reduction clauses from
    the static scalar classification, paper §IV-C).

    Two detected loops cannot both be parallelized if one executes inside
    the other at run time (including through calls); the profiler's
    coverage buckets expose exactly this co-occurrence.  Conflicts are
    resolved greedily by estimated benefit on the machine model —
    standing in for the paper's "expert profitability" selection of the
    hottest profitable loops (§V-C2). *)

type strategy =
  | Best_benefit  (** all profitable loops, outermost-win on conflicts *)
  | Among of string list
      (** restrict the choice to these loop ids (expert selections), still
          resolving conflicts by benefit *)

val select :
  machine:Machine.t ->
  Dca_analysis.Proginfo.t ->
  Dca_profiling.Depprof.profile ->
  detected:string list ->
  strategy:strategy ->
  Plan.t

val privates_of : Dca_analysis.Proginfo.t -> string -> string list
(** Names of the scalars a parallelization of the loop must privatize. *)

val reductions_of :
  Dca_analysis.Proginfo.t -> string -> (string * Dca_analysis.Scalars.reduction_op) list
(** Reduction clauses (variable name, operator) of the loop. *)

val parallel_cost :
  machine:Machine.t -> Dca_profiling.Depprof.loop_profile -> reductions:int -> float
(** Simulated parallel cost of the loop's whole dynamic extent, scaled
    from the recorded invocations to the loop's profiled totals. *)

val estimated_benefit :
  machine:Machine.t -> Dca_profiling.Depprof.profile -> string -> float
(** Sequential cost minus simulated parallel cost of the loop's dynamic
    extent (in work units); negative = unprofitable. *)
