(** Process-wide instrumentation: monotonic-clock spans, named monotonic
    counters, and domain-tagged events, with three sinks — a human
    {!stats_table}, a JSONL event stream, and a Chrome
    [trace.json] (about://tracing / Perfetto compatible).

    The engine is {e zero-overhead when disabled}: with tracing and
    counting off (the default), {!span}, {!begin_span}/{!end_span},
    {!add} and {!instant} reduce to one atomic load and a branch, and
    allocate nothing.  Enable collection with {!set_tracing} /
    {!set_counting}, with {!configure}, or through the [DCA_TRACE] /
    [DCA_STATS] environment variables ({!init_from_env}).

    {2 Counters and determinism}

    Counters come in two kinds.  {e Work} counters (the default) count
    decisions the deterministic merge of the parallel engine consumes —
    loops examined, invocations tested, replays decided, instructions
    those replays executed — and are {b bit-identical} for any worker
    count and either checkpointing mode: CI compares them across
    [jobs=1] / [jobs=4] as a cheap invariant on the parallel engine.
    {e Diag} counters record how the work was carried out (snapshots,
    journal traffic, forks, per-context instruction totals) and may
    legitimately differ across job counts; the stats table reports the
    two classes separately.

    Counter cells are atomics: increments from worker domains are safe,
    and a deterministic multiset of increments sums to a deterministic
    value regardless of interleaving.

    {2 Spans}

    Spans are recorded into per-domain buffers (no cross-domain
    contention, no reordering): each domain's event stream is
    chronological and properly nested by construction, and events carry
    the recording domain's id as [tid] — worker utilization and the
    deterministic-merge stalls are directly visible in the trace
    viewer. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds from an arbitrary origin
    ([CLOCK_MONOTONIC]).  Never goes backwards; unaffected by wall-clock
    adjustments.  Allocation-free. *)

(** {1 Enabling} *)

val tracing : unit -> bool
(** Event collection on?  Guard construction of span argument lists with
    this so the disabled path stays allocation-free. *)

val counting : unit -> bool

val set_tracing : bool -> unit
val set_counting : bool -> unit

type config = {
  cfg_trace : string option;  (** Chrome [trace.json] output path *)
  cfg_jsonl : string option;  (** JSONL event-stream output path *)
  cfg_stats : bool;  (** print {!stats_table} to [stderr] on {!flush} *)
}

val configure : config -> unit
(** Install [config] and derive the collection flags: tracing iff an
    output file is set, counting iff tracing or [cfg_stats]. *)

val config : unit -> config

val init_from_env : unit -> unit
(** One-shot environment wiring: [DCA_TRACE=FILE] enables tracing (a
    [.jsonl] suffix selects the JSONL sink, anything else the Chrome
    sink) and [DCA_STATS=1] enables the stats table.  The first call
    reads the environment; later calls — and calls after an explicit
    {!configure} — are no-ops, so a front end's flags always win. *)

(** {1 Counters} *)

type kind = Work | Diag

type counter

val counter : ?kind:kind -> string -> counter
(** Find-or-create the named counter ([kind] defaults to [Work] and is
    fixed by whichever call registers the name first).  Make handles
    top-level [let]s: registration at module initialization keeps the
    registered set identical across runs, so counter snapshots compare
    structurally. *)

val add : counter -> int -> unit
val incr : counter -> unit

val add_max : counter -> int -> unit
(** Max-merge instead of sum: the counter keeps the largest value ever
    offered (peaks: journal length, snapshot depth). *)

val value : counter -> int

val counters : ?kind:kind -> unit -> (string * int) list
(** Registered counters with their current values, sorted by name;
    restricted to one kind when given. *)

val reset : unit -> unit
(** Zero every counter and drop every recorded event.  Flags and config
    are untouched. *)

(** {1 Spans and events} *)

val begin_span : ?cat:string -> string -> unit
(** Record a ["B"] event on the calling domain (no-op unless tracing).
    Every [begin_span] must be paired with an {!end_span} on the same
    domain — use {!span} unless an exception cannot escape between the
    two. *)

val end_span : ?args:(string * string) list -> string -> unit
(** Record the matching ["E"] event.  [args] (attached to the end event,
    where results like a verdict or an instruction count are known) must
    only be constructed under a {!tracing} guard to keep the disabled
    path allocation-free. *)

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a [begin_span]/[end_span] pair; the
    end event is recorded even if [f] raises.  When tracing is off this
    is exactly [f ()]. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration ["i"] event. *)

type event = {
  e_ph : char;  (** ['B'] begin, ['E'] end, ['i'] instant *)
  e_name : string;
  e_cat : string;
  e_ts : int;  (** {!now_ns} at recording *)
  e_tid : int;  (** recording domain id *)
  e_args : (string * string) list;
}

val events : unit -> event list
(** Every recorded event, grouped by domain, chronological within each
    domain (the order balance checks care about). *)

(** {1 Sinks} *)

val stats_table : unit -> string
(** Human-readable counter table: work counters, then diagnostic
    counters, sorted by name; zero-valued counters are elided. *)

val write_chrome_trace : string -> unit
(** Write every recorded event as a Chrome trace
    ([{"traceEvents":[...]}]) with [ph]/[pid]/[tid]/[ts]/[name] fields,
    timestamps in microseconds rebased to the earliest event.  Loadable
    in about://tracing and Perfetto. *)

val write_jsonl : string -> unit
(** Write every recorded event as one JSON object per line, timestamps
    in raw monotonic nanoseconds. *)

val flush : unit -> unit
(** Drive the configured sinks: write [cfg_trace] and [cfg_jsonl] if
    set, print the stats table to [stderr] if [cfg_stats].  Idempotent —
    later flushes rewrite the files with the fuller event set. *)
