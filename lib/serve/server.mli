(** Unix-domain-socket transport for the serve {!Engine}.

    One accept loop feeding [sv_workers] worker domains: each worker
    owns one connection at a time and answers its request lines in
    order, so per-connection replies stay sequential while the daemon
    serves many connections concurrently.  The engine underneath is
    concurrency-safe (per-request telemetry contexts, a locked verdict
    cache, an exclusive gate for fault-carrying requests), so every
    reply is byte-identical to a serial daemon's.  [sv_workers = 1]
    recovers the old one-connection-at-a-time behavior. *)

type config = {
  sv_socket : string;  (** Unix-domain socket path *)
  sv_cache_dir : string option;  (** persistent cache directory ({!Vcache}) *)
  sv_cache_capacity : int option;
  sv_sessions : int;  (** warm-session LRU bound *)
  sv_jobs : int option;  (** default pool width for requests without one *)
  sv_workers : int;  (** connections served concurrently (default 4) *)
  sv_access_log : string option;
      (** JSONL access log, one object per request (appended); each
          entry carries the server-assigned [req] id also found in the
          reply's [rp_req] and the request's trace span *)
  sv_metrics_file : string option;
      (** Prometheus-style {!Metrics.exposition}, atomically rewritten
          (temp + rename) after every request and on shutdown — a
          scrape target *)
  sv_max_requests : int option;
      (** stop after serving this many requests — tests and smoke runs.
          Exact under concurrency: admission reserves a budget slot
          before the engine runs, completions are counted once. *)
}

val default_config : string -> config
(** Defaults for the given socket path: memory-only cache, 8 warm
    sessions, 4 workers, no access log, no metrics file, serve until
    [shutdown]. *)

val run : config -> int
(** Bind (reclaiming a stale socket file from a crashed daemon first,
    but never a live one), then serve until a [shutdown] request or the
    request budget is exhausted.  Returns the number of requests served.
    The socket file is removed and all warm sessions closed on the way
    out, also on exception. *)
