open Ir

let verify_func (p : program) (f : func) : string list =
  let problems = ref [] in
  let complain fmt = Printf.ksprintf (fun msg -> problems := (f.fname ^ ": " ^ msg) :: !problems) fmt in
  let nblocks = Array.length f.fblocks in
  let nglobals = Array.length p.p_globals in
  let defined = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace defined v.vid ()) f.fparams;
  Array.iter
    (fun blk ->
      List.iter
        (fun i ->
          match def_of i.idesc with
          | Some v -> Hashtbl.replace defined v.vid ()
          | None -> ())
        blk.instrs)
    f.fblocks;
  let check_var ctx v =
    if v.vglobal then begin
      if v.vslot < 0 || v.vslot >= nglobals then
        complain "%s: global %s has slot %d outside the global table" ctx v.vname v.vslot
    end
    else begin
      if v.vslot < 0 || v.vslot >= f.fnslots then
        complain "%s: variable %s has slot %d outside the frame (%d slots)" ctx v.vname v.vslot
          f.fnslots;
      if not (Hashtbl.mem defined v.vid) then
        complain "%s: variable %s is used but never defined" ctx v.vname
    end
  in
  let check_operand ctx = function Ovar v -> check_var ctx v | Oint _ | Ofloat _ | Onull -> () in
  let check_target ctx t =
    if t < 0 || t >= nblocks then complain "%s: branch target b%d out of range" ctx t
  in
  Array.iteri
    (fun bi blk ->
      if blk.bid <> bi then complain "block at index %d has id %d" bi blk.bid;
      List.iter
        (fun i ->
          let ctx = Printf.sprintf "b%d/i%d" bi i.iid in
          List.iter (check_var ctx) (uses_of i.idesc);
          (match def_of i.idesc with Some v -> check_var ctx v | None -> ());
          match i.idesc with
          | Gload (_, g) | Gstore (g, _) | Gaddr (_, g) ->
              if not g.vglobal then complain "%s: global access through non-global %s" ctx g.vname
              else check_var ctx g
          | Call (_, ("print" | "prints"), _) ->
              complain "%s: I/O must be lowered to Print/Prints instructions" ctx
          | _ -> ())
        blk.instrs;
      let ctx = Printf.sprintf "b%d/term" bi in
      match blk.bterm with
      | Br t -> check_target ctx t
      | Cbr (c, a, b) ->
          check_operand ctx c;
          check_target ctx a;
          check_target ctx b
      | Ret op -> Option.iter (check_operand ctx) op)
    f.fblocks;
  List.rev !problems

let verify_program (p : program) : (unit, string list) result =
  let seen_iids = Hashtbl.create 256 in
  let dup_problems = ref [] in
  List.iter
    (fun f ->
      Array.iter
        (fun blk ->
          List.iter
            (fun i ->
              if Hashtbl.mem seen_iids i.iid then
                dup_problems := Printf.sprintf "%s: duplicate instruction id %d" f.fname i.iid :: !dup_problems
              else Hashtbl.replace seen_iids i.iid ())
            blk.instrs)
        f.fblocks)
    p.p_funcs;
  let problems = List.concat_map (verify_func p) p.p_funcs @ List.rev !dup_problems in
  if problems = [] then Ok () else Error problems
