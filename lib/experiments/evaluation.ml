open Dca_analysis
open Dca_core
open Dca_progs

type t = {
  ev_bm : Benchmark.t;
  ev_info : Proginfo.t;
  ev_dca : Driver.loop_result list;
  ev_profile : Dca_profiling.Depprof.profile;
  ev_tools : (string * Dca_baselines.Tool.result list) list;
}

let machine = Dca_parallel.Machine.default

let evaluate ?(config = Commutativity.default_config) bm =
  let prog = Benchmark.compile bm in
  let info = Proginfo.analyze prog in
  let spec =
    Commutativity.make_run_spec ~fuel:200_000_000 bm.Benchmark.bm_input
  in
  let dca = Driver.analyze_program ~config ~spec info in
  let profile =
    Dca_profiling.Depprof.profile_program ~fuel:spec.Commutativity.rs_fuel
      ~input:bm.Benchmark.bm_input info
  in
  let tools =
    List.map
      (fun tool ->
        ( tool.Dca_baselines.Tool.tool_name,
          tool.Dca_baselines.Tool.tool_analyze info (Some profile) ))
      Dca_baselines.Registry.all
  in
  { ev_bm = bm; ev_info = info; ev_dca = dca; ev_profile = profile; ev_tools = tools }

let cache : (string, t) Hashtbl.t = Hashtbl.create 32

let evaluate_cached ?config bm =
  match Hashtbl.find_opt cache bm.Benchmark.bm_name with
  | Some ev -> ev
  | None ->
      let ev = evaluate ?config bm in
      Hashtbl.replace cache bm.Benchmark.bm_name ev;
      ev

let clear_cache () = Hashtbl.reset cache

let total_loops ev = List.length ev.ev_dca
let dca_commutative ev = Driver.commutative_ids ev.ev_dca

let tool_parallel ev name =
  match List.assoc_opt name ev.ev_tools with
  | Some results -> Dca_baselines.Tool.parallel_ids results
  | None -> invalid_arg ("Evaluation.tool_parallel: unknown tool " ^ name)

let combined_static ev =
  List.concat_map
    (fun tool -> tool_parallel ev tool.Dca_baselines.Tool.tool_name)
    Dca_baselines.Registry.static_tools
  |> List.sort_uniq compare

let expert_loop_ids ev = Benchmark.resolve ev.ev_info ev.ev_bm.Benchmark.bm_expert_loops
let known_sequential_ids ev = Benchmark.resolve ev.ev_info ev.ev_bm.Benchmark.bm_known_sequential
let coverage ev ids = Dca_profiling.Depprof.coverage_of ev.ev_profile ids
