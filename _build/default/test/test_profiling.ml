(* Tests for the dynamic dependence/cost/coverage profiler. *)

open Dca_analysis
open Dca_profiling

let profile_of ?input src =
  let prog = Dca_ir.Lower.compile ~file:"<test>" src in
  let info = Proginfo.analyze prog in
  (info, Depprof.profile_program ?input info)

let only_loop info =
  match Proginfo.all_loops info with
  | [ (_, l) ] -> l
  | ls -> Alcotest.failf "expected exactly one loop, got %d" (List.length ls)

let loop_named info func depth =
  Proginfo.all_loops info
  |> List.find_map (fun (_, l) ->
         if l.Loops.l_func = func && l.Loops.l_depth = depth then Some l else None)
  |> function
  | Some l -> l
  | None -> Alcotest.failf "no depth-%d loop in %s" depth func

let has_dep kind p id =
  List.exists (fun d -> d.Depprof.d_kind = kind) (Depprof.deps_of p id)

let test_raw_detected () =
  let info, p =
    profile_of
      "int a[16]; void main() { int i; a[0] = 1; for (i = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + 1; } printi(a[15]); }"
  in
  let l = only_loop info in
  Alcotest.(check bool) "prefix chain has RAW" true (has_dep Depprof.Raw p l.Loops.l_id)

let test_disjoint_no_mem_raw () =
  let info, p =
    profile_of
      "int a[16]; void main() { int i; for (i = 0; i < 16; i = i + 1) { a[i] = i; } printi(a[3]); }"
  in
  let l = only_loop info in
  let mem_raws =
    List.filter
      (fun d ->
        d.Depprof.d_kind = Depprof.Raw
        && match d.Depprof.d_loc with Dca_interp.Events.Lheap _ -> true | _ -> false)
      (Depprof.deps_of p l.Loops.l_id)
  in
  Alcotest.(check int) "no memory RAW in a map loop" 0 (List.length mem_raws)

let test_war_waw_privatizable () =
  let info, p =
    profile_of
      "int a[16]; void main() { int i; int t; for (i = 0; i < 16; i = i + 1) { t = i * 2; a[i] = t; } printi(a[5]); }"
  in
  let l = only_loop info in
  (* t is written before read each iteration: WAW/WAR exist, RAW does not *)
  let deps = Depprof.deps_of p l.Loops.l_id in
  let on_t kind =
    List.exists
      (fun d ->
        d.Depprof.d_kind = kind
        && match d.Depprof.d_loc with Dca_interp.Events.Lreg _ -> true | _ -> false)
      deps
  in
  Alcotest.(check bool) "scalar WAW observed" true (on_t Depprof.Waw);
  (* every scalar RAW is on the induction-variable chain: the dependence
     profiling tool, which filters induction variables, reports the loop
     parallel *)
  let dp =
    Dca_baselines.Depprofiling_tool.tool.Dca_baselines.Tool.tool_analyze info (Some p)
  in
  Alcotest.(check bool) "DP reports the loop parallel" true
    (List.mem l.Loops.l_id (Dca_baselines.Tool.parallel_ids dp))

let test_costs_and_iterations () =
  let info, p =
    profile_of
      "int x; void main() { int i; for (i = 0; i < 10; i = i + 1) { x = x + i; } printi(x); }"
  in
  let l = only_loop info in
  match Depprof.loop_profile p l.Loops.l_id with
  | None -> Alcotest.fail "no profile for the loop"
  | Some lp ->
      Alcotest.(check int) "one invocation" 1 (List.length lp.Depprof.lp_invocations);
      let inv = List.hd lp.Depprof.lp_invocations in
      Alcotest.(check int) "eleven header arrivals" 11 inv.Depprof.inv_iters;
      Alcotest.(check bool) "loop cost positive" true (lp.Depprof.lp_total_cost > 0);
      Alcotest.(check bool) "loop cost below program cost" true
        (lp.Depprof.lp_total_cost < p.Depprof.pr_total_cost)

let test_invocation_count () =
  let info, p =
    profile_of
      {|
      int x;
      void bump() { int k; for (k = 0; k < 3; k = k + 1) { x = x + 1; } }
      void main() { int i; for (i = 0; i < 5; i = i + 1) { bump(); } printi(x); }
      |}
  in
  let l = loop_named info "bump" 1 in
  match Depprof.loop_profile p l.Loops.l_id with
  | Some lp -> Alcotest.(check int) "five invocations" 5 (List.length lp.Depprof.lp_invocations)
  | None -> Alcotest.fail "no profile"

let test_cross_call_attribution () =
  (* accesses made by a callee are attributed to the caller's loop *)
  let info, p =
    profile_of
      {|
      int acc;
      void add_to_acc(int v) { acc = acc + v; }
      void main() { int i; for (i = 0; i < 4; i = i + 1) { add_to_acc(i); } printi(acc); }
      |}
  in
  let l = loop_named info "main" 1 in
  let raw_on_glob =
    List.exists
      (fun d ->
        d.Depprof.d_kind = Depprof.Raw
        && match d.Depprof.d_loc with Dca_interp.Events.Lglob _ -> true | _ -> false)
      (Depprof.deps_of p l.Loops.l_id)
  in
  Alcotest.(check bool) "callee's global RMW attributed to the loop" true raw_on_glob

let test_coverage () =
  let info, p =
    profile_of
      {|
      int x;
      void main() {
        int i;
        for (i = 0; i < 100; i = i + 1) { x = x + i * i; }
        printi(x);
      }
      |}
  in
  let l = only_loop info in
  let cov = Depprof.coverage_of p [ l.Loops.l_id ] in
  Alcotest.(check bool) "hot loop covers most of the program" true (cov > 0.8);
  Alcotest.(check (float 1e-9)) "empty set covers nothing" 0.0 (Depprof.coverage_of p []);
  Alcotest.(check bool) "coverage is a fraction" true (cov <= 1.0)

let test_coverage_union_no_double_count () =
  let info, p =
    profile_of
      {|
      int x;
      void main() {
        int i;
        int j;
        for (i = 0; i < 10; i = i + 1) {
          for (j = 0; j < 10; j = j + 1) { x = x + 1; }
        }
        printi(x);
      }
      |}
  in
  let outer = loop_named info "main" 1 and inner = loop_named info "main" 2 in
  let both = Depprof.coverage_of p [ outer.Loops.l_id; inner.Loops.l_id ] in
  let outer_only = Depprof.coverage_of p [ outer.Loops.l_id ] in
  Alcotest.(check (float 1e-9)) "inner nested in outer adds nothing" outer_only both

let test_rng_dependence () =
  let info, p =
    profile_of
      "float x; void main() { dseed(1); int i; for (i = 0; i < 4; i = i + 1) { x = x + drand(); } print(x); }"
  in
  let l = only_loop info in
  let rng_raw =
    List.exists
      (fun d -> d.Depprof.d_loc = Dca_interp.Events.Lrng && d.Depprof.d_kind = Depprof.Raw)
      (Depprof.deps_of p l.Loops.l_id)
  in
  Alcotest.(check bool) "drand chains through the generator" true rng_raw

let suites =
  [
    ( "depprof",
      [
        Alcotest.test_case "raw detected" `Quick test_raw_detected;
        Alcotest.test_case "disjoint map" `Quick test_disjoint_no_mem_raw;
        Alcotest.test_case "privatizable scalar" `Quick test_war_waw_privatizable;
        Alcotest.test_case "costs and iterations" `Quick test_costs_and_iterations;
        Alcotest.test_case "invocations" `Quick test_invocation_count;
        Alcotest.test_case "cross-call attribution" `Quick test_cross_call_attribution;
        Alcotest.test_case "coverage" `Quick test_coverage;
        Alcotest.test_case "coverage union" `Quick test_coverage_union_no_double_count;
        Alcotest.test_case "rng dependence" `Quick test_rng_dependence;
      ] );
  ]
