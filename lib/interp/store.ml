open Dca_ir
open Dca_support
open Value

(* ------------------------------------------------------------------ *)
(* Checkpointing strategy                                              *)
(* ------------------------------------------------------------------ *)

type checkpoint_mode = Journal | Deep

(* A function, not a value: re-reading the environment per store lets a
   test (or a long-lived host) flip DCA_CHECKPOINT with [putenv] and have
   the next store honor it. *)
let default_mode () =
  match Sys.getenv_opt "DCA_CHECKPOINT" with Some "deep" -> Deep | _ -> Journal

(* An undo-journal entry, recorded by the write barrier on the first
   mutation of a block (or global slot) in the current generation.  A
   [Jblock] entry owns the cells array it references: the barrier installs
   a fresh copy into the store before the write, so the journaled array is
   immutable from that point on and [restore] is a pointer swap.  The
   third component of [Jblock] is the frozen array's own install stamp, so
   [restore] reinstates the array together with its provenance — whether a
   fork might still share it. *)
type jentry =
  | Jblock of int * Value.t array * int
  | Jglobal of int * Value.t

let jdummy = Jglobal (-1, VUndef)

(* Checkpointing statistics, kept as plain mutable fields: every bump sits
   on an already-expensive event (an array copy, a journal push, a
   snapshot), never on the per-write fast path, so the cost is one integer
   store.  [flush_telemetry] drains them into the process-wide diagnostic
   counters. *)
type stats = {
  mutable st_snapshots : int;
  mutable st_restores : int;
  mutable st_journal_entries : int;
  mutable st_journal_peak : int;
  mutable st_blocks_privatized : int;
  mutable st_cells_dirtied : int;
  mutable st_snapshot_depth_peak : int;
  mutable st_watermark_hits : int;
  mutable st_forks : int;
}

let fresh_stats () =
  {
    st_snapshots = 0;
    st_restores = 0;
    st_journal_entries = 0;
    st_journal_peak = 0;
    st_blocks_privatized = 0;
    st_cells_dirtied = 0;
    st_snapshot_depth_peak = 0;
    st_watermark_hits = 0;
    st_forks = 0;
  }

(* The replica records its own birth: concurrent forks of a quiescent
   parent must not race on the parent's stats record. *)
let forked_stats () =
  let s = fresh_stats () in
  s.st_forks <- 1;
  s

type t = {
  mutable blocks : Value.t array array;  (** indexed by block id; [||] = never allocated *)
  mutable owned : int array;
      (** per-block install stamp: the generation in which [blocks.(b)]'s
          current cells array was installed (allocation, privatization or
          journal-replay).  [owned.(b) = epoch] means the block needs no
          barrier work in the current generation. *)
  mutable next_block : int;
  globals : Value.t array;
  gowned : int array;  (** per-slot generation stamp for the global table *)
  mutable out_rev : string list;
  mutable rng : int64;
  input : int array;
  mutable input_pos : int;
  mode : checkpoint_mode;
  mutable epoch : int;
      (** current generation; bumped by {!snapshot}, {!restore} and
          {!copy}, staling every ownership stamp at once *)
  mutable shared_below : int;
      (** fork watermark: a cells array installed in a generation
          [>= shared_below] postdates the last {!copy} and is private to
          this store.  A stale-stamped but private block needs no copy
          when no journal snapshot is live — the barrier just refreshes
          its stamp and writes in place. *)
  mutable journal : jentry array;
  mutable jlen : int;
  mutable active_marks : int;  (** live journal snapshots; journaling is on iff > 0 *)
  stats : stats;  (** never shared: {!copy} gives the replica a fresh record *)
}

type snapshot =
  | SDeep of {
      s_blocks : Value.t array array;
      s_next_block : int;
      s_globals : Value.t array;
      s_out_rev : string list;
      s_rng : int64;
      s_input_pos : int;
    }
  | SMark of {
      mutable m_released : bool;
      m_mark : int;  (** journal length at creation *)
      m_next_block : int;
      m_out_rev : string list;
      m_rng : int64;
      m_input_pos : int;
    }

let initial_capacity = 1024

(* Doubling growth shared by [alloc_raw] and the deep [restore] path. *)
let ensure_capacity t n =
  let cap = Array.length t.blocks in
  if n > cap then begin
    let cap' = max (2 * cap) n in
    let blocks = Array.make cap' [||] in
    Array.blit t.blocks 0 blocks 0 cap;
    t.blocks <- blocks;
    let owned = Array.make cap' 0 in
    Array.blit t.owned 0 owned 0 cap;
    t.owned <- owned
  end

let alloc_raw t cells =
  let id = t.next_block in
  t.next_block <- id + 1;
  ensure_capacity t (id + 1);
  t.blocks.(id) <- cells;
  (* a fresh block is exclusively ours and needs no undo entry: restore
     re-dangles it via the [next_block] watermark *)
  t.owned.(id) <- t.epoch;
  id

let alloc t kinds ~count =
  let m = Array.length kinds in
  let cells = Array.init (count * m) (fun i -> zero_of_kind kinds.(i mod m)) in
  alloc_raw t cells

let create ?mode (p : Ir.program) ~input =
  let mode = match mode with Some m -> m | None -> default_mode () in
  let t =
    {
      blocks = Array.make initial_capacity [||];
      owned = Array.make initial_capacity 0;
      next_block = 0;
      globals = Array.make (Array.length p.Ir.p_globals) VUndef;
      gowned = Array.make (Array.length p.Ir.p_globals) 0;
      out_rev = [];
      rng = 0x2545F4914F6CDD1DL;
      input = Array.of_list input;
      input_pos = 0;
      mode;
      epoch = 0;
      shared_below = 0;
      journal = [||];
      jlen = 0;
      active_marks = 0;
      stats = fresh_stats ();
    }
  in
  Array.iteri
    (fun slot g ->
      if g.Ir.g_aggregate then begin
        let cells = Array.map zero_of_kind g.Ir.g_kinds in
        let id = alloc_raw t cells in
        t.globals.(slot) <- VPtr (id, 0)
      end
      else
        t.globals.(slot) <-
          (match g.Ir.g_init with
          | Some (Ir.Oint n) -> VInt n
          | Some (Ir.Ofloat f) -> VFloat f
          | Some Ir.Onull | None -> zero_of_kind g.Ir.g_kinds.(0)
          | Some (Ir.Ovar _) -> invalid_arg "Store.create: variable global initializer"))
    p.Ir.p_globals;
  t

let bounds_fail what block off =
  failwith (Printf.sprintf "memory trap: %s at block %d offset %d" what block off)

let load t ~block ~off =
  if block < 0 || block >= t.next_block then bounds_fail "load from invalid block" block off;
  let cells = t.blocks.(block) in
  if off < 0 || off >= Array.length cells then bounds_fail "out-of-bounds load" block off;
  cells.(off)

let journal_push t e =
  let cap = Array.length t.journal in
  if t.jlen = cap then begin
    let bigger = Array.make (max 256 (2 * cap)) jdummy in
    Array.blit t.journal 0 bigger 0 cap;
    t.journal <- bigger
  end;
  t.journal.(t.jlen) <- e;
  t.jlen <- t.jlen + 1;
  t.stats.st_journal_entries <- t.stats.st_journal_entries + 1;
  if t.jlen > t.stats.st_journal_peak then t.stats.st_journal_peak <- t.jlen

(* The write barrier.  A stale stamp means the current cells array may
   still be needed elsewhere: by the undo journal of a live snapshot (it
   holds the values [restore] must bring back), or by a forked replica (it
   was current when {!copy} shared the heap).  In either case the array is
   frozen — a private copy is installed and the frozen one journaled if a
   snapshot is live.  A stale stamp on a {e private} array with no live
   snapshot needs neither: the barrier just refreshes the stamp and the
   write goes in place.  In [Deep] mode the epoch never moves, every stamp
   stays current, and the barrier never fires. *)
let privatize t block cells =
  let fresh = Array.copy cells in
  t.blocks.(block) <- fresh;
  if t.active_marks > 0 then journal_push t (Jblock (block, cells, t.owned.(block)));
  t.owned.(block) <- t.epoch;
  t.stats.st_blocks_privatized <- t.stats.st_blocks_privatized + 1;
  t.stats.st_cells_dirtied <- t.stats.st_cells_dirtied + Array.length cells;
  fresh

let store t ~block ~off v =
  if block < 0 || block >= t.next_block then bounds_fail "store to invalid block" block off;
  let cells = t.blocks.(block) in
  if off < 0 || off >= Array.length cells then bounds_fail "out-of-bounds store" block off;
  let stamp = t.owned.(block) in
  let cells =
    if stamp >= t.epoch then cells
    else if t.active_marks > 0 || stamp < t.shared_below then begin
      if stamp < t.shared_below then t.stats.st_watermark_hits <- t.stats.st_watermark_hits + 1;
      privatize t block cells
    end
    else begin
      t.owned.(block) <- t.epoch;
      cells
    end
  in
  cells.(off) <- v

let block_size t id =
  if id < 0 || id >= t.next_block then None else Some (Array.length t.blocks.(id))

let block_cells t id =
  if id < 0 || id >= t.next_block then None else Some t.blocks.(id)

let read_global t slot = t.globals.(slot)

let write_global t slot v =
  if t.active_marks > 0 && t.gowned.(slot) < t.epoch then begin
    journal_push t (Jglobal (slot, t.globals.(slot)));
    t.gowned.(slot) <- t.epoch
  end;
  t.globals.(slot) <- v

let print_value t v = t.out_rev <- Value.to_string v :: t.out_rev
let print_string_ t s = t.out_rev <- s :: t.out_rev
let outputs t = List.rev t.out_rev

(* xorshift64* — deterministic, checkpointable in one int64. *)
let drand t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  let mixed = Int64.mul x 0x2545F4914F6CDD1DL in
  Int64.to_float (Int64.shift_right_logical mixed 11) /. 9007199254740992.0

let dseed t seed = t.rng <- Int64.logor (Int64.of_int seed) 1L

let read_input t =
  if t.input_pos < Array.length t.input then begin
    let v = t.input.(t.input_pos) in
    t.input_pos <- t.input_pos + 1;
    v
  end
  else 0

let fp_snapshot = Dca_support.Faultpoint.site "store.snapshot"

let snapshot t =
  Dca_support.Faultpoint.hit_unit fp_snapshot;
  t.stats.st_snapshots <- t.stats.st_snapshots + 1;
  match t.mode with
  | Deep ->
      SDeep
        {
          s_blocks = Array.init t.next_block (fun i -> Array.copy t.blocks.(i));
          s_next_block = t.next_block;
          s_globals = Array.copy t.globals;
          s_out_rev = t.out_rev;
          s_rng = t.rng;
          s_input_pos = t.input_pos;
        }
  | Journal ->
      t.epoch <- t.epoch + 1;
      t.active_marks <- t.active_marks + 1;
      if t.active_marks > t.stats.st_snapshot_depth_peak then
        t.stats.st_snapshot_depth_peak <- t.active_marks;
      SMark
        {
          m_released = false;
          m_mark = t.jlen;
          m_next_block = t.next_block;
          m_out_rev = t.out_rev;
          m_rng = t.rng;
          m_input_pos = t.input_pos;
        }

let restore t s =
  t.stats.st_restores <- t.stats.st_restores + 1;
  match s with
  | SDeep s ->
      ensure_capacity t s.s_next_block;
      for i = 0 to s.s_next_block - 1 do
        t.blocks.(i) <- Array.copy s.s_blocks.(i)
      done;
      (* blocks allocated after the snapshot become dangling *)
      for i = s.s_next_block to t.next_block - 1 do
        t.blocks.(i) <- [||]
      done;
      t.next_block <- s.s_next_block;
      Array.blit s.s_globals 0 t.globals 0 (Array.length s.s_globals);
      t.out_rev <- s.s_out_rev;
      t.rng <- s.s_rng;
      t.input_pos <- s.s_input_pos
  | SMark m ->
      if m.m_released then invalid_arg "Store.restore: snapshot already released";
      if m.m_mark > t.jlen then
        invalid_arg "Store.restore: stale snapshot (an earlier snapshot was restored over it)";
      (* replay newest-first, so a block dirtied under several generations
         ends at its oldest (snapshot-time) frozen array *)
      for k = t.jlen - 1 downto m.m_mark do
        (match t.journal.(k) with
        | Jblock (b, cells, stamp) ->
            t.blocks.(b) <- cells;
            t.owned.(b) <- stamp
        | Jglobal (slot, v) -> t.globals.(slot) <- v);
        t.journal.(k) <- jdummy
      done;
      t.jlen <- m.m_mark;
      for i = m.m_next_block to t.next_block - 1 do
        t.blocks.(i) <- [||]
      done;
      t.next_block <- m.m_next_block;
      t.out_rev <- m.m_out_rev;
      t.rng <- m.m_rng;
      t.input_pos <- m.m_input_pos;
      (* the reinstalled arrays are referenced by nothing else now, but the
         next snapshot/restore cycle must re-freeze them *)
      t.epoch <- t.epoch + 1

let release t s =
  match s with
  | SDeep _ -> ()
  | SMark m ->
      if not m.m_released then begin
        m.m_released <- true;
        t.active_marks <- t.active_marks - 1;
        if t.active_marks = 0 then begin
          for k = 0 to t.jlen - 1 do
            t.journal.(k) <- jdummy
          done;
          t.jlen <- 0
        end
      end

let heap_blocks t = t.next_block

let copy t =
  match t.mode with
  | Deep ->
      {
        t with
        blocks = Array.init t.next_block (fun i -> Array.copy t.blocks.(i));
        owned = Array.make t.next_block 0;
        globals = Array.copy t.globals;
        gowned = Array.copy t.gowned;
        journal = [||];
        jlen = 0;
        active_marks = 0;
        stats = forked_stats ();
      }
  | Journal ->
      (* Copy-on-write: the replica shares every cells array with the
         parent; bumping the parent's epoch (and raising [shared_below] to
         it on both sides) stales both sides' stamps and marks every
         pre-fork array as potentially shared, so whichever store writes a
         shared block first privatizes its own copy.  Concurrent forks of
         a quiescent parent are safe: each writes the same bumped epoch
         and watermark values and shares the same frozen arrays. *)
      t.epoch <- t.epoch + 1;
      t.shared_below <- t.epoch;
      {
        t with
        blocks = Array.copy t.blocks;
        owned = Array.make (Array.length t.blocks) (-1);
        globals = Array.copy t.globals;
        gowned = Array.make (Array.length t.gowned) (-1);
        journal = [||];
        jlen = 0;
        active_marks = 0;
        stats = forked_stats ();
      }

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let stats t = t.stats

let d_snapshots = Telemetry.counter ~kind:Telemetry.Diag "store.snapshots"
let d_restores = Telemetry.counter ~kind:Telemetry.Diag "store.restores"
let d_journal_entries = Telemetry.counter ~kind:Telemetry.Diag "store.journal_entries"
let d_journal_peak = Telemetry.counter ~kind:Telemetry.Diag ~merge:Telemetry.Max "store.journal_peak"
let d_blocks_privatized = Telemetry.counter ~kind:Telemetry.Diag "store.blocks_privatized"
let d_cells_dirtied = Telemetry.counter ~kind:Telemetry.Diag "store.cells_dirtied"
let d_snapshot_depth_peak =
  Telemetry.counter ~kind:Telemetry.Diag ~merge:Telemetry.Max "store.snapshot_depth_peak"
let d_watermark_hits = Telemetry.counter ~kind:Telemetry.Diag "store.fork_watermark_hits"
let d_forks = Telemetry.counter ~kind:Telemetry.Diag "store.forks"

let flush_telemetry t =
  if Telemetry.counting () then begin
    let s = t.stats in
    Telemetry.add d_snapshots s.st_snapshots;
    Telemetry.add d_restores s.st_restores;
    Telemetry.add d_journal_entries s.st_journal_entries;
    Telemetry.add_max d_journal_peak s.st_journal_peak;
    Telemetry.add d_blocks_privatized s.st_blocks_privatized;
    Telemetry.add d_cells_dirtied s.st_cells_dirtied;
    Telemetry.add_max d_snapshot_depth_peak s.st_snapshot_depth_peak;
    Telemetry.add d_watermark_hits s.st_watermark_hits;
    Telemetry.add d_forks s.st_forks;
    (* drained: a later flush of the same store only adds the delta *)
    s.st_snapshots <- 0;
    s.st_restores <- 0;
    s.st_journal_entries <- 0;
    s.st_blocks_privatized <- 0;
    s.st_cells_dirtied <- 0;
    s.st_watermark_hits <- 0;
    s.st_forks <- 0
  end
