test/test_profiling.ml: Alcotest Dca_analysis Dca_baselines Dca_interp Dca_ir Dca_profiling Depprof List Loops Proginfo
