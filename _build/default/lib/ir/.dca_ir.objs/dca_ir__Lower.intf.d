lib/ir/lower.mli: Dca_frontend Ir Tast
