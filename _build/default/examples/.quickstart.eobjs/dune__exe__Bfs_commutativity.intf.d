examples/bfs_commutativity.mli:
