lib/progs/plds_tree.ml: Benchmark
