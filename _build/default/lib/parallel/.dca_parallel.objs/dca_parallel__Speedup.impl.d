lib/parallel/speedup.ml: Dca_profiling Depprof Float Hashtbl List Machine Option Plan Planner
