(** UA — Unstructured Adaptive (NPB).

    Element-over-node computation with indirection arrays: gather node
    values per element, dense element work, scatter-add back through the
    element-to-node map.  The scatter-adds collide on shared nodes —
    non-affine subscripts and genuine read-modify-write conflicts that
    defeat every static test — yet the adds commute, so DCA reports the
    element loops parallelizable (paper: UA 466/479 for DCA vs 209
    combined static). *)

let source =
  {|
// NPB UA kernel, MiniC port (unstructured element/node relaxation).
int   nelems;
int   nnodes;
int   elem_node[256][4];  // element -> 4 node ids
float node_val[200];
float node_res[200];
float node_mass[200];
float omega;
float elem_scratch[256];
float checksum;
int   verified;

void build_mesh() {
  int e;
  for (e = 0; e < nelems; e = e + 1) {
    int c;
    for (c = 0; c < 4; c = c + 1) {
      // pseudo-random connectivity with locality
      elem_node[e][c] = (e * 3 + c * 17 + ftoi(hrand(e * 4 + c) * 5.0)) % nnodes;
    }
  }
}

void gather_compute() {
  int e;
  for (e = 0; e < nelems; e = e + 1) {
    float acc = 0.0;
    int c;
    for (c = 0; c < 4; c = c + 1) {
      float v = node_val[elem_node[e][c]];
      acc = acc + v * (1.0 + 0.05 * fabs(v));   // nonlinear coupling
    }
    elem_scratch[e] = 0.25 * acc * (1.0 + 0.01 * itof(e % 7));
  }
}

void scatter_add() {
  int e;
  for (e = 0; e < nelems; e = e + 1) {
    int c;
    for (c = 0; c < 4; c = c + 1) {
      int nd = elem_node[e][c];
      node_res[nd] = node_res[nd] + 0.25 * elem_scratch[e];
      node_mass[nd] = node_mass[nd] + 0.25;
    }
  }
}

void relax() {
  int i;
  for (i = 0; i < nnodes; i = i + 1) {
    if (node_mass[i] > 0.0) {
      node_val[i] = (1.0 - omega) * node_val[i] + omega * node_res[i] / node_mass[i];
    }
    node_res[i] = 0.0;
    node_mass[i] = 0.0;
  }
}

// adaptive refinement marker: prefix-dependent cursor, order matters
int   marked[256];
int   nmarked;
void mark_elements() {
  int e;
  nmarked = 0;
  for (e = 0; e < nelems; e = e + 1) {
    if (elem_scratch[e] > 0.4) {
      marked[nmarked] = e;
      nmarked = nmarked + 1;
    }
  }
}

// transfer-like copy of node state into a shadow mesh (parallel)
float shadow_val[200];
void transfer() {
  int i;
  for (i = 0; i < nnodes; i = i + 1) { shadow_val[i] = node_val[i]; }
}

// adapt-like per-element size indicator (parallel reads, disjoint writes)
float elem_size[256];
void adapt_metric() {
  int e;
  for (e = 0; e < nelems; e = e + 1) {
    float spread = 0.0;
    int c;
    for (c = 0; c < 4; c = c + 1) { spread = spread + fabs(shadow_val[elem_node[e][c]]); }
    elem_size[e] = spread * 0.25;
  }
}

void main() {
  nelems = 256;
  nnodes = 200;
  build_mesh();
  int i;
  for (i = 0; i < nnodes; i = i + 1) {
    node_val[i] = hrand(i);
    node_res[i] = 0.0;
    node_mass[i] = 0.0;
  }
  int iter;
  for (iter = 0; iter < 5; iter = iter + 1) {
    omega = 0.2 + 0.05 * itof(iter);
    gather_compute();
    scatter_add();
    relax();
  }
  transfer();
  adapt_metric();
  mark_elements();
  float marksig = 0.0;
  for (i = 0; i < nmarked; i = i + 1) { marksig = marksig + itof(marked[i]) * itof(i + 1); }
  checksum = 0.0;
  for (i = 0; i < nnodes; i = i + 1) { checksum = checksum + node_val[i]; }
  float sizesum = 0.0;
  int e;
  for (e = 0; e < nelems; e = e + 1) { sizesum = sizesum + elem_size[e]; }
  checksum = checksum + 0.001 * sizesum;
  verified = 0;
  if (checksum > 0.0) { verified = 1; }
  print(checksum);
  print(marksig);
  printi(nmarked);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"UA" ~suite:Benchmark.Npb
       ~description:"unstructured mesh gather/compute/scatter-add relaxation" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.Outermost "build_mesh";
        Benchmark.Outermost "gather_compute";
        Benchmark.Outermost "scatter_add";
        Benchmark.In_func "relax";
        Benchmark.In_func "transfer";
        Benchmark.Outermost "adapt_metric";
        Benchmark.Nth_in_func ("main", 0);
        Benchmark.Nth_in_func ("main", 2);
      ];
    bm_expert_sections =
      [ [ Benchmark.Outermost "gather_compute"; Benchmark.Outermost "scatter_add"; Benchmark.In_func "relax" ] ];
    bm_expert_extra = 0.1;
    bm_known_sequential =
      [
        Benchmark.In_func "mark_elements" (* order-dependent compaction cursor *);
        Benchmark.Nth_in_func ("main", 1) (* relaxation iterations *);
      ];
  }
