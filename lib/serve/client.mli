(** Blocking JSON-lines client for the [dca serve] Unix-domain socket. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's socket path. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request line, block for the matching response line. *)

val close : t -> unit

val with_client : string -> (t -> ('a, string) result) -> ('a, string) result
(** [connect], run, then {!close} (also on exception). *)

(** {1 Retry with capped-exponential backoff}

    Every condition {!request_retry} retries is one where the daemon
    guarantees the request either never ran (connect refused, [busy]
    shed, worker crash) or ran without caching a wrong answer (watchdog
    timeout — the analysis finished server-side, so the retry usually
    hits the verdict cache).  Re-sending therefore always converges to
    the same byte-identical report. *)

type backoff = {
  bo_attempts : int;  (** total attempts, including the first (default 6) *)
  bo_base_ms : float;  (** first delay before jitter (default 50) *)
  bo_cap_ms : float;  (** exponential ceiling before jitter (default 2000) *)
  bo_seed : int;
      (** jitter seed ({!Dca_support.Prng}): equal seeds give equal
          delay schedules — deterministic tests, decorrelated clients *)
}

val default_backoff : backoff

val backoff_schedule : backoff -> float array
(** The delays in milliseconds before retries 1 .. attempts-1: the
    capped exponential [base *. 2^k] scaled by a seeded jitter factor
    in [\[0.5, 1)]. *)

val request_retry :
  ?backoff:backoff -> string -> Protocol.request -> (Protocol.response, string) result
(** [request_retry path rq] runs [rq] over a fresh connection per
    attempt, retrying (after the backoff schedule) on connect errors,
    closed connections, [busy] replies, and timeout error replies.  On
    exhaustion the last outcome is returned as-is — a final [busy]
    reply surfaces as [Ok] with [rp_status = Busy] — except transport
    errors, which are annotated with the attempt count. *)
