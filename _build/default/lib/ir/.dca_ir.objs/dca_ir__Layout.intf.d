lib/ir/layout.mli: Ast Dca_frontend
