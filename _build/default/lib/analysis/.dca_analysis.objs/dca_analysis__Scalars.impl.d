lib/analysis/scalars.ml: Affine Cfg Dca_ir Dca_support Hashtbl Intset Ir List Liveness Loops Option
