type state = { src : string; file : string; mutable pos : int; mutable line : int; mutable bol : int }

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let start = loc st in
      advance st;
      advance st;
      let rec go () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            go ()
        | None, _ -> Loc.error start "unterminated block comment"
      in
      go ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let startloc = loc st in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      if not (match peek st with Some c -> is_digit c | None -> false) then
        Loc.error startloc "malformed exponent in numeric literal";
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Token.Tfloat_lit (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Token.Tint_lit n
    | None -> Loc.error startloc "integer literal out of range: %s" text

let lex_string st =
  let startloc = loc st in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> Loc.error startloc "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> begin
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '"' -> Buffer.add_char buf '"'
        | Some c -> Loc.error (loc st) "unknown escape sequence '\\%c'" c
        | None -> Loc.error startloc "unterminated string literal");
        advance st;
        go ()
      end
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.Tstring_lit (Buffer.contents buf)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match Token.keyword_of_string text with Some k -> k | None -> Token.Tident text

(* Two-character operators are tried before their one-character prefixes. *)
let lex_operator st =
  let l = loc st in
  let two tok =
    advance st;
    advance st;
    tok
  and one tok =
    advance st;
    tok
  in
  match (peek st, peek2 st) with
  | Some '-', Some '>' -> two Token.Arrow
  | Some '=', Some '=' -> two Token.Eq
  | Some '!', Some '=' -> two Token.Neq
  | Some '<', Some '=' -> two Token.Le
  | Some '>', Some '=' -> two Token.Ge
  | Some '&', Some '&' -> two Token.Andand
  | Some '|', Some '|' -> two Token.Oror
  | Some '(', _ -> one Token.Lparen
  | Some ')', _ -> one Token.Rparen
  | Some '{', _ -> one Token.Lbrace
  | Some '}', _ -> one Token.Rbrace
  | Some '[', _ -> one Token.Lbracket
  | Some ']', _ -> one Token.Rbracket
  | Some ';', _ -> one Token.Semi
  | Some ',', _ -> one Token.Comma
  | Some '.', _ -> one Token.Dot
  | Some '=', _ -> one Token.Assign
  | Some '+', _ -> one Token.Plus
  | Some '-', _ -> one Token.Minus
  | Some '*', _ -> one Token.Star
  | Some '/', _ -> one Token.Slash
  | Some '%', _ -> one Token.Percent
  | Some '!', _ -> one Token.Bang
  | Some '<', _ -> one Token.Lt
  | Some '>', _ -> one Token.Gt
  | Some c, _ -> Loc.error l "unexpected character '%c'" c
  | None, _ -> Token.Eof

let tokenize ~file src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit tok l = toks := (tok, l) :: !toks in
  let rec go () =
    skip_trivia st;
    let l = loc st in
    match peek st with
    | None -> emit Token.Eof l
    | Some c when is_digit c -> begin
        emit (lex_number st) l;
        go ()
      end
    | Some c when is_ident_start c -> begin
        emit (lex_ident st) l;
        go ()
      end
    | Some '"' -> begin
        emit (lex_string st) l;
        go ()
      end
    | Some _ -> begin
        emit (lex_operator st) l;
        go ()
      end
  in
  go ();
  List.rev !toks
