lib/experiments/tables.ml: Benchmark Buffer Dca_analysis Dca_baselines Dca_core Dca_profiling Dca_progs Driver Evaluation List Paper_data Printf Registry
