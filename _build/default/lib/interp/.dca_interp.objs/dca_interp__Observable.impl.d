lib/interp/observable.ml: Array Buffer Float Hashtbl List Printf Queue Store String Value
