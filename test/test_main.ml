let () =
  Alcotest.run "dca"
    (Test_support.suites @ Test_frontend.suites @ Test_ir.suites @ Test_interp.suites @ Test_analysis.suites
   @ Test_dca.suites @ Test_profiling.suites @ Test_baselines.suites @ Test_parallel.suites
   @ Test_progs.suites @ Test_cexport.suites @ Test_experiments.suites @ Test_session.suites
   @ Test_telemetry.suites @ Test_fuzz.suites @ Test_fault.suites @ Test_serve.suites
   @ Test_staticproof.suites)
