lib/analysis/proginfo.ml: Affine Cfg Dca_frontend Dca_ir Hashtbl Ir List Liveness Loops Pdg Printf Purity
