(* Content addressing of analysis inputs.

   A verdict cache key must change whenever anything that can change the
   loop's verdict changes, and should change for as little else as
   possible — the narrower the digest, the more of an edited program's
   loops survive in cache.  The unit we digest is the *lowered IR* (the
   printer's canonical text): source formatting, comments and variable
   renames that lower identically hash identically, while anything that
   moves an instruction does not.

   Per-function granularity: a function's digest covers its own IR plus
   the IR of every function reachable from it through calls (its call
   closure) plus the global table — everything a loop inside it can
   execute or touch.  Editing one function therefore invalidates its own
   loops and the loops of its (transitive) callers, and nothing else.

   This is deliberately finer than sound: a loop's dynamic verdict is
   established by running the whole program, so an edit *outside* the
   loop's call closure can still change the invocation context the loop
   is tested under (different heap shape at loop entry).  That is the
   price of incrementality, and the same class of approximation as the
   paper's input sampling (§IV-E: verdicts hold for the executions
   observed).  Two mitigations: the run-spec digest pins the input
   stream, and entries whose outcome used whole-program verification
   record the whole-program digest and are invalidated when *any*
   function changes (see Vcache). *)

open Dca_ir

type t = {
  pd_program : string;  (** hex digest of the whole lowered program *)
  pd_funcs : (string * string) list;  (** function name → hex closure digest *)
}

let hex s = Digest.to_hex (Digest.string s)

(* Call targets that are IR functions (builtins like [reads]/[printi]
   have fixed semantics and are not digested). *)
let callees prog f =
  let names = Hashtbl.create 8 in
  Array.iter
    (fun blk ->
      List.iter
        (fun i ->
          match i.Ir.idesc with
          | Ir.Call (_, name, _) when Ir.find_func prog name <> None -> Hashtbl.replace names name ()
          | _ -> ())
        blk.Ir.instrs)
    f.Ir.fblocks;
  Hashtbl.fold (fun n () acc -> n :: acc) names []

let globals_digest prog =
  let buf = Buffer.create 256 in
  Array.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s slot=%d agg=%b size=%d kinds=%s init=%s\n" g.Ir.g_var.Ir.vname
           g.Ir.g_var.Ir.vslot g.Ir.g_aggregate g.Ir.g_size
           (String.concat ","
              (Array.to_list
                 (Array.map
                    (function Layout.KInt -> "i" | Layout.KFloat -> "f" | Layout.KPtr -> "p")
                    g.Ir.g_kinds)))
           (match g.Ir.g_init with
           | Some op -> Ir_printer.operand_to_string op
           | None -> "-")))
    prog.Ir.p_globals;
  hex (Buffer.contents buf)

let of_program prog =
  let globals = globals_digest prog in
  let local = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace local f.Ir.fname (hex (Ir_printer.func_to_string f)))
    prog.Ir.p_funcs;
  (* reachable-set closure: cycles (recursion) are harmless because we
     digest the *set* of reachable locals, not a recursive hash *)
  let reachable_of f0 =
    let seen = Hashtbl.create 8 in
    let rec visit name =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.replace seen name ();
        match Ir.find_func prog name with
        | Some f -> List.iter visit (callees prog f)
        | None -> ()
      end
    in
    visit f0.Ir.fname;
    Hashtbl.fold (fun n () acc -> n :: acc) seen [] |> List.sort compare
  in
  let closure f =
    let parts =
      List.map
        (fun name ->
          name ^ "=" ^ match Hashtbl.find_opt local name with Some d -> d | None -> "?")
        (reachable_of f)
    in
    hex (String.concat ";" parts ^ "|globals=" ^ globals)
  in
  let pd_funcs = List.map (fun f -> (f.Ir.fname, closure f)) prog.Ir.p_funcs in
  let pd_program =
    hex
      (String.concat ";" (List.map (fun (n, d) -> n ^ "=" ^ d) pd_funcs)
      ^ "|globals=" ^ globals)
  in
  { pd_program; pd_funcs }

let func_digest t name = List.assoc_opt name t.pd_funcs
let program_digest t = t.pd_program

(* ------------------------------------------------------------------ *)
(* Run-spec and configuration digests                                  *)
(* ------------------------------------------------------------------ *)

open Dca_core

let opt_int = function None -> "-" | Some n -> string_of_int n

let spec_digest (s : Commutativity.run_spec) =
  hex
    (Printf.sprintf "input=%s fuel=%d deadline=%s heap=%s"
       (String.concat "," (List.map string_of_int s.Commutativity.rs_input))
       s.Commutativity.rs_fuel
       (opt_int s.Commutativity.rs_deadline_ns)
       (opt_int s.Commutativity.rs_heap_words))

(* The static flag is digested as the *prover version* when enabled: a
   cached verdict proved under weaker obligations must never satisfy a
   binary whose prover changed, and static/dynamic runs of the same
   program must not share entries. *)
let config_digest ~hierarchical ?(static = true) (c : Commutativity.config) =
  hex
    (Printf.sprintf "schedules=%s eps=%h escalate=%b inv=%d promote=%d hier=%b static=%s"
       (String.concat "," (List.map Schedule.to_string c.Commutativity.cc_schedules))
       c.Commutativity.cc_eps c.Commutativity.cc_escalate c.Commutativity.cc_max_invocations
       c.Commutativity.cc_promote_rounds hierarchical
       (if static then string_of_int Dca_analysis.Staticproof.version else "off"))

let loop_key t ~config_digest ~spec_digest ~func ~loop_id =
  let fd = match func_digest t func with Some d -> d | None -> "?" in
  Digest.to_hex
    (Digest.string (Printf.sprintf "dcav1|%s|%s|%s|%s" fd loop_id spec_digest config_digest))
