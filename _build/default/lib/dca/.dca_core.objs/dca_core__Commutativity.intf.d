lib/dca/commutativity.mli: Dca_analysis Iterator_rec Schedule
