(** Parallelization plans: the information an OpenMP pragma would carry
    (paper §IV-C).  Plans are data; the {!Simulator} executes them on the
    machine model. *)

open Dca_analysis

type loop_plan = {
  lp_loop_id : string;
  lp_label : string;
  lp_private : string list;  (** privatized scalars (by name, for reports) *)
  lp_reductions : (string * Scalars.reduction_op) list;
  lp_fused_group : int option;
      (** loops sharing a group id are launched as one parallel section
          (whole-program expert parallelization, Fig. 7) *)
}

type t = { plan_loops : loop_plan list }

let empty = { plan_loops = [] }

let loop_ids plan = List.map (fun lp -> lp.lp_loop_id) plan.plan_loops

let pragma_of lp =
  let priv = match lp.lp_private with [] -> "" | l -> " private(" ^ String.concat ", " l ^ ")" in
  let reds =
    match lp.lp_reductions with
    | [] -> ""
    | l ->
        " "
        ^ String.concat " "
            (List.map
               (fun (name, op) ->
                 Printf.sprintf "reduction(%s:%s)" (Scalars.reduction_op_to_string op) name)
               l)
  in
  Printf.sprintf "#pragma omp parallel for schedule(static)%s%s  // %s" priv reds lp.lp_label

let to_string plan = String.concat "\n" (List.map pragma_of plan.plan_loops)
