(** Human-readable reports of DCA results (the "auxiliary reports" of
    paper §IV-A4). *)

open Dca_analysis

let summary_line (r : Driver.loop_result) =
  let extra =
    match r.Driver.lr_outcome with
    | Some oc ->
        Printf.sprintf " [tested %d invocation(s)%s%s%s]" oc.Commutativity.oc_invocations
          (if oc.Commutativity.oc_escalated then ", escalated" else "")
          (if oc.Commutativity.oc_promotions > 0 then
             Printf.sprintf ", %d worklist promotion(s)" oc.Commutativity.oc_promotions
           else "")
          (if oc.Commutativity.oc_skipped_schedules > 0 then
             Printf.sprintf ", skipped %d duplicate schedule(s)" oc.Commutativity.oc_skipped_schedules
           else "")
    | None -> ""
  in
  Printf.sprintf "%-24s depth=%d  %s%s" r.Driver.lr_label r.Driver.lr_loop.Loops.l_depth
    (Driver.decision_to_string r.Driver.lr_decision)
    extra

let to_string results =
  let total = List.length results in
  let commutative = List.length (List.filter Driver.is_commutative results) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "DCA: %d/%d loop(s) commutative\n" commutative total);
  List.iter (fun r -> Buffer.add_string buf ("  " ^ summary_line r ^ "\n")) results;
  Buffer.contents buf

let print results = print_string (to_string results)
