open Dca_ir

type func_info = {
  fi_func : Ir.func;
  fi_cfg : Cfg.t;
  fi_forest : Loops.forest;
  fi_live : Liveness.t;
  fi_affine : Affine.t;
  fi_pdg : Pdg.t;
}

type t = {
  prog : Ir.program;
  infos : (string, func_info) Hashtbl.t;
  order : string list;
  pur : Purity.t;
}

let analyze prog =
  let infos = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let cfg = Cfg.of_func f in
      let forest = Loops.analyze cfg in
      let live = Liveness.analyze cfg in
      let affine = Affine.analyze cfg forest in
      let pdg = Pdg.build cfg in
      Hashtbl.replace infos f.Ir.fname
        { fi_func = f; fi_cfg = cfg; fi_forest = forest; fi_live = live; fi_affine = affine; fi_pdg = pdg })
    prog.Ir.p_funcs;
  { prog; infos; order = List.map (fun f -> f.Ir.fname) prog.Ir.p_funcs; pur = Purity.analyze prog }

let program t = t.prog
let purity t = t.pur

let func_info t name =
  match Hashtbl.find_opt t.infos name with
  | Some fi -> fi
  | None -> invalid_arg (Printf.sprintf "Proginfo.func_info: unknown function '%s'" name)

let funcs t = List.map (func_info t) t.order

let all_loops t =
  List.concat_map (fun fi -> List.map (fun l -> (fi, l)) (Loops.loops fi.fi_forest)) (funcs t)

let loop_by_id t id =
  List.find_opt (fun (_, l) -> l.Loops.l_id = id) (all_loops t)

let loop_label t l =
  ignore t;
  Printf.sprintf "%s:%d(d%d)" l.Loops.l_func l.Loops.l_loc.Dca_frontend.Loc.line l.Loops.l_depth
