test/test_support.ml: Alcotest Array Dca_support Gen Intset List Listx Option Prng QCheck QCheck_alcotest Unionfind
