lib/progs/registry.ml: Benchmark List Npb_bt Npb_cg Npb_dc Npb_ep Npb_ft Npb_is Npb_lu Npb_mg Npb_sp Npb_ua Plds_list Plds_sim Plds_tree Plds_worklist Printf
