lib/analysis/deptest.mli: Affine
