lib/dca/report.ml: Buffer Commutativity Dca_analysis Driver List Loops Printf
