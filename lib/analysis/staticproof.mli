(** Static commutativity fast-path: an affine dependence-distance proof of
    iteration independence, discharging candidate loops without a golden
    run or replays (ROADMAP "Static fast-path"; the specification framing
    follows the separation-logic treatment of iteration-local footprints).

    The proof obligations, conjunctively:

    + the loop is a well-formed counted loop (single induction variable
      with non-zero constant step, loop-invariant bound);
    + every instruction's effects are visible to the affine access
      analysis — no user calls, impure builtins, allocation or I/O;
    + every scalar defined in the loop is an induction variable, a
      dead-on-exit private, or an {e integer} reduction (float reductions
      reassociate inexactly; private-but-live-out scalars carry the last
      iteration's value);
    + every pair of memory accesses involving a write — including a
      write's self-pair — is refuted by {!Deptest.cross_iteration} when
      the roots are identical, and fails outright when distinct roots may
      alias (including any two pointer parameters: a caller may pass the
      same array twice).

    A loop where only some access groups fail is split conservatively:
    if at least one write group is proved and no proved store consumes a
    value loaded by a failing ("residual") group, the result is
    {!Fission} — the verdict still comes from the dynamic stage, but the
    split is surfaced for telemetry and reports.

    The prover is conservative by construction: it may say {!Bail} for a
    commutative loop, never {!Proved} for a non-commutative one.  The
    [dca fuzz --static-xcheck] differential harness enforces exactly
    that. *)

val version : int
(** Prover version, recorded in the serve-cache spec digest: cached
    verdicts proved by an older prover are never replayed by a newer
    binary. *)

type proof =
  | Proved of { pf_groups : int; pf_stores : int }
      (** iteration independence proved for every access group *)
  | Fission of { fs_proved : int; fs_residual : int; fs_reason : string }
      (** a clean split exists but residual groups need the dynamic stage *)
  | Bail of string  (** no proof; the loop enters the dynamic stage whole *)

val proof_to_string : proof -> string

val prove : Proginfo.t -> Proginfo.func_info -> Loops.loop -> proof
(** Attempt the proof for one loop.  Pure and allocation-light: safe to
    call from pool workers. *)
