lib/ir/ir.ml: Ast Dca_frontend Layout List Loc Printf
