open Affine

type verdict = No_dep | Dep of string

let may_alias r1 r2 =
  match (r1, r2) with
  | Rglobal a, Rglobal b -> a = b
  | Ralloc a, Ralloc b -> a = b
  | Rparam a, Rparam b -> a = b
  | Rglobal _, Ralloc _ | Ralloc _, Rglobal _ -> false
  | Rglobal _, Rparam _ | Rparam _, Rglobal _ ->
      (* a parameter may point into a global *)
      true
  | Ralloc _, Rparam _ | Rparam _, Ralloc _ -> true
  | Runknown, _ | _, Runknown -> true

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Split an affine form into (coefficient of the tested loop's IV, rest). *)
let split loop_id (a : affine) =
  let c =
    match List.assoc_opt (Tiv loop_id) a.coeffs with Some c -> c | None -> 0
  in
  let rest = List.filter (fun (t, _) -> t <> Tiv loop_id) a.coeffs in
  (c, { coeffs = rest; const = a.const })

let cross_iteration ~loop_id acc1 acc2 =
  if not (may_alias acc1.acc_root acc2.acc_root) then No_dep
  else
    match (acc1.acc_subscript, acc2.acc_subscript) with
    | None, _ | _, None -> Dep "non-affine subscript"
    | Some s1, Some s2 ->
        let c1, r1 = split loop_id s1 and c2, r2 = split loop_id s2 in
        if c1 = c2 then
          if affine_equal r1 r2 then
            (* strong SIV: c*(x - y) = 0 *)
            if c1 <> 0 then No_dep else Dep "loop-invariant address shared across iterations"
          else begin
            (* same stride, symbolically different remainder *)
            let d = affine_sub r1 r2 in
            match d.coeffs with
            | [] ->
                (* constant distance δ: dependence iff c | δ and δ ≠ 0;
                   (δ = 0 was the affine_equal case) *)
                if c1 = 0 then
                  (* different fixed addresses *)
                  No_dep
                else if d.const mod c1 = 0 then Dep (Printf.sprintf "carried distance %d" (d.const / c1))
                else No_dep
            | _ -> Dep "symbolically differing subscripts"
          end
        else begin
          (* weak SIV / MIV: fall back to a GCD test on the constants when
             the symbolic parts agree *)
          let d = affine_sub r1 r2 in
          match d.coeffs with
          | [] ->
              let g = gcd c1 c2 in
              if g <> 0 && d.const mod g <> 0 then No_dep else Dep "gcd test inconclusive"
          | _ -> Dep "differing strides with symbolic remainder"
        end

let loop_has_dependence ~loop_id ?(exempt = fun _ _ -> false) accesses =
  let rec pairs = function
    | [] -> None
    | a :: rest -> (
        let conflict =
          List.find_opt
            (fun b ->
              (a.acc_write || b.acc_write)
              && (not (exempt a b))
              &&
              match cross_iteration ~loop_id a b with No_dep -> false | Dep _ -> true)
            rest
        in
        match conflict with
        | Some b -> (
            match cross_iteration ~loop_id a b with
            | Dep reason -> Some (a, b, reason)
            | No_dep -> assert false)
        | None -> pairs rest)
  in
  (* also a write access conflicting with itself across iterations *)
  let self_conflict =
    List.find_map
      (fun a ->
        if a.acc_write && not (exempt a a) then
          match cross_iteration ~loop_id a a with
          | Dep reason -> Some (a, a, reason)
          | No_dep -> None
        else None)
      accesses
  in
  match self_conflict with Some _ as s -> s | None -> pairs accesses
