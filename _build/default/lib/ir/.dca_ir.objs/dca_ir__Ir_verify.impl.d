lib/ir/ir_verify.ml: Array Hashtbl Ir List Option Printf
