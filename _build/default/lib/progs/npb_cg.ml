(** CG — Conjugate Gradient (NPB).

    Sparse matrix–vector products in CSR form with indirect column
    indexing ([p\[colidx\[k\]\]]) — the access pattern that defeats
    polyhedral subscript analysis — plus dot-product reductions, axpy
    updates, and a genuinely sequential outer solver iteration (the
    carried [rho]/[p]/[r] chain the paper counts among CG's
    cross-iteration dependences, §V-C1).  The CSR row-offset construction
    is a prefix sum: order-dependent ground truth for Table IV. *)

let source =
  {|
// NPB CG kernel, MiniC port (scaled down CSR conjugate gradient).
int   nrows;
int   maxnnz;
float a[1024];
int   colidx[1024];
int   rowstart[129];
int   rowcnt[128];
float x[128];
float z[128];
float p[128];
float q[128];
float r[128];
float rho;
float rnorm;
float norm_temp1;
float norm_temp2;
int   verified;

void matvec(float *src, float *dst) {
  int i;
  for (i = 0; i < nrows; i = i + 1) {
    float sum = 0.0;
    int k;
    for (k = rowstart[i]; k < rowstart[i + 1]; k = k + 1) {
      sum = sum + a[k] * src[colidx[k]];
    }
    dst[i] = sum;
  }
}

float dot(float *u, float *v) {
  float sum = 0.0;
  int i;
  for (i = 0; i < nrows; i = i + 1) { sum = sum + u[i] * v[i]; }
  return sum;
}

void makea() {
  int i;
  // per-row nonzero counts (hash-random in 4..11)
  for (i = 0; i < nrows; i = i + 1) { rowcnt[i] = 4 + ftoi(hrand(i) * 8.0); }
  // prefix sum: order-dependent by construction
  rowstart[0] = 0;
  for (i = 0; i < nrows; i = i + 1) { rowstart[i + 1] = rowstart[i] + rowcnt[i]; }
  // fill values and column indices; diagonally dominant
  for (i = 0; i < nrows; i = i + 1) {
    int k;
    for (k = rowstart[i]; k < rowstart[i + 1]; k = k + 1) {
      int span = rowstart[i + 1] - rowstart[i];
      int off = k - rowstart[i];
      colidx[k] = (i + off * 7) % nrows;
      a[k] = 0.1 + hrand(k) * 0.2;
      if (colidx[k] == i) { a[k] = a[k] + itof(span); }
    }
    // ensure a dominant diagonal entry exists
    colidx[rowstart[i]] = i;
    a[rowstart[i]] = 8.0 + itof(rowcnt[i]);
  }
}

void main() {
  nrows = 128;
  maxnnz = 1024;
  makea();
  int i;
  for (i = 0; i < nrows; i = i + 1) {
    x[i] = 1.0;
    z[i] = 0.0;
    r[i] = x[i];
    p[i] = r[i];
  }
  rho = dot(r, r);
  // CG solver iterations: genuinely sequential outer loop
  int it;
  for (it = 0; it < 8; it = it + 1) {
    matvec(p, q);
    float pq = dot(p, q);
    // damped step: the damping schedule makes iterations order-dependent
    float alpha = (rho / pq) * (1.0 - 0.02 * itof(it));
    for (i = 0; i < nrows; i = i + 1) { z[i] = z[i] + alpha * p[i]; }
    for (i = 0; i < nrows; i = i + 1) { r[i] = r[i] - alpha * q[i]; }
    float rho0 = rho;
    rho = dot(r, r);
    float beta = rho / rho0;
    for (i = 0; i < nrows; i = i + 1) { p[i] = r[i] + beta * p[i]; }
  }
  // norm_temp reductions and solution scaling, as NPB CG's outer iteration
  norm_temp1 = 0.0;
  norm_temp2 = 0.0;
  for (i = 0; i < nrows; i = i + 1) { norm_temp1 = norm_temp1 + x[i] * z[i]; }
  for (i = 0; i < nrows; i = i + 1) { norm_temp2 = norm_temp2 + z[i] * z[i]; }
  float scale = 1.0 / sqrt(norm_temp2);
  for (i = 0; i < nrows; i = i + 1) { x[i] = scale * z[i] + 0.5 * x[i]; }
  // residual check: ||x - A z|| should have shrunk
  matvec(z, q);
  rnorm = 0.0;
  for (i = 0; i < nrows; i = i + 1) {
    float d = x[i] - q[i];
    rnorm = rnorm + d * d;
  }
  rnorm = sqrt(rnorm);
  verified = 0;
  if (rnorm < 10.0 && norm_temp2 > 0.0) { verified = 1; }
  print(rho);
  print(rnorm);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"CG" ~suite:Benchmark.Npb
       ~description:"conjugate gradient with CSR sparse matvec and dot-product reductions" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.In_func "matvec";
        Benchmark.In_func "dot";
        Benchmark.At_depth ("main", 2) (* axpy loops inside the solver iteration *);
        Benchmark.Nth_in_func ("main", 0) (* vector init *);
        Benchmark.Nth_in_func ("main", 5) (* norm_temp1 reduction *);
        Benchmark.Nth_in_func ("main", 6) (* norm_temp2 reduction *);
        Benchmark.Nth_in_func ("main", 7) (* solution scaling *);
      ];
    bm_expert_sections = [ [ Benchmark.In_func "matvec"; Benchmark.In_func "dot" ] ];
    bm_expert_extra = 0.15 (* the paper's experts pipeline part of the solver iteration *);
    bm_known_sequential =
      [
        Benchmark.Nth_in_func ("makea", 1) (* prefix sum *);
        Benchmark.Nth_in_func ("main", 1) (* CG solver iteration *);
      ];
  }
