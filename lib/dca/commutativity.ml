open Dca_support
open Dca_analysis
open Dca_ir
open Dca_interp
open Iterator_rec

type config = {
  cc_schedules : Schedule.t list;
  cc_eps : float;
  cc_escalate : bool;
  cc_max_invocations : int;
  cc_promote_rounds : int;
}

let default_config =
  {
    cc_schedules = Schedule.presets ();
    cc_eps = 1e-6;
    cc_escalate = true;
    cc_max_invocations = 4;
    cc_promote_rounds = 3;
  }

type verdict = Commutative | Non_commutative of string | Untestable of string

let verdict_to_string = function
  | Commutative -> "commutative"
  | Non_commutative why -> "non-commutative (" ^ why ^ ")"
  | Untestable why -> "untestable (" ^ why ^ ")"

type outcome = {
  oc_verdict : verdict;
  oc_invocations : int;
  oc_escalated : bool;
  oc_promotions : int;
  oc_skipped_schedules : int;
      (** schedule replays skipped because the induced permutation was the
          identity (trip count <= 1) or duplicated an earlier schedule's *)
  oc_golden_runs : int;
  oc_replays : int;
  oc_replay_steps : int;
  oc_separation : Iterator_rec.separation;
  oc_per_invocation : verdict list;
}

type run_spec = {
  rs_input : int list;
  rs_fuel : int;
  rs_deadline_ns : int option;
  rs_heap_words : int option;
}

(* The single fuel default shared by every entry point (Session used to
   carry its own 200M while the bare dynamic stage defaulted to 100M —
   fuel-sensitive programs got different verdicts depending on the door
   they came in through). *)
let default_fuel = 200_000_000

let make_run_spec ?(fuel = default_fuel) ?deadline_ns ?heap_words input =
  { rs_input = input; rs_fuel = fuel; rs_deadline_ns = deadline_ns; rs_heap_words = heap_words }

let default_run_spec = make_run_spec []

(* Every evaluator of a dynamic-stage run is created here so the resource
   guards apply uniformly; forks inherit the absolute deadline, so one
   invocation's golden run and all its replays share a single budget. *)
let context_of_spec spec prog =
  Eval.create ~fuel:spec.rs_fuel ?deadline_ns:spec.rs_deadline_ns ?heap_words:spec.rs_heap_words
    ~input:spec.rs_input prog

exception Replay_mismatch of string

(* Work counters: jobs-invariant by construction.  Every increment happens
   either on the main evaluation path (identical across worker counts) or
   from totals accumulated at the deterministic merge that consumes
   speculative per-schedule results in schedule order — work a parallel
   run performed but then discarded (schedules past a trap) is never
   counted.  [interp.instructions] is the exception: it is a diagnostic,
   because workers burn instructions on exactly that discarded work. *)
let c_invocations = Telemetry.counter "dca.invocations"
let c_golden_runs = Telemetry.counter "dca.golden_runs"
let c_replays = Telemetry.counter "dca.replays"
let c_replay_steps = Telemetry.counter "dca.replay_steps"
let c_skipped = Telemetry.counter "dca.schedules_skipped"
let c_promotions = Telemetry.counter "dca.promotions"
let c_escalated = Telemetry.counter "dca.loops_escalated"
let c_wp_golden_runs = Telemetry.counter "dca.wp_golden_runs"
let c_wp_schedule_runs = Telemetry.counter "dca.wp_schedule_runs"
let d_instructions = Telemetry.counter ~kind:Telemetry.Diag "interp.instructions"

(* Fault points of the dynamic stage.  [trap]/[fuel] actions map onto the
   evaluator's own exceptions, so an injected fault exercises exactly the
   degradation path a guest-program fault would: a trap under a permuted
   replay is non-commutativity evidence, a golden-run trap makes the loop
   untestable. *)
let fp_golden = Faultpoint.site "commutativity.golden"
let fp_replay = Faultpoint.site "commutativity.replay"

let fault_hit ?ctx site name =
  match Faultpoint.hit ?ctx site with
  | Faultpoint.Pass -> ()
  | Faultpoint.Fire_trap -> raise (Eval.Trap (Faultpoint.injected_msg ?ctx name))
  | Faultpoint.Fire_fuel -> raise Eval.Out_of_fuel

(* ------------------------------------------------------------------ *)
(* Golden recording                                                    *)
(* ------------------------------------------------------------------ *)

(* Memory footprint of the golden run, split by slice/payload attribution. *)
type footprint = {
  mutable fp_slice_reads : (Events.loc, unit) Hashtbl.t;
  mutable fp_slice_writes : (Events.loc, unit) Hashtbl.t;
  fp_payload_reads : (Events.loc, Intset.t ref) Hashtbl.t;  (** loc → payload iids *)
  fp_payload_writes : (Events.loc, Intset.t ref) Hashtbl.t;
}

type golden = {
  g_transitions : (int * int) array;  (** frame-level control transfers; (-1, header) marks iteration start *)
  g_segments : (int * int) list;  (** (start, stop) index ranges into g_transitions, one per header arrival *)
  g_payload_segments : int list;  (** indices into g_segments that execute payload *)
  g_snaps : Value.t array array;  (** interface values at each header arrival *)
  g_exit_snap : Value.t array;
  g_exit_block : int;
  g_digest : Observable.t;
  g_footprint : footprint;
}

let iface_values frame sep =
  Array.of_list (List.map (fun iv -> frame.Eval.regs.(iv.if_var.Ir.vslot)) sep.sep_interface)

let is_mem_loc = function
  | Events.Lheap _ | Events.Lglob _ | Events.Lrng -> true
  | Events.Lreg _ -> false

(* The live-out interface of [loop] in the current machine state: scalar
   values in fixed order plus the global aggregate roots.  Feeds both
   digest construction (golden run) and the in-place comparison every
   replay performs against the golden digest. *)
let digest_liveout fi loop ctx frame =
  let live = Liveness.loop_live_out fi.Proginfo.fi_live loop in
  let scalar_values =
    Intset.elements live
    |> List.filter_map (fun vid ->
           match Liveness.var_of_id fi.Proginfo.fi_live vid with
           | Some v when not v.Ir.vglobal -> Some frame.Eval.regs.(v.Ir.vslot)
           | _ -> None)
  in
  (* Heap the caller can still reach through a pointer the loop did NOT
     define — a local array, a list head — is observable after the loop
     even though no loop-defined scalar carries it, so those pointers must
     root the digest walk too.  Loop-defined pointers are already in
     [scalar_values] (capture dereferences every pointer cell). *)
  let exit_ptr_roots =
    Intset.elements (Intset.diff (Liveness.loop_live_exit fi.Proginfo.fi_live loop) live)
    |> List.filter_map (fun vid ->
           match Liveness.var_of_id fi.Proginfo.fi_live vid with
           | Some v when not v.Ir.vglobal -> (
               match frame.Eval.regs.(v.Ir.vslot) with
               | Value.VPtr _ as p -> Some p
               | _ -> None)
           | _ -> None)
  in
  let gvals = Eval.globals_of ctx in
  let gscalars = List.filter_map (fun (g, v) -> if g.Ir.g_aggregate then None else Some v) gvals in
  let groots = List.filter_map (fun (g, v) -> if g.Ir.g_aggregate then Some v else None) gvals in
  (scalar_values @ gscalars, exit_ptr_roots @ groots)

let capture_digest fi loop ctx frame =
  let scalars, roots = digest_liveout fi loop ctx frame in
  Observable.capture (Eval.store ctx) ~scalars ~roots

let matches_digest ~eps golden fi loop ctx frame =
  let scalars, roots = digest_liveout fi loop ctx frame in
  Observable.matches ~eps golden (Eval.store ctx) ~scalars ~roots

(* Run the loop once in original order under a recording sink. *)
let record_golden ctx frame fi sep =
  fault_hit fp_golden "commutativity.golden";
  let loop = sep.sep_loop in
  let header = loop.Loops.l_header in
  let in_loop b = Intset.mem b loop.Loops.l_blocks in
  let transitions = ref [] in
  let depth = ref 0 in
  let cur_iid = ref (-1) in
  let fp =
    {
      fp_slice_reads = Hashtbl.create 64;
      fp_slice_writes = Hashtbl.create 64;
      fp_payload_reads = Hashtbl.create 64;
      fp_payload_writes = Hashtbl.create 64;
    }
  in
  let in_slice iid = Intset.mem iid sep.sep_slice in
  let in_payload iid = Intset.mem iid sep.sep_payload in
  let touch tbl loc =
    if not (Hashtbl.mem tbl loc) then Hashtbl.replace tbl loc ()
  in
  let touch_set tbl loc iid =
    match Hashtbl.find_opt tbl loc with
    | Some s -> s := Intset.add iid !s
    | None -> Hashtbl.replace tbl loc (ref (Intset.singleton iid))
  in
  let record_access is_read loc =
    if is_mem_loc loc && !cur_iid >= 0 then begin
      let iid = !cur_iid in
      if in_slice iid then touch (if is_read then fp.fp_slice_reads else fp.fp_slice_writes) loc
      else if in_payload iid then
        touch_set (if is_read then fp.fp_payload_reads else fp.fp_payload_writes) loc iid
    end
  in
  let sink =
    {
      Events.on_exec = (fun i -> if !depth = 0 then cur_iid := i.Ir.iid);
      on_read = (fun loc _ -> record_access true loc);
      on_write = (fun loc _ -> record_access false loc);
      on_block =
        (fun ~fname:_ ~src ~dst -> if !depth = 0 then transitions := (src, dst) :: !transitions);
      on_call = (fun _ -> incr depth);
      on_return = (fun _ -> decr depth);
    }
  in
  let run () =
    (* the sink records a (-1, header) marker at the start of every
       per-iteration [exec_upto], which delimits the segments *)
    let snaps = ref [ iface_values frame sep ] in
    let rec go cur =
      match
        Eval.exec_upto ctx frame ~start:cur ~stop:(fun b -> b = header || not (in_loop b)) ~control:None
      with
      | Eval.Stopped_at b when b = header ->
          snaps := iface_values frame sep :: !snaps;
          go header
      | Eval.Stopped_at e -> e
      | Eval.Returned _ -> raise (Replay_mismatch "function returned from inside the loop")
    in
    let exit_block = go header in
    (exit_block, List.rev !snaps)
  in
  (* no other sink can be active here: DCA testing runs own its own
     evaluator contexts, never under the profiler *)
  Eval.set_sink ctx (Some sink);
  let result = Fun.protect ~finally:(fun () -> Eval.set_sink ctx None) (fun () -> run ()) in
  let exit_block, snaps = result in
  let exit_snap = iface_values frame sep in
  let digest = capture_digest fi loop ctx frame in
  let trans = Array.of_list (List.rev !transitions) in
  (* segments: ranges between (-1, header) markers *)
  let segments = ref [] and seg_start = ref None in
  Array.iteri
    (fun idx (src, _dst) ->
      if src = -1 then begin
        (match !seg_start with Some s -> segments := (s, idx) :: !segments | None -> ());
        seg_start := Some (idx + 1)
      end)
    trans;
  (match !seg_start with Some s -> segments := (s, Array.length trans) :: !segments | None -> ());
  let segments = List.rev !segments in
  (* a segment that enters the loop body (some transition to an in-loop
     block other than the header) is a real iteration; the final segment of
     a header-exiting loop transfers straight out and is excluded *)
  let seg_has_body (s, e) =
    let rec has k =
      k < e && ((let _, dst = trans.(k) in in_loop dst && dst <> header) || has (k + 1))
    in
    has s
  in
  let payload_idx =
    List.mapi (fun i seg -> (i, seg)) segments
    |> List.filter_map (fun (i, seg) -> if seg_has_body seg then Some i else None)
  in
  {
    g_transitions = trans;
    g_segments = segments;
    g_payload_segments = payload_idx;
    g_snaps = Array.of_list snaps;
    g_exit_snap = exit_snap;
    g_exit_block = exit_block;
    g_digest = digest;
    g_footprint = fp;
  }

(* Payload instructions whose memory effects interfere with the iterator:
   writers of locations the slice reads or writes, and readers of locations
   the slice writes. *)
let separability_violations g =
  let fp = g.g_footprint in
  let acc = ref Intset.empty in
  Hashtbl.iter
    (fun loc iids ->
      if Hashtbl.mem fp.fp_slice_reads loc || Hashtbl.mem fp.fp_slice_writes loc then
        acc := Intset.union !acc !iids)
    fp.fp_payload_writes;
  Hashtbl.iter
    (fun loc iids ->
      if Hashtbl.mem fp.fp_slice_writes loc then acc := Intset.union !acc !iids)
    fp.fp_payload_reads;
  !acc

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(* Advance [cursor] (an index ref into [trans] within [stop]) to the next
   entry whose source is [bid]; return its destination. *)
let consume_direction trans cursor stop bid =
  let rec scan k =
    if k >= stop then
      raise (Replay_mismatch (Printf.sprintf "no recorded direction for block %d" bid))
    else
      let src, dst = trans.(k) in
      if src = bid then begin
        cursor := k + 1;
        dst
      end
      else scan (k + 1)
  in
  scan !cursor

(* Re-execute the loop from the entry state under [sched]:
   iterator pass (slice only, recorded path), then payload pass (payload
   only, scheduled iteration order), then restore the iterator's exit
   values so live-outs reflect the completed traversal. *)
let replay ctx frame fi sep g sched =
  let loop = sep.sep_loop in
  let header = loop.Loops.l_header in
  let in_loop b = Intset.mem b loop.Loops.l_blocks in
  let trans = g.g_transitions in
  let n_trans = Array.length trans in
  (* --- iterator pass --- *)
  let cursor = ref 0 in
  let iter_control =
    {
      Eval.sc_filter = (fun i -> Intset.mem i.Ir.iid sep.sep_slice);
      sc_override = (fun bid -> Some (consume_direction trans cursor n_trans bid));
    }
  in
  (match
     Eval.exec_upto ctx frame ~start:header ~stop:(fun b -> not (in_loop b)) ~control:(Some iter_control)
   with
  | Eval.Stopped_at e when e = g.g_exit_block -> ()
  | Eval.Stopped_at e ->
      raise (Replay_mismatch (Printf.sprintf "iterator pass exited at %d, golden exited at %d" e g.g_exit_block))
  | Eval.Returned _ -> raise (Replay_mismatch "iterator pass returned"));
  (* save iterator exit values *)
  let slice_vars =
    Intset.fold
      (fun iid acc ->
        match Ir.def_of (Pdg.instr fi.Proginfo.fi_pdg iid).Ir.idesc with
        | Some v when not v.Ir.vglobal -> if List.exists (fun v' -> v'.Ir.vid = v.Ir.vid) acc then acc else v :: acc
        | _ -> acc)
      sep.sep_slice []
  in
  let slice_exit_values = List.map (fun v -> (v, frame.Eval.regs.(v.Ir.vslot))) slice_vars in
  (* --- payload pass --- *)
  let seg_array = Array.of_list g.g_segments in
  let payload_iters = Array.of_list g.g_payload_segments in
  let n = Array.length payload_iters in
  let perm = Schedule.apply sched n in
  let set_iface seg_idx =
    List.iteri
      (fun j iv ->
        let value =
          match iv.if_phase with
          | Pre -> g.g_snaps.(seg_idx).(j)
          | Post ->
              if seg_idx + 1 < Array.length g.g_snaps then g.g_snaps.(seg_idx + 1).(j)
              else g.g_exit_snap.(j)
        in
        frame.Eval.regs.(iv.if_var.Ir.vslot) <- value)
      sep.sep_interface
  in
  Array.iter
    (fun k ->
      let seg_idx = payload_iters.(k) in
      let seg_start, seg_stop = seg_array.(seg_idx) in
      set_iface seg_idx;
      let cursor = ref seg_start in
      let control =
        {
          Eval.sc_filter = (fun i -> Intset.mem i.Ir.iid sep.sep_payload);
          sc_override =
            (fun bid ->
              if Intset.mem bid sep.sep_slice_cbr_blocks then
                Some (consume_direction trans cursor seg_stop bid)
              else None);
        }
      in
      match
        Eval.exec_upto ctx frame ~start:header
          ~stop:(fun b -> b = header || not (in_loop b))
          ~control:(Some control)
      with
      | Eval.Stopped_at _ -> ()
      | Eval.Returned _ -> raise (Replay_mismatch "payload pass returned"))
    perm;
  (* restore iterator exit values clobbered by interface presets *)
  List.iter (fun (v, value) -> frame.Eval.regs.(v.Ir.vslot) <- value) slice_exit_values

(* Replay under [sched], then compare the state left behind against the
   golden digest in place (no second capture is materialized). *)
let replay_matches ~eps ctx frame fi sep g sched =
  replay ctx frame fi sep g sched;
  matches_digest ~eps g.g_digest fi sep.sep_loop ctx frame

(* ------------------------------------------------------------------ *)
(* Mode A: loop-local testing via interception                         *)
(* ------------------------------------------------------------------ *)

type tester_state = {
  mutable ts_sep : separation;
  mutable ts_tested : int;
  mutable ts_failure : verdict option;
  mutable ts_needs_escalation : Schedule.t list;
  mutable ts_promotions : int;
  mutable ts_skipped : int;
  mutable ts_goldens : int;  (** loop-local golden recordings *)
  mutable ts_replays : int;  (** counted replays, identity self-checks included *)
  mutable ts_replay_steps : int;  (** instructions those replays executed *)
  mutable ts_per_invocation : verdict list;  (** reversed *)
}

let run_loop_plain ctx frame loop =
  let in_loop b = Intset.mem b loop.Loops.l_blocks in
  match
    Eval.exec_upto ctx frame ~start:loop.Loops.l_header ~stop:(fun b -> not (in_loop b)) ~control:None
  with
  | Eval.Stopped_at e -> e
  | Eval.Returned _ ->
      (* candidates exclude in-loop returns, but stay safe *)
      raise (Replay_mismatch "loop returned during plain run")

let widen_or_fail fi state violations =
  let sep' = Iterator_rec.widen fi state.ts_sep ~promote:violations in
  if sep'.sep_mixed_cbr then Error "promotion produced mixed branch conditions"
  else if sep'.sep_ambiguous <> [] then Error "promotion produced an ambiguous interface"
  else if Iterator_rec.is_iterator_only sep' then Error "iterator absorbed the whole payload"
  else begin
    state.ts_sep <- sep';
    state.ts_promotions <- state.ts_promotions + 1;
    Ok ()
  end

(* Sift out the schedules whose replay is redundant, keeping one
   representative per distinct permutation.  At trip count n <= 1 every
   preset induces the identity permutation, and distinct presets can
   collide on small n (reverse = rotate-half at n = 2, seeded shuffles can
   agree).  Replaying the identity permutation re-runs the self-check that
   already passed, and replaying a duplicate permutation re-derives the
   identical digest from the identical entry state — so neither can change
   the decision.  Returns the representatives (in preset order, paired
   with their permutation) and the number of sifted-out schedules.
   The sifting itself lives in {!Schedule.sift} so the property tests
   (and the fuzzer) can exercise it directly. *)
let sift_schedules schedules n_iters = Schedule.sift schedules n_iters

(* One counted replay: run [sched] on [ctx]/[frame], classify the result,
   and measure the instructions it executed.  Both the sequential path
   (main context) and parallel workers (forked replicas) go through here,
   so the two paths meter identical work per schedule.  [Eval.Out_of_fuel]
   escapes — workers catch it, the main context lets it abort the
   analysis — and the trace span is closed on every exit path. *)
let replay_counted ~eps ctx frame fi sep g sched =
  let traced = Telemetry.tracing () in
  let name = if traced then "replay " ^ Schedule.to_string sched else "" in
  let s0 = Eval.steps ctx in
  let label = ref "out-of-fuel" in
  if traced then Telemetry.begin_span ~cat:"dynamic" name;
  Fun.protect
    ~finally:(fun () ->
      if traced then
        Telemetry.end_span
          ~args:[ ("outcome", !label); ("instructions", string_of_int (Eval.steps ctx - s0)) ]
          name)
    (fun () ->
      let d =
        match
          fault_hit ~ctx:(Schedule.to_string sched) fp_replay "commutativity.replay";
          replay_matches ~eps ctx frame fi sep g sched
        with
        | true ->
            label := "match";
            `Ok
        | false ->
            label := "digest-mismatch";
            `Escalate
        | exception Replay_mismatch _ ->
            (* control divergence prevents loop-local digesting;
               decide via whole-program verification *)
            label := "control-divergence";
            `Escalate
        | exception Eval.Trap msg ->
            label := "trap";
            `Trap msg
      in
      (d, Eval.steps ctx - s0))

(* Run the post-identity permutation schedules.  With a pool of width > 1
   every representative replays on a {!Eval.fork}ed replica of the entry
   state in parallel; the outcomes are then folded in schedule order,
   reproducing the sequential control flow exactly: escalation marks
   accumulate in schedule order and a trap verdict cuts off the marks of
   every later schedule, so [jobs = n] and [jobs = 1] reach bit-identical
   verdicts.  A skipped duplicate inherits its representative's loop-local
   decision (a whole-program verification applies the schedule at *every*
   invocation of the loop, where two presets equal at this trip count need
   not coincide), so escalation marks are rebuilt over the full preset
   list — verdicts are identical to replaying everything. *)
let run_schedules pool config fi state ctx frame g restore0 =
  let n_iters = List.length g.g_payload_segments in
  let identity = Array.init n_iters (fun i -> i) in
  let schedules, skipped = sift_schedules config.cc_schedules n_iters in
  state.ts_skipped <- state.ts_skipped + skipped;
  (* per-representative loop-local decision, in representative order *)
  let decide_sequential () =
    let rec run acc = function
      | [] -> List.rev acc
      | (sched, _) :: rest -> begin
          restore0 ();
          match replay_counted ~eps:config.cc_eps ctx frame fi state.ts_sep g sched with
          | ((`Trap _, _) as d) -> List.rev (d :: acc)
          | d -> run (d :: acc) rest
        end
    in
    run [] schedules
  in
  let decide_parallel p =
    restore0 ();
    let base_steps = Eval.steps ctx in
    (* every replica forks from the restored entry state; the parent only
       participates in the pool while the map is in flight, so the shared
       store is read-only for its duration *)
    let outcomes =
      Pool.map p
        (fun (sched, _) ->
          let ctx' = Eval.fork ctx in
          let frame' = Eval.copy_frame frame in
          (* the digest comparison runs in the worker, against the
             worker-local replica state; only the decision crosses back *)
          let r =
            match replay_counted ~eps:config.cc_eps ctx' frame' fi state.ts_sep g sched with
            | d -> `Done d
            | exception Eval.Out_of_fuel -> `Fuel
          in
          (* replica-side diagnostics: the fork's checkpoint traffic and
             the instructions it executed, speculative work included *)
          Store.flush_telemetry (Eval.store ctx');
          Telemetry.add d_instructions (Eval.steps ctx' - base_steps);
          r)
        schedules
    in
    (* fold speculative outcomes in schedule order: decisions after a trap
       are discarded, exactly as the sequential loop never reaches them *)
    let rec fold acc = function
      | [] -> List.rev acc
      | `Done ((`Trap _, _) as d) :: _ -> List.rev (d :: acc)
      | `Done d :: rest -> fold (d :: acc) rest
      | `Fuel :: _ -> raise Eval.Out_of_fuel
    in
    fold [] outcomes
  in
  let decisions =
    match pool with
    | Some p when Pool.jobs p > 1 && List.length schedules > 1 -> decide_parallel p
    | _ -> decide_sequential ()
  in
  (* meter only the consumed decisions, and only once the list completed
     normally: schedules past a trap are never counted (the sequential
     loop never ran them), and an [Out_of_fuel] abort leaves the totals
     untouched in both paths *)
  state.ts_replays <- state.ts_replays + List.length decisions;
  state.ts_replay_steps <-
    List.fold_left (fun acc (_, steps) -> acc + steps) state.ts_replay_steps decisions;
  (* rebuild escalation marks over the full preset list in preset order —
     the exact pushes the undeduplicated sequential loop performed: every
     schedule (representative or duplicate) whose permutation escalated is
     marked, and a trap cuts off the marks of every later preset *)
  let decision_of perm =
    let rec find kept decisions =
      match (kept, decisions) with
      | (_, p) :: _, (d, _) :: _ when p = perm -> Some d
      | _ :: kept', _ :: decisions' -> find kept' decisions'
      | _, _ -> None  (* representative unreached: a trap cut it off *)
    in
    find schedules decisions
  in
  let verdict = ref Commutative in
  (try
     List.iter
       (fun sched ->
         let perm = Schedule.apply sched n_iters in
         if perm <> identity then
           match decision_of perm with
           | Some `Ok -> ()
           | Some `Escalate -> state.ts_needs_escalation <- sched :: state.ts_needs_escalation
           | Some (`Trap msg) ->
               verdict :=
                 Non_commutative (Printf.sprintf "trap under %s: %s" (Schedule.to_string sched) msg);
               raise Exit
           | None -> raise Exit)
       config.cc_schedules
   with Exit -> ());
  !verdict

let test_invocation ?pool config fi state ctx frame =
  Telemetry.span ~cat:"dynamic" "invocation" @@ fun () ->
  let st = Eval.store ctx in
  let s0 = Store.snapshot st in
  let regs0 = Array.copy frame.Eval.regs in
  let restore0 () =
    Store.restore st s0;
    Array.blit regs0 0 frame.Eval.regs 0 (Array.length regs0)
  in
  let rec attempt rounds =
    restore0 ();
    state.ts_goldens <- state.ts_goldens + 1;
    match Telemetry.span ~cat:"dynamic" "golden" (fun () -> record_golden ctx frame fi state.ts_sep) with
    | exception Replay_mismatch msg -> Untestable msg
    | exception Eval.Trap msg -> Untestable ("trap during golden run: " ^ msg)
    | g -> begin
        let violations = separability_violations g in
        if not (Intset.is_empty violations) then begin
          if rounds > 0 then
            match widen_or_fail fi state violations with
            | Ok () -> attempt (rounds - 1)
            | Error msg -> Untestable msg
          else Untestable "memory separability violated"
        end
        else begin
          (* identity self-check — metered like any other replay; it runs
             on the main context in both the sequential and parallel paths *)
          restore0 ();
          let steps0 = Eval.steps ctx in
          let count () =
            state.ts_replays <- state.ts_replays + 1;
            state.ts_replay_steps <- state.ts_replay_steps + (Eval.steps ctx - steps0)
          in
          match
            Telemetry.span ~cat:"dynamic" "replay identity" (fun () ->
                replay_matches ~eps:config.cc_eps ctx frame fi state.ts_sep g Schedule.Identity)
          with
          | exception Replay_mismatch msg ->
              count ();
              Untestable ("identity replay: " ^ msg)
          | exception Eval.Trap msg ->
              count ();
              Untestable ("identity replay trap: " ^ msg)
          | false ->
              count ();
              Untestable "identity replay does not reproduce the golden state"
          | true ->
              count ();
              run_schedules pool config fi state ctx frame g restore0
        end
      end
  in
  Fun.protect
    ~finally:(fun () -> Store.release st s0)
    (fun () ->
      let verdict = attempt config.cc_promote_rounds in
      (* leave the program in its untested, original-order state *)
      restore0 ();
      verdict)

(* ------------------------------------------------------------------ *)
(* Mode B: whole-program verification                                  *)
(* ------------------------------------------------------------------ *)

(* Run the entire program with every invocation of the loop executed under
   [sched]; return its outputs. *)
let whole_program_run (info : Proginfo.t) spec fi sep sched =
  let prog = Proginfo.program info in
  let ctx = context_of_spec spec prog in
  let loop = sep.sep_loop in
  let handler ctx frame =
    let st = Eval.store ctx in
    let s0 = Store.snapshot st in
    let regs0 = Array.copy frame.Eval.regs in
    let restore0 () =
      Store.restore st s0;
      Array.blit regs0 0 frame.Eval.regs 0 (Array.length regs0)
    in
    Fun.protect
      ~finally:(fun () -> Store.release st s0)
      (fun () ->
        let g = record_golden ctx frame fi sep in
        if not (Intset.is_empty (separability_violations g)) then
          raise (Replay_mismatch "separability violated in whole-program run");
        restore0 ();
        replay ctx frame fi sep g sched;
        (* continue the program from the permuted state *)
        g.g_exit_block)
  in
  Eval.add_interceptor ctx ~fname:loop.Loops.l_func ~header:loop.Loops.l_header handler;
  Fun.protect
    ~finally:(fun () ->
      Store.flush_telemetry (Eval.store ctx);
      Telemetry.add d_instructions (Eval.steps ctx))
    (fun () ->
      Eval.run_main ctx;
      Eval.outputs ctx)

(* Whole-program verification is one plain golden run plus one permuted
   run per schedule — every run builds its own evaluator from scratch, so
   with a pool they all execute concurrently.  The merge walks schedules
   in their (deduplicated) order and applies the sequential decision rule,
   so the verdict is identical to the sequential short-circuiting loop —
   the parallel path merely runs schedules speculatively. *)
let escalate ?pool config info spec fi sep scheds =
  let scheds = Listx.dedup_keep_order ( = ) scheds in
  (* the golden reference runs exactly once per escalated loop, in both
     the sequential and the pool-mapped paths *)
  Telemetry.incr c_wp_golden_runs;
  let golden_run () =
    Telemetry.span ~cat:"dynamic" "wp-golden" (fun () ->
        let plain_ctx = context_of_spec spec (Proginfo.program info) in
        Fun.protect
          ~finally:(fun () ->
            Store.flush_telemetry (Eval.store plain_ctx);
            Telemetry.add d_instructions (Eval.steps plain_ctx))
          (fun () ->
            Eval.run_main plain_ctx;
            Eval.outputs plain_ctx))
  in
  let sched_run sched =
    let name = if Telemetry.tracing () then "wp-run " ^ Schedule.to_string sched else "" in
    Telemetry.span ~cat:"dynamic" name (fun () ->
        match whole_program_run info spec fi sep sched with
        | out -> `Out out
        | exception Replay_mismatch msg -> `Verdict (Untestable ("whole-program replay: " ^ msg))
        | exception Eval.Trap msg ->
            `Verdict
              (Non_commutative
                 (Printf.sprintf "whole-program trap under %s: %s" (Schedule.to_string sched) msg))
        | exception Eval.Out_of_fuel -> `Verdict (Untestable "whole-program replay ran out of fuel")
        | exception e -> `Raised (e, Printexc.get_raw_backtrace ()))
  in
  (* Decide in schedule order.  The (sched, result) pairs arrive as a
     sequence: lazy in the sequential path (so a decisive early schedule
     short-circuits the later runs, as always), precomputed in the parallel
     path (the runs were speculative, but the decision rule consumes them
     in the same order, so the verdict is the same). *)
  let merge golden_out pairs =
    let rec go pairs =
      match Seq.uncons pairs with
      | None -> Commutative
      | Some (pair, rest) -> (
          (* metered at consumption: the sequential path executed exactly
             the runs the merge consumes, so the total is jobs-invariant *)
          Telemetry.incr c_wp_schedule_runs;
          match pair with
          | _, `Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | _, `Verdict v -> v
          | sched, `Out out ->
              if Observable.outputs_equal ~eps:config.cc_eps golden_out out then go rest
              else
                Non_commutative
                  (Printf.sprintf "program output differs under %s" (Schedule.to_string sched)))
    in
    go pairs
  in
  match pool with
  | Some p when Pool.jobs p > 1 && scheds <> [] ->
      let results =
        Pool.map p
          (function
            | `Golden -> (
                match golden_run () with
                | out -> `Out out
                | exception e -> `Raised (e, Printexc.get_raw_backtrace ()))
            | `Sched sched -> sched_run sched)
          (`Golden :: List.map (fun s -> `Sched s) scheds)
      in
      let golden_out, sched_results =
        match results with
        (* the sequential path runs golden first: its failure wins *)
        | `Raised (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
        | `Out golden_out :: rest -> (golden_out, rest)
        | `Verdict _ :: _ | [] -> assert false
      in
      merge golden_out (List.to_seq (List.combine scheds sched_results))
  | _ ->
      let golden_out = golden_run () in
      merge golden_out (Seq.map (fun sched -> (sched, sched_run sched)) (List.to_seq scheds))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let test_loop ?pool config (info : Proginfo.t) spec fi sep =
  let loop = sep.sep_loop in
  let state =
    {
      ts_sep = sep;
      ts_tested = 0;
      ts_failure = None;
      ts_needs_escalation = [];
      ts_promotions = 0;
      ts_skipped = 0;
      ts_goldens = 0;
      ts_replays = 0;
      ts_replay_steps = 0;
      ts_per_invocation = [];
    }
  in
  let prog = Proginfo.program info in
  let ctx = context_of_spec spec prog in
  let handler ctx frame =
    if state.ts_failure <> None || state.ts_tested >= config.cc_max_invocations then
      run_loop_plain ctx frame loop
    else begin
      state.ts_tested <- state.ts_tested + 1;
      let pending_before = List.length state.ts_needs_escalation in
      let v = test_invocation ?pool config fi state ctx frame in
      let v_recorded =
        (* a strict digest mismatch defers to whole-program verification;
           surface that in the per-invocation trail *)
        if v = Commutative && List.length state.ts_needs_escalation > pending_before then
          Untestable "strict live-out digest differed; deferred to whole-program verification"
        else v
      in
      state.ts_per_invocation <- v_recorded :: state.ts_per_invocation;
      (match v with Commutative -> () | _ -> state.ts_failure <- Some v);
      run_loop_plain ctx frame loop
    end
  in
  Eval.add_interceptor ctx ~fname:loop.Loops.l_func ~header:loop.Loops.l_header handler;
  let base_verdict =
    match Eval.run_main ctx with
    | () -> begin
        match state.ts_failure with
        | Some v -> v
        | None -> if state.ts_tested = 0 then Untestable "loop not executed by the workload" else Commutative
      end
    | exception Eval.Trap msg -> Untestable ("program trapped: " ^ msg)
    | exception Eval.Out_of_fuel -> Untestable "program ran out of fuel"
  in
  let escalated = state.ts_needs_escalation <> [] in
  let verdict =
    match base_verdict with
    | Commutative when escalated ->
        if config.cc_escalate then escalate ?pool config info spec fi state.ts_sep state.ts_needs_escalation
        else Non_commutative "live-out digest differs (escalation disabled)"
    | v -> v
  in
  let outcome =
    {
      oc_verdict = verdict;
      oc_invocations = state.ts_tested;
      oc_escalated = escalated && config.cc_escalate;
      oc_promotions = state.ts_promotions;
      oc_skipped_schedules = state.ts_skipped;
      oc_golden_runs = state.ts_goldens;
      oc_replays = state.ts_replays;
      oc_replay_steps = state.ts_replay_steps;
      oc_separation = state.ts_sep;
      oc_per_invocation = List.rev state.ts_per_invocation;
    }
  in
  (* publish the work counters from the outcome record — the same totals
     the report derives, hence jobs-invariant by construction — and drain
     the main evaluator's diagnostics *)
  Telemetry.add c_invocations outcome.oc_invocations;
  Telemetry.add c_golden_runs outcome.oc_golden_runs;
  Telemetry.add c_replays outcome.oc_replays;
  Telemetry.add c_replay_steps outcome.oc_replay_steps;
  Telemetry.add c_skipped outcome.oc_skipped_schedules;
  Telemetry.add c_promotions outcome.oc_promotions;
  if outcome.oc_escalated then Telemetry.incr c_escalated;
  Store.flush_telemetry (Eval.store ctx);
  Telemetry.add d_instructions (Eval.steps ctx);
  outcome

(* Combined testing over several workloads (§V-D): every executed input
   must agree on commutativity. *)
let test_loop_inputs ?pool config info specs fi sep =
  match specs with
  | [] -> invalid_arg "Commutativity.test_loop_inputs: no run specs"
  | _ ->
      let outcomes = List.map (fun spec -> test_loop ?pool config info spec fi sep) specs in
      let executed =
        List.filter
          (fun oc ->
            match oc.oc_verdict with
            | Untestable "loop not executed by the workload" -> false
            | _ -> true)
          outcomes
      in
      let pool = if executed = [] then outcomes else executed in
      let pick pred = List.find_opt (fun oc -> pred oc.oc_verdict) pool in
      let combined =
        match pick (function Non_commutative _ -> true | _ -> false) with
        | Some oc -> oc
        | None -> (
            match pick (function Untestable _ -> true | _ -> false) with
            | Some oc -> oc
            | None -> List.hd pool)
      in
      {
        combined with
        oc_invocations = List.fold_left (fun acc oc -> acc + oc.oc_invocations) 0 outcomes;
        oc_escalated = List.exists (fun oc -> oc.oc_escalated) outcomes;
        oc_promotions = List.fold_left (fun acc oc -> max acc oc.oc_promotions) 0 outcomes;
        oc_skipped_schedules = List.fold_left (fun acc oc -> acc + oc.oc_skipped_schedules) 0 outcomes;
        oc_golden_runs = List.fold_left (fun acc oc -> acc + oc.oc_golden_runs) 0 outcomes;
        oc_replays = List.fold_left (fun acc oc -> acc + oc.oc_replays) 0 outcomes;
        oc_replay_steps = List.fold_left (fun acc oc -> acc + oc.oc_replay_steps) 0 outcomes;
        oc_per_invocation = List.concat_map (fun oc -> oc.oc_per_invocation) outcomes;
      }
