lib/analysis/pdg.ml: Array Cfg Dca_ir Dominance Hashtbl Ir List Printf Set
