lib/ir/cfg.mli: Format Ir
