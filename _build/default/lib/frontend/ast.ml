(** Abstract syntax of MiniC.

    MiniC is the C-like input language of the reproduction: integers, IEEE
    doubles, fixed-size (possibly multi-dimensional) arrays, structs,
    pointers with [new]-allocation, functions, [while]/[for]/[if] control
    flow, and [print] I/O.  It is rich enough to port both the NAS-style
    array kernels and the pointer-linked-data-structure (PLDS) programs the
    paper evaluates on. *)

type ty =
  | Tint
  | Tfloat
  | Tvoid
  | Tptr of ty
  | Tstruct of string
  | Tarray of ty * int list
      (** Element type (never itself an array) and the dimension list,
          outermost first.  Arrays appear only as declared variable types;
          expressions of array type decay to pointers on use. *)

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"
  | Tptr t -> ty_to_string t ^ "*"
  | Tstruct name -> "struct " ^ name
  | Tarray (elem, dims) ->
      ty_to_string elem ^ String.concat "" (List.map (fun d -> Printf.sprintf "[%d]" d) dims)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** short-circuit && *)
  | Or  (** short-circuit || *)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

type expr = { edesc : expr_desc; eloc : Loc.t }

and expr_desc =
  | Eint of int
  | Efloat of float
  | Enull
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eindex of expr * expr  (** [a\[i\]]; multi-dimensional indexing nests. *)
  | Efield of expr * string  (** [s.f] on a struct value (array-of-struct element). *)
  | Earrow of expr * string  (** [p->f] on a struct pointer. *)
  | Ecall of string * expr list
  | Enew_struct of string  (** [new struct S] *)
  | Enew_array of ty * expr  (** [new ty\[n\]]; element type is scalar/ptr/struct. *)

type stmt = { sdesc : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Sdecl of ty * string * expr option
  | Sassign of expr * expr  (** lvalue = rvalue *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
      (** [for (init; cond; step) body]; [init]/[step] are restricted by the
          parser to assignments or declarations. *)
  | Sreturn of expr option
  | Sexpr of expr  (** expression statement: a call evaluated for effect. *)
  | Sprints of string  (** [prints("...")] — string output (I/O). *)
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type struct_def = { str_name : string; str_fields : (ty * string) list; str_loc : Loc.t }
type global_def = { g_ty : ty; g_name : string; g_init : expr option; g_loc : Loc.t }

type func_def = {
  f_name : string;
  f_params : (ty * string) list;
  f_ret : ty;
  f_body : stmt list;
  f_loc : Loc.t;
}

type program = { structs : struct_def list; globals : global_def list; funcs : func_def list }

(** Builtin functions understood by the type checker, the purity analysis
    and the interpreter.  [hrand i] is a *pure* hash-based PRN in [0,1) —
    the stateless idiom NPB's EP kernel needs for a parallelizable random
    sweep — while [drand]/[dseed] thread a global generator state and hence
    carry a genuine loop dependence. *)
type builtin = {
  bi_name : string;
  bi_params : ty list;
  bi_ret : ty;
  bi_pure : bool;  (** no effect on any program-visible state *)
  bi_io : bool;  (** performs I/O (excludes enclosing loops from DCA) *)
}

let builtins =
  [
    { bi_name = "sqrt"; bi_params = [ Tfloat ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "fabs"; bi_params = [ Tfloat ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "sin"; bi_params = [ Tfloat ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "cos"; bi_params = [ Tfloat ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "exp"; bi_params = [ Tfloat ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "log"; bi_params = [ Tfloat ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "floor"; bi_params = [ Tfloat ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    {
      bi_name = "pow";
      bi_params = [ Tfloat; Tfloat ];
      bi_ret = Tfloat;
      bi_pure = true;
      bi_io = false;
    };
    {
      bi_name = "fmod";
      bi_params = [ Tfloat; Tfloat ];
      bi_ret = Tfloat;
      bi_pure = true;
      bi_io = false;
    };
    {
      bi_name = "fmin";
      bi_params = [ Tfloat; Tfloat ];
      bi_ret = Tfloat;
      bi_pure = true;
      bi_io = false;
    };
    {
      bi_name = "fmax";
      bi_params = [ Tfloat; Tfloat ];
      bi_ret = Tfloat;
      bi_pure = true;
      bi_io = false;
    };
    { bi_name = "imin"; bi_params = [ Tint; Tint ]; bi_ret = Tint; bi_pure = true; bi_io = false };
    { bi_name = "imax"; bi_params = [ Tint; Tint ]; bi_ret = Tint; bi_pure = true; bi_io = false };
    { bi_name = "iabs"; bi_params = [ Tint ]; bi_ret = Tint; bi_pure = true; bi_io = false };
    { bi_name = "itof"; bi_params = [ Tint ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "ftoi"; bi_params = [ Tfloat ]; bi_ret = Tint; bi_pure = true; bi_io = false };
    { bi_name = "hrand"; bi_params = [ Tint ]; bi_ret = Tfloat; bi_pure = true; bi_io = false };
    { bi_name = "dseed"; bi_params = [ Tint ]; bi_ret = Tvoid; bi_pure = false; bi_io = false };
    { bi_name = "drand"; bi_params = []; bi_ret = Tfloat; bi_pure = false; bi_io = false };
    { bi_name = "print"; bi_params = [ Tfloat ]; bi_ret = Tvoid; bi_pure = false; bi_io = true };
    { bi_name = "printi"; bi_params = [ Tint ]; bi_ret = Tvoid; bi_pure = false; bi_io = true };
    { bi_name = "reads"; bi_params = []; bi_ret = Tint; bi_pure = false; bi_io = true };
  ]

let find_builtin name = List.find_opt (fun b -> b.bi_name = name) builtins
