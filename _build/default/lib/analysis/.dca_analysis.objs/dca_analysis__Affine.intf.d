lib/analysis/affine.mli: Dca_frontend Dca_ir Format Loops
