lib/dca/driver.mli: Candidate Commutativity Dca_analysis
