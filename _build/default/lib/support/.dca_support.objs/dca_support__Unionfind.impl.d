lib/support/unionfind.ml: Array Hashtbl List
