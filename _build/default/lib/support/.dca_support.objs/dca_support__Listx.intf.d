lib/support/listx.mli:
