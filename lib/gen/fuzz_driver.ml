open Dca_support
open Dca_frontend
module Session = Dca_core.Session
module Driver = Dca_core.Driver
module Schedule = Dca_core.Schedule
module Loops = Dca_analysis.Loops

type violation_kind =
  | Roundtrip_drift
  | Generator_invalid
  | False_non_commutative
  | Bogus_witness of string
  | Dca_crash
  | Jobs_report_divergence
  | Checkpoint_report_divergence
  | Containment_breach
  | Static_divergence

let violation_kind_to_string = function
  | Roundtrip_drift -> "printer/parser round-trip drift"
  | Generator_invalid -> "generator produced an unusable program"
  | False_non_commutative -> "DCA reports non-commutative but every permutation agrees"
  | Bogus_witness s -> Printf.sprintf "DCA witness schedule %s does not reproduce a mismatch" s
  | Dca_crash -> "DCA pipeline raised an internal exception"
  | Jobs_report_divergence -> "report differs between jobs=1 and jobs=4"
  | Checkpoint_report_divergence -> "report differs between DCA_CHECKPOINT=journal and deep"
  | Containment_breach -> "an injected fault leaked outside its loop's containment boundary"
  | Static_divergence ->
      "static prover divergence: a statically proved verdict disagrees with the dynamic stage or \
       the oracle"

let kind_slug = function
  | Roundtrip_drift -> "roundtrip"
  | Generator_invalid -> "invalid"
  | False_non_commutative -> "false-noncomm"
  | Bogus_witness _ -> "bogus-witness"
  | Dca_crash -> "crash"
  | Jobs_report_divergence -> "jobs-divergence"
  | Checkpoint_report_divergence -> "checkpoint-divergence"
  | Containment_breach -> "containment-breach"
  | Static_divergence -> "static-divergence"

type violation = {
  vi_program : int;
  vi_kind : violation_kind;
  vi_detail : string;
  vi_source : string;
}

type config = {
  fz_seed : int;
  fz_count : int;
  fz_max_iters : int;
  fz_jobs : int;
  fz_metamorphic : bool;
  fz_fault_mode : bool;
  fz_static_xcheck : bool;
  fz_shrink : bool;
  fz_corpus : string option;
  fz_eps : float;
}

let default_config =
  {
    fz_seed = 42;
    fz_count = 100;
    fz_max_iters = 4;
    fz_jobs = 1;
    fz_metamorphic = true;
    fz_fault_mode = false;
    fz_static_xcheck = false;
    fz_shrink = true;
    fz_corpus = None;
    fz_eps = 1e-6;
  }

type result = { r_report : string; r_violations : violation list }

(* ------------------------------------------------------------------ *)
(* DCA under explicit jobs / checkpoint-mode settings                  *)
(* ------------------------------------------------------------------ *)

let with_checkpoint mode f =
  let prev = Sys.getenv_opt "DCA_CHECKPOINT" in
  Unix.putenv "DCA_CHECKPOINT" mode;
  Fun.protect ~finally:(fun () -> Unix.putenv "DCA_CHECKPOINT" (Option.value prev ~default:"")) f

(* One full DCA session over [source]; returns the report and the
   decision of the loop whose header sits on [line] of main. *)
let dca_run ?(static = true) ~jobs ~line source =
  Session.with_session
    ~options:Session.Options.(default |> with_jobs jobs |> with_static static)
    (Session.Source { file = "<fuzz>"; source; input = [] })
    (fun s ->
      let results = Session.dca_results s in
      let report = Session.report s in
      let dec =
        List.find_opt
          (fun (r : Driver.loop_result) ->
            r.Driver.lr_loop.Loops.l_func = "main" && r.Driver.lr_loop.Loops.l_loc.Loc.line = line)
          results
        |> Option.map (fun r -> r.Driver.lr_decision)
      in
      (report, dec))

(* Every loop of one full DCA session over [source], as
   (label, decision string, provenance) rows in report order. *)
let dca_run_all ?(static = true) ~jobs source =
  Session.with_session
    ~options:Session.Options.(default |> with_jobs jobs |> with_static static)
    (Session.Source { file = "<fuzz>"; source; input = [] })
    (fun s ->
      List.map
        (fun (r : Driver.loop_result) ->
          (r.Driver.lr_label, Driver.decision_to_string r.Driver.lr_decision, r.Driver.lr_provenance))
        (Session.dca_results s))

(* ------------------------------------------------------------------ *)
(* Witness-schedule recovery                                           *)
(* ------------------------------------------------------------------ *)

(* Non-commutative verdict messages name their schedule as
   "... under <sched>" or "... under <sched>: <trap detail>". *)
let witness_schedule why =
  let key = "under " in
  let klen = String.length key in
  let rec last_at i acc =
    if i + klen > String.length why then acc
    else last_at (i + 1) (if String.sub why i klen = key then Some (i + klen) else acc)
  in
  match last_at 0 None with
  | None -> None
  | Some start ->
      let stop = match String.index_from_opt why start ':' with Some j -> j | None -> String.length why in
      Schedule.of_string (String.trim (String.sub why start (stop - start)))

(* ------------------------------------------------------------------ *)
(* Fault-plan containment mode                                         *)
(* ------------------------------------------------------------------ *)

(* For every loop L of the program, arm a one-shot injected crash scoped
   to L's test and re-analyze: the session must complete, L must come
   back [Aborted], and no other loop's verdict may change — an injected
   fault must never leak across the containment boundary.  [arm] zeroes
   hit counters, and the plan is dropped before returning, so runs are
   independent. *)
let containment_violations ~jobs ~index source =
  let vio detail =
    { vi_program = index; vi_kind = Containment_breach; vi_detail = detail; vi_source = source }
  in
  match dca_run_all ~jobs source with
  | exception _ -> [] (* the primary run already reported this as Dca_crash *)
  | base ->
      let check_victim (victim, _, _) =
        Faultpoint.arm
          [
            {
              Faultpoint.sp_site = "driver.loop";
              sp_ctx = Some victim;
              sp_nth = 1;
              sp_repeat = false;
              sp_action = Faultpoint.Raise;
            };
          ];
        Fun.protect ~finally:Faultpoint.disarm (fun () ->
            match dca_run_all ~jobs source with
            | exception e ->
                [
                  vio
                    (Printf.sprintf "session died with %s under an injected fault at loop %s"
                       (Printexc.to_string e) victim);
                ]
            | faulted when List.length faulted <> List.length base ->
                [ vio (Printf.sprintf "loop set changed under an injected fault at %s" victim) ]
            | faulted ->
                List.concat
                  (List.map2
                     (fun (bl, bd, _) (fl, fd, _) ->
                       if fl <> bl then
                         [ vio (Printf.sprintf "loop order changed at %s (victim %s)" bl victim) ]
                       else if fl = victim then
                         if Faultpoint.is_injected_message fd then []
                         else
                           [
                             vio
                               (Printf.sprintf "victim %s reported %S, expected a contained abort"
                                  victim fd);
                           ]
                       else if fd <> bd then
                         [
                           vio
                             (Printf.sprintf "loop %s changed %S -> %S under a fault at %s" fl bd fd
                                victim);
                         ]
                       else [])
                     base faulted))
      in
      List.concat_map check_victim base

(* ------------------------------------------------------------------ *)
(* Static-prover differential mode                                     *)
(* ------------------------------------------------------------------ *)

(* Run the whole program with the static fast-path on and off and fail on
   any divergence a correct prover cannot produce:

   - a statically proved Commutative whose dynamic verdict (prover off)
     is non-commutative — the unsoundness the prover must never commit;
   - any verdict change at all on a loop the prover did *not* discharge
     (the prover is a pure pre-stage; enabling it must not perturb
     dynamic results);
   - a changed loop set, or a session death in either mode.

   A statically proved loop whose dynamic twin is [Untestable] (the loop
   was never executed by the workload) is *not* a divergence: the proof
   legitimately strengthens "could not test" into a verdict.  Finally,
   when the exhaustive oracle found a distinguishing permutation for the
   marked loop, a static proof of that loop is a divergence even if the
   sampled dynamic stage missed it too. *)
let static_xcheck_violations ~jobs ~index ~line ~oracle source =
  let vio detail =
    { vi_program = index; vi_kind = Static_divergence; vi_detail = detail; vi_source = source }
  in
  let is_noncomm d = String.length d >= 15 && String.sub d 0 15 = "non-commutative" in
  match (dca_run_all ~jobs source, dca_run_all ~static:false ~jobs source) with
  | exception e ->
      [ vio (Printf.sprintf "session raised during the on/off sweep: %s" (Printexc.to_string e)) ]
  | rows_on, rows_off ->
      if
        List.map (fun (l, _, _) -> l) rows_on <> List.map (fun (l, _, _) -> l) rows_off
      then [ vio "loop set differs between prover on and off" ]
      else
        List.concat
          (List.map2
             (fun (lab, d_on, prov) (_, d_off, _) ->
               match prov with
               | Driver.Static ->
                   if is_noncomm d_off then
                     [
                       vio
                         (Printf.sprintf "loop %s: statically proved commutative, dynamic says %S"
                            lab d_off);
                     ]
                   else []
               | Driver.Dynamic ->
                   if d_on <> d_off then
                     [
                       vio
                         (Printf.sprintf
                            "loop %s: dynamic verdict changed %S -> %S when the prover was \
                             disabled"
                            lab d_on d_off);
                     ]
                   else [])
             rows_on rows_off)
        @
        match oracle with
        | Oracle.Non_commutative _ ->
            let prefix = Printf.sprintf "main:%d(" line in
            let plen = String.length prefix in
            List.filter_map
              (fun (lab, d_on, prov) ->
                if
                  String.length lab >= plen
                  && String.sub lab 0 plen = prefix
                  && prov = Driver.Static && d_on = "commutative"
                then
                  Some
                    (vio
                       (Printf.sprintf
                          "loop %s: statically proved commutative, but the exhaustive oracle \
                           found a distinguishing permutation"
                          lab))
                else None)
              rows_on
        | _ -> []

(* ------------------------------------------------------------------ *)
(* Per-program cross-check                                             *)
(* ------------------------------------------------------------------ *)

type program_outcome = {
  po_oracle : Oracle.verdict;
  po_dca : Driver.decision option;
  po_violations : violation list;
}

(* Cross-check one source string.  All failure modes are turned into
   violations or counted outcomes; exceptions escape only for internal
   errors. *)
let check_source ?(eps = 1e-6) ?(jobs = 1) ?(metamorphic = true) ?(fault_mode = false)
    ?(static_xcheck = false) ~index source =
  let vio kind detail = { vi_program = index; vi_kind = kind; vi_detail = detail; vi_source = source } in
  match Parser.parse_program ~file:"<fuzz>" source with
  | exception Loc.Error (l, msg) ->
      {
        po_oracle = Oracle.Unsupported "parse error";
        po_dca = None;
        po_violations = [ vio Generator_invalid (Printf.sprintf "%s: %s" (Loc.to_string l) msg) ];
      }
  | ast -> (
      (* printer fixpoint: the printed form must re-parse, re-typecheck,
         and re-print to itself (hand-formatted corpus files may differ
         from the printed form; generated sources ARE the printed form) *)
      let reprint = Ast_printer.program_to_string ast in
      let roundtrip =
        match Parser.parse_program ~file:"<roundtrip>" reprint with
        | exception Loc.Error (_, msg) -> [ vio Roundtrip_drift ("re-parse failed: " ^ msg) ]
        | ast2 -> (
            if Ast_printer.program_to_string ast2 <> reprint then
              [ vio Roundtrip_drift "printer is not a fixpoint of parse-then-print" ]
            else
              match Typecheck.check_program ast2 with
              | _ -> []
              | exception Loc.Error (_, msg) ->
                  [ vio Roundtrip_drift ("re-typecheck failed: " ^ msg) ])
      in
      match Oracle.find_marked_loop ast with
      | Error msg ->
          {
            po_oracle = Oracle.Unsupported "no marked loop";
            po_dca = None;
            po_violations = roundtrip @ [ vio Generator_invalid msg ];
          }
      | Ok spec -> (
          let oracle = Oracle.decide ~eps ~input:[] ast spec in
          match dca_run ~jobs ~line:spec.Oracle.sp_line source with
          | exception Loc.Error (l, msg) ->
              {
                po_oracle = oracle;
                po_dca = None;
                po_violations =
                  roundtrip @ [ vio Generator_invalid (Printf.sprintf "%s: %s" (Loc.to_string l) msg) ];
              }
          | exception e ->
              (* an internal DCA failure is a finding, not a fuzzer abort *)
              {
                po_oracle = oracle;
                po_dca = None;
                po_violations = roundtrip @ [ vio Dca_crash (Printexc.to_string e) ];
              }
          | report1, dec ->
              let soundness =
                match dec with
                | None -> [ vio Generator_invalid "marked loop not found in DCA results" ]
                | Some (Driver.Non_commutative why) -> (
                    match oracle with
                    | Oracle.Commutative -> [ vio False_non_commutative why ]
                    | Oracle.Non_commutative _ | Oracle.Unsupported _ -> (
                        match witness_schedule why with
                        | None -> []
                        | Some sched -> (
                            let perm = Schedule.apply sched spec.Oracle.sp_trip in
                            match oracle with
                            | Oracle.Unsupported _ -> []
                            | _ -> (
                                match Oracle.check_witness ~eps ~input:[] ast spec perm with
                                | `Mismatch | `Error _ -> []
                                | `Match ->
                                    [ vio (Bogus_witness (Schedule.to_string sched)) why ]))))
                | Some (Driver.Aborted { ab_cause = Driver.Crash { exn; _ }; _ }) ->
                    (* with crash containment the pipeline no longer dies;
                       a contained analyzer crash is the same finding *)
                    [ vio Dca_crash ("contained: " ^ exn) ]
                | Some _ -> []
              in
              let metamorphic_v =
                if not metamorphic then []
                else begin
                  try
                  let rep_j1 =
                    if jobs = 1 then report1 else fst (dca_run ~jobs:1 ~line:spec.Oracle.sp_line source)
                  in
                  let rep_j4 =
                    if jobs = 4 then report1 else fst (dca_run ~jobs:4 ~line:spec.Oracle.sp_line source)
                  in
                  let rep_deep =
                    with_checkpoint "deep" (fun () ->
                        fst (dca_run ~jobs:1 ~line:spec.Oracle.sp_line source))
                  in
                  (if rep_j1 <> rep_j4 then [ vio Jobs_report_divergence "" ] else [])
                  @ (if rep_j1 <> rep_deep then [ vio Checkpoint_report_divergence "" ] else [])
                  with e -> [ vio Dca_crash (Printexc.to_string e) ]
                end
              in
              let containment_v =
                if not fault_mode then [] else containment_violations ~jobs ~index source
              in
              let static_v =
                if not static_xcheck then []
                else
                  static_xcheck_violations ~jobs ~index ~line:spec.Oracle.sp_line ~oracle source
              in
              {
                po_oracle = oracle;
                po_dca = dec;
                po_violations = roundtrip @ soundness @ metamorphic_v @ containment_v @ static_v;
              }))

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Predicate: does [kind] still reproduce on this candidate AST?  Any
   breakage (parse/type error, lost marker, trap in the golden run) makes
   the candidate uninteresting. *)
let still_fails ~eps ~kind (p : Ast.program) =
  match
    let src = Ast_printer.program_to_string p in
    match kind with
    | Roundtrip_drift -> Ast_printer.program_to_string (Parser.parse_program ~file:"<shrink>" src) <> src
    | Generator_invalid -> false
    | _ -> (
        let ast = Parser.parse_program ~file:"<shrink>" src in
        match Oracle.find_marked_loop ast with
        | Error _ -> false
        | Ok spec -> (
            match kind with
            | Dca_crash -> (
                match dca_run ~jobs:1 ~line:spec.Oracle.sp_line src with
                | _, Some (Driver.Aborted { ab_cause = Driver.Crash _; _ }) -> true
                | _ -> false
                | exception Loc.Error _ -> false
                | exception _ -> true)
            | Containment_breach -> containment_violations ~jobs:1 ~index:0 src <> []
            | Static_divergence ->
                static_xcheck_violations ~jobs:1 ~index:0 ~line:spec.Oracle.sp_line
                  ~oracle:(Oracle.decide ~eps ~input:[] ast spec)
                  src
                <> []
            | False_non_commutative -> (
                match dca_run ~jobs:1 ~line:spec.Oracle.sp_line src with
                | _, Some (Driver.Non_commutative _) ->
                    Oracle.decide ~eps ~input:[] ast spec = Oracle.Commutative
                | _ -> false)
            | Bogus_witness _ -> (
                match dca_run ~jobs:1 ~line:spec.Oracle.sp_line src with
                | _, Some (Driver.Non_commutative why) -> (
                    match witness_schedule why with
                    | None -> false
                    | Some sched -> (
                        match Oracle.decide ~eps ~input:[] ast spec with
                        | Oracle.Unsupported _ -> false
                        | _ ->
                            Oracle.check_witness ~eps ~input:[] ast spec
                              (Schedule.apply sched spec.Oracle.sp_trip)
                            = `Match))
                | _ -> false)
            | Jobs_report_divergence ->
                fst (dca_run ~jobs:1 ~line:spec.Oracle.sp_line src)
                <> fst (dca_run ~jobs:4 ~line:spec.Oracle.sp_line src)
            | Checkpoint_report_divergence ->
                fst (dca_run ~jobs:1 ~line:spec.Oracle.sp_line src)
                <> with_checkpoint "deep" (fun () ->
                       fst (dca_run ~jobs:1 ~line:spec.Oracle.sp_line src))
            | Roundtrip_drift | Generator_invalid -> false))
  with
  | r -> r
  | exception _ -> false

let shrink_violation ~eps v =
  match v.vi_kind with
  | Generator_invalid -> v
  | kind -> (
      match Parser.parse_program ~file:"<shrink>" v.vi_source with
      | exception _ -> v
      | ast ->
          if not (still_fails ~eps ~kind ast) then v
          else
            let minimal = Shrink.program ~keep:(still_fails ~eps ~kind) ~max_evals:300 ast in
            { v with vi_source = Ast_printer.program_to_string minimal })

(* ------------------------------------------------------------------ *)
(* Corpus output                                                       *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_repro cfg v =
  match cfg.fz_corpus with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let file =
        Filename.concat dir
          (Printf.sprintf "repro-seed%d-p%03d-%s.mc" cfg.fz_seed v.vi_program (kind_slug v.vi_kind))
      in
      let oc = open_out file in
      Printf.fprintf oc "// dca fuzz counterexample: %s\n" (violation_kind_to_string v.vi_kind);
      if v.vi_detail <> "" then Printf.fprintf oc "// detail: %s\n" v.vi_detail;
      Printf.fprintf oc "// reproduce: dca fuzz --seed %d --count %d --max-iters %d\n\n" cfg.fz_seed
        cfg.fz_count cfg.fz_max_iters;
      output_string oc v.vi_source;
      close_out oc

(* ------------------------------------------------------------------ *)
(* The run loop and its deterministic report                           *)
(* ------------------------------------------------------------------ *)

let run cfg =
  let max_iters = max 2 (min Oracle.max_trip cfg.fz_max_iters) in
  let root = Prng.create cfg.fz_seed in
  let recipe_counts = Hashtbl.create 16 and trip_counts = Hashtbl.create 8 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0) in
  let ct tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
  let oracle_comm = ref 0 and oracle_noncomm = ref 0 and oracle_unsup = ref 0 in
  let dca_comm = ref 0 and dca_noncomm = ref 0 and dca_untestable = ref 0 in
  let dca_rejected = ref 0 and dca_aborted = ref 0 and dca_missing = ref 0 in
  let agree_comm = ref 0 and confirmed_noncomm = ref 0 and missed = ref 0 and no_claim = ref 0 in
  let violations = ref [] in
  for index = 0 to cfg.fz_count - 1 do
    let rng = Prng.split root in
    let g = Gen_program.generate ~max_iters rng in
    List.iter (fun r -> bump recipe_counts (Gen_program.recipe_to_string r)) g.Gen_program.g_recipes;
    bump trip_counts g.Gen_program.g_trip;
    let out =
      check_source ~eps:cfg.fz_eps ~jobs:cfg.fz_jobs ~metamorphic:cfg.fz_metamorphic
        ~fault_mode:cfg.fz_fault_mode ~static_xcheck:cfg.fz_static_xcheck ~index
        g.Gen_program.g_source
    in
    (match out.po_oracle with
    | Oracle.Commutative -> incr oracle_comm
    | Oracle.Non_commutative _ -> incr oracle_noncomm
    | Oracle.Unsupported _ -> incr oracle_unsup);
    (match out.po_dca with
    | Some Driver.Commutative -> incr dca_comm
    | Some (Driver.Non_commutative _) -> incr dca_noncomm
    | Some (Driver.Untestable _) -> incr dca_untestable
    | Some (Driver.Rejected _) -> incr dca_rejected
    | Some (Driver.Aborted _) -> incr dca_aborted
    | Some (Driver.Subsumed _) | None -> incr dca_missing);
    (match (out.po_oracle, out.po_dca) with
    | Oracle.Commutative, Some Driver.Commutative -> incr agree_comm
    | Oracle.Non_commutative _, Some (Driver.Non_commutative _) -> incr confirmed_noncomm
    | Oracle.Non_commutative _, Some Driver.Commutative -> incr missed
    | _, Some (Driver.Untestable _ | Driver.Rejected _ | Driver.Aborted _) -> incr no_claim
    | _ -> ());
    let shrunk =
      if cfg.fz_shrink then List.map (shrink_violation ~eps:cfg.fz_eps) out.po_violations
      else out.po_violations
    in
    List.iter (write_repro cfg) shrunk;
    violations := List.rev_append shrunk !violations
  done;
  let violations = List.rev !violations in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line
    "dca fuzz: seed=%d count=%d max-iters=%d metamorphic=%s fault-mode=%s static-xcheck=%s \
     shrink=%s"
    cfg.fz_seed cfg.fz_count max_iters
    (if cfg.fz_metamorphic then "on" else "off")
    (if cfg.fz_fault_mode then "on" else "off")
    (if cfg.fz_static_xcheck then "on" else "off")
    (if cfg.fz_shrink then "on" else "off");
  line "recipes: %s"
    (String.concat " "
       (List.map
          (fun r -> Printf.sprintf "%s=%d" r (ct recipe_counts r))
          [ "affine"; "indirect"; "same-cell"; "reduction"; "carried"; "cond"; "chase"; "nest"; "io" ]));
  line "trips: %s"
    (String.concat " "
       (List.filter_map
          (fun t -> if ct trip_counts t > 0 then Some (Printf.sprintf "%d=%d" t (ct trip_counts t)) else None)
          [ 2; 3; 4; 5; 6; 7 ]));
  line "oracle: commutative=%d non-commutative=%d unsupported=%d" !oracle_comm !oracle_noncomm
    !oracle_unsup;
  line "dca: commutative=%d non-commutative=%d untestable=%d rejected=%d aborted=%d missing=%d"
    !dca_comm !dca_noncomm !dca_untestable !dca_rejected !dca_aborted !dca_missing;
  line "cross-check: agree-commutative=%d confirmed-non-commutative=%d missed-by-sampling=%d no-claim=%d"
    !agree_comm !confirmed_noncomm !missed !no_claim;
  line "violations: %d" (List.length violations);
  List.iteri
    (fun i v ->
      line "";
      line "VIOLATION %d: program #%d: %s%s" (i + 1) v.vi_program
        (violation_kind_to_string v.vi_kind)
        (if v.vi_detail <> "" then ": " ^ v.vi_detail else "");
      line "--- shrunk reproducer ---";
      Buffer.add_string buf v.vi_source;
      line "--- end reproducer ---")
    violations;
  { r_report = Buffer.contents buf; r_violations = violations }
