lib/dca/commutativity.ml: Array Dca_analysis Dca_interp Dca_ir Dca_support Eval Events Fun Hashtbl Intset Ir Iterator_rec List Listx Liveness Loops Observable Pdg Printf Proginfo Schedule Store Value
