open Dca_support
open Dca_analysis
module Eval = Dca_interp.Eval

type abort_cause =
  | Trap of string
  | Fuel
  | Deadline
  | Heap
  | Crash of { exn : string; backtrace : string }

type decision =
  | Commutative
  | Non_commutative of string
  | Untestable of string
  | Rejected of Candidate.rejection
  | Subsumed of string
  | Aborted of { ab_cause : abort_cause; ab_retries : int }

(* How a verdict was reached: [Static] marks a loop discharged by the
   affine prover without any golden run or replay; everything else —
   including rejections, subsumptions and aborts — is [Dynamic]. *)
type provenance = Dynamic | Static

type loop_result = {
  lr_loop : Loops.loop;
  lr_label : string;
  lr_decision : decision;
  lr_outcome : Commutativity.outcome option;
  lr_provenance : provenance;
}

(* Work counters: one tick per loop outcome, always at the point where
   the result record is built — reached exactly once per loop in both the
   sequential and the pool-mapped paths, so totals are jobs-invariant. *)
let c_examined = Telemetry.counter "dca.loops_examined"
let c_rejected = Telemetry.counter "dca.loops_rejected"
let c_subsumed = Telemetry.counter "dca.loops_subsumed"
let c_aborted = Telemetry.counter "dca.aborted"
let c_retries = Telemetry.counter "dca.retries"
let c_deadline_hits = Telemetry.counter "dca.deadline-hits"
let c_faults_injected = Telemetry.counter "dca.faults-injected"
let c_static_proved = Telemetry.counter "dca.static-proved"
let c_static_fission = Telemetry.counter "dca.static-fission"
let c_static_bailouts = Telemetry.counter "dca.static-bailouts"

let fp_loop = Faultpoint.site "driver.loop"

let abort_cause_to_string = function
  | Trap m -> "trap escaped the loop harness: " ^ m
  | Fuel -> "instruction fuel exhausted"
  | Deadline -> "wall-clock deadline exceeded"
  | Heap -> "heap budget exhausted"
  | Crash { exn; _ } -> "crash: " ^ exn

let decision_to_string = function
  | Commutative -> "commutative"
  | Non_commutative why -> Printf.sprintf "non-commutative: %s" why
  | Untestable why -> Printf.sprintf "untestable: %s" why
  | Rejected r -> Printf.sprintf "rejected: %s" (Candidate.rejection_to_string r)
  | Subsumed parent -> Printf.sprintf "subsumed by commutative ancestor %s" parent
  | Aborted { ab_cause; ab_retries } ->
      (* the backtrace is deliberately excluded: report lines must be
         deterministic (and byte-identical across job counts) *)
      Printf.sprintf "aborted: %s%s"
        (abort_cause_to_string ab_cause)
        (if ab_retries > 0 then Printf.sprintf " (%d escalated retry exhausted)" ab_retries else "")

(* Classification of an exception that escaped one loop's test.  The
   whole taxonomy is caught at the loop boundary: nothing a loop's test
   raises may poison the verdicts of its siblings. *)
let classify_abort e bt =
  match e with
  | Eval.Trap m -> Trap m
  | Eval.Out_of_fuel -> Fuel
  | Eval.Deadline_exceeded -> Deadline
  | Eval.Heap_exhausted -> Heap
  | Faultpoint.Injected m -> Crash { exn = m; backtrace = bt }
  | e -> Crash { exn = Printexc.to_string e; backtrace = bt }

let retry_limit = 1
let escalation_factor = 4

let escalate_spec (spec : Commutativity.run_spec) =
  {
    spec with
    Commutativity.rs_fuel = spec.Commutativity.rs_fuel * escalation_factor;
    rs_deadline_ns = Option.map (fun d -> d * escalation_factor) spec.Commutativity.rs_deadline_ns;
  }

let analyze_program ?(config = Commutativity.default_config)
    ?(spec = Commutativity.default_run_spec) ?(hierarchical = false) ?(static = true) ?pool
    ?lookup info =
  (* loops arrive outermost-first within each function, so a commutative
     ancestor is always decided before its descendants *)
  let commutative_ancestors : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let subsuming_ancestor (fi : Proginfo.func_info) (loop : Loops.loop) =
    if not hierarchical then None
    else
      Loops.nesting_path fi.Proginfo.fi_forest loop
      |> List.find_opt (fun anc ->
             anc.Loops.l_id <> loop.Loops.l_id && Hashtbl.mem commutative_ancestors anc.Loops.l_id)
  in
  (* [examine_and_test] is free of shared mutable state, so calls for
     distinct loops can run on distinct domains: each dynamic test builds
     its own evaluator over the (read-only) program info.

     It is also the containment boundary: any exception escaping one
     loop's examine or test — guest traps that slipped past the harness,
     resource-guard raises, injected faults, genuine analyzer bugs — is
     classified into [abort_cause] and recorded as an [Aborted] verdict,
     so every other loop still runs and the merge stays deterministic.
     [Fuel]/[Deadline] escapes get one bounded retry with escalated
     budgets before giving up. *)
  let examine_and_test (fi, loop) =
    let label = Proginfo.loop_label info loop in
    Telemetry.incr c_examined;
    Telemetry.span ~cat:"dynamic" ("loop " ^ label) (fun () ->
        let decision, outcome, provenance =
          match
            (match Faultpoint.hit ~ctx:label fp_loop with
            | Faultpoint.Pass -> ()
            | Faultpoint.Fire_trap ->
                raise (Eval.Trap (Faultpoint.injected_msg ~ctx:label "driver.loop"))
            | Faultpoint.Fire_fuel -> raise Eval.Out_of_fuel);
            Telemetry.span ~cat:"static" "examine" (fun () -> Candidate.examine info fi loop)
          with
          | Candidate.Rejected r ->
              Telemetry.incr c_rejected;
              (Rejected r, None, Dynamic)
          | Candidate.Accepted sep -> (
              (* The static fast-path runs only on loops the dynamic stage
                 would otherwise test, so a statically-provable but
                 dynamically-rejected loop keeps its rejection, and the
                 examined/rejected counters are invariant under
                 [--no-static].  A prover crash degrades to a bailout:
                 the dynamic stage still produces the verdict. *)
              let static_proof =
                if not static then None
                else
                  Some
                    (Telemetry.span ~cat:"static" "staticproof" (fun () ->
                         try Staticproof.prove info fi loop
                         with e -> Staticproof.Bail ("prover crash: " ^ Printexc.to_string e)))
              in
              match static_proof with
              | Some (Staticproof.Proved _) ->
                  Telemetry.incr c_static_proved;
                  (Commutative, None, Static)
              | _ -> (
              (match static_proof with
              | Some (Staticproof.Fission _) -> Telemetry.incr c_static_fission
              | Some (Staticproof.Bail _) -> Telemetry.incr c_static_bailouts
              | _ -> ());
              let rec run spec retries =
                match Commutativity.test_loop ?pool config info spec fi sep with
                | outcome -> Ok outcome
                | exception e -> (
                    let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
                    let cause = classify_abort e bt in
                    (match cause with Deadline -> Telemetry.incr c_deadline_hits | _ -> ());
                    match cause with
                    | (Fuel | Deadline) when retries < retry_limit ->
                        Telemetry.incr c_retries;
                        run (escalate_spec spec) (retries + 1)
                    | cause -> Error (cause, retries))
              in
              match run spec 0 with
              | Ok outcome ->
                  let decision =
                    match outcome.Commutativity.oc_verdict with
                    | Commutativity.Commutative -> Commutative
                    | Commutativity.Non_commutative why -> Non_commutative why
                    | Commutativity.Untestable why -> Untestable why
                  in
                  (decision, Some outcome, Dynamic)
              | Error (cause, retries) ->
                  (Aborted { ab_cause = cause; ab_retries = retries }, None, Dynamic)))
          | exception e ->
              (* examine-stage crash, or the loop-boundary fault point:
                 classified like a test-stage escape but never retried
                 (the static stage has no resource budget to escalate) *)
              let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
              (Aborted { ab_cause = classify_abort e bt; ab_retries = 0 }, None, Dynamic)
        in
        (match decision with
        | Aborted { ab_cause; _ } ->
            Telemetry.incr c_aborted;
            (match ab_cause with
            | Crash { exn; _ } when Faultpoint.is_injected_message exn ->
                Telemetry.incr c_faults_injected
            | Trap m when Faultpoint.is_injected_message m -> Telemetry.incr c_faults_injected
            | _ -> ())
        | Non_commutative why | Untestable why ->
            if Faultpoint.is_injected_message why then Telemetry.incr c_faults_injected
        | _ -> ());
        {
          lr_loop = loop;
          lr_label = label;
          lr_decision = decision;
          lr_outcome = outcome;
          lr_provenance = provenance;
        })
  in
  (* A cache front end resolves a loop before any work is queued for it.
     The lookup must be pure and domain-safe (it runs inside pool tasks);
     the serve engine passes a closed-over, read-only table.  A resolved
     result short-circuits [examine_and_test] entirely, so none of the
     per-loop work counters tick for it — cache hits are visible as
     missing [dca.*] work, which the invalidation tests rely on. *)
  let resolve ((fi, loop) as fl) =
    match lookup with
    | None -> examine_and_test fl
    | Some find -> ( match find fi loop with Some r -> r | None -> examine_and_test fl)
  in
  let note_commutative r =
    match r.lr_decision with
    | Commutative -> Hashtbl.replace commutative_ancestors r.lr_loop.Loops.l_id ()
    | _ -> ()
  in
  let loops = Proginfo.all_loops info in
  match pool with
  | Some p when Pool.jobs p > 1 ->
      if not hierarchical then
        (* every loop's test is independent: one pool task per loop,
           results collected in program order *)
        Pool.map p resolve loops
      else begin
        (* Hierarchical mode tests in waves of equal nesting depth.  A
           loop's only inter-loop dependence is on its ancestors (all of
           strictly smaller depth), so when a wave starts, every ancestor
           verdict is final — the wave can check subsumption up front,
           skip the subsumed loops entirely (the sequential cancellation
           semantics), and fan the surviving tests out in parallel. *)
        let indexed = List.mapi (fun i fl -> (i, fl)) loops in
        let waves =
          Listx.group_by (fun (_, (_, loop)) -> loop.Loops.l_depth) indexed
          |> List.sort (fun (d1, _) (d2, _) -> compare d1 d2)
          |> List.map snd
        in
        let results : (int, loop_result) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun wave ->
            let to_test =
              List.filter
                (fun (i, (fi, loop)) ->
                  match subsuming_ancestor fi loop with
                  | Some anc ->
                      Telemetry.incr c_subsumed;
                      Hashtbl.replace results i
                        {
                          lr_loop = loop;
                          lr_label = Proginfo.loop_label info loop;
                          lr_decision = Subsumed anc.Loops.l_id;
                          lr_outcome = None;
                          lr_provenance = Dynamic;
                        };
                      false
                  | None -> true)
                wave
            in
            let tested = Pool.map p (fun (_, fl) -> resolve fl) to_test in
            List.iter2
              (fun (i, _) r ->
                note_commutative r;
                Hashtbl.replace results i r)
              to_test tested)
          waves;
        List.mapi (fun i _ -> Hashtbl.find results i) loops
      end
  | _ ->
      List.map
        (fun (fi, loop) ->
          match subsuming_ancestor fi loop with
          | Some anc ->
              Telemetry.incr c_subsumed;
              {
                lr_loop = loop;
                lr_label = Proginfo.loop_label info loop;
                lr_decision = Subsumed anc.Loops.l_id;
                lr_outcome = None;
                lr_provenance = Dynamic;
              }
          | None ->
              let r = resolve (fi, loop) in
              note_commutative r;
              r)
        loops

let analyze_source ?config ?spec ?hierarchical ?static ?pool ~file src =
  let prog = Dca_ir.Lower.compile ~file src in
  let info = Proginfo.analyze prog in
  (info, analyze_program ?config ?spec ?hierarchical ?static ?pool info)

let is_commutative r = match r.lr_decision with Commutative -> true | _ -> false

let commutative_ids results =
  List.filter_map (fun r -> if is_commutative r then Some r.lr_loop.Loops.l_id else None) results
