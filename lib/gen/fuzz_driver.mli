(** Differential fuzzing driver: generator × oracle × DCA cross-check.

    For every generated program the driver

    + re-parses the printed source and checks the printer/parser round
      trip (drift is reported as a violation — the property tests get the
      same check over the qcheck seeds);
    + decides ground truth with the exhaustive {!Oracle};
    + runs the full DCA pipeline through {!Dca_core.Session} and reads
      the verdict of the marked loop;
    + cross-checks both soundness directions:
      {ul
       {- oracle-all-equal ⇒ DCA must not report non-commutative
          (a [Rejected]/[Untestable] verdict is incompleteness, not
          unsoundness, and is only counted);}
       {- a DCA non-commutative verdict must name a witness schedule whose
          permutation reproduces a live-out mismatch (or trap) in the
          oracle's unrolled re-execution.}}
    + checks the metamorphic invariants: the session report must be
      byte-identical across [jobs 1]/[jobs 4] and across
      [DCA_CHECKPOINT=journal]/[deep].

    Any violation is minimized with {!Shrink} under a predicate that
    reproduces that specific violation, then recorded (and optionally
    written to a corpus directory).  The run and its report are fully
    deterministic functions of (seed, count, max-iters): no wall-clock,
    no global randomness, and the per-program DCA results are themselves
    jobs-invariant. *)

type violation_kind =
  | Roundtrip_drift
  | Generator_invalid
  | False_non_commutative
  | Bogus_witness of string  (** the witness schedule name *)
  | Dca_crash
      (** the DCA pipeline raised an internal exception — or, with crash
          containment, a loop came back [Aborted] with a [Crash] cause *)
  | Jobs_report_divergence
  | Checkpoint_report_divergence
  | Containment_breach
      (** fault-plan mode only: an injected one-loop fault changed
          another loop's verdict, reordered the report, or killed the
          session *)
  | Static_divergence
      (** static-xcheck mode only: a statically proved Commutative whose
          dynamic (prover-off) verdict is non-commutative, any verdict
          perturbed by merely enabling the prover, or a static proof of
          a loop the exhaustive oracle found non-commutative.  A
          [Static] verdict whose dynamic twin is [Untestable] (loop not
          executed) is not a divergence. *)

val violation_kind_to_string : violation_kind -> string

type violation = {
  vi_program : int;  (** index in the generated stream *)
  vi_kind : violation_kind;
  vi_detail : string;
  vi_source : string;  (** shrunk reproducer (original source if shrinking is off) *)
}

type config = {
  fz_seed : int;
  fz_count : int;
  fz_max_iters : int;  (** trip-count bound, clamped to [2 .. Oracle.max_trip] *)
  fz_jobs : int;  (** session jobs of the primary DCA run *)
  fz_metamorphic : bool;
  fz_fault_mode : bool;
      (** for each loop of each program, re-run the session with an
          injected one-shot crash scoped to that loop's test and assert
          containment (victim aborted, siblings byte-identical) *)
  fz_static_xcheck : bool;
      (** run every program with the static fast-path on and off and
          fail on any {!Static_divergence} — the differential harness
          that keeps the prover honest *)
  fz_shrink : bool;
  fz_corpus : string option;  (** write shrunk reproducers here *)
  fz_eps : float;
}

val default_config : config
(** seed 42, count 100, max-iters 4, jobs 1, metamorphic and shrinking
    on, fault mode and static-xcheck off, no corpus directory, eps 1e-6. *)

type result = { r_report : string; r_violations : violation list }

val run : config -> result
(** The [r_report] string is deterministic for fixed
    (seed, count, max-iters): identical across [fz_jobs] settings and
    checkpoint modes. *)

type program_outcome = {
  po_oracle : Oracle.verdict;
  po_dca : Dca_core.Driver.decision option;  (** [None]: marked loop not found *)
  po_violations : violation list;  (** unshrunk *)
}

val check_source :
  ?eps:float ->
  ?jobs:int ->
  ?metamorphic:bool ->
  ?fault_mode:bool ->
  ?static_xcheck:bool ->
  index:int ->
  string ->
  program_outcome
(** Cross-check a single MiniC source containing a marked loop — the
    corpus-replay entry point used by the test suite. *)
