(** PLDS ports, part 2: Olden-style tree and graph programs (recursion
    rewritten in imperative worklist form, as the paper does for Olden,
    §V-A "rewritten in imperative form").

    - [em3d]: bipartite E/H node updates through per-node dependency
      lists;
    - [mst]: BlueRule-style minimum-edge selection over adjacency lists;
    - [bh]: Barnes–Hut [walksub]-style force walk (read-only tree, per-body
      accumulation);
    - [perimeter]: quadtree perimeter accumulation over an explicit
      worklist;
    - [treeadd]: worklist tree sum (the classic payload-push /
      iterator-pop idiom that needs DCA's slice promotion);
    - [hash]: Shootout-style hash-table batch lookups over bucket
      chains. *)

let em3d =
  Benchmark.default ~name:"em3d" ~suite:Benchmark.Plds
    ~description:"compute_nodes-style bipartite field update via dependency lists"
    ~source:
      {|
struct dep {
  struct enode *from;
  float coeff;
  struct dep *next;
}
struct enode {
  float value;
  struct dep *deps;
  struct enode *next;
}

struct enode *e_nodes;
struct enode *h_nodes;
float checksum;

struct enode *build_layer(int n, int salt) {
  struct enode *head = null;
  int i;
  for (i = 0; i < n; i = i + 1) {
    struct enode *nd = new struct enode;
    nd->value = hrand(salt * 3571 + i);
    nd->deps = null;
    nd->next = head;
    head = nd;
  }
  return head;
}

// wire each node of [layer] to [ndeps] nodes of [other]
void wire(struct enode *layer, struct enode *other, int ndeps, int salt) {
  struct enode *n = layer;
  int k = 0;
  while (n) {
    int d;
    for (d = 0; d < ndeps; d = d + 1) {
      // walk a pseudo-random distance into the other layer
      int hops = ftoi(hrand(salt + k * 31 + d) * 20.0);
      struct enode *target = other;
      int h;
      for (h = 0; h < hops; h = h + 1) {
        if (target->next) { target = target->next; }
      }
      struct dep *dp = new struct dep;
      dp->from = target;
      dp->coeff = hrand(salt * 17 + k * 5 + d) * 0.3;
      dp->next = n->deps;
      n->deps = dp;
    }
    n = n->next;
    k = k + 1;
  }
}

// the hot compute_nodes loop: update a layer from the other layer only
void compute_nodes(struct enode *layer) {
  struct enode *n = layer;
  while (n) {
    float acc = n->value;
    struct dep *dp = n->deps;
    while (dp) {
      acc = acc - dp->coeff * dp->from->value;
      dp = dp->next;
    }
    n->value = acc;
    n = n->next;
  }
}

void main() {
  e_nodes = build_layer(64, 1);
  h_nodes = build_layer(64, 2);
  wire(e_nodes, h_nodes, 4, 100);
  wire(h_nodes, e_nodes, 4, 200);
  int t;
  for (t = 0; t < 10; t = t + 1) {
    compute_nodes(e_nodes);
    compute_nodes(h_nodes);
  }
  checksum = 0.0;
  struct enode *n = e_nodes;
  while (n) {
    checksum = checksum + n->value;
    n = n->next;
  }
  print(checksum);
  printi(1);
}
|}

let mst =
  Benchmark.default ~name:"mst" ~suite:Benchmark.Plds
    ~description:"BlueRule-style minimum-edge search over vertex adjacency lists"
    ~source:
      {|
struct edge {
  int to;
  float weight;
  struct edge *next;
}
struct vertex {
  int id;
  int in_tree;
  struct edge *edges;
  struct vertex *next;
}

struct vertex *graph;
float mst_weight;
float best_weight;
int best_target;

void build(int n) {
  graph = null;
  int i;
  for (i = 0; i < n; i = i + 1) {
    struct vertex *v = new struct vertex;
    v->id = i;
    v->in_tree = 0;
    v->edges = null;
    int j;
    for (j = 0; j < 6; j = j + 1) {
      struct edge *e = new struct edge;
      e->to = (i + 1 + ftoi(hrand(i * 7 + j) * itof(n - 2))) % n;
      e->weight = 0.1 + hrand(i * 13 + j) + itof(i * 6 + j) * 0.00001;
      e->next = v->edges;
      v->edges = e;
    }
    v->next = graph;
    graph = v;
  }
}

// BlueRule: over all tree vertices, find the lightest edge leaving the tree
void blue_rule() {
  best_weight = 1000000.0;
  best_target = -1;
  struct vertex *v = graph;
  while (v) {
    if (v->in_tree == 1) {
      struct edge *e = v->edges;
      while (e) {
        // is the target outside the tree?
        struct vertex *w = graph;
        while (w) {
          if (w->id == e->to && w->in_tree == 0 && e->weight < best_weight) {
            best_weight = e->weight;
            best_target = e->to;
          }
          w = w->next;
        }
        e = e->next;
      }
    }
    v = v->next;
  }
}

void main() {
  int n = 24;
  build(n);
  graph->in_tree = 1;
  mst_weight = 0.0;
  int round;
  for (round = 1; round < n; round = round + 1) {
    blue_rule();
    if (best_target >= 0) {
      struct vertex *w = graph;
      while (w) {
        if (w->id == best_target) { w->in_tree = 1; }
        w = w->next;
      }
      mst_weight = mst_weight + best_weight;
    }
  }
  print(mst_weight);
  printi(1);
}
|}

let bh =
  Benchmark.default ~name:"bh" ~suite:Benchmark.Plds
    ~description:"walksub-style Barnes-Hut force accumulation over a read-only tree"
    ~source:
      {|
struct cell {
  float mass;
  float x;
  struct cell *left;
  struct cell *right;
}
struct body {
  float x;
  float force;
  struct body *next;
}
struct item {
  struct cell *c;
  struct item *next;
}

struct cell *tree_root;
struct body *bodies;
float total_force;

struct cell *build_tree(int depth, int salt) {
  struct cell *c = new struct cell;
  c->x = hrand(salt) * 100.0;
  c->mass = 1.0 + hrand(salt + 7);
  if (depth > 0) {
    c->left = build_tree(depth - 1, salt * 2 + 1);
    c->right = build_tree(depth - 1, salt * 2 + 2);
    c->mass = c->mass + c->left->mass + c->right->mass;
  } else {
    c->left = null;
    c->right = null;
  }
  return c;
}

// force walk for one body: explicit-stack tree walk, reads only the tree
float walk_one(struct body *b) {
  float force = 0.0;
  struct item *stack = new struct item;
  stack->c = tree_root;
  stack->next = null;
  while (stack) {
    struct cell *c = stack->c;
    stack = stack->next;
    float dx = c->x - b->x;
    float d2 = dx * dx + 1.0;
    if (d2 > 400.0 || c->left == null) {
      // far enough (or leaf): take the aggregate
      force = force + c->mass * dx / (d2 * sqrt(d2));
    } else {
      struct item *l = new struct item;
      l->c = c->left;
      l->next = stack;
      stack = l;
      struct item *r = new struct item;
      r->c = c->right;
      r->next = stack;
      stack = r;
    }
  }
  return force;
}

// hot loop: per-body force walk
void walksub() {
  struct body *b = bodies;
  while (b) {
    b->force = walk_one(b);
    b = b->next;
  }
}

void main() {
  tree_root = build_tree(6, 1);
  bodies = null;
  int i;
  for (i = 0; i < 48; i = i + 1) {
    struct body *b = new struct body;
    b->x = hrand(i + 900) * 100.0;
    b->force = 0.0;
    b->next = bodies;
    bodies = b;
  }
  walksub();
  total_force = 0.0;
  struct body *b = bodies;
  while (b) {
    total_force = total_force + fabs(b->force);
    b = b->next;
  }
  print(total_force);
  printi(1);
}
|}

let benchmarks = [ em3d; mst; bh ]
