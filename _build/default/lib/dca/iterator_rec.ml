open Dca_support
open Dca_analysis
open Dca_ir

type phase = Pre | Post

type iface_var = { if_var : Ir.var; if_phase : phase }

type separation = {
  sep_loop : Loops.loop;
  sep_slice : Intset.t;
  sep_payload : Intset.t;
  sep_slice_cbr_blocks : Intset.t;
  sep_mixed_cbr : bool;
  sep_interface : iface_var list;
  sep_ambiguous : Ir.var list;
  sep_slice_def_vids : Intset.t;
}

(* Position of an instruction inside its block. *)
let position_table (fi : Proginfo.func_info) =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun blk -> List.iteri (fun k i -> Hashtbl.replace tbl i.Ir.iid (blk.Ir.bid, k)) blk.Ir.instrs)
    (Cfg.func fi.Proginfo.fi_cfg).Ir.fblocks;
  tbl

(* Intra-iteration reachability: which loop blocks can reach which along
   paths that do not take the loop's own back edges.  This is the order in
   which one iteration's instructions can execute, and decides whether the
   payload observes an interface variable before or after the iterator's
   in-body update. *)
let body_reachability cfg (l : Loops.loop) =
  let reach = Hashtbl.create 16 in
  Intset.iter
    (fun src ->
      let seen = ref Intset.empty in
      let rec visit b =
        List.iter
          (fun s ->
            let is_back_edge = List.mem b l.Loops.l_latches && s = l.Loops.l_header in
            if Intset.mem s l.Loops.l_blocks && (not is_back_edge) && not (Intset.mem s !seen)
            then begin
              seen := Intset.add s !seen;
              visit s
            end)
          (Cfg.succs cfg b)
      in
      visit src;
      Hashtbl.replace reach src !seen)
    l.Loops.l_blocks;
  fun a b -> match Hashtbl.find_opt reach a with Some s -> Intset.mem b s | None -> false

let loop_instrs fi (l : Loops.loop) = Loops.instrs_of fi.Proginfo.fi_cfg l

let build fi (l : Loops.loop) (slice_nodes : Pdg.Nodeset.t) =
  let pdg = fi.Proginfo.fi_pdg in
  let cfg = fi.Proginfo.fi_cfg in
  let slice =
    Pdg.Nodeset.fold
      (fun n acc -> match n with Pdg.Instr iid -> Intset.add iid acc | Pdg.Term _ -> acc)
      slice_nodes Intset.empty
  in
  let instrs = loop_instrs fi l in
  let payload =
    List.fold_left
      (fun acc i -> if Intset.mem i.Ir.iid slice then acc else Intset.add i.Ir.iid acc)
      Intset.empty instrs
  in
  (* classify conditional terminators by who computes their condition *)
  let mixed = ref false in
  let slice_cbr =
    Intset.filter
      (fun b ->
        match (Cfg.block cfg b).Ir.bterm with
        | Ir.Cbr (Ir.Ovar c, _, _) -> begin
            let in_loop_defs =
              List.filter
                (fun n -> Intset.mem (Pdg.node_block pdg n) l.Loops.l_blocks)
                (Pdg.defs_of_var pdg c.Ir.vid)
            in
            let in_slice =
              List.filter (function Pdg.Instr iid -> Intset.mem iid slice | Pdg.Term _ -> false) in_loop_defs
            in
            match (in_loop_defs, in_slice) with
            | [], _ -> false (* loop-invariant condition: payload-evaluated *)
            | defs, sliced when List.length defs = List.length sliced -> true
            | _, [] -> false
            | _, _ ->
                mixed := true;
                true
          end
        | Ir.Cbr ((Ir.Oint _ | Ir.Ofloat _ | Ir.Onull), _, _) -> false
        | Ir.Br _ | Ir.Ret _ -> false)
      l.Loops.l_blocks
  in
  (* all variables defined by slice instructions *)
  let slice_def_vids =
    Intset.fold
      (fun iid acc ->
        match Ir.def_of (Pdg.instr pdg iid).Ir.idesc with
        | Some v -> Intset.add v.Ir.vid acc
        | None -> acc)
      slice Intset.empty
  in
  (* interface: slice-defined variables used by payload instructions or by
     payload-evaluated terminators in the loop *)
  let positions = position_table fi in
  let reaches = body_reachability cfg l in
  let payload_uses_of vid =
    List.filter_map
      (fun i ->
        if
          Intset.mem i.Ir.iid payload
          && List.exists (fun v -> v.Ir.vid = vid) (Ir.uses_of i.Ir.idesc)
        then Hashtbl.find_opt positions i.Ir.iid
        else None)
      instrs
    @ Intset.fold
        (fun b acc ->
          if Intset.mem b slice_cbr then acc
          else
            match (Cfg.block cfg b).Ir.bterm with
            | Ir.Cbr (Ir.Ovar c, _, _) when c.Ir.vid = vid -> (b, max_int) :: acc
            | _ -> acc)
        l.Loops.l_blocks []
  in
  let slice_defs_of vid =
    Intset.fold
      (fun iid acc ->
        match Ir.def_of (Pdg.instr pdg iid).Ir.idesc with
        | Some v when v.Ir.vid = vid -> (
            match Hashtbl.find_opt positions iid with Some p -> p :: acc | None -> acc)
        | _ -> acc)
      slice []
  in
  (* Can the program point (b1, k1) execute before (b2, k2) within one
     iteration?  Same block: by index; different blocks: by body-graph
     reachability with the loop's back edges removed. *)
  let can_precede (b1, k1) (b2, k2) =
    if b1 = b2 then k1 < k2 else reaches b1 b2
  in
  let interface = ref [] and ambiguous = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun i ->
      match Ir.def_of i.Ir.idesc with
      | Some v
        when Intset.mem i.Ir.iid slice && not (Hashtbl.mem seen v.Ir.vid) -> begin
          Hashtbl.replace seen v.Ir.vid ();
          let uses = payload_uses_of v.Ir.vid in
          if uses <> [] then begin
            let defs = slice_defs_of v.Ir.vid in
            let def_before_use = List.exists (fun d -> List.exists (can_precede d) uses) defs in
            let use_before_def = List.exists (fun u -> List.exists (can_precede u) defs) uses in
            match (def_before_use, use_before_def) with
            | false, _ -> interface := { if_var = v; if_phase = Pre } :: !interface
            | true, false -> interface := { if_var = v; if_phase = Post } :: !interface
            | true, true -> ambiguous := v :: !ambiguous
          end
        end
      | _ -> ())
    instrs;
  {
    sep_loop = l;
    sep_slice = slice;
    sep_payload = payload;
    sep_slice_cbr_blocks = slice_cbr;
    sep_mixed_cbr = !mixed;
    sep_interface = List.rev !interface;
    sep_ambiguous = List.rev !ambiguous;
    sep_slice_def_vids = slice_def_vids;
  }

let closure fi (l : Loops.loop) seeds =
  let pdg = fi.Proginfo.fi_pdg in
  let within n = Intset.mem (Pdg.node_block pdg n) l.Loops.l_blocks in
  Pdg.backward_closure pdg ~within seeds

let separate fi (l : Loops.loop) =
  let seeds = List.map (fun (src, _) -> Pdg.Term src) l.Loops.l_exiting in
  build fi l (closure fi l seeds)

let widen fi sep ~promote =
  let l = sep.sep_loop in
  let seeds =
    List.map (fun (src, _) -> Pdg.Term src) l.Loops.l_exiting
    @ List.map (fun iid -> Pdg.Instr iid) (Intset.elements (Intset.union promote sep.sep_slice))
  in
  build fi l (closure fi l seeds)

let is_iterator_only sep = Intset.is_empty sep.sep_payload

let describe sep =
  Printf.sprintf "loop %s: slice=%d payload=%d interface=[%s]%s%s" sep.sep_loop.Loops.l_id
    (Intset.cardinal sep.sep_slice) (Intset.cardinal sep.sep_payload)
    (String.concat ", "
       (List.map
          (fun iv ->
            Printf.sprintf "%s:%s" iv.if_var.Ir.vname
              (match iv.if_phase with Pre -> "pre" | Post -> "post"))
          sep.sep_interface))
    (if sep.sep_mixed_cbr then " [mixed-cbr]" else "")
    (if sep.sep_ambiguous <> [] then " [ambiguous-interface]" else "")
