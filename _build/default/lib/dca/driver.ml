open Dca_analysis

type decision =
  | Commutative
  | Non_commutative of string
  | Untestable of string
  | Rejected of Candidate.rejection
  | Subsumed of string

type loop_result = {
  lr_loop : Loops.loop;
  lr_label : string;
  lr_decision : decision;
  lr_outcome : Commutativity.outcome option;
}

let decision_to_string = function
  | Commutative -> "commutative"
  | Non_commutative why -> Printf.sprintf "non-commutative: %s" why
  | Untestable why -> Printf.sprintf "untestable: %s" why
  | Rejected r -> Printf.sprintf "rejected: %s" (Candidate.rejection_to_string r)
  | Subsumed parent -> Printf.sprintf "subsumed by commutative ancestor %s" parent

let analyze_program ?(config = Commutativity.default_config)
    ?(spec = Commutativity.default_run_spec) ?(hierarchical = false) info =
  (* loops arrive outermost-first within each function, so a commutative
     ancestor is always decided before its descendants *)
  let commutative_ancestors : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let subsuming_ancestor (fi : Proginfo.func_info) (loop : Loops.loop) =
    if not hierarchical then None
    else
      Loops.nesting_path fi.Proginfo.fi_forest loop
      |> List.find_opt (fun anc ->
             anc.Loops.l_id <> loop.Loops.l_id && Hashtbl.mem commutative_ancestors anc.Loops.l_id)
  in
  List.map
    (fun (fi, loop) ->
      let label = Proginfo.loop_label info loop in
      match subsuming_ancestor fi loop with
      | Some anc ->
          { lr_loop = loop; lr_label = label; lr_decision = Subsumed anc.Loops.l_id; lr_outcome = None }
      | None -> (
          match Candidate.examine info fi loop with
          | Candidate.Rejected r ->
              { lr_loop = loop; lr_label = label; lr_decision = Rejected r; lr_outcome = None }
          | Candidate.Accepted sep ->
              let outcome = Commutativity.test_loop config info spec fi sep in
              let decision =
                match outcome.Commutativity.oc_verdict with
                | Commutativity.Commutative ->
                    Hashtbl.replace commutative_ancestors loop.Loops.l_id ();
                    Commutative
                | Commutativity.Non_commutative why -> Non_commutative why
                | Commutativity.Untestable why -> Untestable why
              in
              { lr_loop = loop; lr_label = label; lr_decision = decision; lr_outcome = Some outcome }))
    (Proginfo.all_loops info)

let analyze_source ?config ?spec ~file src =
  let prog = Dca_ir.Lower.compile ~file src in
  let info = Proginfo.analyze prog in
  (info, analyze_program ?config ?spec info)

let is_commutative r = match r.lr_decision with Commutative -> true | _ -> false

let commutative_ids results =
  List.filter_map (fun r -> if is_commutative r then Some r.lr_loop.Loops.l_id else None) results
