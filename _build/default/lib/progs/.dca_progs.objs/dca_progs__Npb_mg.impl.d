lib/progs/npb_mg.ml: Benchmark
