(* Blocking JSON-lines client for the dca serve socket. *)

type t = { sock : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock (Unix.ADDR_UNIX path) with
  | () -> Ok { sock; ic = Unix.in_channel_of_descr sock; oc = Unix.out_channel_of_descr sock }
  | exception Unix.Unix_error (err, _, _) ->
      Unix.close sock;
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message err))

let request t rq =
  match
    output_string t.oc (Protocol.request_line rq);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | line -> Protocol.parse_response line
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error msg -> Error ("connection error: " ^ msg)

let close t = try Unix.close t.sock with Unix.Unix_error _ -> ()

let with_client path f =
  match connect path with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
