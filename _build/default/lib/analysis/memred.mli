(** Recognition of read-modify-write reduction idioms on memory: scalar
    reductions on globals ([total = total + e] through Gload/Gstore),
    array reductions ([a\[f(i)\] = a\[f(i)\] op e] through the same address
    temporary) and histograms (the same with a data-dependent subscript).
    Used by the Idioms baseline (Ginsbach–O'Boyle style) and by the
    reduction filters of the dynamic baselines (Pottenger–Eigenmann). *)

type kind =
  | Global_scalar of int  (** global slot *)
  | Array_cell of { subscript : Affine.affine option }
      (** same-address load/store pair; [subscript = None] means a
          data-dependent index, i.e. a histogram *)

type rmw = {
  rmw_load : int;  (** load (or Gload) instruction id *)
  rmw_store : int;  (** store (or Gstore) instruction id *)
  rmw_op : Scalars.reduction_op;
  rmw_kind : kind;
}

val find : Dca_ir.Cfg.t -> Affine.t -> Loops.loop -> rmw list

val iid_pairs : rmw list -> (int * int) list
(** (load, store) id pairs, for filtering profiled RAW dependences. *)
