(** Static candidate selection (paper §IV-A, §IV-E): which loops enter the
    dynamic stage at all.

    A loop is rejected when it performs I/O (directly or through a call),
    returns from inside its body, has a branch condition mixing iterator
    and payload definitions, has an interface variable with interleaved
    definitions and uses, or has an empty payload (nothing to permute). *)

type rejection =
  | Has_io
  | Returns_inside
  | Mixed_branch
  | Ambiguous_interface of string  (** offending variable *)
  | Empty_payload

type decision = Accepted of Iterator_rec.separation | Rejected of rejection

val examine :
  Dca_analysis.Proginfo.t -> Dca_analysis.Proginfo.func_info -> Dca_analysis.Loops.loop -> decision

val rejection_to_string : rejection -> string
