lib/baselines/polly_tool.ml: Affine Dca_analysis Dca_frontend List Loops Memred Printf Proginfo Scalars Static_common Tool
