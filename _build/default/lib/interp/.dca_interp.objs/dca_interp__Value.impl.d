lib/interp/value.ml: Dca_ir Printf
