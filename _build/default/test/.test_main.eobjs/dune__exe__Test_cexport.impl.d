test/test_cexport.ml: Alcotest Benchmark Dca_analysis Dca_core Dca_frontend Dca_interp Dca_parallel Dca_profiling Dca_progs Filename Fun List Printf Registry String Sys Unix
