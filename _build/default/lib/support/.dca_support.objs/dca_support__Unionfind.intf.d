lib/support/unionfind.mli:
