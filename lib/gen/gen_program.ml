open Dca_frontend
open Dca_support
open Ast

type recipe =
  | Affine
  | Indirect
  | Same_cell
  | Reduction
  | Carried
  | Cond
  | Chase
  | Nest
  | Io_inside

let recipe_to_string = function
  | Affine -> "affine"
  | Indirect -> "indirect"
  | Same_cell -> "same-cell"
  | Reduction -> "reduction"
  | Carried -> "carried"
  | Cond -> "cond"
  | Chase -> "chase"
  | Nest -> "nest"
  | Io_inside -> "io"

type t = { g_prog : Ast.program; g_source : string; g_recipes : recipe list; g_trip : int }

let marker = "DCA_FUZZ_LOOP"
let array_size = 8

(* ------------------------------------------------------------------ *)
(* AST construction helpers (all nodes at Loc.dummy; the fuzz driver   *)
(* re-parses the printed source, so real locations come from there)    *)
(* ------------------------------------------------------------------ *)

let e d = { edesc = d; eloc = Loc.dummy }
let st d = { sdesc = d; sloc = Loc.dummy }
let ei n = e (Eint n)
let ef x = e (Efloat x)
let ev x = e (Evar x)
let idx a i = e (Eindex (ev a, i))
let bin op a b = e (Ebinop (op, a, b))
let call f args = e (Ecall (f, args))
let arrow p f = e (Earrow (ev p, f))
let assign l r = st (Sassign (l, r))
let decl ty name init = st (Sdecl (ty, name, init))
let node_ptr = Tptr (Tstruct "node")

(* state the clause drawing threads through: which optional furniture
   (float accumulator, linked list) the prelude/epilogue must provide *)
type flags = { mutable fl_float : bool; mutable fl_chase : bool }

let pick rng arr = arr.(Prng.int rng (Array.length arr))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Always-in-range index expression over the loop variable [iv].  [x0]
   is the read-only index array the prelude fills with values in
   [0, array_size). *)
let gen_index rng iv =
  match Prng.int rng 6 with
  | 0 | 1 -> ev iv
  | 2 -> ei (Prng.int rng array_size)
  | 3 -> bin Mod (bin Add (ev iv) (ei (Prng.int rng array_size))) (ei array_size)
  | 4 -> idx "x0" (ev iv)
  | _ -> bin Sub (ei (array_size - 1)) (ev iv)

(* Injective index map: distinct iterations hit distinct cells, so a
   plain write through it is commutative.  [i*c + d mod 8] is injective
   for odd [c] (c coprime to the array size). *)
let gen_injective_index rng iv =
  match Prng.int rng 3 with
  | 0 -> ev iv
  | 1 -> bin Sub (ei (array_size - 1)) (ev iv)
  | _ ->
      let c = pick rng [| 1; 3; 5; 7 |] and d = Prng.int rng array_size in
      bin Mod (bin Add (bin Mul (ev iv) (ei c)) (ei d)) (ei array_size)

(* Pure int-valued expression reading loop-constant state, the loop
   variable(s) in [vars], the data arrays and (rarely) a reduction
   scalar.  Division/modulus only ever by literal constants >= 2, so no
   generated program can hit Division_by_zero. *)
let rec gen_ie rng vars depth =
  if depth <= 0 || Prng.int rng 3 = 0 then
    match Prng.int rng 6 with
    | 0 -> ei (Prng.int rng 10)
    | 1 | 2 -> ev (pick rng vars)
    | 3 -> idx (pick rng [| "a0"; "a1" |]) (gen_index rng (pick rng vars))
    | 4 -> idx "x0" (gen_index rng (pick rng vars))
    | _ -> ev "s0"
  else
    let op = pick rng [| Add; Sub; Mul |] in
    bin op (gen_ie rng vars (depth - 1)) (gen_ie rng vars (depth - 1))

let gen_fe rng vars depth =
  let leaf () =
    match Prng.int rng 3 with
    | 0 -> ef (0.25 +. (0.25 *. float_of_int (Prng.int rng 8)))
    | 1 -> idx "fa0" (gen_index rng (pick rng vars))
    | _ -> call "itof" [ gen_ie rng vars 1 ]
  in
  if depth <= 0 || Prng.bool rng then leaf ()
  else bin (pick rng [| Add; Mul |]) (leaf ()) (leaf ())

let gen_cond rng vars =
  match Prng.int rng 3 with
  | 0 ->
      bin Eq
        (bin Mod (idx (pick rng [| "a0"; "a1"; "x0" |]) (gen_index rng (pick rng vars))) (ei 2))
        (ei 0)
  | 1 -> bin Lt (ev (pick rng vars)) (ei (1 + Prng.int rng 6))
  | _ -> bin Gt (idx "x0" (ev (pick rng vars))) (ei (Prng.int rng (array_size - 1)))

(* ------------------------------------------------------------------ *)
(* Clauses                                                             *)
(* ------------------------------------------------------------------ *)

let data_arr rng = pick rng [| "a0"; "a1" |]

let affine_clause rng iv =
  [ assign (idx (data_arr rng) (gen_injective_index rng iv)) (gen_ie rng [| iv |] 2) ]

let indirect_clause rng iv =
  [ assign (idx (data_arr rng) (idx "x0" (ev iv))) (gen_ie rng [| iv |] 2) ]

let same_cell_clause rng iv =
  [ assign (idx (data_arr rng) (ei (Prng.int rng array_size))) (gen_ie rng [| iv |] 2) ]

let reduction_clause rng iv flags =
  match Prng.int rng 5 with
  | 0 -> [ assign (ev "s0") (bin Add (ev "s0") (gen_ie rng [| iv |] 2)) ]
  | 1 -> [ assign (ev "s0") (bin Sub (ev "s0") (gen_ie rng [| iv |] 2)) ]
  | 2 -> [ assign (ev "s0") (call "imax" [ ev "s0"; gen_ie rng [| iv |] 2 ]) ]
  | 3 -> [ assign (ev "s0") (bin Mul (ev "s0") (gen_ie rng [| iv |] 1)) ]
  | _ ->
      flags.fl_float <- true;
      [ assign (ev "f0") (bin Add (ev "f0") (gen_fe rng [| iv |] 1)) ]

let carried_clause rng iv =
  match Prng.int rng 4 with
  | 0 -> [ assign (ev "s1") (bin Add (bin Mul (ev "s1") (ei 2)) (gen_ie rng [| iv |] 1)) ]
  | 1 -> [ assign (ev "s1") (bin Sub (gen_ie rng [| iv |] 1) (ev "s1")) ]
  | 2 -> [ assign (ev "s1") (gen_ie rng [| iv |] 2) ]
  | _ ->
      (* cross-iteration neighbour read: a0[i] = a0[(i+1)%8] + c *)
      [
        assign (idx "a0" (ev iv))
          (bin Add
             (idx "a0" (bin Mod (bin Add (ev iv) (ei 1)) (ei array_size)))
             (ei (Prng.int rng 5)));
      ]

let chase_clause rng iv ci flags =
  flags.fl_chase <- true;
  let p = Printf.sprintf "p%d" ci and k = Printf.sprintf "k%d" ci in
  let walk =
    [
      decl node_ptr p (Some (ev "head"));
      decl Tint k (Some (ei 0));
      st
        (Swhile
           ( bin Lt (ev k) (ev iv),
             [ assign (ev p) (arrow p "next"); assign (ev k) (bin Add (ev k) (ei 1)) ] ));
    ]
  in
  let payload =
    match Prng.int rng 3 with
    | 0 -> assign (arrow p "val") (bin Add (arrow p "val") (gen_ie rng [| iv |] 1))
    | 1 -> assign (ev "s0") (bin Add (ev "s0") (arrow p "val"))
    | _ -> assign (arrow p "val") (gen_ie rng [| iv |] 1)
  in
  walk @ [ payload ]

let nest_clause rng iv ci =
  let j = Printf.sprintf "j%d" ci in
  let m = 2 + Prng.int rng 2 in
  let body =
    match Prng.int rng 2 with
    | 0 ->
        [
          assign
            (idx (data_arr rng) (bin Mod (bin Add (bin Mul (ev iv) (ei m)) (ev j)) (ei array_size)))
            (gen_ie rng [| iv; j |] 1);
        ]
    | _ -> [ assign (ev "s0") (bin Add (ev "s0") (bin Mul (ev iv) (ev j))) ]
  in
  [
    st
      (Sfor
         ( Some (decl Tint j (Some (ei 0))),
           Some (bin Lt (ev j) (ei m)),
           Some (assign (ev j) (bin Add (ev j) (ei 1))),
           body ));
  ]

let io_clause rng iv = [ st (Sexpr (call "printi" [ gen_ie rng [| iv |] 1 ])) ]

(* One clause.  The weights skew toward shapes DCA accepts dynamically;
   [Io_inside] is rare and exists to exercise the static-rejection path
   of the cross-check. *)
let gen_clause rng ~iv ~ci flags =
  let w =
    [|
      (18, Affine);
      (9, Indirect);
      (7, Same_cell);
      (20, Reduction);
      (12, Carried);
      (12, Cond);
      (9, Chase);
      (7, Nest);
      (2, Io_inside);
    |]
  in
  let total = Array.fold_left (fun acc (k, _) -> acc + k) 0 w in
  let rec choose n j =
    let k, r = w.(j) in
    if n < k then r else choose (n - k) (j + 1)
  in
  let recipe = choose (Prng.int rng total) 0 in
  let stmts =
    match recipe with
    | Affine -> affine_clause rng iv
    | Indirect -> indirect_clause rng iv
    | Same_cell -> same_cell_clause rng iv
    | Reduction -> reduction_clause rng iv flags
    | Carried -> carried_clause rng iv
    | Cond ->
        (* wrap a simple clause; no clause-local declarations inside the
           branch, so any simple recipe is safe to nest *)
        let inner () =
          match pick rng [| `A; `R; `S; `C |] with
          | `A -> affine_clause rng iv
          | `R -> reduction_clause rng iv flags
          | `S -> same_cell_clause rng iv
          | `C -> carried_clause rng iv
        in
        let else_b = if Prng.int rng 3 = 0 then inner () else [] in
        [ st (Sif (gen_cond rng [| iv |], inner (), else_b)) ]
    | Chase -> chase_clause rng iv ci flags
    | Nest -> nest_clause rng iv ci
    | Io_inside -> io_clause rng iv
  in
  (recipe, stmts)

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)

let node_struct =
  { str_name = "node"; str_fields = [ (Tint, "val"); (node_ptr, "next") ]; str_loc = Loc.dummy }

let prelude rng flags trip =
  let ca = 1 + Prng.int rng 6 and da = Prng.int rng 9 in
  let cb = 1 + Prng.int rng 6 and db = Prng.int rng 9 in
  let cx = 1 + Prng.int rng 7 and dx = Prng.int rng array_size in
  let decls =
    [
      decl (Tarray (Tint, [ array_size ])) "a0" None;
      decl (Tarray (Tint, [ array_size ])) "a1" None;
      decl (Tarray (Tint, [ array_size ])) "x0" None;
      decl Tint "s0" (Some (ei (Prng.int rng 20)));
      decl Tint "s1" (Some (ei (Prng.int rng 20)));
    ]
    @ (if flags.fl_float then
         [ decl Tfloat "f0" (Some (ef 0.0)); decl (Tarray (Tfloat, [ array_size ])) "fa0" None ]
       else [])
  in
  let fill_one name c d m = assign (idx name (ev "t")) (bin Mod (bin Add (bin Mul (ev "t") (ei c)) (ei d)) (ei m)) in
  let fill =
    [
      decl Tint "t" (Some (ei 0));
      st
        (Swhile
           ( bin Lt (ev "t") (ei array_size),
             [ fill_one "a0" ca da 13; fill_one "a1" cb db 11; fill_one "x0" cx dx array_size ]
             @ (if flags.fl_float then
                  [
                    assign (idx "fa0" (ev "t"))
                      (bin Add (bin Mul (call "itof" [ ev "t" ]) (ef 0.5)) (ef 0.25));
                  ]
                else [])
             @ [ assign (ev "t") (bin Add (ev "t") (ei 1)) ] ));
    ]
  in
  let build_list =
    if not flags.fl_chase then []
    else
      let cv = 1 + Prng.int rng 5 and dv = Prng.int rng 6 in
      [
        decl node_ptr "head" (Some (e Enull));
        decl Tint "b" (Some (ei 0));
        st
          (Swhile
             ( bin Lt (ev "b") (ei trip),
               [
                 decl node_ptr "nn" (Some (e (Enew_struct "node")));
                 assign (arrow "nn" "val") (bin Add (bin Mul (ev "b") (ei cv)) (ei dv));
                 assign (arrow "nn" "next") (ev "head");
                 assign (ev "head") (ev "nn");
                 assign (ev "b") (bin Add (ev "b") (ei 1));
               ] ));
      ]
  in
  decls @ fill @ build_list

let epilogue flags =
  let print_arrays =
    [
      decl Tint "q" (Some (ei 0));
      st
        (Swhile
           ( bin Lt (ev "q") (ei array_size),
             [
               st (Sexpr (call "printi" [ idx "a0" (ev "q") ]));
               st (Sexpr (call "printi" [ idx "a1" (ev "q") ]));
               assign (ev "q") (bin Add (ev "q") (ei 1));
             ] ));
    ]
  in
  let print_scalars =
    [ st (Sexpr (call "printi" [ ev "s0" ])); st (Sexpr (call "printi" [ ev "s1" ])) ]
    @ if flags.fl_float then [ st (Sexpr (call "print" [ ev "f0" ])) ] else []
  in
  let print_list =
    if not flags.fl_chase then []
    else
      [
        decl node_ptr "pp" (Some (ev "head"));
        st
          (Swhile
             ( ev "pp",
               [ st (Sexpr (call "printi" [ arrow "pp" "val" ])); assign (ev "pp") (arrow "pp" "next") ]
             ));
      ]
  in
  print_arrays @ print_scalars @ print_list

let generate ?(max_iters = 4) rng =
  let max_iters = max 2 (min 7 max_iters) in
  let trip = 2 + Prng.int rng (max_iters - 1) in
  let flags = { fl_float = false; fl_chase = false } in
  let nclauses = 1 + Prng.int rng 3 in
  let clauses = List.init nclauses (fun ci -> gen_clause rng ~iv:"i" ~ci flags) in
  let recipes = List.map fst clauses in
  let body = List.concat_map snd clauses in
  let loop =
    st
      (Sfor
         ( Some (decl Tint "i" (Some (ei 0))),
           Some (bin Lt (ev "i") (ei trip)),
           Some (assign (ev "i") (bin Add (ev "i") (ei 1))),
           body ))
  in
  let main_body = prelude rng flags trip @ [ st (Sprints marker); loop ] @ epilogue flags in
  let prog =
    {
      structs = (if flags.fl_chase then [ node_struct ] else []);
      globals = [];
      funcs =
        [ { f_name = "main"; f_params = []; f_ret = Tvoid; f_body = main_body; f_loc = Loc.dummy } ];
    }
  in
  (match Typecheck.check_program prog with
  | _ -> ()
  | exception Loc.Error (l, msg) ->
      invalid_arg
        (Printf.sprintf "Gen_program.generate produced an ill-typed program (%s: %s)"
           (Loc.to_string l) msg));
  { g_prog = prog; g_source = Ast_printer.program_to_string prog; g_recipes = recipes; g_trip = trip }
