lib/progs/benchmark.ml: Dca_analysis Dca_ir List Loops Printf Proginfo
