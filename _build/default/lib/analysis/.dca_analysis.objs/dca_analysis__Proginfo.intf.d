lib/analysis/proginfo.mli: Affine Dca_ir Liveness Loops Pdg Purity
