lib/analysis/dataflow.ml: Array Cfg Dca_ir List
