(* End-to-end interpreter tests: compile MiniC, run, inspect outputs and
   state; checkpoint/restore; observable-state capture. *)

open Dca_ir
open Dca_interp

let compile src = Lower.compile ~file:"<test>" src

let run ?input src =
  let p = compile src in
  let ctx = Eval.create ?input p in
  Eval.run_main ctx;
  (ctx, Eval.outputs ctx)

let outputs ?input src = snd (run ?input src)

let test_arith () =
  let out = outputs "void main() { printi(2 + 3 * 4); printi(10 / 3); printi(10 % 3); printi(-7); }" in
  Alcotest.(check (list string)) "ints" [ "14"; "3"; "1"; "-7" ] out

let test_float_math () =
  match outputs "void main() { print(sqrt(2.0)); print(pow(2.0, 10.0)); print(fmax(1.5, -2.0)); }" with
  | [ a; b; c ] ->
      Alcotest.(check (float 1e-9)) "sqrt" (sqrt 2.0) (float_of_string a);
      Alcotest.(check (float 1e-9)) "pow" 1024.0 (float_of_string b);
      Alcotest.(check (float 1e-9)) "fmax" 1.5 (float_of_string c)
  | out -> Alcotest.failf "unexpected output: %s" (String.concat "|" out)

let test_control_flow () =
  let out =
    outputs
      {|
      void main() {
        int total = 0;
        int i;
        for (i = 0; i < 10; i = i + 1) {
          if (i % 2 == 0) { continue; }
          if (i > 7) { break; }
          total = total + i;
        }
        printi(total);  // 1 + 3 + 5 + 7 = 16
      }
      |}
  in
  Alcotest.(check (list string)) "loop" [ "16" ] out

let test_arrays () =
  let out =
    outputs
      {|
      float grid[3][4];
      void main() {
        int i;
        int j;
        for (i = 0; i < 3; i = i + 1) {
          for (j = 0; j < 4; j = j + 1) { grid[i][j] = itof(i * 10 + j); }
        }
        print(grid[2][3]);
        float total = 0.0;
        for (i = 0; i < 3; i = i + 1) {
          for (j = 0; j < 4; j = j + 1) { total = total + grid[i][j]; }
        }
        print(total);
      }
      |}
  in
  Alcotest.(check (list string)) "grid" [ "23"; "138" ] out

let test_plds () =
  let out =
    outputs
      {|
      struct node { int val; struct node *next; }
      void main() {
        struct node *head = null;
        int i;
        for (i = 0; i < 5; i = i + 1) {
          struct node *n = new struct node;
          n->val = i;
          n->next = head;
          head = n;
        }
        int total = 0;
        struct node *p = head;
        while (p) { total = total + p->val; p = p->next; }
        printi(total);  // 0+1+2+3+4
      }
      |}
  in
  Alcotest.(check (list string)) "list sum" [ "10" ] out

let test_functions_recursion () =
  let out =
    outputs
      {|
      int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
      void main() { printi(fib(12)); }
      |}
  in
  Alcotest.(check (list string)) "fib" [ "144" ] out

let test_struct_values_in_arrays () =
  let out =
    outputs
      {|
      struct point { float x; float y; }
      struct point pts[4];
      void main() {
        int i;
        for (i = 0; i < 4; i = i + 1) {
          pts[i].x = itof(i);
          pts[i].y = itof(i * i);
        }
        print(pts[3].x + pts[3].y);  // 3 + 9
      }
      |}
  in
  Alcotest.(check (list string)) "aos" [ "12" ] out

let test_globals_and_calls () =
  let out =
    outputs
      {|
      int counter = 100;
      void bump(int by) { counter = counter + by; }
      void main() {
        bump(1);
        bump(2);
        printi(counter);
      }
      |}
  in
  Alcotest.(check (list string)) "globals" [ "103" ] out

let test_drand_deterministic () =
  let src = "void main() { dseed(42); print(drand()); print(drand()); }" in
  Alcotest.(check (list string)) "same seed, same stream" (outputs src) (outputs src)

let test_hrand_pure () =
  let out = outputs "void main() { print(hrand(7)); print(hrand(7)); print(hrand(8)); }" in
  match out with
  | [ a; b; c ] ->
      Alcotest.(check string) "pure" a b;
      Alcotest.(check bool) "distinct" true (a <> c)
  | _ -> Alcotest.fail "expected 3 outputs"

let test_reads_input () =
  let out = outputs ~input:[ 5; 7 ] "void main() { printi(reads() + reads()); printi(reads()); }" in
  Alcotest.(check (list string)) "input stream" [ "12"; "0" ] out

let test_trap_null () =
  let p = compile
      {|
      struct node { int val; struct node *next; }
      void main() { struct node *p = null; p->val = 1; }
      |}
  in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_trap_out_of_bounds () =
  let p = compile "int a[4]; void main() { int i = 9; a[i] = 1; }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_fuel () =
  let p = compile "void main() { while (1) { } }" in
  (* while(1) has an empty body: only the terminator executes, so give the
     loop something to burn. *)
  ignore p;
  let p = compile "int x; void main() { while (1) { x = x + 1; } }" in
  let ctx = Eval.create ~fuel:10_000 p in
  match Eval.run_main ctx with
  | exception Eval.Out_of_fuel -> ()
  | () -> Alcotest.fail "expected to run out of fuel"

let test_snapshot_restore () =
  let p =
    compile
      {|
      int g;
      int a[4];
      void main() { g = 1; a[0] = 10; }
      |}
  in
  let ctx = Eval.create p in
  Eval.run_main ctx;
  let st = Eval.store ctx in
  let snap = Store.snapshot st in
  (* mutate: globals and heap *)
  Store.write_global st 0 (Value.VInt 999);
  (match Store.read_global st 1 with
  | Value.VPtr (b, _) -> Store.store st ~block:b ~off:0 (Value.VInt 777)
  | _ -> Alcotest.fail "expected array global pointer");
  Store.restore st snap;
  Alcotest.(check bool) "global restored" true (Store.read_global st 0 = Value.VInt 1);
  (match Store.read_global st 1 with
  | Value.VPtr (b, _) ->
      Alcotest.(check bool) "heap restored" true (Store.load st ~block:b ~off:0 = Value.VInt 10)
  | _ -> Alcotest.fail "expected array global pointer")

(* Observable captures: isomorphic heaps must compare equal regardless of
   allocation order. *)
let test_observable_isomorphic () =
  let build order =
    let src =
      Printf.sprintf
        {|
        struct node { int val; struct node *next; }
        struct node *head;
        void main() {
          %s
        }
        |}
        order
    in
    let p = compile src in
    let ctx = Eval.create p in
    Eval.run_main ctx;
    let st = Eval.store ctx in
    Observable.capture st ~scalars:[] ~roots:[ Store.read_global st 0 ]
  in
  (* same final list 1 -> 2, built with different allocation orders *)
  let a =
    build
      {|
      struct node *n1 = new struct node;
      struct node *n2 = new struct node;
      n1->val = 1; n2->val = 2; n1->next = n2; n2->next = null; head = n1;
      |}
  in
  let b =
    build
      {|
      struct node *n2 = new struct node;
      struct node *dead = new struct node;
      struct node *n1 = new struct node;
      dead->val = 99;
      n1->val = 1; n2->val = 2; n1->next = n2; n2->next = null; head = n1;
      |}
  in
  Alcotest.(check bool) "isomorphic heaps equal" true (Observable.equal a b)

let test_observable_differs () =
  let capture_of src =
    let p = compile src in
    let ctx = Eval.create p in
    Eval.run_main ctx;
    let st = Eval.store ctx in
    Observable.capture st ~scalars:[] ~roots:[ Store.read_global st 0 ]
  in
  let a = capture_of "int a[3]; void main() { a[1] = 5; }" in
  let b = capture_of "int a[3]; void main() { a[1] = 6; }" in
  Alcotest.(check bool) "different states differ" false (Observable.equal a b)

let test_observable_float_tolerance () =
  let mk v =
    Observable.capture
      (Eval.store (Eval.create (compile "void main() { }")))
      ~scalars:[ Value.VFloat v ] ~roots:[]
  in
  Alcotest.(check bool) "close floats equal" true
    (Observable.equal (mk 1.0) (mk (1.0 +. 1e-13)));
  Alcotest.(check bool) "distant floats differ" false (Observable.equal (mk 1.0) (mk 1.1))

(* [Observable.matches] must decide exactly like capture-then-equal, on
   isomorphic heaps (canonical renaming) as well as genuinely different
   states. *)
let test_observable_matches () =
  let run src =
    let ctx = Eval.create (compile src) in
    Eval.run_main ctx;
    Eval.store ctx
  in
  let list_src order =
    Printf.sprintf
      {|
      struct node { int val; struct node *next; }
      struct node *head;
      void main() { %s }
      |}
      order
  in
  let a =
    run
      (list_src
         {|
         struct node *n1 = new struct node;
         struct node *n2 = new struct node;
         n1->val = 1; n2->val = 2; n1->next = n2; n2->next = null; head = n1;
         |})
  in
  let b =
    run
      (list_src
         {|
         struct node *n2 = new struct node;
         struct node *dead = new struct node;
         struct node *n1 = new struct node;
         dead->val = 99;
         n1->val = 1; n2->val = 2; n1->next = n2; n2->next = null; head = n1;
         |})
  in
  let golden = Observable.capture a ~scalars:[] ~roots:[ Store.read_global a 0 ] in
  Alcotest.(check bool) "matches self" true
    (Observable.matches golden a ~scalars:[] ~roots:[ Store.read_global a 0 ]);
  Alcotest.(check bool) "matches isomorphic heap" true
    (Observable.matches golden b ~scalars:[] ~roots:[ Store.read_global b 0 ]);
  (match Store.read_global b 0 with
  | Value.VPtr (blk, _) -> Store.store b ~block:blk ~off:0 (Value.VInt 42)
  | _ -> Alcotest.fail "expected pointer global");
  Alcotest.(check bool) "mutated heap differs" false
    (Observable.matches golden b ~scalars:[] ~roots:[ Store.read_global b 0 ])

(* Property: on random array states, [matches] and capture-then-[equal]
   agree (both verdicts, not just the positive case). *)
let prop_matches_agrees_with_equal =
  QCheck.Test.make ~count:200 ~name:"Observable.matches = capture+equal"
    QCheck.(pair (list (int_range 0 7)) (list (int_range 0 7)))
    (fun (pokes_a, pokes_b) ->
      let mk pokes =
        let ctx = Eval.create (compile "int a[8]; int total; void main() { }") in
        Eval.run_main ctx;
        let st = Eval.store ctx in
        (match Store.read_global st 0 with
        | Value.VPtr (blk, _) ->
            List.iteri (fun i off -> Store.store st ~block:blk ~off (Value.VInt (i + off))) pokes
        | _ -> failwith "expected array global");
        st
      in
      let liveout st = ([ Store.read_global st 1 ], [ Store.read_global st 0 ]) in
      let sa = mk pokes_a and sb = mk pokes_b in
      let (sc_a, rt_a), (sc_b, rt_b) = (liveout sa, liveout sb) in
      let golden = Observable.capture sa ~scalars:sc_a ~roots:rt_a in
      Observable.matches golden sb ~scalars:sc_b ~roots:rt_b
      = Observable.equal golden (Observable.capture sb ~scalars:sc_b ~roots:rt_b))

let test_outputs_equal_tolerant () =
  Alcotest.(check bool) "tolerant" true
    (Observable.outputs_equal [ "1.00000000000001"; "x" ] [ "1.0"; "x" ]);
  Alcotest.(check bool) "different text" false (Observable.outputs_equal [ "a" ] [ "b" ]);
  Alcotest.(check bool) "different lengths" false (Observable.outputs_equal [ "1" ] [ "1"; "2" ])

let suites =
  [
    ( "interp",
      [
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "float math" `Quick test_float_math;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "plds" `Quick test_plds;
        Alcotest.test_case "recursion" `Quick test_functions_recursion;
        Alcotest.test_case "struct arrays" `Quick test_struct_values_in_arrays;
        Alcotest.test_case "globals" `Quick test_globals_and_calls;
        Alcotest.test_case "drand deterministic" `Quick test_drand_deterministic;
        Alcotest.test_case "hrand pure" `Quick test_hrand_pure;
        Alcotest.test_case "reads input" `Quick test_reads_input;
        Alcotest.test_case "trap null" `Quick test_trap_null;
        Alcotest.test_case "trap oob" `Quick test_trap_out_of_bounds;
        Alcotest.test_case "fuel" `Quick test_fuel;
        Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
      ] );
    ( "observable",
      [
        Alcotest.test_case "isomorphic heaps" `Quick test_observable_isomorphic;
        Alcotest.test_case "state diff" `Quick test_observable_differs;
        Alcotest.test_case "float tolerance" `Quick test_observable_float_tolerance;
        Alcotest.test_case "in-place matches" `Quick test_observable_matches;
        QCheck_alcotest.to_alcotest prop_matches_agrees_with_equal;
        Alcotest.test_case "outputs tolerant" `Quick test_outputs_equal_tolerant;
      ] );
  ]

(* ---------------------------------------------------------------- *)
(* Additional interpreter edge cases                                  *)
(* ---------------------------------------------------------------- *)

let test_deep_recursion () =
  let out =
    outputs
      {|
      int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
      void main() { printi(depth(500)); }
      |}
  in
  Alcotest.(check (list string)) "deep recursion" [ "500" ] out

let test_zero_length_alloc () =
  let out =
    outputs
      {|
      void main() {
        int *p = new int[0];
        if (p) { printi(1); } else { printi(0); }
      }
      |}
  in
  Alcotest.(check (list string)) "zero-length allocation yields a valid pointer" [ "1" ] out

let test_div_by_zero_traps () =
  let p = compile "void main() { int z = 0; printi(10 / z); }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_mod_by_zero_traps () =
  let p = compile "void main() { int z = 0; printi(10 % z); }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_uninitialized_use_traps () =
  let p = compile "void main() { int x; printi(x + 1); }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_negative_modulo_semantics () =
  (* OCaml's [mod] semantics: sign follows the dividend, like C *)
  let out = outputs "void main() { printi(-7 % 3); printi(7 % -3); }" in
  Alcotest.(check (list string)) "C-style remainder" [ "-1"; "1" ] out

let test_short_circuit_effects () =
  let out =
    outputs
      {|
      int calls;
      int noisy(int v) { calls = calls + 1; return v; }
      void main() {
        calls = 0;
        if (noisy(0) != 0 && noisy(1) != 0) { printi(99); }
        printi(calls);          // 1: the second operand must not run
        if (noisy(1) != 0 || noisy(1) != 0) { printi(7); }
        printi(calls);          // 2: short-circuit or
      }
      |}
  in
  Alcotest.(check (list string)) "short circuit" [ "1"; "7"; "2" ] out

let test_pointer_equality () =
  let out =
    outputs
      {|
      struct cell { int v; struct cell *next; }
      void main() {
        struct cell *a = new struct cell;
        struct cell *b = new struct cell;
        struct cell *c = a;
        if (a == c) { printi(1); } else { printi(0); }
        if (a == b) { printi(1); } else { printi(0); }
        if (a != null) { printi(1); } else { printi(0); }
      }
      |}
  in
  Alcotest.(check (list string)) "pointer identity" [ "1"; "0"; "1" ] out

let test_struct_value_copy_semantics () =
  (* struct values live in place; assignments go field by field *)
  let out =
    outputs
      {|
      struct pt { float x; float y; }
      struct pt grid[2];
      void main() {
        grid[0].x = 1.0;
        grid[1].x = grid[0].x + 1.0;
        grid[0].x = 9.0;
        print(grid[1].x);   // copied before the overwrite
      }
      |}
  in
  Alcotest.(check (list string)) "field copies" [ "2" ] out

let test_steps_counter_monotone () =
  let p = compile "void main() { int i; int s = 0; for (i = 0; i < 50; i = i + 1) { s = s + i; } printi(s); }" in
  let ctx = Eval.create p in
  Eval.run_main ctx;
  let small = Eval.steps ctx in
  let p2 = compile "void main() { int i; int s = 0; for (i = 0; i < 500; i = i + 1) { s = s + i; } printi(s); }" in
  let ctx2 = Eval.create p2 in
  Eval.run_main ctx2;
  Alcotest.(check bool) "10x iterations cost more" true (Eval.steps ctx2 > small * 5)

let extra_suites =
  [
    ( "interp-edge",
      [
        Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
        Alcotest.test_case "zero-length alloc" `Quick test_zero_length_alloc;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero_traps;
        Alcotest.test_case "mod by zero" `Quick test_mod_by_zero_traps;
        Alcotest.test_case "uninitialized use" `Quick test_uninitialized_use_traps;
        Alcotest.test_case "negative modulo" `Quick test_negative_modulo_semantics;
        Alcotest.test_case "short circuit effects" `Quick test_short_circuit_effects;
        Alcotest.test_case "pointer equality" `Quick test_pointer_equality;
        Alcotest.test_case "struct field copies" `Quick test_struct_value_copy_semantics;
        Alcotest.test_case "steps monotone" `Quick test_steps_counter_monotone;
      ] );
  ]

(* ---------------------------------------------------------------- *)
(* Checkpointing: journal/COW vs deep-copy oracle                     *)
(* ---------------------------------------------------------------- *)

(* The journal store (write barrier + undo journal, COW forks) and the
   deep store (eager heap duplication) implement the same contract.  The
   properties below drive one of each through the same random interleaving
   of allocations, stores, global writes, snapshots, restores (to random
   stack depths), releases and forks — and require the two to agree on
   every observable at the end, including on every fork taken along the
   way (a fork diverging from its deep twin means state leaked between
   parent and replica through a shared cells array). *)

let checkpoint_program =
  lazy (compile "int g0; int g1; float gf; int arr[3]; void main() { }")

let mk_store mode =
  Store.create ~mode (Lazy.force checkpoint_program) ~input:[ 3; 1; 4; 1; 5 ]

let n_global_slots = 4

let stores_agree sj sd =
  let agree = ref (Store.heap_blocks sj = Store.heap_blocks sd) in
  for b = 0 to Store.heap_blocks sj - 1 do
    if Store.block_cells sj b <> Store.block_cells sd b then agree := false
  done;
  for slot = 0 to n_global_slots - 1 do
    if Store.read_global sj slot <> Store.read_global sd slot then agree := false
  done;
  if Store.outputs sj <> Store.outputs sd then agree := false;
  (* same rng / input-cursor position: the next draws must coincide *)
  if Store.drand sj <> Store.drand sd then agree := false;
  if Store.read_input sj <> Store.read_input sd then agree := false;
  !agree

(* Decode one op from an integer and apply it to both stores.  Every
   choice is derived from the code and the (identical) current state, so
   the two stores always see the same operation. *)
let apply_op sj sd stack copies code =
  let both f =
    f sj;
    f sd
  in
  let n = Store.heap_blocks sj in
  let value c =
    match (c / 7) mod 4 with
    | 0 -> Value.VFloat (float_of_int (c mod 17) /. 3.0)
    | 1 -> if n > 0 then Value.VPtr (c mod n, 0) else Value.VNull
    | _ -> Value.VInt (c mod 1000)
  in
  match code mod 10 with
  | 0 | 1 | 2 ->
      if n > 0 then begin
        let b = code / 10 mod n in
        match Store.block_size sj b with
        | Some sz when sz > 0 ->
            let off = code / 100 mod sz in
            let v = value (code / 1000) in
            both (fun s -> Store.store s ~block:b ~off v)
        | _ -> ()
      end
  | 3 ->
      let slot = code / 10 mod n_global_slots in
      let v = value (code / 100) in
      both (fun s -> Store.write_global s slot v)
  | 4 ->
      let count = 1 + (code / 10 mod 3) in
      both (fun s -> ignore (Store.alloc s [| Layout.KInt |] ~count : int))
  | 5 -> stack := (Store.snapshot sj, Store.snapshot sd) :: !stack
  | 6 -> (
      (* restore a random live snapshot; the ones taken after it are
         invalidated and must only be released *)
      match !stack with
      | [] -> ()
      | live ->
          let k = code / 10 mod List.length live in
          let rec split i acc = function
            | x :: rest when i < k -> split (i + 1) (x :: acc) rest
            | rest -> (List.rev acc, rest)
          in
          let above, keep = split 0 [] live in
          let mj, md = List.hd keep in
          Store.restore sj mj;
          Store.restore sd md;
          List.iter
            (fun (aj, ad) ->
              Store.release sj aj;
              Store.release sd ad)
            above;
          stack := keep)
  | 7 -> (
      match !stack with
      | (mj, md) :: rest ->
          Store.release sj mj;
          Store.release sd md;
          stack := rest
      | [] -> ())
  | 8 ->
      (* fork both stores; dirty the forks identically so COW privatizes
         in the replica direction too *)
      let cj = Store.copy sj and cd = Store.copy sd in
      (match Store.block_size cj 0 with
      | Some sz when sz > 0 ->
          Store.store cj ~block:0 ~off:0 (Value.VInt code);
          Store.store cd ~block:0 ~off:0 (Value.VInt code)
      | _ -> ());
      Store.write_global cj 0 (Value.VInt (code + 1));
      Store.write_global cd 0 (Value.VInt (code + 1));
      copies := (cj, cd) :: !copies
  | _ -> (
      match code / 10 mod 3 with
      | 0 -> both (fun s -> ignore (Store.drand s : float))
      | 1 -> both (fun s -> ignore (Store.read_input s : int))
      | _ -> both (fun s -> Store.print_string_ s (string_of_int (code mod 50))))

let prop_journal_matches_deep =
  QCheck.Test.make ~count:300 ~name:"journal/COW store agrees with deep-copy oracle"
    QCheck.(list (int_range 0 999_999))
    (fun codes ->
      let sj = mk_store Store.Journal and sd = mk_store Store.Deep in
      let stack = ref [] and copies = ref [] in
      List.iter (apply_op sj sd stack copies) codes;
      stores_agree sj sd
      && List.for_all (fun (cj, cd) -> stores_agree cj cd) !copies)

let prop_restore_round_trip =
  QCheck.Test.make ~count:300 ~name:"snapshot/mutate/restore round-trips in both modes"
    QCheck.(pair (list (int_range 0 999_999)) (list (int_range 0 999_999)))
    (fun (pre, post) ->
      (* only non-checkpoint ops: keep the snapshot stack in this test's hands *)
      let mutation_only c = match c mod 10 with 5 | 6 | 7 | 8 -> false | _ -> true in
      let pre = List.filter mutation_only pre and post = List.filter mutation_only post in
      let sj = mk_store Store.Journal and sd = mk_store Store.Deep in
      let stack = ref [] and copies = ref [] in
      List.iter (apply_op sj sd stack copies) pre;
      let mj = Store.snapshot sj and md = Store.snapshot sd in
      List.iter (apply_op sj sd stack copies) post;
      Store.restore sj mj;
      Store.restore sd md;
      let first = stores_agree sj sd in
      (* a snapshot survives repeated restores: mutate and rewind again *)
      List.iter (apply_op sj sd stack copies) post;
      Store.restore sj mj;
      Store.restore sd md;
      Store.release sj mj;
      Store.release sd md;
      first && stores_agree sj sd)

(* Pointers into blocks allocated after the snapshot dangle once restored;
   Observable.capture canonicalizes them to CUndef, so a digest taken
   through a dangling pointer equals one taken through VUndef. *)
let test_dangling_canonicalizes () =
  List.iter
    (fun mode ->
      let st = mk_store mode in
      let snap = Store.snapshot st in
      let b = Store.alloc st [| Layout.KInt |] ~count:2 in
      Store.write_global st 0 (Value.VPtr (b, 0));
      Store.restore st snap;
      Store.release st snap;
      let dangling = Value.VPtr (b, 0) in
      Alcotest.(check bool) "block dangles" true (Store.block_size st b = None);
      let obs = Observable.capture st ~scalars:[ dangling ] ~roots:[] in
      let undef = Observable.capture st ~scalars:[ Value.VUndef ] ~roots:[] in
      Alcotest.(check bool) "dangling pointer digests as undef" true (Observable.equal obs undef))
    [ Store.Journal; Store.Deep ]

let test_stale_snapshot_rejected () =
  let st = mk_store Store.Journal in
  let outer = Store.snapshot st in
  Store.write_global st 0 (Value.VInt 1);
  let inner = Store.snapshot st in
  Store.write_global st 0 (Value.VInt 2);
  Store.restore st outer;
  (match Store.restore st inner with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "restoring an invalidated snapshot must raise");
  let released = Store.snapshot st in
  Store.release st released;
  Store.release st released;
  (* idempotent *)
  match Store.restore st released with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "restoring a released snapshot must raise"

let checkpoint_suites =
  [
    ( "checkpoint",
      [
        QCheck_alcotest.to_alcotest prop_journal_matches_deep;
        QCheck_alcotest.to_alcotest prop_restore_round_trip;
        Alcotest.test_case "dangling canonicalizes" `Quick test_dangling_canonicalizes;
        Alcotest.test_case "stale/released rejected" `Quick test_stale_snapshot_rejected;
      ] );
  ]

let suites = suites @ extra_suites @ checkpoint_suites
