open Dca_support

type origin =
  | Source of { file : string; source : string; input : int list }
  | Benchmark of Dca_progs.Benchmark.t

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

module Options = struct
  type t = {
    jobs : int option;
    config : Commutativity.config option;
    spec : Commutativity.run_spec option;
    deadline_ms : int option;
    heap_words : int option;
    hierarchical : bool;
    static : bool;
    telemetry : Telemetry.Ctx.t option;
  }

  let default =
    {
      jobs = None;
      config = None;
      spec = None;
      deadline_ms = None;
      heap_words = None;
      hierarchical = false;
      static = true;
      telemetry = None;
    }

  let with_jobs jobs t = { t with jobs = Some jobs }
  let with_config config t = { t with config = Some config }
  let with_spec spec t = { t with spec = Some spec }
  let with_deadline_ms ms t = { t with deadline_ms = Some ms }
  let with_heap_words w t = { t with heap_words = Some w }
  let with_hierarchical h t = { t with hierarchical = h }
  let with_static s t = { t with static = s }
  let with_telemetry ctx t = { t with telemetry = Some ctx }

  (* A short deterministic signature of everything that can change an
     analysis result — what a server may key warm-session reuse on.
     [jobs] is deliberately included (it selects the pool width of the
     session) even though results are bit-identical across values.
     [telemetry] is deliberately *excluded*: where the counters land
     cannot change a verdict, so two sessions differing only in their
     pinned context are interchangeable. *)
  let signature t =
    let schedules c =
      String.concat "," (List.map Schedule.to_string c.Commutativity.cc_schedules)
    in
    let opt f = function None -> "-" | Some v -> f v in
    String.concat ";"
      [
        opt string_of_int t.jobs;
        opt
          (fun c ->
            Printf.sprintf "%s|%g|%b|%d|%d" (schedules c) c.Commutativity.cc_eps
              c.Commutativity.cc_escalate c.Commutativity.cc_max_invocations
              c.Commutativity.cc_promote_rounds)
          t.config;
        opt
          (fun s ->
            Printf.sprintf "%s|%d|%s|%s"
              (String.concat "," (List.map string_of_int s.Commutativity.rs_input))
              s.Commutativity.rs_fuel
              (opt string_of_int s.Commutativity.rs_deadline_ns)
              (opt string_of_int s.Commutativity.rs_heap_words))
          t.spec;
        opt string_of_int t.deadline_ms;
        opt string_of_int t.heap_words;
        string_of_bool t.hierarchical;
        string_of_bool t.static;
      ]
end

(* Fold the deprecated per-field optional arguments over an [Options.t]
   base: an explicitly passed legacy argument wins over the corresponding
   options field, so pre-Options embedder code behaves exactly as before. *)
let fold_legacy ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical options =
  let base = Option.value options ~default:Options.default in
  let set v f base = match v with None -> base | Some v -> f v base in
  base
  |> set jobs Options.with_jobs
  |> set config Options.with_config
  |> set spec Options.with_spec
  |> set deadline_ms Options.with_deadline_ms
  |> set heap_words Options.with_heap_words
  |> set hierarchical Options.with_hierarchical

type t = {
  s_name : string;
  s_file : string;
  s_source : string;
  s_input : int list;
  s_jobs : int;
  s_options : Options.t;
  s_config : Commutativity.config;
  s_spec : Commutativity.run_spec;
  s_hierarchical : bool;
  s_tele_ctx : Telemetry.Ctx.t;
  s_tele_pinned : bool;
  s_tele_baseline : (string * int) list;
  mutable s_pool : Pool.t option;
  mutable s_closed : bool;
  mutable s_ir : Dca_ir.Ir.program option;
  mutable s_info : Dca_analysis.Proginfo.t option;
  mutable s_profile : Dca_profiling.Depprof.profile option;
  mutable s_results : Driver.loop_result list option;
  mutable s_plan : Dca_parallel.Plan.t option;
}

let create ?options ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical origin =
  let options = fold_legacy ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical options in
  let name, file, source, input =
    match origin with
    | Source { file; source; input } -> (Filename.basename file, file, source, input)
    | Benchmark bm ->
        ( bm.Dca_progs.Benchmark.bm_name,
          bm.Dca_progs.Benchmark.bm_name ^ ".mc",
          bm.Dca_progs.Benchmark.bm_source,
          bm.Dca_progs.Benchmark.bm_input )
  in
  (* honor DCA_TRACE / DCA_STATS unless the embedder already configured
     telemetry explicitly; a no-op on every later session *)
  Telemetry.init_from_env ();
  (* honor DCA_FAULTS the same way (a front end's --faults wins) *)
  Faultpoint.init_from_env ();
  let jobs = max 1 (match options.Options.jobs with Some j -> j | None -> Pool.default_jobs ()) in
  let config = Option.value options.Options.config ~default:Commutativity.default_config in
  let spec =
    match options.Options.spec with
    | Some s -> s
    | None ->
        Commutativity.make_run_spec
          ?deadline_ns:(Option.map (fun ms -> ms * 1_000_000) options.Options.deadline_ms)
          ?heap_words:options.Options.heap_words input
  in
  (* The session's telemetry context: the one pinned through the options,
     else the creator's ambient (the global context unless the embedder
     scoped one).  Pinning makes the stages run under the context no
     matter who calls them later — the warm-session case, where stage
     demand arrives from a different request than the one that created
     the session, keeps attribution with the pinned owner. *)
  let tele_ctx, tele_pinned =
    match options.Options.telemetry with
    | Some c -> (c, true)
    | None -> (Telemetry.current (), false)
  in
  {
    s_name = name;
    s_file = file;
    s_source = source;
    s_input = input;
    s_jobs = jobs;
    s_options = options;
    s_config = config;
    s_spec = spec;
    s_hierarchical = options.Options.hierarchical;
    s_tele_ctx = tele_ctx;
    s_tele_pinned = tele_pinned;
    (* the per-session telemetry origin: the context's counter values at
       creation.  Empty while counting is disabled — [telemetry] then
       subtracts nothing, which is also correct (disabled counters
       stay 0). *)
    s_tele_baseline = Telemetry.Ctx.counters tele_ctx;
    s_pool = None;
    s_closed = false;
    s_ir = None;
    s_info = None;
    s_profile = None;
    s_results = None;
    s_plan = None;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ?options ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical prog =
  let options = fold_legacy ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical options in
  match Dca_progs.Registry.find prog with
  | Some bm -> Ok (create ~options (Benchmark bm))
  | None ->
      if Sys.file_exists prog then
        Ok (create ~options (Source { file = prog; source = read_file prog; input = [] }))
      else Error (Printf.sprintf "'%s' is neither a built-in benchmark nor a file" prog)

let name t = t.s_name
let file t = t.s_file
let source t = t.s_source
let input t = t.s_input
let jobs t = t.s_jobs
let options t = t.s_options
let config t = t.s_config
let spec t = t.s_spec
let hierarchical t = t.s_hierarchical

let memo cell compute store =
  match cell with
  | Some v -> v
  | None ->
      let v = compute () in
      store v;
      v

(* Stage computations of a pinned session run under the pinned context;
   an unpinned session computes under whatever ambient the caller has
   (historically the global context) so nothing changes for existing
   embedders. *)
let in_ctx t f = if t.s_tele_pinned then Telemetry.with_ctx t.s_tele_ctx f else f ()

let ir t =
  memo t.s_ir
    (fun () ->
      in_ctx t (fun () ->
          Telemetry.span ~cat:"frontend" "session.ir" (fun () ->
              Dca_ir.Lower.compile ~file:t.s_file t.s_source)))
    (fun v -> t.s_ir <- Some v)

let proginfo t =
  memo t.s_info
    (fun () ->
      let prog = ir t in
      in_ctx t (fun () ->
          Telemetry.span ~cat:"static" "session.proginfo" (fun () ->
              Dca_analysis.Proginfo.analyze prog)))
    (fun v -> t.s_info <- Some v)

let profile t =
  memo t.s_profile
    (fun () ->
      let info = proginfo t in
      in_ctx t (fun () ->
          Telemetry.span ~cat:"profile" "session.profile" (fun () ->
              Dca_profiling.Depprof.profile_program ~input:t.s_input info)))
    (fun v -> t.s_profile <- Some v)

(* The pool exists only while the session wants parallel stages: started on
   first demand, torn down by [close].  A closed session (or [jobs = 1])
   yields no pool and the stages run sequentially. *)
let pool_of t =
  if t.s_jobs <= 1 || t.s_closed then None
  else
    match t.s_pool with
    | Some _ as p -> p
    | None ->
        let p = Pool.create ~jobs:t.s_jobs in
        t.s_pool <- Some p;
        Some p

let pool = pool_of

let dca_results t =
  memo t.s_results
    (fun () ->
      let info = proginfo t in
      in_ctx t (fun () ->
          Telemetry.span ~cat:"dynamic" "session.dca" (fun () ->
              Driver.analyze_program ~config:t.s_config ~spec:t.s_spec
                ~hierarchical:t.s_hierarchical ~static:t.s_options.Options.static
                ?pool:(pool_of t) info)))
    (fun v -> t.s_results <- Some v)

let compute_plan t ~machine ~strategy =
  let info = proginfo t in
  let prof = profile t in
  let detected = Driver.commutative_ids (dca_results t) in
  in_ctx t (fun () ->
      Telemetry.span ~cat:"plan" "session.plan" (fun () ->
          Dca_parallel.Planner.select ~machine info prof ~detected ~strategy))

let plan ?machine ?strategy t =
  match (machine, strategy) with
  | None, None ->
      memo t.s_plan
        (fun () ->
          compute_plan t ~machine:Dca_parallel.Machine.default ~strategy:Dca_parallel.Planner.Best_benefit)
        (fun v -> t.s_plan <- Some v)
  | _ ->
      compute_plan t
        ~machine:(Option.value machine ~default:Dca_parallel.Machine.default)
        ~strategy:(Option.value strategy ~default:Dca_parallel.Planner.Best_benefit)

let advise t = Advisor.advise (proginfo t) (profile t) (dca_results t)
let report t = Report.to_string (dca_results t)

let telemetry_global _t = Telemetry.Ctx.counters Telemetry.Ctx.global

(* Counters attributable to this session: the session context's current
   value minus the value at creation.  Counters registered after the
   baseline was taken (first use anywhere in the process) subtract an
   implicit 0.  Zero deltas are elided so a quiet session reports an
   empty list, like a disabled one.  With a pinned context the deltas
   are exact even while other sessions run concurrently in their own
   contexts — nothing else writes into this one. *)
let telemetry t =
  Telemetry.Ctx.counters t.s_tele_ctx
  |> List.filter_map (fun (k, v) ->
         let d = v - (match List.assoc_opt k t.s_tele_baseline with Some b -> b | None -> 0) in
         if d = 0 then None else Some (k, d))

let close t =
  t.s_closed <- true;
  match t.s_pool with
  | Some p ->
      t.s_pool <- None;
      Pool.shutdown p
  | None -> ()

let with_session ?options ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical origin f =
  let options = fold_legacy ?jobs ?config ?spec ?deadline_ms ?heap_words ?hierarchical options in
  let t = create ~options origin in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
