lib/ir/ir_printer.ml: Array Ast Buffer Dca_frontend Ir List Printf String
