(** Hand-written lexer for MiniC.

    Supports line comments ([// ...]) and block comments ([/* ... */],
    non-nesting), decimal integer and floating-point literals (with optional
    exponent), string literals with backslash-n/t/backslash/quote escapes. *)

val tokenize : file:string -> string -> (Token.t * Loc.t) list
(** Tokenize a full source buffer.  The resulting list always ends with
    [Token.Eof].  Raises [Loc.Error] on malformed input. *)
