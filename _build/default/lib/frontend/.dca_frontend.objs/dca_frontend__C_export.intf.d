lib/frontend/c_export.mli: Ast
