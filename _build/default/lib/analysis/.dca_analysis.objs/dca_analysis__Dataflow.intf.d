lib/analysis/dataflow.mli: Dca_ir
