test/test_parallel.ml: Alcotest Array Dca_analysis Dca_core Dca_ir Dca_parallel Dca_profiling Float Gen List Machine Plan Planner Printf QCheck QCheck_alcotest Speedup String
