(** Liveness of frame variables (locals, parameters, temporaries).

    Backward may-analysis over variable ids.  On top of the per-block
    facts, the module computes the loop-level sets the paper's analysis is
    built on:

    - {e live-in} of a loop: variables live at the loop header that are
      read inside the loop before being overwritten;
    - {e live-out} of a loop: variables that are (possibly) defined inside
      the loop and live along some exit edge — exactly the scalars whose
      values DCA's live-out verification must compare.

    Global scalars and heap cells are memory, handled dynamically by the
    observable-state digest rather than statically here. *)

type t

val analyze : Dca_ir.Cfg.t -> t

val live_in : t -> int -> Dca_support.Intset.t
(** Variable ids live at block entry. *)

val live_out : t -> int -> Dca_support.Intset.t

val block_uses : t -> int -> Dca_support.Intset.t
(** Upward-exposed uses of the block. *)

val block_defs : t -> int -> Dca_support.Intset.t

val loop_defs : t -> Loops.loop -> Dca_support.Intset.t
(** Variable ids possibly defined by instructions of the loop. *)

val loop_live_exit : t -> Loops.loop -> Dca_support.Intset.t
(** All variables live along some exit edge of the loop (or used by a
    [Ret] that exits the function from inside the loop), whether or not
    the loop defines them.  Pointers among them reach the heap the caller
    can still observe after the loop — the digest roots itself there. *)

val loop_live_out : t -> Loops.loop -> Dca_support.Intset.t
(** Loop-defined variables live along some exit edge of the loop (or used
    by a [Ret] that exits the function from inside the loop):
    [loop_live_exit] restricted to [loop_defs]. *)

val loop_live_in : t -> Loops.loop -> Dca_support.Intset.t
(** Variables live at the loop header and not defined before use inside —
    the values the loop consumes from outside. *)

val var_of_id : t -> int -> Dca_ir.Ir.var option
(** Recover the variable record from its id (for reporting). *)
