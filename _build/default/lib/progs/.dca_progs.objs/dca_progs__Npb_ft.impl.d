lib/progs/npb_ft.ml: Benchmark
