(* Unix-domain-socket transport for the serve engine.

   One accept loop feeding a pool of worker domains: accepted
   connections are queued; each worker owns one connection at a time
   and serves its request lines in order, so per-connection replies are
   sequential while the daemon as a whole serves [sv_workers]
   connections concurrently.  The engine underneath is concurrency-safe
   (per-request telemetry contexts, a locked verdict cache, a
   writer-priority gate for fault-carrying requests), so replies are
   byte-identical to a serial daemon's.

   Request admission is a reservation: a worker reserves a budget slot
   under the state lock *before* handing the line to the engine and
   counts the completion exactly once afterwards — with [--max-requests n]
   the daemon serves exactly [n] requests no matter how many
   connections race for the tail of the budget.  Once stopped (budget
   exhausted or a [shutdown] request), the accept loop is woken by a
   dummy connect and every active connection is read-shutdown so a
   worker blocked on an idle persistent connection cannot stall the
   exit.

   Every request is wrapped in a Telemetry span carrying the
   server-assigned request id and appended to the JSONL access log (one
   object per request: timestamp, ids, op, program, status,
   loop/hit/miss counts, elapsed time), and the metrics exposition is
   rewritten to [sv_metrics_file] (atomically, temp + rename) after
   every request — the same id threads the access log, the trace, and
   the reply ([rp_req]), so one request can be followed across all
   three sinks. *)

type config = {
  sv_socket : string;
  sv_cache_dir : string option;
  sv_cache_capacity : int option;
  sv_sessions : int;
  sv_jobs : int option;
  sv_workers : int;  (* concurrent connections served; 1 = the old serial daemon *)
  sv_access_log : string option;
  sv_metrics_file : string option;  (* Prometheus-style exposition, rewritten per request *)
  sv_max_requests : int option;  (* stop after N requests: tests, smoke runs *)
}

let default_config socket =
  {
    sv_socket = socket;
    sv_cache_dir = None;
    sv_cache_capacity = None;
    sv_sessions = 8;
    sv_jobs = None;
    sv_workers = 4;
    sv_access_log = None;
    sv_metrics_file = None;
    sv_max_requests = None;
  }

(* A leftover socket file from a crashed daemon would make bind fail.
   Only reclaim the path if nothing answers on it — a live daemon's
   socket is left alone and surfaces as an address-in-use error. *)
let reclaim_stale_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if not live then try Sys.remove path with Sys_error _ -> ()
  end

let program_name = function
  | Some (Protocol.Named n) -> n
  | Some (Protocol.Inline { file; _ }) -> file ^ " (inline)"
  | None -> ""

type state = {
  engine : Engine.t;
  cfg : config;
  lock : Mutex.t;
  cond : Condition.t;  (* queue arrivals and shutdown, for the workers *)
  queue : Unix.file_descr Queue.t;
  active : (Unix.file_descr, unit) Hashtbl.t;  (* connections being served *)
  mutable reserved : int;  (* budget slots handed out *)
  mutable served : int;  (* requests completed (replied or reply attempted) *)
  mutable stop : bool;  (* no further admissions *)
  mutable closed : bool;  (* workers may exit once the queue drains *)
  access : out_channel option;
  log_lock : Mutex.t;
  metrics_lock : Mutex.t;
}

let log_request st (rq : Protocol.request) (rp : Protocol.response) =
  match st.access with
  | None -> ()
  | Some oc ->
      let entry =
        Json.Obj
          [
            ("ts_ns", Json.Int (Dca_support.Telemetry.now_ns ()));
            ("id", Json.Int rq.Protocol.rq_id);
            ("req", Json.Int rp.Protocol.rp_req);
            ("op", Json.Str (Protocol.op_to_string rq.Protocol.rq_op));
            ("program", Json.Str (program_name rq.Protocol.rq_program));
            ("status", Json.Str (if rp.Protocol.rp_ok then "ok" else "error"));
            ("loops", Json.Int (List.length rp.Protocol.rp_loops));
            ("hits", Json.Int rp.Protocol.rp_hits);
            ("misses", Json.Int rp.Protocol.rp_misses);
            ("elapsed_ns", Json.Int rp.Protocol.rp_elapsed_ns);
          ]
      in
      Mutex.protect st.log_lock (fun () ->
          output_string oc (Json.to_string entry);
          output_char oc '\n';
          flush oc)

let write_metrics_file st =
  match st.cfg.sv_metrics_file with
  | None -> ()
  | Some file ->
      Mutex.protect st.metrics_lock (fun () ->
          try
            let data = Metrics.exposition (Metrics.snapshot (Engine.metrics st.engine)) in
            let tmp = file ^ ".tmp" in
            let oc = open_out tmp in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc data);
            Sys.rename tmp file
          with Sys_error _ -> ())

(* Wake the accept loop out of a blocking [accept]: connect and hang up.
   The accepted descriptor is discarded by the stopped loop. *)
let wake_accept st =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect s (Unix.ADDR_UNIX st.cfg.sv_socket) with Unix.Unix_error _ -> ());
  try Unix.close s with Unix.Unix_error _ -> ()

(* Force workers blocked in [input_line] on idle persistent connections
   to see end-of-file.  Reads only — a reply in flight still goes out. *)
let shutdown_active st =
  let fds = Mutex.protect st.lock (fun () -> Hashtbl.fold (fun fd () acc -> fd :: acc) st.active []) in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    fds

let enter_stop st =
  wake_accept st;
  shutdown_active st

(* Reserve one budget slot.  Refusals close the connection; exhausting
   the budget flips [stop] so the accept loop and the other workers
   wind down. *)
let admit st =
  let admitted, stopped =
    Mutex.protect st.lock (fun () ->
        if st.stop then (false, false)
        else begin
          st.reserved <- st.reserved + 1;
          match st.cfg.sv_max_requests with
          | Some n when st.reserved >= n ->
              st.stop <- true;
              (true, true)
          | _ -> (true, false)
        end)
  in
  if stopped then enter_stop st;
  admitted

let note_served st (rq : Protocol.request) =
  let stopped =
    Mutex.protect st.lock (fun () ->
        st.served <- st.served + 1;
        if rq.Protocol.rq_op = Protocol.Shutdown && not st.stop then begin
          st.stop <- true;
          true
        end
        else false)
  in
  if stopped then enter_stop st

let handle_line st rq_line =
  match Protocol.parse_request rq_line with
  | Error msg ->
      (Protocol.default_request, Protocol.error_response ~id:0 ("bad request: " ^ msg))
  | Ok rq ->
      let module T = Dca_support.Telemetry in
      let name = "serve." ^ Protocol.op_to_string rq.Protocol.rq_op in
      let traced = T.tracing () in
      if traced then T.begin_span ~cat:"serve" name;
      let rp =
        match Engine.handle st.engine rq with
        | rp ->
            if traced then
              T.end_span
                ~args:
                  [
                    ("req", string_of_int rp.Protocol.rp_req);
                    ("id", string_of_int rq.Protocol.rq_id);
                    ("status", if rp.Protocol.rp_ok then "ok" else "error");
                  ]
                name;
            rp
        | exception e ->
            if traced then T.end_span name;
            raise e
      in
      (rq, rp)

let serve_connection st fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let continue = ref true in
  while !continue do
    match input_line ic with
    | line ->
        if String.trim line <> "" then
          if admit st then begin
            let rq, rp = handle_line st line in
            (try
               output_string oc (Protocol.response_line rp);
               output_char oc '\n';
               flush oc
             with Sys_error _ -> ());
            log_request st rq rp;
            write_metrics_file st;
            note_served st rq
          end
          else continue := false
    | exception End_of_file -> continue := false
    | exception Sys_error _ -> continue := false
  done

let worker_loop st =
  let running = ref true in
  while !running do
    Mutex.lock st.lock;
    let rec take () =
      match Queue.take_opt st.queue with
      | Some fd -> Some fd
      | None -> if st.closed then None else (Condition.wait st.cond st.lock; take ())
    in
    let item = take () in
    (match item with Some fd -> Hashtbl.replace st.active fd () | None -> ());
    Mutex.unlock st.lock;
    match item with
    | Some fd ->
        Metrics.gauge_add (Engine.metrics st.engine) "dca_queue_depth" (-1);
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect st.lock (fun () -> Hashtbl.remove st.active fd);
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> serve_connection st fd)
    | None -> running := false
  done

let run cfg =
  reclaim_stale_socket cfg.sv_socket;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind sock (Unix.ADDR_UNIX cfg.sv_socket) with
  | () -> ()
  | exception e ->
      Unix.close sock;
      raise e);
  Unix.listen sock 64;
  let engine =
    Engine.create ?cache_dir:cfg.sv_cache_dir ?cache_capacity:cfg.sv_cache_capacity
      ~sessions:cfg.sv_sessions ?jobs:cfg.sv_jobs ()
  in
  let access =
    Option.map (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path) cfg.sv_access_log
  in
  let st =
    {
      engine;
      cfg;
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 16;
      reserved = 0;
      served = 0;
      stop = false;
      closed = false;
      access;
      log_lock = Mutex.create ();
      metrics_lock = Mutex.create ();
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Engine.close engine;
      write_metrics_file st;
      Option.iter close_out_noerr access;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove cfg.sv_socket with Sys_error _ -> ())
    (fun () ->
      (* Workers inherit the acceptor's telemetry context, exactly like
         pool tasks: daemon-level spans land in the daemon's context. *)
      let tele = Dca_support.Telemetry.current () in
      let workers =
        List.init
          (max 1 cfg.sv_workers)
          (fun _ -> Domain.spawn (fun () -> Dca_support.Telemetry.with_ctx tele (fun () -> worker_loop st)))
      in
      (* The accept loop: enqueue until stopped.  A stop flipped by a
         worker wakes a blocking [accept] through [wake_accept]. *)
      while Mutex.protect st.lock (fun () -> not st.stop) do
        match Unix.accept sock with
        | fd, _ ->
            let enq =
              Mutex.protect st.lock (fun () ->
                  if st.stop then false
                  else begin
                    Queue.add fd st.queue;
                    Condition.broadcast st.cond;
                    true
                  end)
            in
            if enq then Metrics.gauge_add (Engine.metrics st.engine) "dca_queue_depth" 1
            else ( try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      (* Drain: workers finish in-flight connections (admission is shut),
         discard the queued rest, and exit. *)
      Mutex.protect st.lock (fun () ->
          st.closed <- true;
          Condition.broadcast st.cond);
      List.iter Domain.join workers;
      st.served)
