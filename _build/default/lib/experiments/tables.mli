(** Reproductions of the paper's Tables I–IV (see DESIGN.md §4).

    Every generator returns structured rows (asserted on by the
    integration tests) and renders a text table that prints the paper's
    reference numbers next to our measurements. *)

type t1_row = {
  t1_name : string;
  t1_loops : int;
  t1_depprof : int;
  t1_discopop : int;
  t1_dca : int;
}

val table1 : unit -> t1_row list
val render_table1 : t1_row list -> string

type t2_row = {
  t2_name : string;
  t2_function : string;  (** hot loop-containing function (paper column 3) *)
  t2_dca_detects : bool;  (** DCA finds the hot loop commutative *)
  t2_baselines_detect : int;  (** how many of the five baselines detect the hot loop (paper: 0) *)
  t2_coverage : float;  (** our measured sequential coverage of DCA-detected loops *)
  t2_skeleton : string;  (** detected parallel skeleton of the hot loop (paper §VII direction) *)
}

val table2 : unit -> t2_row list
val render_table2 : t2_row list -> string

type t3_row = {
  t3_name : string;
  t3_loops : int;
  t3_idioms : int;
  t3_polly : int;
  t3_icc : int;
  t3_combined : int;
  t3_dca : int;
}

val table3 : unit -> t3_row list
val render_table3 : t3_row list -> string

type t4_row = {
  t4_name : string;
  t4_loops : int;
  t4_found : int;
  t4_false_pos : int;
  t4_false_neg : int;
  t4_dca_coverage : float;
  t4_static_coverage : float;
}

val table4 : unit -> t4_row list
val render_table4 : t4_row list -> string
