(* Tests of the fault-isolation layer: the [Faultpoint] injection
   registry, the evaluator's resource guards, per-loop crash containment
   in the driver, and the degradation paths (a resource exhaustion or an
   injected fault must surface as a classified verdict, never as a dead
   analysis).

   The fault plan is process-global, exactly like the telemetry flags:
   every test that arms a plan disarms it on the way out so suites stay
   independent. *)

module FP = Dca_support.Faultpoint
module T = Dca_support.Telemetry
module Eval = Dca_interp.Eval
module Session = Dca_core.Session
module Commutativity = Dca_core.Commutativity
module Driver = Dca_core.Driver

let compile src = Dca_ir.Lower.compile ~file:"<test>" src
let analyze ?config ?spec ?static src =
  Dca_core.Driver.analyze_source ?config ?spec ?static ~file:"<test>" src

let light_config =
  {
    Commutativity.default_config with
    Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles:1 ();
    cc_max_invocations = 2;
  }

(* ------------------------------------------------------------------ *)
(* Fault-plan parsing                                                  *)
(* ------------------------------------------------------------------ *)

let spec site ?ctx ?(nth = 1) ?(repeat = false) action =
  { FP.sp_site = site; sp_ctx = ctx; sp_nth = nth; sp_repeat = repeat; sp_action = action }

let test_parse_roundtrip () =
  let plan = "driver.loop[main:3(d1)]@2+=trap;eval.step=delay:5;store.snapshot@3=fuel" in
  match FP.parse plan with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok specs ->
      Alcotest.(check int) "three entries" 3 (List.length specs);
      let s0 = List.nth specs 0 in
      Alcotest.(check string) "site" "driver.loop" s0.FP.sp_site;
      Alcotest.(check (option string)) "ctx" (Some "main:3(d1)") s0.FP.sp_ctx;
      Alcotest.(check int) "nth" 2 s0.FP.sp_nth;
      Alcotest.(check bool) "repeat" true s0.FP.sp_repeat;
      Alcotest.(check bool) "action" true (s0.FP.sp_action = FP.Trap);
      let s1 = List.nth specs 1 in
      Alcotest.(check int) "default nth" 1 s1.FP.sp_nth;
      Alcotest.(check bool) "delay action" true (s1.FP.sp_action = FP.Delay_ms 5);
      (* the printed plan must parse back to the same specs *)
      (match FP.parse (FP.plan_to_string specs) with
      | Ok specs' -> Alcotest.(check bool) "round-trip" true (specs = specs')
      | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg)

let test_parse_errors () =
  let bad plan =
    match FP.parse plan with
    | Ok _ -> Alcotest.failf "plan %S should not parse" plan
    | Error _ -> ()
  in
  bad "driver.loop";
  bad "driver.loop=explode";
  bad "driver.loop=delay:soon";
  bad "=raise";
  (* arm_string surfaces the same failure as the typed exception the CLI
     maps to exit code 2 *)
  (match FP.arm_string "nope" with
  | exception FP.Bad_plan _ -> ()
  | () -> Alcotest.fail "arm_string of a bad plan must raise Bad_plan");
  Alcotest.(check bool) "a failed arm leaves the registry disarmed" false (FP.armed ())

(* ------------------------------------------------------------------ *)
(* Firing semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_disarmed_is_pass () =
  FP.disarm ();
  let s = FP.site "test.disarmed" in
  for _ = 1 to 100 do
    match FP.hit s with
    | FP.Pass -> ()
    | _ -> Alcotest.fail "disarmed site must never fire"
  done

let test_one_shot_vs_repeat () =
  let s = FP.site "test.oneshot" in
  Fun.protect ~finally:FP.disarm (fun () ->
      FP.arm [ spec "test.oneshot" ~nth:2 FP.Raise ];
      (match FP.hit s with FP.Pass -> () | _ -> Alcotest.fail "hit 1 must pass");
      (match FP.hit s with
      | exception FP.Injected _ -> ()
      | _ -> Alcotest.fail "hit 2 must raise");
      (match FP.hit s with FP.Pass -> () | _ -> Alcotest.fail "hit 3 must pass (one-shot)");
      Alcotest.(check int) "fired once" 1 (FP.fired ());
      FP.arm [ spec "test.oneshot" ~nth:2 ~repeat:true FP.Raise ];
      (match FP.hit s with FP.Pass -> () | _ -> Alcotest.fail "hit 1 must pass");
      (match FP.hit s with
      | exception FP.Injected _ -> ()
      | _ -> Alcotest.fail "hit 2 must raise");
      (match FP.hit s with
      | exception FP.Injected _ -> ()
      | _ -> Alcotest.fail "hit 3 must raise (repeating)");
      (* a reset re-arms the one-shot clock *)
      FP.arm [ spec "test.oneshot" FP.Raise ];
      (match FP.hit s with
      | exception FP.Injected _ -> ()
      | _ -> Alcotest.fail "first hit must raise");
      (match FP.hit s with FP.Pass -> () | _ -> Alcotest.fail "spent");
      FP.reset_hits ();
      match FP.hit s with
      | exception FP.Injected _ -> ()
      | _ -> Alcotest.fail "reset_hits must re-enable the one-shot")

let test_ctx_scoping_and_actions () =
  let s = FP.site "test.scoped" in
  Fun.protect ~finally:FP.disarm (fun () ->
      FP.arm [ spec "test.scoped" ~ctx:"a" ~repeat:true FP.Trap ];
      (match FP.hit ~ctx:"b" s with FP.Pass -> () | _ -> Alcotest.fail "ctx 'b' must not fire");
      (match FP.hit s with FP.Pass -> () | _ -> Alcotest.fail "no-ctx hit must not fire");
      (match FP.hit ~ctx:"a" s with
      | FP.Fire_trap -> ()
      | _ -> Alcotest.fail "ctx 'a' must fire as a trap");
      FP.arm [ spec "test.scoped" ~repeat:true FP.Fuel ];
      (match FP.hit ~ctx:"anything" s with
      | FP.Fire_fuel -> ()
      | _ -> Alcotest.fail "unscoped spec must fire for any ctx");
      (* hit_unit folds the soft firings into the Injected exception *)
      match FP.hit_unit s with
      | exception FP.Injected msg ->
          Alcotest.(check bool) "message is recognizable" true (FP.is_injected_message msg)
      | () -> Alcotest.fail "hit_unit must raise on a firing site")

(* ------------------------------------------------------------------ *)
(* Evaluator resource guards                                           *)
(* ------------------------------------------------------------------ *)

(* A single loop that executes far more than [Eval.guard_interval] steps,
   so the periodic guard is guaranteed to run. *)
let long_loop_src =
  {|
  int acc;
  void main() {
    int i;
    for (i = 0; i < 20000; i = i + 1) { acc = acc + i; }
    printi(acc);
  }
  |}

let alloc_loop_src =
  {|
  struct node { int val; struct node *next; }
  struct node *head;
  int n;
  void main() {
    int i;
    for (i = 0; i < 200000; i = i + 1) {
      struct node *x = new struct node;
      x->val = i;
      x->next = head;
      head = x;
      n = n + 1;
    }
    printi(n);
  }
  |}

let test_eval_deadline_guard () =
  let p = compile long_loop_src in
  let ctx = Eval.create ~deadline_ns:1 p in
  match Eval.run_main ctx with
  | exception Eval.Deadline_exceeded -> ()
  | () -> Alcotest.fail "a 1ns deadline must fire on a 100k-step program"

let test_eval_heap_guard () =
  let p = compile alloc_loop_src in
  let ctx = Eval.create ~heap_words:1_000 p in
  match Eval.run_main ctx with
  | exception Eval.Heap_exhausted -> ()
  | () -> Alcotest.fail "a 1k-word heap budget must fire on a 200k-allocation program"

let test_eval_no_guard_unaffected () =
  (* without explicit budgets the program runs to completion *)
  let p = compile long_loop_src in
  let ctx = Eval.create p in
  Eval.run_main ctx;
  Alcotest.(check bool) "ran to completion" true (Eval.steps ctx > Eval.guard_interval)

let test_eval_step_injection () =
  let p = compile long_loop_src in
  Fun.protect ~finally:FP.disarm (fun () ->
      FP.arm [ spec "eval.step" FP.Trap ];
      let ctx = Eval.create p in
      (match Eval.run_main ctx with
      | exception Eval.Trap msg ->
          Alcotest.(check bool) "trap carries the injection marker" true
            (FP.is_injected_message msg)
      | () -> Alcotest.fail "an armed eval.step trap must fire");
      FP.arm [ spec "eval.step" FP.Fuel ];
      let ctx = Eval.create p in
      match Eval.run_main ctx with
      | exception Eval.Out_of_fuel -> ()
      | () -> Alcotest.fail "an armed eval.step fuel fault must fire")

(* ------------------------------------------------------------------ *)
(* Degradation paths of the dynamic stage                              *)
(* ------------------------------------------------------------------ *)

let untested_ok (r : Driver.loop_result) =
  match r.Driver.lr_decision with Driver.Rejected _ -> true | _ -> false

(* Fuel exhaustion during the golden run degrades the loop to
   [Untestable] — never to a crash — and the verdict is identical across
   worker counts and checkpoint modes. *)
let test_fuel_exhaustion_untestable () =
  let report jobs checkpoint =
    Unix.putenv "DCA_CHECKPOINT" checkpoint;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "DCA_CHECKPOINT" "")
      (fun () ->
        Session.with_session ~jobs ~config:light_config
          ~spec:(Commutativity.make_run_spec ~fuel:2_000 [])
          (Session.Source { file = "<fuel>"; source = long_loop_src; input = [] })
          (fun s ->
            (match Session.dca_results s with
            | [ r ] when not (untested_ok r) -> (
                match r.Driver.lr_decision with
                | Driver.Untestable why ->
                    Alcotest.(check bool)
                      (Printf.sprintf "fuel verdict (%s)" why)
                      true
                      (why = "program ran out of fuel")
                | d -> Alcotest.failf "expected untestable, got %s" (Driver.decision_to_string d))
            | _ -> ());
            Session.report s))
  in
  let base = report 1 "" in
  Alcotest.(check string) "jobs=4 report identical" base (report 4 "");
  Alcotest.(check string) "deep-checkpoint report identical" base (report 2 "deep")

(* A genuine guest trap that only occurs under a permuted schedule is
   order-dependence evidence: division by zero when the reverse replay
   reads a cell the forward order would have initialized. *)
let test_replay_trap_is_non_commutative () =
  let src =
    {|
    int b[18];
    int out;
    void main() {
      int i;
      b[0] = 1;
      for (i = 0; i < 16; i = i + 1) {
        out = out + (100 / b[i]);
        b[i + 1] = 1;
      }
      printi(out);
    }
    |}
  in
  let _, results = analyze ~config:light_config src in
  match List.filter (fun r -> not (untested_ok r)) results with
  | [ r ] -> (
      match r.Driver.lr_decision with
      | Driver.Non_commutative why ->
          Alcotest.(check bool)
            (Printf.sprintf "trap cited as evidence (%s)" why)
            true
            (let has sub =
               let n = String.length sub and m = String.length why in
               let rec go i = i + n <= m && (String.sub why i n = sub || go (i + 1)) in
               go 0
             in
             has "trap")
      | d -> Alcotest.failf "expected non-commutative, got %s" (Driver.decision_to_string d))
  | rs -> Alcotest.failf "expected 1 tested loop, got %d" (List.length rs)

(* An injected trap scoped to one replay schedule flows through the same
   classification: the loop is reported order-dependent with the injected
   message as the witness, not crashed. *)
let test_injected_replay_trap () =
  let src =
    {|
    int a[16];
    void main() {
      int i;
      for (i = 0; i < 16; i = i + 1) { a[i] = a[i] + 1; }
      printi(a[3]);
    }
    |}
  in
  Fun.protect ~finally:FP.disarm (fun () ->
      FP.arm [ spec "commutativity.replay" ~ctx:"reverse" FP.Trap ];
      (* prover off: the loop is statically provable, and a proved loop
         never reaches the replay faultpoint *)
      let _, results = analyze ~config:light_config ~static:false src in
      match List.filter (fun r -> not (untested_ok r)) results with
      | [ r ] -> (
          match r.Driver.lr_decision with
          | Driver.Non_commutative why ->
              Alcotest.(check bool)
                (Printf.sprintf "injected witness (%s)" why)
                true (FP.is_injected_message why)
          | d -> Alcotest.failf "expected non-commutative, got %s" (Driver.decision_to_string d))
      | rs -> Alcotest.failf "expected 1 tested loop, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* Driver-level containment and retry                                  *)
(* ------------------------------------------------------------------ *)

(* Three independent loops; killing one must leave the other two's
   verdicts and the report's ordering bit-identical, at any job count. *)
let three_loops_src =
  {|
  int a[16];
  int b[16];
  int c[16];
  void main() {
    int i;
    for (i = 0; i < 16; i = i + 1) { a[i] = a[i] + 1; }
    for (i = 0; i < 16; i = i + 1) { b[i] = b[i] * 2; }
    for (i = 0; i < 16; i = i + 1) { c[i] = c[i] + 3; }
    printi(a[1] + b[2] + c[3]);
  }
  |}

let session_lines jobs =
  Session.with_session ~jobs ~config:light_config
    (Session.Source { file = "<fault>"; source = three_loops_src; input = [] })
    (fun s ->
      let report = Session.report s in
      let labels =
        List.filter_map
          (fun (r : Driver.loop_result) ->
            if untested_ok r then None else Some r.Driver.lr_label)
          (Session.dca_results s)
      in
      (report, labels))

let test_containment_is_deterministic () =
  FP.disarm ();
  let baseline, labels = session_lines 1 in
  let victim = match labels with _ :: v :: _ -> v | _ -> Alcotest.fail "need >= 2 loops" in
  Fun.protect ~finally:FP.disarm (fun () ->
      FP.arm [ spec "driver.loop" ~ctx:victim FP.Raise ];
      let faulted, _ = (FP.reset_hits (); session_lines 1) in
      let faulted4, _ = (FP.reset_hits (); session_lines 4) in
      (* the whole faulted report — victim verdict, sibling verdicts,
         ordering, footer — must be byte-identical across job counts *)
      Alcotest.(check string) "jobs=1 vs jobs=4 under fault" faulted faulted4;
      let split r = String.split_on_char '\n' r in
      let is_victim line =
        (* report lines start with the padded loop label *)
        String.length line > 2
        &&
        let body = String.trim line in
        String.length body >= String.length victim
        && String.sub body 0 (String.length victim) = victim
      in
      let base_lines = split baseline and fault_lines = split faulted in
      Alcotest.(check int) "same line count" (List.length base_lines) (List.length fault_lines);
      List.iter2
        (fun b f ->
          if is_victim b then begin
            Alcotest.(check bool)
              (Printf.sprintf "victim is aborted (%s)" f)
              true
              (FP.is_injected_message f
              &&
              let has sub =
                let n = String.length sub and m = String.length f in
                let rec go i = i + n <= m && (String.sub f i n = sub || go (i + 1)) in
                go 0
              in
              has "aborted: crash:")
          end
          else if
            (* every non-victim line, headers and counter footers included,
               may differ only in the aggregate columns *)
            is_victim f
          then Alcotest.fail "victim line moved"
          else if b <> f then begin
            (* the only other lines allowed to change are the aggregate
               header and the counters footer *)
            let aggregate line =
              let has sub s =
                let n = String.length sub and m = String.length s in
                let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
                go 0
              in
              has "DCA:" line || has "counters:" line
            in
            Alcotest.(check bool)
              (Printf.sprintf "only aggregates may drift (%S vs %S)" b f)
              true (aggregate b && aggregate f)
          end)
        base_lines fault_lines)

(* A deadline that cannot be met is retried once with a 4x budget, then
   surfaced as a classified abort with the retry count. *)
let test_deadline_abort_and_retry () =
  let _, results =
    analyze ~config:light_config
      ~spec:(Commutativity.make_run_spec ~deadline_ns:1 [])
      long_loop_src
  in
  match List.filter (fun r -> not (untested_ok r)) results with
  | [ r ] -> (
      match r.Driver.lr_decision with
      | Driver.Aborted { ab_cause = Driver.Deadline; ab_retries } ->
          Alcotest.(check int) "one escalated retry was consumed" 1 ab_retries
      | d -> Alcotest.failf "expected a deadline abort, got %s" (Driver.decision_to_string d))
  | rs -> Alcotest.failf "expected 1 tested loop, got %d" (List.length rs)

let test_heap_abort_no_retry () =
  let _, results =
    analyze ~config:light_config
      ~spec:(Commutativity.make_run_spec ~heap_words:1_000 [])
      alloc_loop_src
  in
  match List.filter (fun r -> not (untested_ok r)) results with
  | [ r ] -> (
      match r.Driver.lr_decision with
      | Driver.Aborted { ab_cause = Driver.Heap; ab_retries } ->
          Alcotest.(check int) "heap exhaustion is not retried" 0 ab_retries
      | d -> Alcotest.failf "expected a heap abort, got %s" (Driver.decision_to_string d))
  | rs -> Alcotest.failf "expected 1 tested loop, got %d" (List.length rs)

let suites =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "disarmed sites pass" `Quick test_disarmed_is_pass;
        Alcotest.test_case "one-shot vs repeating" `Quick test_one_shot_vs_repeat;
        Alcotest.test_case "ctx scoping and actions" `Quick test_ctx_scoping_and_actions;
      ] );
    ( "fault.guards",
      [
        Alcotest.test_case "deadline guard fires" `Quick test_eval_deadline_guard;
        Alcotest.test_case "heap guard fires" `Quick test_eval_heap_guard;
        Alcotest.test_case "no guard, no effect" `Quick test_eval_no_guard_unaffected;
        Alcotest.test_case "eval.step injection" `Quick test_eval_step_injection;
      ] );
    ( "fault.degradation",
      [
        Alcotest.test_case "fuel exhaustion is untestable" `Quick test_fuel_exhaustion_untestable;
        Alcotest.test_case "replay trap is non-commutative" `Quick
          test_replay_trap_is_non_commutative;
        Alcotest.test_case "injected replay trap" `Quick test_injected_replay_trap;
      ] );
    ( "fault.containment",
      [
        Alcotest.test_case "containment is deterministic" `Quick test_containment_is_deterministic;
        Alcotest.test_case "deadline abort with retry" `Quick test_deadline_abort_and_retry;
        Alcotest.test_case "heap abort without retry" `Quick test_heap_abort_no_retry;
      ] );
  ]
