lib/parallel/machine.ml: Array
