(** Static classification of the scalars a loop touches, for privatization
    and reduction recognition (paper §IV-C, after Tournavitis et al. and
    Pottenger–Eigenmann).

    - [Induction]: basic induction variable of the loop;
    - [Private]: not live into the header — every iteration writes the
      variable before reading it, so each thread can keep its own copy
      (made [lastprivate] if also live-out);
    - [Reduction op]: a loop-carried scalar whose only in-loop uses are
      recursive updates [v = v op e] for a single commutative [op];
    - [Carried]: any other loop-carried scalar — a genuine cross-iteration
      scalar dependence that blocks dependence-based parallelization. *)

type reduction_op = Rsum | Rprod | Rmin | Rmax

type classification = Induction | Private | Reduction of reduction_op | Carried

val classify_loop :
  Dca_ir.Cfg.t -> Affine.t -> Liveness.t -> Loops.loop -> (int * classification) list
(** Classification of every frame variable defined inside the loop, keyed
    by variable id. *)

val carried_scalars :
  Dca_ir.Cfg.t -> Affine.t -> Liveness.t -> Loops.loop -> int list
(** Variable ids classified as [Carried]. *)

val reduction_op_to_string : reduction_op -> string

val combine_pattern : int -> Dca_ir.Ir.instr -> reduction_op option
(** Does the instruction combine the variable (by id) with something else
    under a commutative operator?  Shared with the memory-reduction
    recognizer. *)
