(* Tests for the telemetry core (lib/support/telemetry) and its
   determinism contract.

   The contract: work counters ([kind = Work]) are bit-identical across
   worker counts and checkpoint modes — they meter decisions the
   deterministic merge consumes, never speculative execution — while the
   disabled path (tracing and counting both off) allocates nothing, so
   an uninstrumented run pays one atomic load and a branch per probe.

   Counters and event buffers are process-global; every test snapshots
   what it needs and resets on the way out so suites stay independent. *)

module T = Dca_support.Telemetry
module Session = Dca_core.Session
module Commutativity = Dca_core.Commutativity

(* Same light configuration as test_session: every dynamic-stage code
   path (identity check, permuted replays, escalation, promotion) at a
   fraction of the default cost. *)
let light_config =
  {
    Commutativity.default_config with
    Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles:1 ();
    cc_max_invocations = 2;
  }

(* ------------------------------------------------------------------ *)
(* Clock and counter primitives                                        *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let a = T.now_ns () in
  let b = T.now_ns () in
  Alcotest.(check bool) "clock never goes backwards" true (b >= a);
  (* a nanosecond clock on a live machine must advance within 10ms *)
  let deadline = a + 10_000_000 in
  let rec spin () = if T.now_ns () <= a && T.now_ns () < deadline then spin () in
  spin ();
  Alcotest.(check bool) "clock advances" true (T.now_ns () > a)

let test_counter_basics () =
  T.reset ();
  T.set_counting true;
  Fun.protect
    ~finally:(fun () ->
      T.set_counting false;
      T.reset ())
    (fun () ->
      let c = T.counter "test.basics" in
      T.add c 5;
      T.incr c;
      Alcotest.(check int) "add + incr" 6 (T.value c);
      Alcotest.(check bool) "find-or-create returns the same cell" true (T.counter "test.basics" == c);
      let m = T.counter ~kind:T.Diag "test.basics_peak" in
      T.add_max m 7;
      T.add_max m 3;
      Alcotest.(check int) "add_max keeps the peak" 7 (T.value m);
      Alcotest.(check bool) "kind filter"
        true
        (List.mem_assoc "test.basics_peak" (T.counters ~kind:T.Diag ())
        && not (List.mem_assoc "test.basics_peak" (T.counters ~kind:T.Work ()))));
  let c = T.counter "test.basics" in
  T.add c 100;
  Alcotest.(check int) "add is a no-op while counting is off" 0 (T.value c)

let test_disabled_path_allocates_nothing () =
  T.set_tracing false;
  T.set_counting false;
  let c = T.counter "test.noalloc" in
  let probe () =
    T.begin_span "x";
    T.add c 1;
    T.instant "x";
    T.end_span "x"
  in
  for _ = 1 to 1_000 do probe () done;
  (* warmed up; any one-time allocation is behind us *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 50_000 do probe () done;
  let dw = Gc.minor_words () -. w0 in
  (* the Gc.minor_words calls themselves box two floats; allow slack far
     below one word per iteration *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled probes allocate nothing (%.0f minor words)" dw)
    true (dw < 100.0)

(* ------------------------------------------------------------------ *)
(* Counter determinism across jobs and checkpoint modes                *)
(* ------------------------------------------------------------------ *)

(* Analyze [bm] with counting on and return the work-counter snapshot.
   [checkpoint] temporarily overrides DCA_CHECKPOINT ("" selects the
   journal default). *)
let work_snapshot ?checkpoint bm jobs =
  (* spend the one-shot env wiring first: otherwise the first
     Session.create of the test process would fire it and clobber the
     flags set below *)
  T.init_from_env ();
  (match checkpoint with Some v -> Unix.putenv "DCA_CHECKPOINT" v | None -> ());
  Fun.protect
    ~finally:(fun () ->
      (match checkpoint with Some _ -> Unix.putenv "DCA_CHECKPOINT" "" | None -> ());
      T.set_counting false;
      T.reset ())
    (fun () ->
      T.reset ();
      T.set_counting true;
      Session.with_session ~jobs ~config:light_config (Session.Benchmark bm) (fun s ->
          ignore (Session.dca_results s));
      T.counters ~kind:T.Work ())

let check_snapshots name a b =
  Alcotest.(check (list (pair string int))) name a b;
  Alcotest.(check bool)
    (name ^ ": the analysis actually counted work")
    true
    (List.exists (fun (k, v) -> k = "dca.invocations" && v > 0) a)

let test_work_counters_jobs_invariant () =
  List.iter
    (fun name ->
      let bm = Dca_progs.Registry.find_exn name in
      let seq = work_snapshot bm 1 in
      let par = work_snapshot bm 4 in
      check_snapshots (name ^ ": work counters jobs=1 vs jobs=4") seq par)
    [ "DC"; "treeadd"; "hash" ]

let test_work_counters_checkpoint_invariant () =
  let bm = Dca_progs.Registry.find_exn "DC" in
  let journal = work_snapshot ~checkpoint:"" bm 2 in
  let deep = work_snapshot ~checkpoint:"deep" bm 2 in
  check_snapshots "DC: work counters journal vs deep" journal deep

(* The fault-isolation counters (dca.aborted, dca.retries,
   dca.deadline-hits, dca.faults-injected) are work counters too: they
   are ticked once per loop at the containment boundary, so an armed,
   loop-scoped fault plan must produce bit-identical totals at any job
   count. *)
let test_fault_counters_jobs_invariant () =
  let module FP = Dca_support.Faultpoint in
  let bm = Dca_progs.Registry.find_exn "DC" in
  (* discover a victim label from a fault-free sequential run *)
  let victim =
    Session.with_session ~jobs:1 ~config:light_config (Session.Benchmark bm) (fun s ->
        match
          List.filter_map
            (fun (r : Dca_core.Driver.loop_result) ->
              if r.Dca_core.Driver.lr_outcome <> None then Some r.Dca_core.Driver.lr_label
              else None)
            (Session.dca_results s)
        with
        | v :: _ -> v
        | [] -> Alcotest.fail "DC has no tested loop")
  in
  Fun.protect ~finally:FP.disarm (fun () ->
      FP.arm
        [
          {
            FP.sp_site = "driver.loop";
            sp_ctx = Some victim;
            sp_nth = 1;
            sp_repeat = false;
            sp_action = FP.Raise;
          };
        ];
      let snapshot jobs =
        FP.reset_hits ();
        work_snapshot bm jobs
      in
      let seq = snapshot 1 in
      let par = snapshot 4 in
      check_snapshots "DC under a victim fault: jobs=1 vs jobs=4" seq par;
      let v name = try List.assoc name seq with Not_found -> 0 in
      Alcotest.(check int) "exactly one loop aborted" 1 (v "dca.aborted");
      Alcotest.(check int) "the abort is attributed to the injection" 1 (v "dca.faults-injected"))

(* ------------------------------------------------------------------ *)
(* Contexts                                                             *)
(* ------------------------------------------------------------------ *)

(* [with_ctx] scopes counting to one context, nests, restores on
   exception, and [merge_into] folds one context into another under the
   per-counter merge rule. *)
let test_ctx_scoping_and_merge () =
  let a = T.Ctx.create ~counting:true () in
  let b = T.Ctx.create ~counting:true () in
  let c = T.counter "test.ctx_scope" in
  let peak = T.counter ~merge:T.Max "test.ctx_scope_peak" in
  let ambient = T.current () in
  T.with_ctx a (fun () ->
      Alcotest.(check bool) "with_ctx switches the ambient context" true (T.current () == a);
      T.add c 5;
      T.add_max peak 7;
      T.with_ctx b (fun () ->
          T.add c 2;
          T.add_max peak 9);
      Alcotest.(check bool) "nested scope restored" true (T.current () == a));
  Alcotest.(check bool) "outer scope restored" true (T.current () == ambient);
  (try T.with_ctx b (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "scope restored after an exception" true (T.current () == ambient);
  Alcotest.(check int) "a saw only a's work" 5 (T.Ctx.value a c);
  Alcotest.(check int) "b saw only b's work" 2 (T.Ctx.value b c);
  Alcotest.(check int) "ambient saw nothing" 0 (T.value c);
  T.Ctx.merge_into ~into:a b;
  Alcotest.(check int) "sum counters add on merge" 7 (T.Ctx.value a c);
  Alcotest.(check int) "max counters keep the peak on merge" 9 (T.Ctx.value a peak);
  Alcotest.(check int) "merge leaves the source intact" 2 (T.Ctx.value b c)

(* Two sessions pinned to their own counting contexts, run at the same
   time on separate domains: each context ends the run with exactly the
   work-counter deltas of a serial reference run of the same benchmark,
   and the global context records none of it. *)
let test_concurrent_context_isolation () =
  T.init_from_env ();
  T.reset ();
  T.set_counting false;
  let work_keys = List.map fst (T.counters ~kind:T.Work ()) in
  let analyze name =
    let ctx = T.Ctx.create ~counting:true () in
    let bm = Dca_progs.Registry.find_exn name in
    let options =
      Session.Options.(
        default |> with_jobs 2 |> with_config light_config |> with_telemetry ctx)
    in
    let delta =
      Session.with_session ~options (Session.Benchmark bm) (fun s ->
          ignore (Session.dca_results s);
          Session.telemetry s)
    in
    List.filter (fun (k, _) -> List.mem k work_keys) delta
  in
  let ref_dc = analyze "DC" in
  let ref_tree = analyze "treeadd" in
  Alcotest.(check bool) "references saw work" true
    (List.assoc "dca.invocations" ref_dc > 0 && List.assoc "dca.invocations" ref_tree > 0);
  Alcotest.(check bool) "the two benchmarks are distinguishable" true (ref_dc <> ref_tree);
  let global_before = T.counters () in
  let d1 = Domain.spawn (fun () -> analyze "DC") in
  let d2 = Domain.spawn (fun () -> analyze "treeadd") in
  let got_dc = Domain.join d1 in
  let got_tree = Domain.join d2 in
  Alcotest.(check (list (pair string int)))
    "DC context: exact deltas under concurrency" ref_dc got_dc;
  Alcotest.(check (list (pair string int)))
    "treeadd context: exact deltas under concurrency" ref_tree got_tree;
  Alcotest.(check (list (pair string int)))
    "global context untouched by pinned sessions" global_before (T.counters ())

(* ------------------------------------------------------------------ *)
(* Span balance and the trace sinks                                    *)
(* ------------------------------------------------------------------ *)

(* Walk [evs] per domain with a stack: every 'E' must name the
   innermost open 'B' of the same domain, and every stack must drain. *)
let check_balanced ctx evs =
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  List.iter
    (fun e ->
      let s = stack e.T.e_tid in
      match e.T.e_ph with
      | 'B' -> s := e.T.e_name :: !s
      | 'E' -> (
          match !s with
          | top :: rest ->
              Alcotest.(check string) (ctx ^ ": E closes the innermost B") top e.T.e_name;
              s := rest
          | [] -> Alcotest.failf "%s: E %S without an open B" ctx e.T.e_name)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun tid s ->
      Alcotest.(check (list string)) (Printf.sprintf "%s: tid %d stack drained" ctx tid) [] !s)
    stacks

let with_tracing f =
  T.init_from_env ();
  T.reset ();
  T.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      T.set_tracing false;
      T.reset ())
    f

let test_analysis_trace_balanced () =
  with_tracing (fun () ->
      let bm = Dca_progs.Registry.find_exn "DC" in
      Session.with_session ~jobs:2 ~config:light_config (Session.Benchmark bm) (fun s ->
          ignore (Session.dca_results s));
      let evs = T.events () in
      Alcotest.(check bool) "analysis recorded events" true (evs <> []);
      Alcotest.(check bool)
        "pool task spans present (worker lanes visible)" true
        (List.exists (fun e -> e.T.e_name = "task") evs);
      Alcotest.(check bool)
        "replay spans carry verdict args" true
        (List.exists
           (fun e -> e.T.e_ph = 'E' && List.mem_assoc "outcome" e.T.e_args)
           evs);
      check_balanced "DC jobs=2" evs)

let test_chrome_trace_file () =
  with_tracing (fun () ->
      T.span ~cat:"outer" "alpha" (fun () ->
          T.span "beta\"quoted" (fun () -> T.instant "tick"));
      let file = Filename.temp_file "dca_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          T.write_chrome_trace file;
          let ic = open_in file in
          let body =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let count needle =
            let n = String.length needle in
            let rec go i acc =
              if i + n > String.length body then acc
              else go (i + 1) (if String.sub body i n = needle then acc + 1 else acc)
            in
            go 0 0
          in
          Alcotest.(check bool) "object wrapper" true (String.length body > 2 && body.[0] = '{');
          Alcotest.(check int) "two B events" 2 (count "\"ph\":\"B\"");
          Alcotest.(check int) "two E events" 2 (count "\"ph\":\"E\"");
          Alcotest.(check int) "one instant" 1 (count "\"ph\":\"i\"");
          Alcotest.(check bool) "quotes escaped" true (count "beta\\\"quoted" = 2)))

(* Random nesting scripts — spans, instants, and spans whose body raises
   — always leave a balanced, drained trace. *)
let prop_random_spans_balanced =
  QCheck.Test.make ~count:100 ~name:"random span scripts stay balanced"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_range 0 6))
    (fun script ->
      T.reset ();
      T.set_tracing true;
      Fun.protect
        ~finally:(fun () ->
          T.set_tracing false;
          T.reset ())
        (fun () ->
          let rec run = function
            | [] -> ()
            | 0 :: rest ->
                T.instant "i";
                run rest
            | 6 :: rest ->
                (try T.span "boom" (fun () -> failwith "inner") with Failure _ -> ());
                run rest
            | d :: rest -> T.span (Printf.sprintf "s%d" d) (fun () -> run rest)
          in
          run script;
          let evs = T.events () in
          let count ph = List.length (List.filter (fun e -> e.T.e_ph = ph) evs) in
          check_balanced "random script" evs;
          count 'B' = count 'E'))

let suites =
  [
    ( "telemetry",
      [
        Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "disabled path allocates nothing" `Quick
          test_disabled_path_allocates_nothing;
        Alcotest.test_case "work counters: jobs=1 = jobs=4" `Quick test_work_counters_jobs_invariant;
        Alcotest.test_case "work counters: journal = deep" `Quick
          test_work_counters_checkpoint_invariant;
        Alcotest.test_case "fault counters: jobs=1 = jobs=4" `Quick
          test_fault_counters_jobs_invariant;
        Alcotest.test_case "context scoping and merge" `Quick test_ctx_scoping_and_merge;
        Alcotest.test_case "concurrent sessions, isolated contexts" `Quick
          test_concurrent_context_isolation;
        Alcotest.test_case "analysis trace is balanced per domain" `Quick
          test_analysis_trace_balanced;
        Alcotest.test_case "chrome trace sink" `Quick test_chrome_trace_file;
        QCheck_alcotest.to_alcotest prop_random_spans_balanced;
      ] );
  ]
