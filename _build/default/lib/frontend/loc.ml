(** Source locations and diagnostics for MiniC programs. *)

type t = { file : string; line : int; col : int }

let dummy = { file = "<none>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col
let pp fmt t = Format.pp_print_string fmt (to_string t)

exception Error of t * string
(** Raised by the lexer, parser and type checker on malformed input. *)

let error loc fmt = Printf.ksprintf (fun msg -> raise (Error (loc, msg))) fmt

let error_to_string = function
  | Error (loc, msg) -> Some (Printf.sprintf "%s: %s" (to_string loc) msg)
  | _ -> None
