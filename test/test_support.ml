(* Tests for the support utilities: deterministic PRNG, list helpers,
   union-find, int sets. *)

open Dca_support

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_split_decorrelates () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  Alcotest.(check bool) "child differs from parent" true (Prng.next_int64 a <> Prng.next_int64 child)

let prop_prng_int_in_bounds =
  QCheck.Test.make ~count:500 ~name:"Prng.int stays within bounds"
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let t = Prng.create seed in
      let v = Prng.int t bound in
      v >= 0 && v < bound)

let prop_permutation_bijective =
  QCheck.Test.make ~count:200 ~name:"Prng.permutation is a bijection"
    QCheck.(pair small_int (int_range 0 300))
    (fun (seed, n) ->
      let p = Prng.permutation (Prng.create seed) n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.length p = n && Array.for_all (fun b -> b) seen)

let prop_float_unit_interval =
  QCheck.Test.make ~count:500 ~name:"Prng.float is in [0,1)" QCheck.small_int (fun seed ->
      let t = Prng.create seed in
      let f = Prng.float t in
      f >= 0.0 && f < 1.0)

(* --------------------------------------------------------------- *)

let test_listx_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1; 2; 3 ] (Listx.take 9 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop all" [] (Listx.drop 9 [ 1; 2; 3 ])

let test_listx_helpers () =
  Alcotest.(check int) "sum" 6 (Listx.sum_int [ 1; 2; 3 ]);
  Alcotest.(check (option int)) "index_of" (Some 1) (Listx.index_of (fun x -> x = 5) [ 3; 5; 7 ]);
  Alcotest.(check (option int)) "index_of missing" None (Listx.index_of (fun x -> x = 9) [ 3; 5 ]);
  Alcotest.(check (list int)) "dedup" [ 1; 2; 3 ] (Listx.dedup_keep_order ( = ) [ 1; 2; 1; 3; 2 ]);
  Alcotest.(check (float 1e-9)) "max_float" 7.5 (Listx.max_float [ 1.0; 7.5; -3.0 ]);
  let grouped = Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "two groups" 2 (List.length grouped);
  Alcotest.(check (list int)) "odd group" [ 1; 3; 5 ] (List.assoc 1 grouped)

let test_listx_fold_lefti () =
  let result = Listx.fold_lefti (fun acc i x -> acc + (i * x)) 0 [ 10; 20; 30 ] in
  Alcotest.(check int) "indexed fold" 80 result

let test_topological_sort () =
  let succs = function 1 -> [ 2; 3 ] | 2 -> [ 4 ] | 3 -> [ 4 ] | _ -> [] in
  (match Listx.topological_sort succs [ 1; 2; 3; 4 ] with
  | Some order ->
      let pos x = Option.get (Listx.index_of (fun y -> y = x) order) in
      Alcotest.(check bool) "1 before 2" true (pos 1 < pos 2);
      Alcotest.(check bool) "2 before 4" true (pos 2 < pos 4);
      Alcotest.(check bool) "3 before 4" true (pos 3 < pos 4)
  | None -> Alcotest.fail "acyclic graph must sort");
  let cyclic = function 1 -> [ 2 ] | 2 -> [ 1 ] | _ -> [] in
  Alcotest.(check bool) "cycle detected" true (Listx.topological_sort cyclic [ 1; 2 ] = None)

(* --------------------------------------------------------------- *)

let test_unionfind () =
  let uf = Unionfind.create 6 in
  Unionfind.union uf 0 1;
  Unionfind.union uf 2 3;
  Unionfind.union uf 1 2;
  Alcotest.(check bool) "0 ~ 3" true (Unionfind.same uf 0 3);
  Alcotest.(check bool) "0 !~ 4" false (Unionfind.same uf 0 4);
  let classes = Unionfind.classes uf in
  Alcotest.(check int) "three classes" 3 (List.length classes);
  Alcotest.(check (list int)) "big class" [ 0; 1; 2; 3 ] (List.hd classes)

let prop_unionfind_transitive =
  QCheck.Test.make ~count:200 ~name:"union-find equivalence is transitive"
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let uf = Unionfind.create 20 in
      List.iter (fun (a, b) -> Unionfind.union uf a b) unions;
      (* check transitivity on all triples *)
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if Unionfind.same uf a b && Unionfind.same uf b c && not (Unionfind.same uf a c) then
              ok := false
          done
        done
      done;
      !ok)

let test_intset () =
  let s = Intset.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check int) "cardinal dedups" 4 (Intset.cardinal s);
  Alcotest.(check (list int)) "sorted" [ 1; 3; 4; 5 ] (Intset.to_sorted_list s);
  Alcotest.(check bool) "unions" true
    (Intset.equal (Intset.unions [ Intset.singleton 1; Intset.singleton 2 ]) (Intset.of_list [ 1; 2 ]));
  let m = Intset.Map.add_to_list_entry 1 "a" Intset.Map.empty in
  let m = Intset.Map.add_to_list_entry 1 "b" m in
  Alcotest.(check (list string)) "map list entry" [ "b"; "a" ] (Intset.Map.find 1 m);
  Alcotest.(check int) "find_default" 9 (Intset.Map.find_default 2 9 (Intset.Map.empty : int Intset.Map.t))

(* --------------------------------------------------------------- *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int)) "results in input order" (List.map (fun x -> x * x) xs)
        (Pool.map p (fun x -> x * x) xs));
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check (list int)) "jobs=1 is List.map" [ 2; 4; 6 ] (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_earliest_exception () =
  (* several tasks raise; the exception of the lowest-indexed input must
     surface, as sequential List.map would have raised it first *)
  Pool.with_pool ~jobs:4 (fun p ->
      for _ = 1 to 20 do
        match Pool.map p (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x) (List.init 32 (fun i -> i + 1)) with
        | _ -> Alcotest.fail "expected an exception"
        | exception Failure msg -> Alcotest.(check string) "earliest input's exception" "3" msg
      done)

let test_pool_nested_map () =
  (* a task may fan out on the same pool; the waiting caller participates,
     so this must terminate even with more tasks than workers *)
  Pool.with_pool ~jobs:3 (fun p ->
      let rows = Pool.map p (fun i -> Listx.sum_int (Pool.map p (fun j -> i * j) [ 1; 2; 3 ])) (List.init 16 (fun i -> i + 1)) in
      Alcotest.(check (list int)) "nested maps" (List.init 16 (fun i -> (i + 1) * 6)) rows)

let test_pool_empty_and_shutdown () =
  let p = Pool.create ~jobs:2 in
  Alcotest.(check (list int)) "empty input" [] (Pool.map p Fun.id []);
  Alcotest.(check int) "jobs accessor" 2 (Pool.jobs p);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let prop_pool_matches_list_map =
  QCheck.Test.make ~count:50 ~name:"Pool.map agrees with List.map"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      Pool.with_pool ~jobs (fun p -> Pool.map p (fun x -> x * x + 1) xs) = List.map (fun x -> x * x + 1) xs)

let suites =
  [
    ( "support",
      [
        Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "prng seeds" `Quick test_prng_seeds_differ;
        Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
        Alcotest.test_case "prng split" `Quick test_prng_split_decorrelates;
        QCheck_alcotest.to_alcotest prop_prng_int_in_bounds;
        QCheck_alcotest.to_alcotest prop_permutation_bijective;
        QCheck_alcotest.to_alcotest prop_float_unit_interval;
        Alcotest.test_case "listx take/drop" `Quick test_listx_take_drop;
        Alcotest.test_case "listx helpers" `Quick test_listx_helpers;
        Alcotest.test_case "listx fold_lefti" `Quick test_listx_fold_lefti;
        Alcotest.test_case "topological sort" `Quick test_topological_sort;
        Alcotest.test_case "pool map order" `Quick test_pool_map_order;
        Alcotest.test_case "pool earliest exception" `Quick test_pool_earliest_exception;
        Alcotest.test_case "pool nested map" `Quick test_pool_nested_map;
        Alcotest.test_case "pool empty + shutdown" `Quick test_pool_empty_and_shutdown;
        QCheck_alcotest.to_alcotest prop_pool_matches_list_map;
        Alcotest.test_case "union-find" `Quick test_unionfind;
        QCheck_alcotest.to_alcotest prop_unionfind_transitive;
        Alcotest.test_case "intset" `Quick test_intset;
      ] );
  ]
