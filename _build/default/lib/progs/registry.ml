(** All benchmark programs of the reproduction. *)

let npb =
  [
    Npb_bt.benchmark;
    Npb_cg.benchmark;
    Npb_dc.benchmark;
    Npb_ep.benchmark;
    Npb_ft.benchmark;
    Npb_is.benchmark;
    Npb_lu.benchmark;
    Npb_mg.benchmark;
    Npb_sp.benchmark;
    Npb_ua.benchmark;
  ]

let plds =
  Plds_list.benchmarks @ Plds_tree.benchmarks @ Plds_worklist.benchmarks @ Plds_sim.benchmarks

let all = npb @ plds

let find name = List.find_opt (fun bm -> bm.Benchmark.bm_name = name) all

let find_exn name =
  match find name with
  | Some bm -> bm
  | None -> invalid_arg (Printf.sprintf "Registry.find_exn: unknown benchmark '%s'" name)
