(** Instrumentation contexts: monotonic-clock spans, named monotonic
    counters, and domain-tagged events, with three sinks — a human
    {!stats_table}, a JSONL event stream, and a Chrome
    [trace.json] (about://tracing / Perfetto compatible).

    State lives in explicit {e contexts} ({!Ctx.t}): the collection
    flags, one cell per registered counter, and per-domain event
    buffers.  Every operation below acts on the calling domain's
    {e ambient} context, which defaults to {!Ctx.global} — so the CLI,
    the sinks, and code that never mentions contexts behave exactly as
    under the old process-global design.  An embedder that needs
    isolation (the serve daemon attributing work to concurrent
    requests, a test keeping two sessions apart) creates a context and
    scopes it with {!with_ctx}; {!Dca_support.Pool} propagates the
    submitter's ambient context into its worker domains, so a scoped
    context follows the work across domains.

    The engine is {e zero-overhead when disabled}: with tracing and
    counting off (the default), {!span}, {!begin_span}/{!end_span},
    {!add} and {!instant} reduce to a domain-local load, an atomic
    load and a branch, and allocate nothing.  Enable collection with
    {!set_tracing} / {!set_counting}, with {!configure}, or through the
    [DCA_TRACE] / [DCA_STATS] environment variables ({!init_from_env}).

    {2 Counters and determinism}

    Counters come in two kinds.  {e Work} counters (the default) count
    decisions the deterministic merge of the parallel engine consumes —
    loops examined, invocations tested, replays decided, instructions
    those replays executed — and are {b bit-identical} for any worker
    count and either checkpointing mode: CI compares them across
    [jobs=1] / [jobs=4] as a cheap invariant on the parallel engine.
    {e Diag} counters record how the work was carried out (snapshots,
    journal traffic, forks, per-context instruction totals) and may
    legitimately differ across job counts; the stats table reports the
    two classes separately.

    A counter value is a {e descriptor} — name, kind, merge rule, a
    dense index — shared by every context; the cells live per context.
    Cells are atomics: increments from worker domains are safe, and a
    deterministic multiset of increments sums to a deterministic value
    regardless of interleaving.

    {2 Spans}

    Spans are recorded into per-(context, domain) buffers (no
    cross-domain contention, no reordering): each domain's event stream
    is chronological and properly nested by construction, and events
    carry the recording domain's id as [tid] — worker utilization and
    the deterministic-merge stalls are directly visible in the trace
    viewer. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds from an arbitrary origin
    ([CLOCK_MONOTONIC]).  Never goes backwards; unaffected by wall-clock
    adjustments.  Allocation-free. *)

(** {1 Counters} *)

type kind = Work | Diag

type merge = Sum | Max
(** How a counter folds when one context is merged into another
    ({!Ctx.merge_into}): [Sum] counters add; [Max] counters — peaks like
    journal length or snapshot depth — keep the larger value. *)

type counter

val counter : ?kind:kind -> ?merge:merge -> string -> counter
(** Find-or-create the named counter descriptor ([kind] defaults to
    [Work], [merge] to [Sum]; both are fixed by whichever call registers
    the name first).  Make handles top-level [let]s: registration at
    module initialization keeps the registered set identical across
    runs, so counter snapshots compare structurally. *)

val add : counter -> int -> unit
val incr : counter -> unit

val add_max : counter -> int -> unit
(** Max-merge instead of sum: the counter keeps the largest value ever
    offered (peaks: journal length, snapshot depth).  Register such
    counters with [~merge:Max] so cross-context folds preserve the peak
    semantics. *)

val value : counter -> int

val counters : ?kind:kind -> unit -> (string * int) list
(** Registered counters with their current values in the ambient
    context, sorted by name; restricted to one kind when given. *)

val reset : unit -> unit
(** Zero every counter and drop every recorded event of the ambient
    context.  Flags and config are untouched. *)

(** {1 Contexts} *)

type event = {
  e_ph : char;  (** ['B'] begin, ['E'] end, ['i'] instant *)
  e_name : string;
  e_cat : string;
  e_ts : int;  (** {!now_ns} at recording *)
  e_tid : int;  (** recording domain id *)
  e_args : (string * string) list;
}

(** An isolated collection scope: its own tracing/counting flags,
    counter cells, and event buffers, over the shared descriptor
    registry. *)
module Ctx : sig
  type t

  val global : t
  (** The default ambient context of every domain — process-global
      telemetry, exactly the pre-context behavior. *)

  val create : ?tracing:bool -> ?counting:bool -> unit -> t
  (** A fresh context, flags off by default.  Cheap: no per-counter
      allocation until the context is written to. *)

  val tracing : t -> bool
  val counting : t -> bool
  val set_tracing : t -> bool -> unit
  val set_counting : t -> bool -> unit

  val value : t -> counter -> int
  val counters : ?kind:kind -> t -> (string * int) list
  val events : t -> event list
  val reset : t -> unit

  val merge_into : into:t -> t -> unit
  (** [merge_into ~into src] folds [src]'s counters into [into]: [Sum]
      counters add, [Max] counters keep the larger value.
      Unconditional — aggregation of already collected data is not
      gated on [into]'s counting flag.  Events are {e not} folded; they
      stay with the context that recorded them.  [src] is unchanged;
      merging a context into itself is a no-op. *)
end

val current : unit -> Ctx.t
(** The calling domain's ambient context ({!Ctx.global} unless inside
    {!with_ctx}). *)

val with_ctx : Ctx.t -> (unit -> 'a) -> 'a
(** [with_ctx c f] runs [f] with [c] as the ambient context of the
    calling domain, restoring the previous ambient on return or
    exception.  Scopes nest.  Other domains are unaffected — but
    {!Dca_support.Pool.map} captures the submitter's ambient context
    and installs it around each task, so pooled work lands in the same
    context as the code that requested it. *)

(** {1 Enabling} *)

val tracing : unit -> bool
(** Event collection on in the ambient context?  Guard construction of
    span argument lists with this so the disabled path stays
    allocation-free. *)

val counting : unit -> bool

val set_tracing : bool -> unit
val set_counting : bool -> unit
(** Flip the ambient context's flags. *)

type config = {
  cfg_trace : string option;  (** Chrome [trace.json] output path *)
  cfg_jsonl : string option;  (** JSONL event-stream output path *)
  cfg_stats : bool;  (** print {!stats_table} to [stderr] on {!flush} *)
}

val configure : config -> unit
(** Install [config] and derive the collection flags of {!Ctx.global}:
    tracing iff an output file is set, counting iff tracing or
    [cfg_stats].  Sinks are process-level — there is one config, not
    one per context. *)

val config : unit -> config

val init_from_env : unit -> unit
(** One-shot environment wiring: [DCA_TRACE=FILE] enables tracing (a
    [.jsonl] suffix selects the JSONL sink, anything else the Chrome
    sink) and [DCA_STATS=1] enables the stats table.  The first call
    reads the environment; later calls — and calls after an explicit
    {!configure} — are no-ops, so a front end's flags always win. *)

(** {1 Spans and events} *)

val begin_span : ?cat:string -> string -> unit
(** Record a ["B"] event on the calling domain (no-op unless the
    ambient context is tracing).  Every [begin_span] must be paired
    with an {!end_span} on the same domain — use {!span} unless an
    exception cannot escape between the two. *)

val end_span : ?args:(string * string) list -> string -> unit
(** Record the matching ["E"] event.  [args] (attached to the end event,
    where results like a verdict or an instruction count are known) must
    only be constructed under a {!tracing} guard to keep the disabled
    path allocation-free. *)

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a [begin_span]/[end_span] pair; the
    end event is recorded even if [f] raises.  When tracing is off this
    is exactly [f ()]. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration ["i"] event. *)

val events : unit -> event list
(** Every event recorded into the ambient context, grouped by domain,
    chronological within each domain (the order balance checks care
    about). *)

(** {1 Sinks} *)

val stats_table : unit -> string
(** Human-readable counter table of the ambient context: work counters,
    then diagnostic counters, sorted by name; zero-valued counters are
    elided. *)

val write_chrome_trace : string -> unit
(** Write the ambient context's events as a Chrome trace
    ([{"traceEvents":[...]}]) with [ph]/[pid]/[tid]/[ts]/[name] fields,
    timestamps in microseconds rebased to the earliest event.  Loadable
    in about://tracing and Perfetto. *)

val write_jsonl : string -> unit
(** Write the ambient context's events as one JSON object per line,
    timestamps in raw monotonic nanoseconds. *)

val flush : unit -> unit
(** Drive the configured sinks: write [cfg_trace] and [cfg_jsonl] if
    set, print the stats table to [stderr] if [cfg_stats].  Idempotent —
    later flushes rewrite the files with the fuller event set. *)
