(** Human-readable reports of DCA results (the "auxiliary reports" of
    paper §IV-A4). *)

val summary_line : Driver.loop_result -> string
(** One line per loop: label, depth, decision, and the tested-invocation
    annotation for loops that reached the dynamic stage. *)

val counters : Driver.loop_result list -> (string * int) list
(** Work counters aggregated from the outcome records, in a fixed order:
    loop totals by decision, then the dynamic-stage effort (invocations,
    golden runs, replays, replay steps, skipped schedules, escalated
    loops, promotions).  A pure fold over the results — deterministic
    across worker counts and checkpoint modes, and available whether or
    not {!Dca_support.Telemetry} counting is enabled. *)

val footer_line : Driver.loop_result list -> string
(** [counters] rendered as the stable machine-readable report footer:
    ["counters: loops=7 commutative=3 ..."]. *)

val to_string : Driver.loop_result list -> string
(** Header, one {!summary_line} per loop, then {!footer_line}. *)

val print : Driver.loop_result list -> unit
