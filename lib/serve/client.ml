(* Blocking JSON-lines client for the dca serve socket.

   The retry layer rides on the daemon's shed/crash/timeout semantics:
   every condition it retries — connect refused, busy reply, timeout
   reply, connection closed — is one where the daemon guarantees the
   request either never ran or ran without caching a wrong answer, so
   re-sending is safe and converges to the same byte-identical report.
   Backoff delays are capped-exponential with jitter from a seeded
   Prng: deterministic for tests, decorrelated between clients that
   pick different seeds. *)

module Prng = Dca_support.Prng

type t = { sock : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock (Unix.ADDR_UNIX path) with
  | () -> Ok { sock; ic = Unix.in_channel_of_descr sock; oc = Unix.out_channel_of_descr sock }
  | exception Unix.Unix_error (err, _, _) ->
      Unix.close sock;
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message err))

let request t rq =
  match
    output_string t.oc (Protocol.request_line rq);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | line -> Protocol.parse_response line
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error msg -> Error ("connection error: " ^ msg)

let close t = try Unix.close t.sock with Unix.Unix_error _ -> ()

let with_client path f =
  match connect path with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Retry with capped-exponential backoff                               *)
(* ------------------------------------------------------------------ *)

type backoff = {
  bo_attempts : int;
  bo_base_ms : float;
  bo_cap_ms : float;
  bo_seed : int;
}

let default_backoff = { bo_attempts = 6; bo_base_ms = 50.; bo_cap_ms = 2000.; bo_seed = 0 }

(* Delay before retry k (k = 0 after the first failure): the capped
   exponential base *. 2^k, scaled by a jitter factor in [0.5, 1) drawn
   from the seeded generator — equal seeds give equal schedules. *)
let backoff_schedule b =
  let rng = Prng.create b.bo_seed in
  Array.init
    (max 0 (b.bo_attempts - 1))
    (fun k ->
      let ideal = Float.min b.bo_cap_ms (b.bo_base_ms *. (2. ** float_of_int k)) in
      ideal *. (0.5 +. 0.5 *. Prng.float rng))

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Transport failures where the request provably never reached an
   engine: the daemon is not up yet, went away, or dropped the
   connection before replying. *)
let retryable_error msg =
  has_prefix "cannot connect" msg
  || has_prefix "server closed the connection" msg
  || has_prefix "connection error" msg

(* Replies that invite a retry: [busy] (shed or worker crash — nothing
   ran, nothing was cached) and the watchdog's timeout error (the
   analysis finished server-side, so the retry usually hits the
   verdict cache). *)
let retryable_reply (rp : Protocol.response) =
  match rp.Protocol.rp_status with
  | Protocol.Busy -> true
  | Protocol.Error -> (
      match rp.Protocol.rp_error with
      | Some msg -> has_prefix "request timed out" msg
      | None -> false)
  | Protocol.Ok -> false

let request_retry ?(backoff = default_backoff) path rq =
  let delays = backoff_schedule backoff in
  let attempts = max 1 backoff.bo_attempts in
  let rec go k =
    let outcome = with_client path (fun t -> request t rq) in
    let retryable =
      match outcome with
      | Ok rp -> retryable_reply rp
      | Error msg -> retryable_error msg
    in
    if (not retryable) || k + 1 >= attempts then
      match outcome with
      | Error msg when retryable -> Error (Printf.sprintf "%s (after %d attempts)" msg attempts)
      | r -> r
    else begin
      Unix.sleepf (delays.(k) /. 1000.);
      go (k + 1)
    end
  in
  go 0
