lib/parallel/codegen.ml: Array Buffer Dca_analysis Dca_frontend Hashtbl List Loops Plan Printf Proginfo Scalars String
