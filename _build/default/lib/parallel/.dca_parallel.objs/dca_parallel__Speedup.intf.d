lib/parallel/speedup.mli: Dca_analysis Dca_profiling Machine Plan
