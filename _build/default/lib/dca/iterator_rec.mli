(** Generalized iterator recognition (paper §IV-A1, after Manilov et al.,
    CC 2018): separate each loop into its {e iterator} — the backward
    program slice of the loop's exiting branches, closed under data and
    control dependence inside the loop — and its {e payload}, everything
    else.

    The separation also computes the {e interface}: the variables defined
    by iterator instructions and consumed by the payload (the induction
    variable of a counted loop, the node pointer of a PLDS traversal, the
    popped element of a worklist loop).  Each interface variable is
    classified by {e when} the payload observes it relative to the
    iterator's in-body update:

    - [Pre]: every payload use precedes every iterator definition in the
      body (e.g. [i] in a [for] loop, [p] in [while (p) { ...; p = p->next }])
      — the payload sees the value the variable had at the iteration's
      header;
    - [Post]: every iterator definition precedes every payload use (e.g.
      [current = pop(worklist)]) — the payload sees the value established
      during the iteration.

    A variable with interleaved uses and definitions is ambiguous and makes
    the loop untestable. *)

type phase = Pre | Post

type iface_var = { if_var : Dca_ir.Ir.var; if_phase : phase }

type separation = {
  sep_loop : Dca_analysis.Loops.loop;
  sep_slice : Dca_support.Intset.t;  (** instruction ids of the iterator slice *)
  sep_payload : Dca_support.Intset.t;  (** instruction ids of the payload *)
  sep_slice_cbr_blocks : Dca_support.Intset.t;
      (** blocks whose conditional terminator is controlled by the slice *)
  sep_mixed_cbr : bool;  (** some branch condition mixes slice and payload defs *)
  sep_interface : iface_var list;
  sep_ambiguous : Dca_ir.Ir.var list;  (** interface variables with interleaved def/use *)
  sep_slice_def_vids : Dca_support.Intset.t;  (** all variables defined by slice instrs *)
}

val separate : Dca_analysis.Proginfo.func_info -> Dca_analysis.Loops.loop -> separation

val widen : Dca_analysis.Proginfo.func_info -> separation -> promote:Dca_support.Intset.t -> separation
(** Move the given payload instructions — plus their in-loop backward
    closure — into the iterator slice and recompute the separation.  Used
    when the dynamic separability check finds payload writes feeding
    iterator reads through memory (worklist [push]/[pop] pairs). *)

val is_iterator_only : separation -> bool
(** The payload is empty: nothing to permute (pure traversals). *)

val describe : separation -> string
