open Dca_core
open Dca_progs

(* A representative subset keeps the ablation pass affordable. *)
let subset_names = [ "EP"; "IS"; "CG"; "MG"; "BFS"; "treeadd"; "ising"; "water-spatial" ]
let subset () = List.map Registry.find_exn subset_names

let commutative_count config bm =
  let ev = Evaluation.evaluate ~config bm in
  List.length (Evaluation.dca_commutative ev)

let commutative_set config bm =
  let ev = Evaluation.evaluate ~config bm in
  Evaluation.dca_commutative ev

(* ------------------------------------------------------------------ *)

type verification_row = { ab_bench : string; ab_strict : int; ab_observational : int }

let verification () =
  List.map
    (fun bm ->
      let strict = { Commutativity.default_config with Commutativity.cc_escalate = false } in
      {
        ab_bench = bm.Benchmark.bm_name;
        ab_strict = commutative_count strict bm;
        ab_observational = commutative_count Commutativity.default_config bm;
      })
    (subset ())

let render_verification rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Ablation 1: live-out verification mode (commutative loops found)\n";
  Buffer.add_string buf (Printf.sprintf "  %-14s %10s %15s\n" "Bench" "strict" "observational");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %10d %15d%s\n" r.ab_bench r.ab_strict r.ab_observational
           (if r.ab_observational > r.ab_strict then "   <- worklist/reordering loops recovered"
            else "")))
    rows;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type schedule_row = { sc_bench : string; sc_reverse_only : int; sc_default : int; sc_missed : int }

let schedules () =
  List.map
    (fun bm ->
      let weak =
        { Commutativity.default_config with Commutativity.cc_schedules = [ Schedule.Reverse ] }
      in
      let weak_set = commutative_set weak bm in
      let full_set = commutative_set Commutativity.default_config bm in
      let missed = List.filter (fun id -> not (List.mem id full_set)) weak_set in
      {
        sc_bench = bm.Benchmark.bm_name;
        sc_reverse_only = List.length weak_set;
        sc_default = List.length full_set;
        sc_missed = List.length missed;
      })
    (subset ())

let render_schedules rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Ablation 2: permutation presets (reverse-only vs reverse+rotate+3 shuffles)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %12s %9s %8s\n" "Bench" "reverse-only" "default" "missed");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %12d %9d %8d%s\n" r.sc_bench r.sc_reverse_only r.sc_default
           r.sc_missed
           (if r.sc_missed > 0 then "   <- violations only random shuffles expose" else "")))
    rows;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type machine_row = { mc_workers : int; mc_spawn : float; mc_ep : float; mc_bt : float }

let machine_sweep () =
  let speedup machine name =
    let bm = Registry.find_exn name in
    let ev = Evaluation.evaluate_cached bm in
    let plan =
      Dca_parallel.Planner.select ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile
        ~detected:(Evaluation.dca_commutative ev) ~strategy:Dca_parallel.Planner.Best_benefit
    in
    (Dca_parallel.Speedup.simulate ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile plan)
      .Dca_parallel.Speedup.sp_speedup
  in
  List.concat_map
    (fun workers ->
      List.map
        (fun spawn_factor ->
          let base = Dca_parallel.Machine.with_workers Evaluation.machine workers in
          let machine =
            { base with Dca_parallel.Machine.m_spawn_cost = base.Dca_parallel.Machine.m_spawn_cost *. spawn_factor }
          in
          {
            mc_workers = workers;
            mc_spawn = machine.Dca_parallel.Machine.m_spawn_cost;
            mc_ep = speedup machine "EP";
            mc_bt = speedup machine "BT";
          })
        [ 1.0; 4.0 ])
    [ 8; 16; 32; 72; 144 ]

type eps_row = { ep_bench : string; ep_exact : int; ep_tolerant : int }

let float_tolerance () =
  (* escalation is disabled in both arms: whole-program output comparison
     prints with 12 significant digits and would mask the low-bit rounding
     noise this ablation is about *)
  List.map
    (fun name ->
      let bm = Registry.find_exn name in
      let strict eps =
        { Commutativity.default_config with Commutativity.cc_eps = eps; cc_escalate = false }
      in
      {
        ep_bench = name;
        ep_exact = commutative_count (strict 0.0) bm;
        ep_tolerant = commutative_count (strict 1e-6) bm;
      })
    [ "EP"; "CG"; "water-spatial"; "em3d" ]

let render_float_tolerance rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Ablation 4: live-out float comparison (bit-exact vs relative tolerance)
";
  Buffer.add_string buf (Printf.sprintf "  %-14s %10s %10s
" "Bench" "exact" "tolerant");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %10d %10d%s
" r.ep_bench r.ep_exact r.ep_tolerant
           (if r.ep_tolerant > r.ep_exact then
              "   <- FP reductions survive only with rounding tolerance"
            else "")))
    rows;
  Buffer.contents buf

let render_machine_sweep rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Ablation 3: machine-model sensitivity (EP and BT speedups)\n";
  Buffer.add_string buf (Printf.sprintf "  %8s %10s %8s %8s\n" "workers" "spawn" "EP" "BT");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %8d %10.0f %7.1fx %7.1fx\n" r.mc_workers r.mc_spawn r.mc_ep r.mc_bt))
    rows;
  Buffer.contents buf
