(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (paper-vs-measured side by side), runs the ablation
   studies of DESIGN.md §5, and measures the analysis pipeline itself with
   bechamel micro-benchmarks (one Test.make per table/figure driver).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1     # one experiment
     dune exec bench/main.exe -- --list  # available targets            *)

open Dca_experiments
module Telemetry = Dca_support.Telemetry

let section title = Printf.printf "\n================ %s ================\n%!" title

(* All wall-clock measurement goes through the telemetry monotonic clock:
   [Unix.gettimeofday] is wall time and jumps under NTP adjustment, which
   is exactly what a benchmark harness must not be sensitive to. *)
let seconds_since t0_ns = float_of_int (Telemetry.now_ns () - t0_ns) *. 1e-9

let timed name f =
  let t0 = Telemetry.now_ns () in
  let result = f () in
  Printf.printf "[%s: %.1fs]\n%!" name (seconds_since t0);
  result

let run_table1 () =
  section "Table I";
  print_string (timed "table1" (fun () -> Tables.render_table1 (Tables.table1 ())))

let run_table2 () =
  section "Table II";
  print_string (timed "table2" (fun () -> Tables.render_table2 (Tables.table2 ())))

let run_table3 () =
  section "Table III";
  print_string (timed "table3" (fun () -> Tables.render_table3 (Tables.table3 ())))

let run_table4 () =
  section "Table IV";
  print_string (timed "table4" (fun () -> Tables.render_table4 (Tables.table4 ())))

let run_fig5 () =
  section "Fig. 5";
  print_string (timed "fig5" (fun () -> Figures.render_fig5 (Figures.fig5 ())))

let run_fig6 () =
  section "Fig. 6";
  print_string (timed "fig6" (fun () -> Figures.render_fig6 (Figures.fig6 ())))

let run_fig7 () =
  section "Fig. 7";
  print_string (timed "fig7" (fun () -> Figures.render_fig7 (Figures.fig7 ())))

let run_ablation () =
  section "Ablations (DESIGN.md §5)";
  print_string (timed "verification" (fun () -> Ablation.render_verification (Ablation.verification ())));
  print_newline ();
  print_string (timed "schedules" (fun () -> Ablation.render_schedules (Ablation.schedules ())));
  print_newline ();
  print_string (timed "machine" (fun () -> Ablation.render_machine_sweep (Ablation.machine_sweep ())));
  print_newline ();
  print_string (timed "tolerance" (fun () -> Ablation.render_float_tolerance (Ablation.float_tolerance ())))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the pipeline                           *)
(* ------------------------------------------------------------------ *)

let quickstart_src =
  {|
  int array[32];
  int total;
  void main() {
    int i;
    for (i = 0; i < 32; i = i + 1) { array[i] = array[i] + i; }
    for (i = 0; i < 32; i = i + 1) { total = total + array[i]; }
    printi(total);
  }
  |}

let bechamel_tests () =
  let open Bechamel in
  let compile () = ignore (Dca_ir.Lower.compile ~file:"<bench>" quickstart_src) in
  let analyze =
    let prog = Dca_ir.Lower.compile ~file:"<bench>" quickstart_src in
    fun () -> ignore (Dca_analysis.Proginfo.analyze prog)
  in
  let interpret =
    let prog = Dca_ir.Lower.compile ~file:"<bench>" quickstart_src in
    fun () ->
      let ctx = Dca_interp.Eval.create prog in
      Dca_interp.Eval.run_main ctx
  in
  let dca_detect () =
    Dca_core.Session.with_session
      ~options:Dca_core.Session.Options.(default |> with_jobs 1)
      (Dca_core.Session.Source { file = "<bench>"; source = quickstart_src; input = [] })
      (fun s -> ignore (Dca_core.Session.dca_results s))
  in
  let profile =
    let prog = Dca_ir.Lower.compile ~file:"<bench>" quickstart_src in
    let info = Dca_analysis.Proginfo.analyze prog in
    fun () -> ignore (Dca_profiling.Depprof.profile_program info)
  in
  let ep = Dca_progs.Registry.find_exn "EP" in
  let table_probe name f = Test.make ~name (Staged.stage f) in
  [
    table_probe "frontend+lowering" compile;
    table_probe "static-analyses" analyze;
    table_probe "interpreter-run" interpret;
    table_probe "dca-full-pipeline" dca_detect;
    table_probe "dependence-profiler" profile;
    (* one probe per table/figure driver: a full per-benchmark evaluation
       is the unit of work behind each of them (EP = smallest NPB) *)
    Test.make ~name:"table1-row(EP)" (Staged.stage (fun () -> ignore (Evaluation.evaluate ep)));
  ]

let run_perf () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some (est :: _) -> Printf.printf "  %-26s %14.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-26s (no estimate)\n%!" name)
        results)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* Worker-pool scaling: the dynamic stage at jobs=1 vs jobs=N          *)
(* ------------------------------------------------------------------ *)

let run_jobs () =
  section "Worker-pool scaling (Session jobs=1 vs jobs=N)";
  (* LU is the largest NPB program by analysis time: the per-loop tests and
     per-schedule replays dominate, which is exactly the work the pool
     fans out.  Reports must be bit-identical across jobs. *)
  let bm = Dca_progs.Registry.find_exn "LU" in
  let analyze jobs =
    Dca_core.Session.with_session
      ~options:Dca_core.Session.Options.(default |> with_jobs jobs)
      (Dca_core.Session.Benchmark bm) Dca_core.Session.report
  in
  let time jobs =
    let t0 = Telemetry.now_ns () in
    let report = analyze jobs in
    (seconds_since t0, report)
  in
  let t1, r1 = time 1 in
  Printf.printf "  %-22s %8.2fs\n%!" "LU analyze, jobs=1" t1;
  let t4, r4 = time 4 in
  Printf.printf "  %-22s %8.2fs  (%.2fx)\n%!" "LU analyze, jobs=4" t4 (t1 /. t4);
  Printf.printf "  reports identical: %b\n" (String.equal r1 r4);
  print_endline
    "  (on a single-CPU host the extra domains only add stop-the-world\n\
    \   rendezvous overhead; the speedup needs real cores)"

(* ------------------------------------------------------------------ *)
(* Interpreter micro-benchmarks (BENCH_interp.json)                    *)
(* ------------------------------------------------------------------ *)

(* Smoke mode (BENCH_SMOKE=1, used by CI) runs every probe with minimal
   repetitions: it validates the target end to end without the statistical
   stability of a full run. *)
let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None

let median samples =
  let a = Array.copy samples in
  Array.sort compare a;
  a.(Array.length a / 2)

let sample_ns ~reps f =
  f ();
  (* warm-up: fault in code paths and steady-state the allocator *)
  median
    (Array.init reps (fun _ ->
         let t0 = Telemetry.now_ns () in
         f ();
         float_of_int (Telemetry.now_ns () - t0)))

let run_interp () =
  section "Interpreter micro-benchmarks";
  let open Dca_interp in
  let open Dca_progs in
  let reps_run = if smoke then 3 else 15 in
  let reps_snap = if smoke then 50 else 400 in
  let reps_dca = if smoke then 1 else 5 in
  let bms = [ Registry.find_exn "LU"; Registry.find_exn "treeadd" ] in
  let entries = ref [] in
  let push name v =
    Printf.printf "  %-34s %14.0f\n%!" name v;
    entries := (name, v) :: !entries
  in
  (* 1. golden runs: the pre-decoded evaluator end to end *)
  List.iter
    (fun bm ->
      let prog = Dca_ir.Lower.compile ~file:bm.Benchmark.bm_name bm.Benchmark.bm_source in
      let ns =
        sample_ns ~reps:reps_run (fun () ->
            let ctx = Eval.create ~input:bm.Benchmark.bm_input prog in
            Eval.run_main ctx)
      in
      push (Printf.sprintf "interp_run_%s_ns" bm.Benchmark.bm_name) ns)
    bms;
  (* 2. snapshot + dirty + restore cycle on a <=10%-dirtied heap: the undo
     journal's O(dirty) against the deep oracle's O(heap) *)
  let blocks = 4096 and dirty = 256 in
  let cycle mode =
    let p = Dca_ir.Lower.compile ~file:"<bench>" "void main() { }" in
    let st = Store.create ~mode p ~input:[] in
    let ids = Array.init blocks (fun _ -> Store.alloc st [| Dca_ir.Layout.KInt |] ~count:16) in
    let stride = blocks / dirty in
    sample_ns ~reps:reps_snap (fun () ->
        let s = Store.snapshot st in
        for k = 0 to dirty - 1 do
          Store.store st ~block:ids.(k * stride) ~off:0 (Value.VInt k)
        done;
        Store.restore st s;
        Store.release st s)
  in
  let j = cycle Store.Journal in
  let d = cycle Store.Deep in
  push "snapshot_restore_journal_ns" j;
  push "snapshot_restore_deep_ns" d;
  push "snapshot_restore_speedup" (d /. j);
  Printf.printf "  (%d heap blocks, %d dirtied = %.1f%% of the heap)\n%!" blocks dirty
    (100.0 *. float_of_int dirty /. float_of_int blocks);
  (* 3. the full dynamic stage: golden recording plus every schedule
     replay — timed, and its work counters recorded alongside: the
     counters are deterministic, so a counter drift between two runs of
     this harness is an analysis change, not noise *)
  List.iter
    (fun bm ->
      let seq_opts = Dca_core.Session.Options.(default |> with_jobs 1) in
      let ns =
        sample_ns ~reps:reps_dca (fun () ->
            Dca_core.Session.with_session ~options:seq_opts (Dca_core.Session.Benchmark bm)
              (fun s -> ignore (Dca_core.Session.dca_results s)))
      in
      push (Printf.sprintf "dca_dynamic_%s_ns" bm.Benchmark.bm_name) ns;
      let counters =
        Dca_core.Session.with_session ~options:seq_opts (Dca_core.Session.Benchmark bm) (fun s ->
            Dca_core.Report.counters (Dca_core.Session.dca_results s))
      in
      List.iter
        (fun (key, v) ->
          let key = String.map (fun c -> if c = '-' then '_' else c) key in
          push (Printf.sprintf "dca_%s_%s" bm.Benchmark.bm_name key) (float_of_int v))
        counters)
    bms;
  let oc = open_out "BENCH_interp.json" in
  output_string oc "{\n";
  let rec emit = function
    | [] -> ()
    | (name, v) :: rest ->
        Printf.fprintf oc "  %S: %.0f%s\n" name v (if rest = [] then "" else ",");
        emit rest
  in
  emit (List.rev !entries);
  output_string oc "}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_interp.json\n%!"

(* ------------------------------------------------------------------ *)
(* Serve daemon: verdict-cache cold vs warm (BENCH_serve.json)         *)
(* ------------------------------------------------------------------ *)

(* Drives the serve engine in-process (no socket: the cache, not the
   transport, is what is being measured).  Three paths on LU:
     cold        — empty cache, every loop pays the dynamic stage
     warm        — same engine again, every loop from the in-memory LRU
     disk-warm   — a fresh engine over the same cache directory, every
                   loop promoted from disk (a daemon restart)
   The warm and disk-warm reports must be byte-identical to the cold
   one — the deterministic-merge guarantee extended across the cache. *)
let run_serve () =
  section "Serve daemon: verdict-cache cold vs warm";
  let open Dca_serve in
  let dir = Filename.temp_file "dca-bench-cache" "" in
  Sys.remove dir;
  let rq =
    {
      Protocol.default_request with
      Protocol.rq_op = Protocol.Analyze;
      rq_program = Some (Protocol.Named "LU");
      rq_jobs = Some 2;
    }
  in
  let analyze engine =
    let t0 = Telemetry.now_ns () in
    match Engine.handle engine { rq with Protocol.rq_id = Telemetry.now_ns () land 0xffff } with
    | { Protocol.rp_status = Protocol.Ok; rp_report = Some report; rp_hits; rp_misses; _ } ->
        (float_of_int (Telemetry.now_ns () - t0), report, rp_hits, rp_misses)
    | { Protocol.rp_error; _ } ->
        failwith ("serve bench: " ^ Option.value rp_error ~default:"analyze failed")
  in
  let engine = Engine.create ~cache_dir:dir ~jobs:2 () in
  let cold_ns, cold_report, _, cold_misses = analyze engine in
  let reps = if smoke then 3 else 10 in
  let warm = Array.init reps (fun _ -> analyze engine) in
  let warm_ns = median (Array.map (fun (ns, _, _, _) -> ns) warm) in
  let warm_identical =
    Array.for_all (fun (_, r, _, _) -> String.equal r cold_report) warm
  in
  let warm_hits = match warm.(0) with _, _, h, _ -> h in
  Engine.close engine;
  (* daemon restart: a fresh engine, cache served from disk *)
  let engine2 = Engine.create ~cache_dir:dir ~jobs:2 () in
  let disk_ns, disk_report, disk_hits, _ = analyze engine2 in
  Engine.close engine2;
  (* Requests/sec over real sockets under mixed warm/cold traffic: four
     persistent-connection clients, each alternating a pre-warmed
     benchmark (cache hit) with a unique inline program (cache miss) and
     thinking ~25ms between requests.  A serial daemon (--workers 1)
     serves whole connections one at a time, so it idles through one
     client's think time while the others wait — the concurrent daemon's
     win is the elimination of that head-of-line blocking, not raw CPU
     parallelism.  Replies must be identical across the two modes. *)
  let clients = 4 in
  let per_client = if smoke then 4 else 8 in
  let think = 0.025 in
  let cold_src tag =
    Printf.sprintf
      "int a%d[16];\nvoid main() { int i; for (i = 0; i < 16; i = i + 1) { a%d[i] = a%d[i] + %d; } }\n"
      tag tag tag (tag + 1)
  in
  let warm_rq =
    {
      Protocol.default_request with
      Protocol.rq_op = Protocol.Analyze;
      rq_program = Some (Protocol.Named "DC");
      rq_jobs = Some 1;
    }
  in
  let run_mode workers =
    let dir = Filename.temp_file "dca-bench-serve" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let socket = Filename.concat dir "dca.sock" in
    let cfg =
      {
        (Server.default_config socket) with
        Server.sv_jobs = Some 1;
        sv_workers = workers;
        sv_cache_dir = Some (Filename.concat dir "cache");
      }
    in
    let server = Domain.spawn (fun () -> Server.run cfg) in
    let one rq =
      match Client.with_client socket (fun c -> Client.request c rq) with
      | Ok rp -> Some rp
      | Error _ -> None
    in
    let rec wait_ready n =
      if n = 0 then failwith "serve bench: daemon never became reachable";
      match one { Protocol.default_request with Protocol.rq_id = 1 } with
      | Some _ -> ()
      | None ->
          Unix.sleepf 0.05;
          wait_ready (n - 1)
    in
    wait_ready 200;
    (* pre-warm: DC's verdicts enter the cache before the clock starts *)
    (match one { warm_rq with Protocol.rq_id = 2 } with
    | Some { Protocol.rp_status = Protocol.Ok; _ } -> ()
    | _ -> failwith "serve bench: pre-warm failed");
    let t0 = Telemetry.now_ns () in
    let client_domain c =
      Domain.spawn (fun () ->
          match
            Client.with_client socket (fun conn ->
                Ok
                  (List.init per_client (fun i ->
                       let id = (c * 100) + i in
                       let rq =
                         if i mod 2 = 0 then { warm_rq with Protocol.rq_id = id }
                         else
                           {
                             warm_rq with
                             Protocol.rq_id = id;
                             rq_program =
                               Some
                                 (Protocol.Inline
                                    { file = "cold.mc"; source = cold_src id; input = [] });
                           }
                       in
                       let rp =
                         match Client.request conn rq with
                         | Ok rp when Protocol.ok rp -> rp
                         | Ok rp ->
                             failwith
                               ("serve bench: "
                               ^ Option.value rp.Protocol.rp_error ~default:"request failed")
                         | Error e -> failwith ("serve bench: " ^ e)
                       in
                       Unix.sleepf think;
                       match rp.Protocol.rp_report with
                       | Some r -> r
                       | None -> failwith "serve bench: reply without report")))
          with
          | Ok reports -> reports
          | Error e -> failwith ("serve bench: " ^ e))
    in
    let reports = List.concat_map Domain.join (List.init clients client_domain) in
    let elapsed = seconds_since t0 in
    ignore (one { Protocol.default_request with Protocol.rq_id = 3; rq_op = Protocol.Shutdown });
    ignore (Domain.join server);
    (float_of_int (clients * per_client) /. elapsed, List.sort compare reports)
  in
  let rps_serial, reports_serial = timed "serve-serial" (fun () -> run_mode 1) in
  let rps_concurrent, reports_concurrent = timed "serve-concurrent" (fun () -> run_mode 4) in
  let concurrent_identical = reports_serial = reports_concurrent in
  let entries =
    [
      ("serve_cold_LU_ns", cold_ns);
      ("serve_warm_LU_ns", warm_ns);
      ("serve_disk_warm_LU_ns", disk_ns);
      ("serve_warm_speedup", cold_ns /. warm_ns);
      ("serve_disk_warm_speedup", cold_ns /. disk_ns);
      ("serve_cold_misses", float_of_int cold_misses);
      ("serve_warm_hits", float_of_int warm_hits);
      ("serve_disk_warm_hits", float_of_int disk_hits);
      ("serve_warm_report_identical", if warm_identical then 1.0 else 0.0);
      ( "serve_disk_report_identical",
        if String.equal disk_report cold_report then 1.0 else 0.0 );
      ("serve_requests_per_sec_serial", rps_serial);
      ("serve_requests_per_sec_concurrent", rps_concurrent);
      ("serve_concurrent_speedup_pct", 100.0 *. rps_concurrent /. rps_serial);
      ("serve_concurrent_reports_identical", if concurrent_identical then 1.0 else 0.0);
    ]
  in
  List.iter (fun (name, v) -> Printf.printf "  %-30s %14.0f\n%!" name v) entries;
  let oc = open_out "BENCH_serve.json" in
  output_string oc "{\n";
  let rec emit = function
    | [] -> ()
    | (name, v) :: rest ->
        Printf.fprintf oc "  %S: %.0f%s\n" name v (if rest = [] then "" else ",");
        emit rest
  in
  emit entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf
    "  wrote BENCH_serve.json (warm %.0fx, disk-warm %.0fx, identical: %b; %.1f -> %.1f req/s \
     concurrent, identical: %b)\n\
     %!"
    (cold_ns /. warm_ns) (cold_ns /. disk_ns)
    (warm_identical && String.equal disk_report cold_report)
    rps_serial rps_concurrent concurrent_identical

(* ------------------------------------------------------------------ *)
(* Static fast-path A/B: prover on vs --no-static over the registry    *)
(* ------------------------------------------------------------------ *)

(* The harness form of the README's --no-static workflow: for every
   registry benchmark, analyze twice and report what the prover bought —
   proved/fissioned/bailed loop counts and the golden-run reduction —
   while asserting the verdict lines stayed put (modulo provenance
   annotations). *)
let run_static () =
  section "Static fast-path (prover on vs --no-static)";
  let module Session = Dca_core.Session in
  (* claim the env-driven telemetry init before the first session does,
     so enabling counters here survives session creation *)
  Telemetry.init_from_env ();
  let was = Telemetry.counting () in
  Telemetry.set_counting true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_counting was)
    (fun () ->
      let tracked =
        [ "dca.golden_runs"; "dca.static-proved"; "dca.static-fission"; "dca.static-bailouts" ]
      in
      let counters () = List.map (fun n -> (n, Telemetry.value (Telemetry.counter n))) tracked in
      let strip_marker l =
        match String.rindex_opt l '[' with
        | Some i when String.length l > 0 && l.[String.length l - 1] = ']' ->
            String.trim (String.sub l 0 i)
        | _ -> l
      in
      let verdict_lines report =
        String.split_on_char '\n' report
        |> List.filter (fun l -> String.length l >= 2 && String.sub l 0 2 = "  ")
      in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      let analyze bm static =
        let before = counters () in
        let t0 = Telemetry.now_ns () in
        let report =
          Session.with_session
            ~options:Session.Options.(default |> with_jobs 1 |> with_static static)
            (Session.Benchmark bm) Session.report
        in
        let secs = seconds_since t0 in
        let after = counters () in
        (report, secs, fun n -> List.assoc n after - List.assoc n before)
      in
      Printf.printf "  %-13s %6s %7s %7s %12s %10s %6s %8s\n%!" "benchmark" "proved" "fission"
        "bailout" "golden-saved" "on/off s" "equal" "stronger";
      List.iter
        (fun bm ->
          let name = bm.Dca_progs.Benchmark.bm_name in
          let on_report, on_s, on_d = analyze bm true in
          let off_report, off_s, off_d = analyze bm false in
          let saved = off_d "dca.golden_runs" - on_d "dca.golden_runs" in
          (* verdict lines must match modulo the provenance/test markers;
             the one legitimate difference is untestable -> statically
             proved commutative (counted as "stronger") *)
          let stronger = ref 0 and equal = ref true in
          (try
             List.iter2
               (fun on_l off_l ->
                 if strip_marker on_l <> strip_marker off_l then
                   if contains off_l "untestable" && contains on_l "commutative" then
                     incr stronger
                   else equal := false)
               (verdict_lines on_report) (verdict_lines off_report)
           with Invalid_argument _ -> equal := false);
          Printf.printf "  %-13s %6d %7d %7d %12d %5.2f/%.2f %6b %8d\n%!" name
            (on_d "dca.static-proved") (on_d "dca.static-fission") (on_d "dca.static-bailouts")
            saved on_s off_s !equal !stronger)
        Dca_progs.Registry.all)

let targets =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("table4", run_table4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("ablation", run_ablation);
    ("perf", run_perf);
    ("interp", run_interp);
    ("jobs", run_jobs);
    ("serve", run_serve);
    ("static", run_static);
  ]

let run_all () = List.iter (fun (_, f) -> f ()) targets

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> run_all ()
  | [ _; "--list" ] ->
      List.iter (fun (name, _) -> print_endline name) targets;
      print_endline "all"
  | _ :: args ->
      List.iter
        (fun arg ->
          if arg = "all" then run_all ()
          else
            match List.assoc_opt arg targets with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown target '%s' (use --list)\n" arg;
                exit 1)
        args
  | [] -> run_all ()
