test/test_interp.ml: Alcotest Dca_interp Dca_ir Eval Lower Observable Printf Store String Value
