lib/progs/npb_dc.ml: Benchmark List
