lib/progs/npb_sp.ml: Benchmark
