(** Exhaustive ground-truth commutativity oracle.

    DCA samples a handful of permutation schedules; the oracle instead
    decides commutativity {e exactly}, for marked loops with at most
    {!max_trip} iterations, by executing the program once per permutation
    of the iteration order and comparing whole-program outputs.  It never
    touches DCA's record/replay machinery: each permutation is realised
    {e syntactically}, by unrolling the canonical marked loop

    {v prints("DCA_FUZZ_LOOP"); for (int i = 0; i < n; i = i + 1) body v}

    into [n] blocks [{ int i = pi(k); body }] in schedule order, then
    re-type-checking, lowering and running the variant through
    {!Dca_interp.Eval}.  Because generated programs print every live-out,
    output equality is live-out state equality — so the oracle and DCA's
    whole-program escalation decide the same property, independently. *)

open Dca_frontend

type spec = {
  sp_index : string;  (** loop variable name *)
  sp_trip : int;  (** static trip count [n] *)
  sp_line : int;  (** source line of the [for] — matches the header block's [l_loc] *)
  sp_for : Ast.stmt;  (** the marked [for] statement itself *)
}

val max_trip : int
(** 7 — the largest trip count whose [n!] sweep the oracle will attempt. *)

val find_marked_loop : Ast.program -> (spec, string) result
(** Locate the statement following the [prints("DCA_FUZZ_LOOP")] marker in
    [main]'s top-level body and check it has the canonical counted form. *)

val unroll : Ast.program -> spec -> int array -> Ast.program
(** [unroll prog spec perm] replaces the marked loop with its permuted
    unrolling: block [k] binds the loop variable to [perm.(k)].
    [perm] must be a permutation of [0 .. sp_trip - 1]. *)

val run_outputs :
  ?fuel:int -> input:int list -> Ast.program -> (string list, string) result
(** Type-check, lower and execute; [Error] on a trap, type error or fuel
    exhaustion. *)

type verdict =
  | Commutative  (** every permutation reproduces the golden outputs *)
  | Non_commutative of int array
      (** witness permutation: its outputs differ (or its run traps) *)
  | Unsupported of string  (** trip count over {!max_trip}, golden run failed, … *)

val decide :
  ?eps:float -> ?fuel:int -> input:int list -> Ast.program -> spec -> verdict
(** Exhaustive sweep in lexicographic permutation order, stopping at the
    first witness.  Output streams compare with
    {!Dca_interp.Observable.outputs_equal} under [eps] (default 1e-6) —
    the same tolerance DCA's digest comparison uses, so float-reduction
    rounding noise does not masquerade as non-commutativity. *)

val check_witness :
  ?eps:float ->
  ?fuel:int ->
  input:int list ->
  Ast.program ->
  spec ->
  int array ->
  [ `Mismatch | `Match | `Error of string ]
(** Re-execute one permutation and report whether it distinguishes the
    golden outputs ([`Mismatch] includes a trapping variant).  Used to
    validate the witness schedule named in a DCA non-commutative verdict. *)

val permutations : int -> int array Seq.t
(** All permutations of [0 .. n-1] in lexicographic order (the identity
    first).  [n] must be at most {!max_trip}. *)
