lib/analysis/memred.ml: Affine Dca_ir Hashtbl Ir List Loops Option Scalars
