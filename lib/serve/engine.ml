(* The serve daemon's analysis core: warm sessions in front of the
   two-level verdict cache.

   A request is handled in five steps:

     1. resolve the program (registry name, server-side file, or inline
        source) to a source string + input stream;
     2. find or create a *warm session* — sessions are keyed by
        (source digest, options signature) and kept in a small LRU, so a
        repeated or incremental client skips parsing, lowering, the
        static analyses, and pool startup;
     3. compute per-loop cache keys (Progdigest) and probe the verdict
        cache, building a read-only table of resolved loops;
     4. run Driver.analyze_program with the table as its [?lookup] — only
        unresolved loops pay the dynamic stage, on the session's pool,
        merged deterministically with the cached verdicts;
     5. store the freshly computed verdicts and assemble the reply.

   Because cached entries are the exact (decision, outcome) pairs the
   driver would have produced, Report.to_string over the merged result
   list is byte-identical to a cold run — the acceptance criterion the
   serve bench asserts.

   The engine is concurrency-safe: [handle] may be called from many
   worker domains at once.  Three mechanisms make that sound:

     - *Telemetry contexts.*  Each analyze request runs under its own
       Telemetry.Ctx (installed with [with_ctx], propagated into the
       session pool), so its counters are exactly its own work; on
       completion the context is folded into the daemon's context, so
       aggregate stats equal what a serial daemon would report.  The
       reply itself never depends on telemetry — the counters footer is
       a pure fold over the result records — which is why replies are
       byte-identical under any interleaving.  When the daemon is
       *tracing*, requests share the daemon context instead: a trace is
       a whole-daemon artifact, and per-domain event streams must stay
       chronological.

     - *A busy-aware warm-session LRU.*  A session serves one request
       at a time ([w_busy]); a second request for the same key runs on
       a transient session that is closed afterwards if the slot was
       retaken.  Eviction never touches a busy session.

     - *A writer-priority gate for fault injection.*  Faultpoint plans
       are process-global, so a fault-carrying request takes the gate
       exclusively while normal requests share it — injected failures
       can never leak into an innocent request.

   The Vcache serializes internally; the engine's own counters live
   under one mutex. *)

module Session = Dca_core.Session
module Driver = Dca_core.Driver
module Commutativity = Dca_core.Commutativity
module Report = Dca_core.Report
module Schedule = Dca_core.Schedule
module Faultpoint = Dca_support.Faultpoint
module Telemetry = Dca_support.Telemetry

(* Fault site at the mouth of the analysis pipeline: an injected raise
   here models the engine blowing up before any containment layer
   exists, and must become an error *reply*, never a dead daemon. *)
let fp_analyze = Faultpoint.site "engine.analyze"

type warm = {
  w_session : Session.t;
  w_digest : Progdigest.t Lazy.t;
  mutable w_last : int;
  mutable w_busy : bool;  (* serving a request right now; ineligible for reuse/eviction *)
}

type t = {
  cache : Vcache.t;
  metrics : Metrics.t;
  tele : Telemetry.Ctx.t;  (* the daemon's aggregate context (ambient at create) *)
  lock : Mutex.t;  (* sessions table, counters, request ids, the fault gate *)
  gate_cond : Condition.t;
  sessions : (string, warm) Hashtbl.t;
  session_cap : int;
  default_jobs : int option;
  mutable clock : int;
  mutable requests : int;
  mutable session_reuses : int;
  mutable aborted_requests : int;
  mutable next_req : int;
  (* fault gate: shared by normal analyzes, exclusive for fault-carrying
     ones, writer-priority so a fault request is not starved *)
  mutable active_shared : int;
  mutable pending_exclusive : int;
  mutable exclusive : bool;
}

let metric_names =
  ( [
      "dca_requests_total";
      "dca_requests_errors_total";
      "dca_analyze_requests_total";
      "dca_cache_hits_total";
      "dca_cache_misses_total";
      "dca_requests_shed_total";
      "dca_requests_timeout_total";
      "dca_worker_restarts_total";
      "dca_cache_degraded_total";
      "dca_slow_requests_total";
    ],
    [ "dca_inflight_requests"; "dca_queue_depth"; "dca_warm_sessions" ],
    [ "dca_request_duration_seconds" ] )

let create ?cache_dir ?cache_capacity ?(sessions = 8) ?jobs () =
  let counters, gauges, histograms = metric_names in
  let metrics = Metrics.create ~counters ~gauges ~histograms () in
  let on_degrade msg =
    (* log-once is guaranteed by the Vcache latch *)
    Metrics.incr metrics "dca_cache_degraded_total";
    Printf.eprintf "dca serve: disk cache write failed (%s); continuing memory-only\n%!" msg
  in
  {
    cache = Vcache.create ?dir:cache_dir ?capacity:cache_capacity ~on_degrade ();
    metrics;
    tele = Telemetry.current ();
    lock = Mutex.create ();
    gate_cond = Condition.create ();
    sessions = Hashtbl.create 16;
    session_cap = max 1 sessions;
    default_jobs = jobs;
    clock = 0;
    requests = 0;
    session_reuses = 0;
    aborted_requests = 0;
    next_req = 0;
    active_shared = 0;
    pending_exclusive = 0;
    exclusive = false;
  }

let cache t = t.cache
let metrics t = t.metrics

let close t =
  let victims =
    Mutex.protect t.lock (fun () ->
        let ws = Hashtbl.fold (fun _ w acc -> w :: acc) t.sessions [] in
        Hashtbl.reset t.sessions;
        ws)
  in
  List.iter (fun w -> Session.close w.w_session) victims

(* ------------------------------------------------------------------ *)
(* Fault gate                                                          *)
(* ------------------------------------------------------------------ *)

let enter_shared t =
  Mutex.protect t.lock (fun () ->
      while t.exclusive || t.pending_exclusive > 0 do
        Condition.wait t.gate_cond t.lock
      done;
      t.active_shared <- t.active_shared + 1)

let exit_shared t =
  Mutex.protect t.lock (fun () ->
      t.active_shared <- t.active_shared - 1;
      if t.active_shared = 0 then Condition.broadcast t.gate_cond)

let enter_exclusive t =
  Mutex.protect t.lock (fun () ->
      t.pending_exclusive <- t.pending_exclusive + 1;
      while t.exclusive || t.active_shared > 0 do
        Condition.wait t.gate_cond t.lock
      done;
      t.pending_exclusive <- t.pending_exclusive - 1;
      t.exclusive <- true)

let exit_exclusive t =
  Mutex.protect t.lock (fun () ->
      t.exclusive <- false;
      Condition.broadcast t.gate_cond)

(* ------------------------------------------------------------------ *)
(* Program resolution                                                  *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resolve_program = function
  | Protocol.Named name -> (
      match Dca_progs.Registry.find name with
      | Some bm ->
          Ok
            ( bm.Dca_progs.Benchmark.bm_name ^ ".mc",
              bm.Dca_progs.Benchmark.bm_source,
              bm.Dca_progs.Benchmark.bm_input )
      | None ->
          if Sys.file_exists name then Ok (name, read_file name, [])
          else Error (Printf.sprintf "'%s' is neither a built-in benchmark nor a file" name))
  | Protocol.Inline { file; source; input } -> Ok (file, source, input)

(* The request's analysis options, built exactly the way `dca analyze`
   builds them so the daemon and the one-shot CLI share one key space. *)
let options_of_request t (rq : Protocol.request) =
  let config =
    {
      Commutativity.default_config with
      Commutativity.cc_schedules =
        Schedule.presets ~shuffles:(Option.value rq.Protocol.rq_shuffles ~default:3) ();
      cc_escalate = not rq.Protocol.rq_no_escalate;
    }
  in
  let base =
    Session.Options.(
      default |> with_config config
      |> with_hierarchical rq.Protocol.rq_hierarchical
      |> with_static (not rq.Protocol.rq_no_static))
  in
  let set v f o = match v with None -> o | Some v -> f v o in
  base
  |> set
       (match rq.Protocol.rq_jobs with None -> t.default_jobs | j -> j)
       Session.Options.with_jobs
  |> set rq.Protocol.rq_deadline_ms Session.Options.with_deadline_ms
  |> set rq.Protocol.rq_heap_words Session.Options.with_heap_words

(* ------------------------------------------------------------------ *)
(* Warm-session pool                                                   *)
(* ------------------------------------------------------------------ *)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Evict idle sessions down to capacity, oldest first.  Busy sessions
   are untouchable — the table may transiently exceed its cap while
   every resident is mid-request.  Closing (a pool join) happens
   outside the lock. *)
let evict_sessions t =
  let victims = ref [] in
  Mutex.protect t.lock (fun () ->
      let continue = ref true in
      while !continue && Hashtbl.length t.sessions > t.session_cap do
        let victim = ref None in
        Hashtbl.iter
          (fun k w ->
            if not w.w_busy then
              match !victim with
              | Some (_, best) when best.w_last <= w.w_last -> ()
              | _ -> victim := Some (k, w))
          t.sessions;
        match !victim with
        | Some (k, w) ->
            Hashtbl.remove t.sessions k;
            victims := w :: !victims
        | None -> continue := false
      done);
  List.iter (fun w -> Session.close w.w_session) !victims

type slot = Pooled | Fresh of string

(* Claim a warm session for exclusive use, or build a transient one.
   The transient session joins the table on release if the slot is
   still free; if a twin claimed it meanwhile, the transient is simply
   closed — both produced identical replies, one keeps the warmth. *)
let acquire_session t ~file ~source ~input options =
  let key = Digest.to_hex (Digest.string source) ^ "|" ^ Session.Options.signature options in
  let reused =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.sessions key with
        | Some w when not w.w_busy ->
            w.w_busy <- true;
            w.w_last <- tick t;
            t.session_reuses <- t.session_reuses + 1;
            Some w
        | _ -> None)
  in
  match reused with
  | Some w -> (w, Pooled)
  | None ->
      let s = Session.create ~options (Session.Source { file; source; input }) in
      let w =
        { w_session = s; w_digest = lazy (Progdigest.of_program (Session.ir s)); w_last = 0; w_busy = true }
      in
      (w, Fresh key)

let release_session t w = function
  | Pooled ->
      Mutex.protect t.lock (fun () ->
          w.w_busy <- false;
          w.w_last <- tick t)
  | Fresh key ->
      let close_me =
        Mutex.protect t.lock (fun () ->
            if Hashtbl.mem t.sessions key then true
            else begin
              w.w_busy <- false;
              w.w_last <- tick t;
              Hashtbl.replace t.sessions key w;
              false
            end)
      in
      if close_me then Session.close w.w_session;
      evict_sessions t

(* ------------------------------------------------------------------ *)
(* Cached analysis                                                     *)
(* ------------------------------------------------------------------ *)

type outcome = {
  eo_report : string;
  eo_loops : Protocol.loop_info list;
  eo_hits : int;
  eo_misses : int;
}

let subsumed (r : Driver.loop_result) =
  match r.Driver.lr_decision with Driver.Subsumed _ -> true | _ -> false

let analyze_with_cache t w (rq : Protocol.request) =
  let s = w.w_session in
  let info = Session.proginfo s in
  let pd = Lazy.force w.w_digest in
  let prog_digest = Progdigest.program_digest pd in
  let static = (Session.options s).Session.Options.static in
  let config_digest =
    Progdigest.config_digest ~hierarchical:(Session.hierarchical s) ~static (Session.config s)
  in
  let spec_digest = Progdigest.spec_digest (Session.spec s) in
  let key_of (loop : Dca_analysis.Loops.loop) =
    Progdigest.loop_key pd ~config_digest ~spec_digest ~func:loop.Dca_analysis.Loops.l_func
      ~loop_id:loop.Dca_analysis.Loops.l_id
  in
  (* A fault-carrying request runs outside the cache entirely: hits would
     mask the injected failures it exists to exercise, and storing its
     (possibly Aborted) verdicts would poison later requests. *)
  let cache_on = rq.Protocol.rq_faults = None in
  (* probe phase: sequential, before any parallel work — the resolved
     table is read-only by the time worker domains consult it *)
  let resolved : (string, Driver.loop_result) Hashtbl.t = Hashtbl.create 16 in
  if cache_on && not rq.Protocol.rq_no_cache then
    List.iter
      (fun ((_, loop) : Dca_analysis.Proginfo.func_info * Dca_analysis.Loops.loop) ->
        match Vcache.find t.cache ~prog_digest (key_of loop) with
        | Some e ->
            Hashtbl.replace resolved loop.Dca_analysis.Loops.l_id
              {
                Driver.lr_loop = loop;
                lr_label = Dca_analysis.Proginfo.loop_label info loop;
                lr_decision = e.Vcache.e_decision;
                lr_outcome = e.Vcache.e_outcome;
                (* restored provenance: a cached static verdict renders
                   byte-identically to a freshly proved one *)
                lr_provenance = e.Vcache.e_provenance;
              }
        | None -> ())
      (Dca_analysis.Proginfo.all_loops info);
  let lookup _fi (loop : Dca_analysis.Loops.loop) =
    Hashtbl.find_opt resolved loop.Dca_analysis.Loops.l_id
  in
  let results =
    Driver.analyze_program ~config:(Session.config s) ~spec:(Session.spec s)
      ~hierarchical:(Session.hierarchical s) ~static ?pool:(Session.pool s) ~lookup info
  in
  (* store phase: every freshly computed, non-subsumed verdict.  Subsumed
     results are skipped — they are free to recompute and derive from
     sibling verdicts rather than from the loop's own code. *)
  let hits = ref 0 and misses = ref 0 in
  let loops =
    List.map
      (fun (r : Driver.loop_result) ->
        let id = r.Driver.lr_loop.Dca_analysis.Loops.l_id in
        let cached = Hashtbl.mem resolved id in
        if cached then incr hits
        else if not (subsumed r) then begin
          incr misses;
          if cache_on then
            Vcache.store t.cache (key_of r.Driver.lr_loop)
            {
              Vcache.e_decision = r.Driver.lr_decision;
              e_outcome = r.Driver.lr_outcome;
              e_provenance = r.Driver.lr_provenance;
              e_prog_digest = prog_digest;
            }
        end;
        {
          Protocol.li_label = r.Driver.lr_label;
          li_decision = Driver.decision_to_string r.Driver.lr_decision;
          li_cached = cached;
          li_provenance = r.Driver.lr_provenance;
        })
      results
  in
  {
    eo_report = Report.to_string results;
    eo_loops = loops;
    eo_hits = !hits;
    eo_misses = !misses;
  }

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let stats t =
  let c = Vcache.stats t.cache in
  let requests, aborted, warm, reuses =
    Mutex.protect t.lock (fun () ->
        (t.requests, t.aborted_requests, Hashtbl.length t.sessions, t.session_reuses))
  in
  [
    ("serve.requests", requests);
    ("serve.aborted_requests", aborted);
    ("serve.warm_sessions", warm);
    ("serve.session_reuses", reuses);
    ("cache.mem_entries", Vcache.size t.cache);
    ("cache.mem_hits", c.Vcache.st_mem_hits);
    ("cache.disk_hits", c.Vcache.st_disk_hits);
    ("cache.misses", c.Vcache.st_misses);
    ("cache.stores", c.Vcache.st_stores);
    ("cache.corrupt", c.Vcache.st_corrupt);
    ("cache.evictions", c.Vcache.st_evictions);
    ("cache.write_errors", c.Vcache.st_write_errors);
    ("cache.degraded", if Vcache.degraded t.cache then 1 else 0);
  ]

(* Per-request fault containment: a request's fault plan is armed for
   exactly that request, under the exclusive side of the gate; whatever
   escapes every inner containment layer (loop-level Aborted verdicts
   absorb most injected faults) is caught here and turned into an error
   *reply* — the daemon survives and the next request starts from a
   clean faultpoint state. *)
let run_analyze t (rq : Protocol.request) =
  try
    (match rq.Protocol.rq_faults with
    | Some plan ->
        Faultpoint.arm_string plan;
        Faultpoint.reset_hits ()
    | None -> ());
    Faultpoint.hit_unit fp_analyze;
    match resolve_program (Option.get rq.Protocol.rq_program) with
    | Error msg -> Error msg
    | Ok (file, source, input) ->
        let options = options_of_request t rq in
        let w, slot = acquire_session t ~file ~source ~input options in
        Fun.protect
          ~finally:(fun () -> release_session t w slot)
          (fun () -> Ok (analyze_with_cache t w rq))
  with
  | Faultpoint.Injected msg -> Error ("crash: " ^ msg)
  | Faultpoint.Bad_plan msg -> Error ("invalid fault plan: " ^ msg)
  | Dca_frontend.Loc.Error (loc, msg) -> Error (Dca_frontend.Loc.to_string loc ^ ": " ^ msg)
  | Dca_interp.Eval.Trap msg -> Error ("runtime trap: " ^ msg)
  | Dca_interp.Eval.Out_of_fuel -> Error "execution exceeded the fuel bound"
  | Dca_interp.Eval.Deadline_exceeded -> Error "execution exceeded the wall-clock deadline"
  | Dca_interp.Eval.Heap_exhausted -> Error "execution exceeded the heap budget"
  | e -> Error ("internal error: " ^ Printexc.to_string e)

let handle t (rq : Protocol.request) =
  let req =
    Mutex.protect t.lock (fun () ->
        t.requests <- t.requests + 1;
        t.next_req <- t.next_req + 1;
        t.next_req)
  in
  Metrics.incr t.metrics "dca_requests_total";
  Metrics.gauge_add t.metrics "dca_inflight_requests" 1;
  let id = rq.Protocol.rq_id in
  let t0 = Telemetry.now_ns () in
  let finish rp =
    let elapsed = Telemetry.now_ns () - t0 in
    Metrics.observe_ns t.metrics "dca_request_duration_seconds" elapsed;
    if not (Protocol.ok rp) then Metrics.incr t.metrics "dca_requests_errors_total";
    Metrics.gauge_add t.metrics "dca_inflight_requests" (-1);
    { rp with Protocol.rp_req = req; rp_elapsed_ns = elapsed }
  in
  match rq.Protocol.rq_op with
  | Protocol.Ping -> finish (Protocol.ok_response ~id)
  | Protocol.Stats ->
      finish
        {
          (Protocol.ok_response ~id) with
          Protocol.rp_counters = stats t;
          rp_metrics = Some (Metrics.snapshot_to_json (Metrics.snapshot t.metrics));
        }
  | Protocol.Shutdown -> finish (Protocol.ok_response ~id)
  | Protocol.Analyze -> (
      Metrics.incr t.metrics "dca_analyze_requests_total";
      let faulty = rq.Protocol.rq_faults <> None in
      if faulty then enter_exclusive t else enter_shared t;
      let result =
        Fun.protect
          ~finally:(fun () ->
            if faulty then begin
              Faultpoint.disarm ();
              exit_exclusive t
            end
            else exit_shared t)
          (fun () ->
            (* Per-request attribution: the analysis runs under its own
               context (mirroring the daemon's counting flag) and is
               folded into the daemon context afterwards, so concurrent
               requests never contaminate each other and the aggregate
               equals a serial daemon's.  Under tracing the daemon
               context is used directly — event streams must stay
               chronological per domain, and a trace is a whole-daemon
               artifact. *)
            let rctx =
              if Telemetry.Ctx.tracing t.tele then t.tele
              else Telemetry.Ctx.create ~counting:(Telemetry.Ctx.counting t.tele) ()
            in
            let r = Telemetry.with_ctx rctx (fun () -> run_analyze t rq) in
            if rctx != t.tele then Telemetry.Ctx.merge_into ~into:t.tele rctx;
            r)
      in
      match result with
      | Ok eo ->
          Metrics.add t.metrics "dca_cache_hits_total" eo.eo_hits;
          Metrics.add t.metrics "dca_cache_misses_total" eo.eo_misses;
          Metrics.gauge_set t.metrics "dca_warm_sessions"
            (Mutex.protect t.lock (fun () -> Hashtbl.length t.sessions));
          finish
            {
              (Protocol.ok_response ~id) with
              Protocol.rp_report = Some eo.eo_report;
              rp_loops = eo.eo_loops;
              rp_hits = eo.eo_hits;
              rp_misses = eo.eo_misses;
            }
      | Error msg ->
          Mutex.protect t.lock (fun () -> t.aborted_requests <- t.aborted_requests + 1);
          finish (Protocol.error_response ~id msg))
