/* Monotonic clock for Dca_support.Telemetry.
 *
 * CLOCK_MONOTONIC nanoseconds folded into an OCaml immediate int: 63 bits
 * hold ~292 years of nanoseconds, so Val_long never overflows in practice
 * and the external can be [@@noalloc] — no boxing on the hot path.
 */
#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value dca_monotonic_now_ns(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
