open Dca_frontend
open Ast

type spec = { sp_index : string; sp_trip : int; sp_line : int; sp_for : Ast.stmt }

let max_trip = 7

(* ------------------------------------------------------------------ *)
(* Marked-loop recognition                                             *)
(* ------------------------------------------------------------------ *)

(* The canonical counted form the generator (and corpus files) use:
   for (int i = 0; i < n; i = i + 1) { ... }. *)
let canonical_spec (s : stmt) =
  match s.sdesc with
  | Sfor (Some init, Some cond, Some step, _) -> begin
      match (init.sdesc, cond.edesc, step.sdesc) with
      | ( Sdecl (Tint, iv, Some { edesc = Eint 0; _ }),
          Ebinop (Lt, { edesc = Evar iv'; _ }, { edesc = Eint n; _ }),
          Sassign
            ( { edesc = Evar iv''; _ },
              { edesc = Ebinop (Add, { edesc = Evar iv'''; _ }, { edesc = Eint 1; _ }); _ } ) )
        when iv = iv' && iv = iv'' && iv = iv''' ->
          Some { sp_index = iv; sp_trip = n; sp_line = s.sloc.Loc.line; sp_for = s }
      | _ -> None
    end
  | _ -> None

let find_marked_loop (p : Ast.program) =
  match List.find_opt (fun f -> f.f_name = "main") p.funcs with
  | None -> Error "no main function"
  | Some main ->
      let rec scan = function
        | { sdesc = Sprints m; _ } :: next :: _ when m = Gen_program.marker -> begin
            match canonical_spec next with
            | Some spec -> Ok spec
            | None -> Error "statement after the marker is not a canonical counted for loop"
          end
        | _ :: rest -> scan rest
        | [] -> Error "no DCA_FUZZ_LOOP marker in main"
      in
      scan main.f_body

(* ------------------------------------------------------------------ *)
(* Unrolling                                                           *)
(* ------------------------------------------------------------------ *)

let unroll (p : Ast.program) spec perm =
  let body =
    match spec.sp_for.sdesc with Sfor (_, _, _, b) -> b | _ -> invalid_arg "Oracle.unroll"
  in
  let block k =
    {
      sdesc =
        Sblock
          ({
             sdesc = Sdecl (Tint, spec.sp_index, Some { edesc = Eint perm.(k); eloc = Loc.dummy });
             sloc = Loc.dummy;
           }
          :: body);
      sloc = Loc.dummy;
    }
  in
  let unrolled = List.init (Array.length perm) block in
  let replace stmts =
    List.concat_map (fun s -> if s == spec.sp_for then unrolled else [ s ]) stmts
  in
  {
    p with
    funcs =
      List.map (fun f -> if f.f_name = "main" then { f with f_body = replace f.f_body } else f) p.funcs;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let run_outputs ?(fuel = 20_000_000) ~input (p : Ast.program) =
  match
    let ir = Dca_ir.Lower.lower_program (Typecheck.check_program p) in
    let ctx = Dca_interp.Eval.create ~fuel ~input ir in
    Dca_interp.Eval.run_main ctx;
    Dca_interp.Eval.outputs ctx
  with
  | outs -> Ok outs
  | exception Loc.Error (l, msg) -> Error (Printf.sprintf "%s: %s" (Loc.to_string l) msg)
  | exception Dca_interp.Eval.Trap msg -> Error ("trap: " ^ msg)
  | exception Dca_interp.Eval.Out_of_fuel -> Error "out of fuel"

(* ------------------------------------------------------------------ *)
(* Permutation enumeration (lexicographic)                             *)
(* ------------------------------------------------------------------ *)

(* Standard next-permutation step; returns false once [a] was the last
   (descending) permutation. *)
let next_permutation a =
  let n = Array.length a in
  let i = ref (n - 2) in
  while !i >= 0 && a.(!i) >= a.(!i + 1) do
    decr i
  done;
  if !i < 0 then false
  else begin
    let j = ref (n - 1) in
    while a.(!j) <= a.(!i) do
      decr j
    done;
    let t = a.(!i) in
    a.(!i) <- a.(!j);
    a.(!j) <- t;
    let l = ref (!i + 1) and r = ref (n - 1) in
    while !l < !r do
      let t = a.(!l) in
      a.(!l) <- a.(!r);
      a.(!r) <- t;
      incr l;
      decr r
    done;
    true
  end

let permutations n =
  if n > max_trip then invalid_arg "Oracle.permutations: trip count too large";
  let first = Array.init (max n 0) (fun i -> i) in
  let rec seq cur () =
    match cur with
    | None -> Seq.Nil
    | Some a ->
        let next =
          let b = Array.copy a in
          if next_permutation b then Some b else None
        in
        Seq.Cons (a, seq next)
  in
  seq (Some first)

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

type verdict = Commutative | Non_commutative of int array | Unsupported of string

let is_identity a =
  let ok = ref true in
  Array.iteri (fun i x -> if x <> i then ok := false) a;
  !ok

let decide ?(eps = 1e-6) ?fuel ~input (p : Ast.program) spec =
  if spec.sp_trip > max_trip then
    Unsupported (Printf.sprintf "trip count %d exceeds the oracle bound %d" spec.sp_trip max_trip)
  else if spec.sp_trip <= 1 then Commutative
  else
    match run_outputs ?fuel ~input (unroll p spec (Array.init spec.sp_trip (fun i -> i))) with
    | Error msg -> Unsupported ("golden unrolled run failed: " ^ msg)
    | Ok golden ->
        let rec sweep perms =
          match Seq.uncons perms with
          | None -> Commutative
          | Some (perm, rest) ->
              if is_identity perm then sweep rest
              else begin
                match run_outputs ?fuel ~input (unroll p spec perm) with
                | Ok outs when Dca_interp.Observable.outputs_equal ~eps golden outs -> sweep rest
                | Ok _ | Error _ -> Non_commutative (Array.copy perm)
              end
        in
        sweep (permutations spec.sp_trip)

let check_witness ?(eps = 1e-6) ?fuel ~input (p : Ast.program) spec perm =
  if Array.length perm <> spec.sp_trip then `Error "witness length does not match trip count"
  else
    match run_outputs ?fuel ~input (unroll p spec (Array.init spec.sp_trip (fun i -> i))) with
    | Error msg -> `Error ("golden unrolled run failed: " ^ msg)
    | Ok golden -> begin
        match run_outputs ?fuel ~input (unroll p spec perm) with
        | Ok outs ->
            if Dca_interp.Observable.outputs_equal ~eps golden outs then `Match else `Mismatch
        | Error _ -> `Mismatch
      end
