open Dca_analysis
open Dca_interp

type dep_kind = Raw | War | Waw

let dep_kind_to_string = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"

type dep = { d_kind : dep_kind; d_write_iid : int; d_read_iid : int; d_loc : Events.loc }

type invocation = { inv_iters : int; inv_iter_costs : int array }

type loop_profile = {
  mutable lp_invocations : invocation list;
  mutable lp_total_cost : int;
  mutable lp_total_iters : int;
  mutable lp_deps : dep list;
}

type profile = {
  pr_loops : (string, loop_profile) Hashtbl.t;
  pr_total_cost : int;
  pr_buckets : (string list * int) list;
}

(* Per-location access record inside one loop context. *)
type access_record = {
  mutable lw_iter : int;  (** last write iteration, -1 = none *)
  mutable lw_iid : int;
  mutable lr_iter : int;  (** last read iteration, -1 = none *)
  mutable lr_iid : int;
}

(* One dynamic activation of a loop. *)
type context = {
  cx_loop : Loops.loop;
  cx_id : string;
  mutable cx_iter : int;
  mutable cx_cur_cost : int;
  mutable cx_costs_rev : int list;
  cx_table : (Events.loc, access_record) Hashtbl.t;
  cx_dep_keys : (dep_kind * int * int, unit) Hashtbl.t;  (** dedup keys *)
  mutable cx_deps : dep list;
}

(* The per-frame state: the function's loop forest and the frame's own
   stack of active loop contexts (innermost last). *)
type frame_state = { fs_forest : Loops.forest; mutable fs_contexts : context list }

let max_invocations_kept = 256

let profile_program ?fuel ?input (info : Proginfo.t) =
  let prog = Proginfo.program info in
  let ctx = Eval.create ?fuel ?input prog in
  let loops_tbl : (string, loop_profile) Hashtbl.t = Hashtbl.create 64 in
  let loop_prof id =
    match Hashtbl.find_opt loops_tbl id with
    | Some lp -> lp
    | None ->
        let lp = { lp_invocations = []; lp_total_cost = 0; lp_total_iters = 0; lp_deps = [] } in
        Hashtbl.replace loops_tbl id lp;
        lp
  in
  let buckets : (string list, int) Hashtbl.t = Hashtbl.create 64 in
  let total_cost = ref 0 in
  (* frame stack; each frame has its loop-context stack *)
  let frames : frame_state list ref = ref [] in
  (* flat list of all active contexts (outermost first), kept in sync *)
  let active : context list ref = ref [] in
  let sync_active () =
    active := List.concat_map (fun fs -> fs.fs_contexts) (List.rev !frames)
  in
  let finish_iteration cx =
    cx.cx_costs_rev <- cx.cx_cur_cost :: cx.cx_costs_rev;
    cx.cx_cur_cost <- 0
  in
  let finalize_context cx =
    finish_iteration cx;
    let lp = loop_prof cx.cx_id in
    let costs = Array.of_list (List.rev cx.cx_costs_rev) in
    (* iteration 0 cost accumulates between entry and first latch; the
       final entry covers the exit path of the last iteration *)
    let inv = { inv_iters = cx.cx_iter + 1; inv_iter_costs = costs } in
    if List.length lp.lp_invocations < max_invocations_kept then
      lp.lp_invocations <- inv :: lp.lp_invocations;
    lp.lp_total_iters <- lp.lp_total_iters + inv.inv_iters;
    lp.lp_deps <- cx.cx_deps @ lp.lp_deps
  in
  let record_access is_write loc iid =
    List.iter
      (fun cx ->
        let rec_ =
          match Hashtbl.find_opt cx.cx_table loc with
          | Some r -> r
          | None ->
              let r = { lw_iter = -1; lw_iid = -1; lr_iter = -1; lr_iid = -1 } in
              Hashtbl.replace cx.cx_table loc r;
              r
        in
        let it = cx.cx_iter in
        let add kind w r =
          let key = (kind, w, r) in
          if not (Hashtbl.mem cx.cx_dep_keys key) then begin
            Hashtbl.replace cx.cx_dep_keys key ();
            cx.cx_deps <- { d_kind = kind; d_write_iid = w; d_read_iid = r; d_loc = loc } :: cx.cx_deps
          end
        in
        if is_write then begin
          if rec_.lw_iter >= 0 && rec_.lw_iter < it then add Waw rec_.lw_iid iid;
          if rec_.lr_iter >= 0 && rec_.lr_iter < it then add War iid rec_.lr_iid;
          rec_.lw_iter <- it;
          rec_.lw_iid <- iid
        end
        else begin
          if rec_.lw_iter >= 0 && rec_.lw_iter < it then add Raw rec_.lw_iid iid;
          rec_.lr_iter <- it;
          rec_.lr_iid <- iid
        end)
      !active
  in
  let on_block ~fname ~src ~dst =
    match !frames with
    | [] -> ()
    | fs :: _ ->
        (* leave contexts whose loop does not contain dst *)
        let rec unwind = function
          | cx :: rest when not (Loops.contains_block cx.cx_loop dst) ->
              finalize_context cx;
              unwind rest
          | l -> l
        in
        fs.fs_contexts <- unwind fs.fs_contexts;
        (match Loops.loop_of_header fs.fs_forest dst with
        | Some l -> begin
            match fs.fs_contexts with
            | cx :: _ when cx.cx_loop.Loops.l_id = l.Loops.l_id && src >= 0
                           && Loops.contains_block l src ->
                (* back edge: new iteration *)
                finish_iteration cx;
                cx.cx_iter <- cx.cx_iter + 1
            | _ ->
                let cx =
                  {
                    cx_loop = l;
                    cx_id = l.Loops.l_id;
                    cx_iter = 0;
                    cx_cur_cost = 0;
                    cx_costs_rev = [];
                    cx_table = Hashtbl.create 64;
                    cx_dep_keys = Hashtbl.create 16;
                    cx_deps = [];
                  }
                in
                fs.fs_contexts <- cx :: fs.fs_contexts
          end
        | None -> ());
        ignore fname;
        sync_active ()
  in
  let sink =
    {
      Events.on_exec =
        (fun _ ->
          incr total_cost;
          let stack_key = List.map (fun cx -> cx.cx_id) !active in
          Hashtbl.replace buckets stack_key
            (1 + Option.value ~default:0 (Hashtbl.find_opt buckets stack_key));
          List.iter
            (fun cx ->
              cx.cx_cur_cost <- cx.cx_cur_cost + 1;
              let lp = loop_prof cx.cx_id in
              lp.lp_total_cost <- lp.lp_total_cost + 1)
            !active);
      on_read = (fun loc iid -> record_access false loc iid);
      on_write = (fun loc iid -> record_access true loc iid);
      on_block;
      on_call =
        (fun fname ->
          let fi = Proginfo.func_info info fname in
          frames := { fs_forest = fi.Proginfo.fi_forest; fs_contexts = [] } :: !frames;
          sync_active ());
      on_return =
        (fun _ ->
          (match !frames with
          | fs :: rest ->
              List.iter finalize_context fs.fs_contexts;
              frames := rest
          | [] -> ());
          sync_active ());
    }
  in
  Eval.set_sink ctx (Some sink);
  Eval.run_main ctx;
  Eval.set_sink ctx None;
  (* unwind anything left (main returned) *)
  List.iter (fun fs -> List.iter finalize_context fs.fs_contexts) !frames;
  {
    pr_loops = loops_tbl;
    pr_total_cost = !total_cost;
    pr_buckets = Hashtbl.fold (fun k v acc -> (k, v) :: acc) buckets [];
  }

let loop_profile p id = Hashtbl.find_opt p.pr_loops id

let coverage_of p detected =
  if p.pr_total_cost = 0 then 0.0
  else begin
    let covered =
      List.fold_left
        (fun acc (stack, cost) ->
          if List.exists (fun id -> List.mem id detected) stack then acc + cost else acc)
        0 p.pr_buckets
    in
    float_of_int covered /. float_of_int p.pr_total_cost
  end

let deps_of p id = match loop_profile p id with Some lp -> lp.lp_deps | None -> []
