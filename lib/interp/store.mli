(** The interpreter's mutable program state: the heap, the global table,
    the output stream, the [drand] generator state and the [reads] input
    cursor.  Everything is captured by {!snapshot} and brought back by
    {!restore} — the primitive DCA's dynamic stage uses to re-execute a
    loop from its entry state under different iteration schedules.

    {2 Checkpointing}

    Two interchangeable strategies implement the same snapshot/restore
    contract:

    - [Journal] (the default): {!snapshot} is O(1) — it opens an undo
      journal and a write barrier in {!store}/{!write_global} logs the
      frozen old cells array of each block (old value of each global slot)
      on its first mutation per generation.  {!restore} replays only the
      journal, so its cost is O(blocks dirtied since the snapshot), not
      O(heap).  {!copy} is copy-on-write: the replica shares every cells
      array with the parent and per-block generation stamps make either
      side privatize a block before its first write.
    - [Deep] (the oracle, selected by [DCA_CHECKPOINT=deep]): snapshot,
      restore and copy duplicate the whole heap eagerly — the seed
      implementation, kept as the differential-testing reference.

    Journal snapshots obey a stack discipline: restoring a snapshot
    invalidates every snapshot taken after it, and {!release} must be
    called when a snapshot is no longer needed so the journal (and the
    write barrier) can be retired.

    {2 Statistics}

    Every store counts its own checkpointing traffic in a {!stats}
    record (plain fields bumped on events that already copy arrays or
    push journal entries — the per-write fast path is untouched):
    snapshots and restores taken, undo-journal entries pushed and the
    journal's peak length, blocks privatized by the write barrier with
    the total cells those copies moved, the deepest nesting of live
    snapshots, privatizations forced by copy-on-write sharing after a
    fork ({e fork watermark hits}), and replicas forked off with
    {!copy}.  {!flush_telemetry} drains the record into the process-wide
    {!Dca_support.Telemetry} diagnostic counters ([store.*]); these are
    diagnostics, not work counters — a parallel run forks replica stores
    and shifts snapshot/restore traffic onto them, so the totals
    legitimately differ across worker counts. *)

type t

type snapshot

type checkpoint_mode = Journal | Deep

val default_mode : unit -> checkpoint_mode
(** [Journal], unless the [DCA_CHECKPOINT] environment variable is set to
    ["deep"].  Reads the environment on every call, so a [putenv] between
    store creations takes effect. *)

val create : ?mode:checkpoint_mode -> Dca_ir.Ir.program -> input:int list -> t
(** Fresh state with globals zero-initialized (or set to their constant
    initializers) and aggregate globals backed by fresh heap blocks.
    [mode] defaults to {!default_mode}. *)

val alloc : t -> Dca_ir.Layout.cellkind array -> count:int -> int
(** Allocate a block of [count] repetitions of the kind pattern, zero
    initialized; returns the block id. *)

val load : t -> block:int -> off:int -> Value.t
(** Raises [Failure] on a dangling block or out-of-bounds offset. *)

val store : t -> block:int -> off:int -> Value.t -> unit

val block_size : t -> int -> int option

val block_cells : t -> int -> Value.t array option
(** The live cells array of a block, or [None] when the id is dangling.
    Read-only view for bulk scans ({!Observable.capture}): callers must
    not mutate it — writes go through {!store}, which keeps the
    checkpoint journal and copy-on-write sharing sound. *)

val read_global : t -> int -> Value.t
val write_global : t -> int -> Value.t -> unit

val print_value : t -> Value.t -> unit
val print_string_ : t -> string -> unit
val outputs : t -> string list
(** Output lines, oldest first. *)

val drand : t -> float
(** Next value of the stateful generator (xorshift64*, in [0,1)). *)

val dseed : t -> int -> unit
val read_input : t -> int
(** Next integer of the input stream; 0 when exhausted. *)

val snapshot : t -> snapshot
(** O(1) in [Journal] mode; O(heap) in [Deep] mode. *)

val restore : t -> snapshot -> unit
(** Rewind the store to the snapshot's state.  A snapshot can be restored
    any number of times.  In [Journal] mode, raises [Invalid_argument] on
    a released snapshot or one invalidated by restoring an older
    snapshot. *)

val release : t -> snapshot -> unit
(** Declare the snapshot dead: it will not be restored again.  When the
    last live journal snapshot is released the undo journal is cleared
    and the write barrier stops logging.  Idempotent; a no-op in [Deep]
    mode. *)

val copy : t -> t
(** A private replica: mutating the copy never affects the original and
    vice versa, so the copy can be driven by another domain.  In
    [Journal] mode the heap is shared copy-on-write (the parent must be
    quiescent while replicas are being forked, as in the pool's fan-out);
    in [Deep] mode every block is duplicated eagerly.  The (immutable)
    input stream is shared; active snapshots are not inherited. *)

val heap_blocks : t -> int
(** Number of live blocks (diagnostics). *)

(** {1 Statistics} *)

type stats = {
  mutable st_snapshots : int;  (** {!snapshot} calls *)
  mutable st_restores : int;  (** {!restore} calls *)
  mutable st_journal_entries : int;  (** undo-journal entries pushed *)
  mutable st_journal_peak : int;  (** longest the journal ever grew *)
  mutable st_blocks_privatized : int;  (** barrier-installed private copies *)
  mutable st_cells_dirtied : int;  (** total cells across those copies *)
  mutable st_snapshot_depth_peak : int;  (** deepest live-snapshot nesting *)
  mutable st_watermark_hits : int;
      (** privatizations forced by post-fork copy-on-write sharing
          (block stamp below the [shared_below] fork watermark) *)
  mutable st_forks : int;
      (** [1] when this store was itself created by {!copy}, [0]
          otherwise — recorded on the replica, not the parent, so
          concurrent forks of a quiescent parent never race on the
          parent's stats.  Summed over flushed stores this counts the
          replicas forked. *)
}

val stats : t -> stats
(** The store's live statistics record (not a copy). *)

val flush_telemetry : t -> unit
(** Add this store's statistics to the process-wide
    {!Dca_support.Telemetry} diagnostic counters ([store.*] — peaks
    max-merge, the rest sum) and zero the summed fields, so repeated
    flushes only contribute deltas.  No-op while counting is disabled. *)
