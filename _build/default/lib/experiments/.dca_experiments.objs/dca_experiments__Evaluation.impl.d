lib/experiments/evaluation.ml: Benchmark Commutativity Dca_analysis Dca_baselines Dca_core Dca_parallel Dca_profiling Dca_progs Driver Hashtbl List Proginfo
