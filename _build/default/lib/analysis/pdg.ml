open Dca_ir

type node = Instr of int | Term of int

let compare_node a b =
  match (a, b) with
  | Instr x, Instr y -> compare x y
  | Term x, Term y -> compare x y
  | Instr _, Term _ -> -1
  | Term _, Instr _ -> 1

module Nodeset = Set.Make (struct
  type t = node

  let compare = compare_node
end)

type t = {
  cfg : Cfg.t;
  instrs : (int, Ir.instr) Hashtbl.t;
  node_blocks : (node, int) Hashtbl.t;
  defs : (int, node list) Hashtbl.t;  (** var id → defining instr nodes *)
  deps : (node, node list) Hashtbl.t;  (** node → nodes it depends on *)
  cdep_parents : int list array;  (** block → blocks controlling it *)
}

(* Control-dependence parents: block A is control-dependent on B iff B has
   an edge B→s with A post-dominating s but A not post-dominating B.
   Classic construction: for each edge B→s, walk the post-dominator tree
   from s up to (but excluding) ipostdom(B). *)
let control_dependence cfg =
  let pdom, _virtual_exit = Dominance.post_of_cfg cfg in
  let n = Cfg.nblocks cfg in
  let parents = Array.make n [] in
  List.iter
    (fun b ->
      let ipdom_b = Dominance.idom pdom b in
      List.iter
        (fun s ->
          let rec walk a =
            match ipdom_b with
            | Some stop when a = stop -> ()
            | _ ->
                if a < n then begin
                  if not (List.mem b parents.(a)) then parents.(a) <- b :: parents.(a);
                  match Dominance.idom pdom a with
                  | Some up when up <> a -> walk up
                  | _ -> ()
                end
          in
          walk s)
        (Cfg.succs cfg b))
    (Cfg.reverse_postorder cfg);
  parents

let build cfg =
  let instrs = Hashtbl.create 64 in
  let node_blocks = Hashtbl.create 64 in
  let defs = Hashtbl.create 64 in
  let deps = Hashtbl.create 64 in
  let add_def vid node = Hashtbl.replace defs vid (node :: (try Hashtbl.find defs vid with Not_found -> [])) in
  (* First pass: register nodes and variable definitions. *)
  List.iter
    (fun bid ->
      let blk = Cfg.block cfg bid in
      List.iter
        (fun i ->
          Hashtbl.replace instrs i.Ir.iid i;
          Hashtbl.replace node_blocks (Instr i.Ir.iid) bid;
          match Ir.def_of i.Ir.idesc with
          | Some v -> add_def v.Ir.vid (Instr i.Ir.iid)
          | None -> ())
        blk.Ir.instrs;
      Hashtbl.replace node_blocks (Term bid) bid)
    (Cfg.reverse_postorder cfg);
  let cdep_parents = control_dependence cfg in
  let deps_of_uses uses bid =
    let data =
      List.concat_map
        (fun v -> try Hashtbl.find defs v.Ir.vid with Not_found -> [])
        uses
    in
    let control = List.map (fun b -> Term b) cdep_parents.(bid) in
    data @ control
  in
  List.iter
    (fun bid ->
      let blk = Cfg.block cfg bid in
      List.iter
        (fun i ->
          Hashtbl.replace deps (Instr i.Ir.iid) (deps_of_uses (Ir.uses_of i.Ir.idesc) bid))
        blk.Ir.instrs;
      Hashtbl.replace deps (Term bid) (deps_of_uses (Ir.term_uses blk.Ir.bterm) bid))
    (Cfg.reverse_postorder cfg);
  { cfg; instrs; node_blocks; defs; deps; cdep_parents }

let deps_of t node = try Hashtbl.find t.deps node with Not_found -> []

let data_deps_of t node =
  List.filter (function Instr _ -> true | Term _ -> false) (deps_of t node)

let node_block t node = try Hashtbl.find t.node_blocks node with Not_found -> -1

let instr t iid =
  match Hashtbl.find_opt t.instrs iid with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Pdg.instr: unknown instruction %d" iid)

let nodes_of_block t bid =
  let blk = Cfg.block t.cfg bid in
  List.map (fun i -> Instr i.Ir.iid) blk.Ir.instrs @ [ Term bid ]

let defs_of_var t vid = try Hashtbl.find t.defs vid with Not_found -> []

let backward_closure t ~within seeds =
  let result = ref Nodeset.empty in
  let rec visit node =
    if within node && not (Nodeset.mem node !result) then begin
      result := Nodeset.add node !result;
      List.iter visit (deps_of t node)
    end
  in
  List.iter visit seeds;
  !result

let control_parents t bid = t.cdep_parents.(bid)
