lib/support/prng.mli:
