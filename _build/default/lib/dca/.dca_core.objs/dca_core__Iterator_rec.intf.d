lib/dca/iterator_rec.mli: Dca_analysis Dca_ir Dca_support
