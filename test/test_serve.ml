(* The serve subsystem: JSON codec, wire protocol, content digests, the
   two-level verdict cache, the cached engine, and the socket server.

   The engine tests are the interesting ones: they pin down the cache's
   observable contract — an edit to one function recomputes only that
   function's loops (watched through the deterministic dca.golden_runs
   counter: cache hits tick no work counters), cached replies are
   byte-identical to cold ones at any job width, and a corrupted on-disk
   entry degrades to a recompute, never a wrong answer. *)

module Json = Dca_serve.Json
module Protocol = Dca_serve.Protocol
module Vcache = Dca_serve.Vcache
module Progdigest = Dca_serve.Progdigest
module Engine = Dca_serve.Engine
module Metrics = Dca_serve.Metrics
module Server = Dca_serve.Server
module Client = Dca_serve.Client
module Session = Dca_core.Session
module Driver = Dca_core.Driver
module Report = Dca_core.Report
module Commutativity = Dca_core.Commutativity
module Telemetry = Dca_support.Telemetry
module Faultpoint = Dca_support.Faultpoint
module Prng = Dca_support.Prng

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "line\nquote\"tab\tslash\\end");
        ("list", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  (match Json.of_string_result (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "control chars escaped" true
    (not (String.contains (Json.to_string (Json.Str "a\nb")) '\n'))

let test_json_rejects () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ] in
  List.iter
    (fun s ->
      match Json.of_string_result s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    bad

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let test_protocol_request_roundtrip () =
  let rq =
    {
      Protocol.rq_id = 7;
      rq_op = Protocol.Analyze;
      rq_program = Some (Protocol.Inline { file = "t.mc"; source = "void main() { }"; input = [ 1; 2 ] });
      rq_jobs = Some 4;
      rq_shuffles = Some 2;
      rq_hierarchical = true;
      rq_no_escalate = true;
      rq_deadline_ms = Some 100;
      rq_heap_words = Some 4096;
      rq_faults = Some "driver.loop@1=raise";
      rq_no_cache = true;
      rq_no_static = true;
    }
  in
  (match Protocol.parse_request (Protocol.request_line rq) with
  | Ok rq' -> Alcotest.(check bool) "request round-trips" true (rq = rq')
  | Error e -> Alcotest.fail e);
  (* named programs and defaults *)
  match Protocol.parse_request "{\"op\":\"analyze\",\"program\":\"LU\",\"future_field\":1}" with
  | Ok rq' ->
      Alcotest.(check bool) "named program" true (rq'.Protocol.rq_program = Some (Protocol.Named "LU"));
      Alcotest.(check bool) "defaults" true
        (rq'.Protocol.rq_jobs = None && not rq'.Protocol.rq_hierarchical)
  | Error e -> Alcotest.fail e

let test_protocol_request_rejects () =
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "{\"id\":1}" (* no op *);
      "{\"op\":\"frobnicate\"}" (* unknown op *);
      "{\"op\":\"analyze\"}" (* analyze without program *);
      "not json at all";
    ]

let test_protocol_response_roundtrip () =
  let rp =
    {
      Protocol.rp_id = 9;
      rp_req = 42;
      rp_status = Protocol.Ok;
      rp_error = None;
      rp_report = Some "DCA: 1/1 loop(s) commutative\n";
      rp_loops =
        [
          { Protocol.li_label = "main:3(d1)"; li_decision = "commutative"; li_cached = true; li_provenance = Report.Static };
          { Protocol.li_label = "main:5(d1)"; li_decision = "aborted"; li_cached = false; li_provenance = Report.Dynamic };
        ];
      rp_hits = 1;
      rp_misses = 1;
      rp_counters = [ ("serve.requests", 3) ];
      rp_metrics = None;
      rp_elapsed_ns = 12345;
    }
  in
  match Protocol.parse_response (Protocol.response_line rp) with
  | Ok rp' -> Alcotest.(check bool) "response round-trips" true (rp = rp')
  | Error e -> Alcotest.fail e

(* The [busy] status (overload shed, worker crash) survives the wire,
   and an unknown status from a newer daemon degrades to [Error] — an
   older client never mistakes it for success. *)
let test_protocol_status () =
  List.iter
    (fun st ->
      Alcotest.(check bool)
        (Protocol.status_to_string st ^ " round-trips")
        true
        (Protocol.status_of_string (Protocol.status_to_string st) = st))
    [ Protocol.Ok; Protocol.Busy; Protocol.Error ];
  let busy = Protocol.busy_response ~id:3 "server overloaded: request queue is full (max 64)" in
  Alcotest.(check bool) "busy is not ok" false (Protocol.ok busy);
  (match Protocol.parse_response (Protocol.response_line busy) with
  | Ok rp ->
      Alcotest.(check bool) "busy survives the wire" true (rp.Protocol.rp_status = Protocol.Busy);
      Alcotest.(check bool) "busy carries its message" true
        (match rp.Protocol.rp_error with
        | Some m -> has_prefix "server overloaded" m
        | None -> false)
  | Error e -> Alcotest.fail e);
  match Protocol.parse_response "{\"id\":1,\"status\":\"throttled\"}" with
  | Ok rp ->
      Alcotest.(check bool) "unknown status degrades to error" true
        (rp.Protocol.rp_status = Protocol.Error && not (Protocol.ok rp))
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Content digests                                                     *)
(* ------------------------------------------------------------------ *)

let compile source = Dca_ir.Lower.compile ~file:"t.mc" source

let two_funcs fb_add =
  Printf.sprintf
    {|
int a[16];
int b[16];
void fa() { int i; for (i = 0; i < 16; i = i + 1) { a[i] = a[i] + 1; } }
void fb() { int i; for (i = 0; i < 16; i = i + 1) { b[i] = b[i] + %d; } }
void main() { fa(); fb(); }
|}
    fb_add

(* Formatting round-trips: whitespace and comments lower to identical IR,
   so every digest — whole-program and per-function — is unchanged. *)
let test_digest_formatting_stable () =
  let reformatted =
    {|
int a[16];   int b[16];
/* reformatted, semantically identical */
void fa() {
  int i;
  for (i = 0; i < 16; i = i + 1) { a[i] = a[i] + 1; }  // bump
}
void fb() { int i; for (i = 0; i < 16; i = i + 1) { b[i] = b[i] + 2; } }
void main() { fa(); fb(); }
|}
  in
  let d1 = Progdigest.of_program (compile (two_funcs 2)) in
  let d2 = Progdigest.of_program (compile reformatted) in
  Alcotest.(check string) "program digest" (Progdigest.program_digest d1)
    (Progdigest.program_digest d2);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f ^ " closure digest")
        true
        (Progdigest.func_digest d1 f = Progdigest.func_digest d2 f))
    [ "fa"; "fb"; "main" ]

(* Editing one function moves its own digest and its (transitive)
   callers' — and nobody else's. *)
let test_digest_edit_granularity () =
  let d1 = Progdigest.of_program (compile (two_funcs 2)) in
  let d2 = Progdigest.of_program (compile (two_funcs 3)) in
  Alcotest.(check bool) "fa unchanged" true
    (Progdigest.func_digest d1 "fa" = Progdigest.func_digest d2 "fa");
  Alcotest.(check bool) "fb changed" false
    (Progdigest.func_digest d1 "fb" = Progdigest.func_digest d2 "fb");
  Alcotest.(check bool) "caller main changed" false
    (Progdigest.func_digest d1 "main" = Progdigest.func_digest d2 "main");
  Alcotest.(check bool) "program digest changed" false
    (Progdigest.program_digest d1 = Progdigest.program_digest d2)

(* ------------------------------------------------------------------ *)
(* Verdict cache                                                       *)
(* ------------------------------------------------------------------ *)

let entry ?(prog = "P") decision =
  { Vcache.e_decision = decision; e_outcome = None; e_provenance = Report.Dynamic; e_prog_digest = prog }

let test_vcache_memory () =
  let c = Vcache.create ~capacity:2 () in
  Vcache.store c "k1" (entry Driver.Commutative);
  Vcache.store c "k2" (entry (Driver.Non_commutative "digest mismatch"));
  (match Vcache.find c ~prog_digest:"P" "k1" with
  | Some e -> Alcotest.(check bool) "k1 decision" true (e.Vcache.e_decision = Driver.Commutative)
  | None -> Alcotest.fail "k1 missing");
  (* k2 is now least-recently-used; inserting k3 evicts it *)
  ignore (Vcache.find c ~prog_digest:"P" "k1");
  Vcache.store c "k3" (entry Driver.Commutative);
  Alcotest.(check int) "capacity held" 2 (Vcache.size c);
  Alcotest.(check bool) "LRU evicted k2" true (Vcache.find c ~prog_digest:"P" "k2" = None);
  Alcotest.(check bool) "k1 survived" true (Vcache.find c ~prog_digest:"P" "k1" <> None);
  let st = Vcache.stats c in
  Alcotest.(check int) "one eviction" 1 st.Vcache.st_evictions

let test_vcache_disk_persistence () =
  let dir = fresh_dir "vcache" in
  let c1 = Vcache.create ~dir () in
  Vcache.store c1 "k1" (entry Driver.Commutative);
  (* a second instance over the same directory: a daemon restart *)
  let c2 = Vcache.create ~dir () in
  (match Vcache.find c2 ~prog_digest:"P" "k1" with
  | Some e -> Alcotest.(check bool) "decision survives restart" true (e.Vcache.e_decision = Driver.Commutative)
  | None -> Alcotest.fail "disk entry missing");
  let st = Vcache.stats c2 in
  Alcotest.(check int) "served from disk" 1 st.Vcache.st_disk_hits;
  (* promoted into memory: the second find is a memory hit *)
  ignore (Vcache.find c2 ~prog_digest:"P" "k1");
  Alcotest.(check int) "promoted to memory" 1 (Vcache.stats c2).Vcache.st_mem_hits

let test_vcache_corruption_degrades () =
  let dir = fresh_dir "vcache" in
  let c1 = Vcache.create ~dir () in
  Vcache.store c1 "k1" (entry Driver.Commutative);
  Vcache.store c1 "k2" (entry Driver.Commutative);
  (* flip payload bytes in one entry, truncate the other *)
  let f1 = Filename.concat dir "k1.v" and f2 = Filename.concat dir "k2.v" in
  let oc = open_out_gen [ Open_wronly ] 0o644 f1 in
  seek_out oc (in_channel_length (open_in_bin f1) - 3);
  output_string oc "XXX";
  close_out oc;
  let oc = open_out_bin f2 in
  output_string oc "DCAV1\ntru";
  close_out oc;
  let c2 = Vcache.create ~dir () in
  Alcotest.(check bool) "flipped entry rejected" true (Vcache.find c2 ~prog_digest:"P" "k1" = None);
  Alcotest.(check bool) "truncated entry rejected" true (Vcache.find c2 ~prog_digest:"P" "k2" = None);
  Alcotest.(check int) "both counted corrupt" 2 (Vcache.stats c2).Vcache.st_corrupt

(* Escalated entries were verified against whole-program output, so they
   are only served while the whole-program digest still matches. *)
let test_vcache_escalated_pinned () =
  (* borrow a real outcome from a tiny analysis, then mark it escalated *)
  let outcome =
    Session.with_session
      (* prover off: we need a *dynamic* outcome record to borrow *)
      ~options:Session.Options.(default |> with_jobs 1 |> with_static false)
      (Session.Source { file = "t.mc"; source = two_funcs 2; input = [] })
      (fun s ->
        match
          List.find_map (fun (r : Driver.loop_result) -> r.Driver.lr_outcome) (Session.dca_results s)
        with
        | Some o -> o
        | None -> Alcotest.fail "no dynamic outcome")
  in
  let c = Vcache.create () in
  Vcache.store c "esc"
    {
      Vcache.e_decision = Driver.Commutative;
      e_outcome = Some { outcome with Commutativity.oc_escalated = true };
      e_provenance = Report.Dynamic;
      e_prog_digest = "P1";
    };
  Vcache.store c "plain"
    {
      Vcache.e_decision = Driver.Commutative;
      e_outcome = Some { outcome with Commutativity.oc_escalated = false };
      e_provenance = Report.Dynamic;
      e_prog_digest = "P1";
    };
  Alcotest.(check bool) "escalated served while program matches" true
    (Vcache.find c ~prog_digest:"P1" "esc" <> None);
  Alcotest.(check bool) "escalated dropped when program changed" true
    (Vcache.find c ~prog_digest:"P2" "esc" = None);
  Alcotest.(check bool) "plain entry survives program change" true
    (Vcache.find c ~prog_digest:"P2" "plain" <> None)

(* Four domains hammering one cache with disjoint keys: every store,
   hit, and miss must be counted exactly once — the stats are exact
   under concurrency, not approximate. *)
let test_vcache_concurrent_stats_exact () =
  let domains = 4 and per_domain = 250 in
  let c = Vcache.create ~capacity:(domains * per_domain) () in
  let worker d () =
    for i = 0 to per_domain - 1 do
      let key = Printf.sprintf "k%d.%d" d i in
      Vcache.store c key (entry Driver.Commutative);
      (match Vcache.find c ~prog_digest:"P" key with
      | Some _ -> ()
      | None -> Alcotest.failf "lost our own store of %s" key);
      ignore (Vcache.find c ~prog_digest:"P" (Printf.sprintf "absent%d.%d" d i))
    done
  in
  let spawned = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join spawned;
  let total = domains * per_domain in
  let st = Vcache.stats c in
  Alcotest.(check int) "every store counted once" total st.Vcache.st_stores;
  Alcotest.(check int) "every hit counted once" total st.Vcache.st_mem_hits;
  Alcotest.(check int) "every miss counted once" total st.Vcache.st_misses;
  Alcotest.(check int) "no evictions below capacity" 0 st.Vcache.st_evictions;
  Alcotest.(check int) "every entry resident" total (Vcache.size c)

(* A failed disk write (here injected at the [vcache.write] site, in the
   field ENOSPC or a read-only directory) latches memory-only operation:
   [on_degrade] fires exactly once, later stores skip the disk, reads
   keep serving from memory, and a fresh instance over the same
   directory probes the disk again. *)
let test_vcache_write_failure_degrades () =
  let dir = fresh_dir "vcache" in
  let degrades = ref 0 in
  Faultpoint.arm_string "vcache.write@1=raise";
  Fun.protect
    ~finally:Faultpoint.disarm
    (fun () ->
      let c = Vcache.create ~dir ~on_degrade:(fun _ -> incr degrades) () in
      Vcache.store c "k1" (entry Driver.Commutative);
      Alcotest.(check bool) "degraded latched" true (Vcache.degraded c);
      Alcotest.(check int) "on_degrade fired once" 1 !degrades;
      Alcotest.(check int) "write error counted" 1 (Vcache.stats c).Vcache.st_write_errors;
      (* later stores go memory-only without another degrade event *)
      Vcache.store c "k2" (entry Driver.Commutative);
      Alcotest.(check int) "no second degrade" 1 !degrades;
      Alcotest.(check int) "one write error total" 1 (Vcache.stats c).Vcache.st_write_errors;
      Alcotest.(check bool) "k1 served from memory" true
        (Vcache.find c ~prog_digest:"P" "k1" <> None);
      Alcotest.(check bool) "k2 served from memory" true
        (Vcache.find c ~prog_digest:"P" "k2" <> None);
      Alcotest.(check int) "nothing reached the disk" 0
        (Array.fold_left
           (fun n f -> if Filename.check_suffix f ".v" then n + 1 else n)
           0 (Sys.readdir dir));
      (* degradation is per-instance: a restart re-probes the disk *)
      let c2 = Vcache.create ~dir () in
      Alcotest.(check bool) "fresh instance not degraded" false (Vcache.degraded c2))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_families_and_buckets () =
  let m = Metrics.create ~counters:[ "a_total" ] ~gauges:[ "g" ] ~histograms:[ "h_seconds" ] () in
  Metrics.add m "a_total" 3;
  Metrics.incr m "a_total";
  Metrics.gauge_set m "g" 7;
  Metrics.gauge_add m "g" (-2);
  Metrics.observe_ns m "h_seconds" 3_000_000 (* lands in le=5ms *);
  Metrics.observe_ns m "h_seconds" 60_000_000_000 (* beyond the ladder: +Inf *);
  Metrics.observe_ns m "h_seconds" (-1) (* clamps into the first bucket *);
  let s = Metrics.snapshot m in
  Alcotest.(check int) "counter" 4 (List.assoc "a_total" s.Metrics.sn_counters);
  Alcotest.(check int) "gauge" 5 (List.assoc "g" s.Metrics.sn_gauges);
  let h = List.assoc "h_seconds" s.Metrics.sn_hists in
  Alcotest.(check int) "observation count" 3 h.Metrics.hs_count;
  Alcotest.(check int) "negative values do not poison the sum" (3_000_000 + 60_000_000_000)
    h.Metrics.hs_sum_ns;
  Alcotest.(check int) "bucket array covers bounds + overflow"
    (Array.length h.Metrics.hs_bounds_ns + 1)
    (Array.length h.Metrics.hs_counts);
  Alcotest.(check int) "clamped observation in the first bucket" 1 h.Metrics.hs_counts.(0);
  Alcotest.(check int) "3ms in the le=5ms bucket" 1 h.Metrics.hs_counts.(2);
  Alcotest.(check int) "overflow in +Inf" 1 h.Metrics.hs_counts.(Array.length h.Metrics.hs_bounds_ns);
  (* a misspelled family is a bug, not data *)
  List.iter
    (fun f -> match f () with
      | () -> Alcotest.fail "unknown family accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Metrics.incr m "a_totall");
      (fun () -> Metrics.gauge_set m "gg" 1);
      (fun () -> Metrics.observe_ns m "nope" 1);
    ]

let test_metrics_json_roundtrip_and_exposition () =
  let m = Metrics.create ~counters:[ "a_total" ] ~gauges:[ "g" ] ~histograms:[ "h_seconds" ] () in
  Metrics.add m "a_total" 2;
  Metrics.gauge_set m "g" 1;
  Metrics.observe_ns m "h_seconds" 3_000_000;
  Metrics.observe_ns m "h_seconds" 2_000_000_000;
  let s = Metrics.snapshot m in
  (match Metrics.snapshot_of_json (Metrics.snapshot_to_json s) with
  | Ok s' -> Alcotest.(check bool) "snapshot round-trips through JSON" true (s = s')
  | Error e -> Alcotest.fail e);
  (match Metrics.snapshot_of_json (Json.Obj [ ("counters", Json.Int 3) ]) with
  | Ok _ -> Alcotest.fail "malformed snapshot accepted"
  | Error _ -> ());
  let text = Metrics.exposition s in
  let contains needle =
    let n = String.length needle and l = String.length text in
    let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) (Printf.sprintf "exposition has %S" needle) true (contains needle))
    [
      "# TYPE a_total counter";
      "a_total 2";
      "# TYPE g gauge";
      "g 1";
      "# TYPE h_seconds histogram";
      "h_seconds_bucket{le=\"0.005\"} 1";
      (* cumulative: the 2s observation joins at le=2.5s and stays *)
      "h_seconds_bucket{le=\"2.5\"} 2";
      "h_seconds_bucket{le=\"+Inf\"} 2";
      "h_seconds_count 2";
    ]

(* Prometheus-style quantile interpolation over the fixed bucket ladder:
   uniform-in-bucket estimates, +Inf observations clamped to the last
   finite bound, the empty histogram at zero. *)
let test_metrics_quantiles () =
  let snap_of m = List.assoc "h" (Metrics.snapshot m).Metrics.sn_hists in
  let m = Metrics.create ~counters:[] ~gauges:[] ~histograms:[ "h" ] () in
  Alcotest.(check (float 1e-12)) "empty histogram" 0.0 (Metrics.quantile (snap_of m) 0.99);
  (* 100 observations in the (2.5ms, 5ms] bucket: rank interpolation *)
  for _ = 1 to 100 do
    Metrics.observe_ns m "h" 4_000_000
  done;
  let h = snap_of m in
  Alcotest.(check (float 1e-9)) "p50 interpolates to the bucket middle" 0.00375
    (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99 near the upper bound" 0.004975 (Metrics.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p100 is the upper bound" 0.005 (Metrics.quantile h 1.0);
  Alcotest.(check bool) "quantiles are monotone" true
    (Metrics.quantile h 0.1 <= Metrics.quantile h 0.5
    && Metrics.quantile h 0.5 <= Metrics.quantile h 0.9);
  (* overflow observations clamp to the last finite bound (10s) *)
  let m2 = Metrics.create ~counters:[] ~gauges:[] ~histograms:[ "h" ] () in
  for _ = 1 to 3 do
    Metrics.observe_ns m2 "h" 60_000_000_000
  done;
  Alcotest.(check (float 1e-9)) "+Inf clamps to the last bound" 10.0
    (Metrics.quantile (snap_of m2) 0.5)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let analyze_rq ?jobs ?faults ?(no_cache = false) ?(no_static = false) source =
  {
    Protocol.default_request with
    Protocol.rq_op = Protocol.Analyze;
    rq_program = Some (Protocol.Inline { file = "t.mc"; source; input = [] });
    rq_jobs = jobs;
    rq_faults = faults;
    rq_no_cache = no_cache;
    rq_no_static = no_static;
  }

let handle_ok engine rq =
  let rp = Engine.handle engine rq in
  if not (Protocol.ok rp) then
    Alcotest.failf "request failed: %s" (Option.value rp.Protocol.rp_error ~default:"?");
  rp

let report_of rp =
  match rp.Protocol.rp_report with Some r -> r | None -> Alcotest.fail "no report"

(* Run [f] with counting enabled, returning (result, golden-run delta):
   the number of loop-local golden recordings the dynamic stage actually
   performed — zero when every verdict came from cache. *)
let with_golden_delta f =
  let was = Telemetry.counting () in
  Telemetry.set_counting true;
  let golden = Telemetry.counter "dca.golden_runs" in
  let before = Telemetry.value golden in
  let result = f () in
  let delta = Telemetry.value golden - before in
  Telemetry.set_counting was;
  (result, delta)

let test_engine_cold_then_warm () =
  let engine = Engine.create () in
  Fun.protect
    ~finally:(fun () -> Engine.close engine)
    (fun () ->
      (* prover off: this test asserts the *dynamic* stage's cache behaviour *)
      let cold, cold_golden =
        with_golden_delta (fun () -> handle_ok engine (analyze_rq ~no_static:true (two_funcs 2)))
      in
      Alcotest.(check int) "cold: no hits" 0 cold.Protocol.rp_hits;
      Alcotest.(check int) "cold: every loop computed" 2 cold.Protocol.rp_misses;
      Alcotest.(check bool) "cold ran the dynamic stage" true (cold_golden > 0);
      let warm, warm_golden =
        with_golden_delta (fun () -> handle_ok engine (analyze_rq ~no_static:true (two_funcs 2)))
      in
      Alcotest.(check int) "warm: every loop from cache" 2 warm.Protocol.rp_hits;
      Alcotest.(check int) "warm: nothing computed" 0 warm.Protocol.rp_misses;
      Alcotest.(check int) "warm ticked no work counters" 0 warm_golden;
      Alcotest.(check string) "byte-identical reply" (report_of cold) (report_of warm);
      Alcotest.(check bool) "loops flagged cached" true
        (List.for_all (fun li -> li.Protocol.li_cached) warm.Protocol.rp_loops))

(* The invalidation contract: editing fb recomputes fb's loop only — fa's
   verdict is served from cache, asserted both through hit counts and
   through the golden-runs work counter. *)
let test_engine_invalidation_granularity () =
  let engine = Engine.create () in
  Fun.protect
    ~finally:(fun () -> Engine.close engine)
    (fun () ->
      let _, cold_golden =
        with_golden_delta (fun () -> handle_ok engine (analyze_rq ~no_static:true (two_funcs 2)))
      in
      let edited, edit_golden =
        with_golden_delta (fun () -> handle_ok engine (analyze_rq ~no_static:true (two_funcs 3)))
      in
      Alcotest.(check int) "fa's loop still cached" 1 edited.Protocol.rp_hits;
      Alcotest.(check int) "only fb's loop recomputed" 1 edited.Protocol.rp_misses;
      Alcotest.(check bool) "partial recompute did partial work" true
        (edit_golden > 0 && edit_golden < cold_golden);
      List.iter
        (fun li ->
          let expect_cached = String.length li.Protocol.li_label >= 2 && String.sub li.Protocol.li_label 0 2 = "fa" in
          Alcotest.(check bool) (li.Protocol.li_label ^ " cached flag") expect_cached li.Protocol.li_cached)
        edited.Protocol.rp_loops)

(* Cache-hit replies are byte-identical to cold ones at any job width,
   in every direction: cold@1 = warm@4 = cold@4. *)
let test_engine_jobs_invariant_replies () =
  let dir = fresh_dir "engine" in
  let cold1, warm4 =
    let engine = Engine.create ~cache_dir:dir () in
    Fun.protect
      ~finally:(fun () -> Engine.close engine)
      (fun () ->
        let c = handle_ok engine (analyze_rq ~jobs:1 (two_funcs 2)) in
        let w = handle_ok engine (analyze_rq ~jobs:4 (two_funcs 2)) in
        (report_of c, report_of w))
  in
  Alcotest.(check string) "warm jobs=4 = cold jobs=1" cold1 warm4;
  let engine = Engine.create () in
  let cold4 =
    Fun.protect
      ~finally:(fun () -> Engine.close engine)
      (fun () -> report_of (handle_ok engine (analyze_rq ~jobs:4 (two_funcs 2))))
  in
  Alcotest.(check string) "cold jobs=4 = cold jobs=1" cold1 cold4

(* A corrupted on-disk entry is recomputed — same reply, one corrupt tick. *)
let test_engine_corrupt_entry_recomputes () =
  let dir = fresh_dir "engine" in
  let cold =
    let engine = Engine.create ~cache_dir:dir () in
    Fun.protect
      ~finally:(fun () -> Engine.close engine)
      (fun () -> report_of (handle_ok engine (analyze_rq (two_funcs 2))))
  in
  (* poison every stored entry on disk *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".v" then begin
        let oc = open_out_bin (Filename.concat dir f) in
        output_string oc "DCAV1\ndeadbeef\ngarbage";
        close_out oc
      end)
    (Sys.readdir dir);
  let engine = Engine.create ~cache_dir:dir () in
  Fun.protect
    ~finally:(fun () -> Engine.close engine)
    (fun () ->
      let rp = handle_ok engine (analyze_rq (two_funcs 2)) in
      Alcotest.(check int) "nothing served from poison" 0 rp.Protocol.rp_hits;
      Alcotest.(check string) "recomputed reply identical" cold (report_of rp);
      let corrupt = List.assoc "cache.corrupt" (Engine.stats engine) in
      Alcotest.(check bool) "corruption detected" true (corrupt > 0))

(* A fault-carrying request aborts its own loops, bypasses the cache both
   ways, and leaves the daemon and the cache clean for the next request. *)
let test_engine_fault_request_contained () =
  let engine = Engine.create () in
  Fun.protect
    ~finally:(fun () -> Engine.close engine)
    (fun () ->
      let cold = handle_ok engine (analyze_rq ~no_static:true (two_funcs 2)) in
      let faulty =
        handle_ok engine
          (analyze_rq ~no_static:true ~faults:"commutativity.replay@1=raise" (two_funcs 2))
      in
      Alcotest.(check int) "fault request skips the cache" 0 faulty.Protocol.rp_hits;
      let is_aborted li =
        String.length li.Protocol.li_decision >= 7 && String.sub li.Protocol.li_decision 0 7 = "aborted"
      in
      Alcotest.(check bool) "a loop aborted" true (List.exists is_aborted faulty.Protocol.rp_loops);
      let after = handle_ok engine (analyze_rq ~no_static:true (two_funcs 2)) in
      Alcotest.(check int) "cache not poisoned" 2 after.Protocol.rp_hits;
      Alcotest.(check string) "post-fault reply identical to cold" (report_of cold) (report_of after))

let test_engine_errors () =
  let engine = Engine.create () in
  Fun.protect
    ~finally:(fun () -> Engine.close engine)
    (fun () ->
      let unknown =
        Engine.handle engine
          { Protocol.default_request with Protocol.rq_op = Protocol.Analyze; rq_program = Some (Protocol.Named "no-such-program") }
      in
      Alcotest.(check bool) "unknown program is an error reply" false (Protocol.ok unknown);
      let parse_error = Engine.handle engine (analyze_rq "void main( {") in
      Alcotest.(check bool) "parse error is an error reply" false (Protocol.ok parse_error);
      (* the engine survives both *)
      let ping = Engine.handle engine Protocol.default_request in
      Alcotest.(check bool) "engine alive" true (Protocol.ok ping))

(* A cache whose disk writes fail (injected [vcache.write]) downgrades
   to memory-only mid-flight: the degrade is logged and counted exactly
   once, and warm replies are still byte-identical to the cold ones. *)
let test_engine_degraded_cache_still_serves () =
  let dir = fresh_dir "engine" in
  Faultpoint.arm_string "vcache.write@1=raise";
  Fun.protect
    ~finally:Faultpoint.disarm
    (fun () ->
      let engine = Engine.create ~cache_dir:dir () in
      Fun.protect
        ~finally:(fun () -> Engine.close engine)
        (fun () ->
          let cold = handle_ok engine (analyze_rq (two_funcs 2)) in
          let stats = Engine.stats engine in
          Alcotest.(check int) "cache degraded" 1 (List.assoc "cache.degraded" stats);
          Alcotest.(check int) "one write error" 1 (List.assoc "cache.write_errors" stats);
          let snap = Metrics.snapshot (Engine.metrics engine) in
          Alcotest.(check int) "degrade metric ticked once" 1
            (List.assoc "dca_cache_degraded_total" snap.Metrics.sn_counters);
          let warm = handle_ok engine (analyze_rq (two_funcs 2)) in
          Alcotest.(check int) "warm served from memory" 2 warm.Protocol.rp_hits;
          Alcotest.(check string) "degraded warm reply byte-identical" (report_of cold)
            (report_of warm)))

(* An injected crash at the mouth of the analysis pipeline
   ([engine.analyze], via the request's own fault plan) becomes an
   error *reply* with the crash prefix — and the next request runs on a
   clean engine. *)
let test_engine_analyze_crash_is_a_reply () =
  let engine = Engine.create () in
  Fun.protect
    ~finally:(fun () -> Engine.close engine)
    (fun () ->
      let rp = Engine.handle engine (analyze_rq ~faults:"engine.analyze@1=raise" (two_funcs 2)) in
      Alcotest.(check bool) "crash is an error reply" false (Protocol.ok rp);
      (match rp.Protocol.rp_error with
      | Some msg -> Alcotest.(check bool) "crash-prefixed message" true (has_prefix "crash:" msg)
      | None -> Alcotest.fail "crash reply carries no message");
      let after = handle_ok engine (analyze_rq (two_funcs 2)) in
      Alcotest.(check int) "next request computes cleanly" 2
        (after.Protocol.rp_hits + after.Protocol.rp_misses))

(* The serve-plane fault sites exist under their documented names — a
   fault plan naming them is exercising real code, not a typo. *)
let test_fault_sites_registered () =
  let sites = Faultpoint.known_sites () in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " registered") true (List.mem s sites))
    [ "serve.worker"; "engine.analyze"; "vcache.write" ]

(* ------------------------------------------------------------------ *)
(* Socket server                                                       *)
(* ------------------------------------------------------------------ *)

(* One daemon on a real Unix-domain socket, driven by the Client module
   from the test process while the server runs in a spawned domain. *)
let test_server_socket () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let access = Filename.concat dir "access.jsonl" in
  (* a stale socket file from a "crashed daemon" must be reclaimed *)
  Unix.close (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0);
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX socket);
  Unix.close stale;
  let cfg =
    {
      (Server.default_config socket) with
      Server.sv_access_log = Some access;
      sv_jobs = Some 1;
    }
  in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  (* readiness = the daemon answers a ping, not just a socket file being
     present (the stale file is there from the start) *)
  let rec wait_ready n =
    if n = 0 then Alcotest.fail "server never became reachable";
    match
      Client.with_client socket (fun c ->
          Client.request c { Protocol.default_request with Protocol.rq_id = 1 })
    with
    | Ok rp -> rp
    | Error _ ->
        Unix.sleepf 0.05;
        wait_ready (n - 1)
  in
  let ping = wait_ready 200 in
  let request rq =
    match Client.with_client socket (fun c -> Client.request c rq) with
    | Ok rp -> rp
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "ping ok" true (Protocol.ok ping);
  Alcotest.(check int) "id echoed" 1 ping.Protocol.rp_id;
  let analyze = { (analyze_rq (two_funcs 2)) with Protocol.rq_id = 2 } in
  let cold = request analyze in
  Alcotest.(check int) "cold misses over the wire" 2 cold.Protocol.rp_misses;
  let warm = request { analyze with Protocol.rq_id = 3 } in
  Alcotest.(check int) "warm hits over the wire" 2 warm.Protocol.rp_hits;
  Alcotest.(check string) "reports identical over the wire" (report_of cold) (report_of warm);
  let stats = request { Protocol.default_request with Protocol.rq_id = 4; rq_op = Protocol.Stats } in
  Alcotest.(check bool) "stats counters present" true
    (List.mem_assoc "serve.requests" stats.Protocol.rp_counters);
  let bye = request { Protocol.default_request with Protocol.rq_id = 5; rq_op = Protocol.Shutdown } in
  Alcotest.(check bool) "shutdown acknowledged" true (Protocol.ok bye);
  let served = Domain.join server in
  Alcotest.(check int) "served all five requests" 5 served;
  Alcotest.(check bool) "socket removed on exit" true (not (Sys.file_exists socket));
  (* access log: one JSON object per request, parseable *)
  let ic = open_in access in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "one access-log line per request" 5 (List.length !lines);
  List.iter
    (fun line ->
      match Json.of_string_result line with
      | Ok j -> Alcotest.(check bool) "log line has op" true (Json.member "op" j <> None)
      | Error e -> Alcotest.failf "unparseable access-log line: %s" e)
    !lines

(* ------------------------------------------------------------------ *)
(* Concurrent server                                                   *)
(* ------------------------------------------------------------------ *)

let start_server cfg =
  let server = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait_ready n =
    if n = 0 then Alcotest.fail "server never became reachable";
    match
      Client.with_client cfg.Server.sv_socket (fun c ->
          Client.request c { Protocol.default_request with Protocol.rq_id = 1 })
    with
    | Ok _ -> ()
    | Error _ ->
        Unix.sleepf 0.05;
        wait_ready (n - 1)
  in
  wait_ready 200;
  server

(* Four persistent connections served at once, mixing warm and cold
   programs: every reply must be byte-identical to a local cold run of
   the same program, the server-assigned request ids must be unique, and
   the stats verb must carry a coherent metrics snapshot. *)
let test_server_concurrent_identical () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  (* local references: what a serial cold analysis replies *)
  let reference source =
    let engine = Engine.create () in
    Fun.protect
      ~finally:(fun () -> Engine.close engine)
      (fun () -> report_of (handle_ok engine (analyze_rq ~jobs:1 source)))
  in
  let sources = [| two_funcs 2; two_funcs 3 |] in
  let refs = Array.map reference sources in
  let cfg = { (Server.default_config socket) with Server.sv_jobs = Some 1; sv_workers = 4 } in
  let server = start_server cfg in
  let clients = 4 and per_client = 4 in
  let client_domain c =
    Domain.spawn (fun () ->
        match
          Client.with_client socket (fun conn ->
              Ok
                (List.init per_client (fun i ->
                     let which = (c + i) mod Array.length sources in
                     let rq =
                       { (analyze_rq ~jobs:1 sources.(which)) with Protocol.rq_id = (c * 100) + i }
                     in
                     match Client.request conn rq with
                     | Ok rp -> (which, rq.Protocol.rq_id, rp)
                     | Error e -> Alcotest.failf "client %d: %s" c e)))
        with
        | Ok replies -> replies
        | Error e -> Alcotest.failf "client %d connect: %s" c e)
  in
  let replies = List.concat_map Domain.join (List.init clients client_domain) in
  Alcotest.(check int) "every request answered" (clients * per_client) (List.length replies);
  List.iter
    (fun (which, id, rp) ->
      Alcotest.(check bool) "reply ok" true (Protocol.ok rp);
      Alcotest.(check int) "id echoed" id rp.Protocol.rp_id;
      Alcotest.(check string) "byte-identical to the serial reference" refs.(which)
        (report_of rp))
    replies;
  let req_ids = List.map (fun (_, _, rp) -> rp.Protocol.rp_req) replies in
  Alcotest.(check bool) "request ids assigned" true (List.for_all (fun r -> r > 0) req_ids);
  Alcotest.(check int) "request ids unique" (List.length req_ids)
    (List.length (List.sort_uniq compare req_ids));
  (* the stats verb carries the metrics plane *)
  let stats =
    match
      Client.with_client socket (fun c ->
          Client.request c { Protocol.default_request with Protocol.rq_id = 999; rq_op = Protocol.Stats })
    with
    | Ok rp -> rp
    | Error e -> Alcotest.fail e
  in
  let snap =
    match stats.Protocol.rp_metrics with
    | Some j -> (
        match Metrics.snapshot_of_json j with
        | Ok s -> s
        | Error e -> Alcotest.failf "bad metrics payload: %s" e)
    | None -> Alcotest.fail "stats reply carries no metrics"
  in
  let analyzed = clients * per_client in
  Alcotest.(check bool) "requests_total covers the analyzes" true
    (List.assoc "dca_requests_total" snap.Metrics.sn_counters > analyzed);
  Alcotest.(check int) "cache hits + misses = analyzed loops" (2 * analyzed)
    (List.assoc "dca_cache_hits_total" snap.Metrics.sn_counters
    + List.assoc "dca_cache_misses_total" snap.Metrics.sn_counters);
  let h = List.assoc "dca_request_duration_seconds" snap.Metrics.sn_hists in
  Alcotest.(check bool) "latency histogram populated" true (h.Metrics.hs_count >= analyzed);
  Alcotest.(check bool) "inflight gauge present" true
    (List.mem_assoc "dca_inflight_requests" snap.Metrics.sn_gauges);
  (match
     Client.with_client socket (fun c ->
         Client.request c { Protocol.default_request with Protocol.rq_id = 1000; rq_op = Protocol.Shutdown })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  ignore (Domain.join server)

(* --max-requests under concurrency: with four clients racing for the
   tail of an 8-request budget, the daemon serves exactly 8 — replies
   received and Server.run's count agree. *)
let test_server_max_requests_concurrent () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let budget = 8 in
  let cfg =
    {
      (Server.default_config socket) with
      Server.sv_jobs = Some 1;
      sv_workers = 3;
      sv_max_requests = Some budget;
    }
  in
  let server = start_server cfg in
  (* the readiness ping spent one slot; the clients fight over the rest *)
  let ping = { Protocol.default_request with Protocol.rq_id = 7 } in
  let client_domain _ =
    Domain.spawn (fun () ->
        let rec go acc =
          match Client.with_client socket (fun c -> Client.request c ping) with
          | Ok rp when Protocol.ok rp -> go (acc + 1)
          | Ok _ | Error _ -> acc
        in
        go 0)
  in
  let got = List.map Domain.join (List.init 4 client_domain) in
  let served = Domain.join server in
  Alcotest.(check int) "daemon served exactly the budget" budget served;
  Alcotest.(check int) "clients saw exactly the budget" budget
    (1 + List.fold_left ( + ) 0 got)

(* ------------------------------------------------------------------ *)
(* Self-healing serve plane                                            *)
(* ------------------------------------------------------------------ *)

(* Raw-socket access for the tests that need to hold a connection open
   mid-request or feed the daemon bytes no Client would ever send. *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let send_line fd line = write_all fd (line ^ "\n")

(* Busy-tolerant helpers: right after an overload or crash scenario the
   queue may still hold corpses of closed connections, so a fresh
   request can be shed — the retry layer is exactly the cure. *)
let test_backoff = { Client.default_backoff with Client.bo_attempts = 10; bo_base_ms = 50. }

let request_stats socket =
  match
    Client.request_retry ~backoff:test_backoff socket
      { Protocol.default_request with Protocol.rq_id = 900; rq_op = Protocol.Stats }
  with
  | Ok rp when Protocol.ok rp -> rp
  | Ok rp -> Alcotest.failf "stats request refused: %s" (Option.value rp.Protocol.rp_error ~default:"?")
  | Error e -> Alcotest.fail e

let metrics_counter rp name =
  match rp.Protocol.rp_metrics with
  | Some j -> (
      match Metrics.snapshot_of_json j with
      | Ok s -> List.assoc name s.Metrics.sn_counters
      | Error e -> Alcotest.failf "bad metrics payload: %s" e)
  | None -> Alcotest.fail "stats reply carries no metrics"

let request_shutdown socket =
  match
    Client.request_retry ~backoff:test_backoff socket
      { Protocol.default_request with Protocol.rq_id = 901; rq_op = Protocol.Shutdown }
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* Overload shedding: with one worker held mid-request (an injected
   engine delay) and a queue bound of one, a third connection gets an
   immediate [busy] line and a close — while the held request still
   completes normally. *)
let test_server_sheds_when_overloaded () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let cfg =
    {
      (Server.default_config socket) with
      Server.sv_jobs = Some 1;
      sv_workers = 1;
      sv_max_queue = 1;
    }
  in
  let server = start_server cfg in
  let slow =
    { (analyze_rq ~faults:"engine.analyze@1=delay:600" (two_funcs 2)) with Protocol.rq_id = 11 }
  in
  let fd_a = raw_connect socket in
  send_line fd_a (Protocol.request_line slow);
  Unix.sleepf 0.2 (* the only worker is now busy inside the delay *);
  let fd_b = raw_connect socket in
  Unix.sleepf 0.1 (* b sits in the queue, filling it *);
  let fd_c = raw_connect socket in
  let ic_c = Unix.in_channel_of_descr fd_c in
  (match Protocol.parse_response (input_line ic_c) with
  | Ok rp ->
      Alcotest.(check bool) "shed reply is busy" true (rp.Protocol.rp_status = Protocol.Busy);
      Alcotest.(check bool) "overload message" true
        (match rp.Protocol.rp_error with
        | Some m -> has_prefix "server overloaded" m
        | None -> false)
  | Error e -> Alcotest.fail e);
  (match input_line ic_c with
  | _ -> Alcotest.fail "shed connection not closed"
  | exception End_of_file -> ());
  let ic_a = Unix.in_channel_of_descr fd_a in
  (match Protocol.parse_response (input_line ic_a) with
  | Ok rp -> Alcotest.(check bool) "held request still replied ok" true (Protocol.ok rp)
  | Error e -> Alcotest.fail e);
  Unix.close fd_a;
  Unix.close fd_b;
  Unix.close fd_c;
  let stats = request_stats socket in
  Alcotest.(check bool) "shed counted" true (metrics_counter stats "dca_requests_shed_total" >= 1);
  request_shutdown socket;
  ignore (Domain.join server)

(* Request timeout: the watchdog replaces an overdue reply with a
   structured error and shuts the connection; the engine call finishes
   on its own time and the daemon keeps serving. *)
let test_server_request_timeout () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let cfg =
    {
      (Server.default_config socket) with
      Server.sv_jobs = Some 1;
      sv_workers = 1;
      sv_request_timeout_ms = Some 100;
    }
  in
  let server = start_server cfg in
  let slow =
    { (analyze_rq ~faults:"engine.analyze@1=delay:700" (two_funcs 2)) with Protocol.rq_id = 21 }
  in
  let fd = raw_connect socket in
  send_line fd (Protocol.request_line slow);
  let ic = Unix.in_channel_of_descr fd in
  (match Protocol.parse_response (input_line ic) with
  | Ok rp ->
      Alcotest.(check bool) "timeout reply is an error" false (Protocol.ok rp);
      Alcotest.(check int) "timeout reply echoes the id" 21 rp.Protocol.rp_id;
      Alcotest.(check bool) "structured timeout message" true
        (match rp.Protocol.rp_error with
        | Some m -> has_prefix "request timed out after 100 ms" m
        | None -> false)
  | Error e -> Alcotest.fail e);
  (match input_line ic with
  | _ -> Alcotest.fail "timed-out connection not closed"
  | exception End_of_file -> ());
  Unix.close fd;
  (* the worker finishes the delayed engine call and serves on *)
  (match
     Client.with_client socket (fun c ->
         Client.request c { Protocol.default_request with Protocol.rq_id = 22 })
   with
  | Ok rp -> Alcotest.(check bool) "daemon alive after timeout" true (Protocol.ok rp)
  | Error e -> Alcotest.fail e);
  let stats = request_stats socket in
  Alcotest.(check bool) "timeout counted" true
    (metrics_counter stats "dca_requests_timeout_total" >= 1);
  request_shutdown socket;
  ignore (Domain.join server)

(* Worker crash recovery: an injected [serve.worker] crash busy-replies
   the in-flight request and the supervisor respawns the domain; a
   retrying client converges to the normal reply, and the crashed
   request still consumed its budget slot. *)
let test_server_worker_crash_respawns () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let cfg = { (Server.default_config socket) with Server.sv_jobs = Some 1; sv_workers = 1 } in
  let server = start_server cfg in
  Faultpoint.arm_string "serve.worker@1=raise";
  Fun.protect
    ~finally:Faultpoint.disarm
    (fun () ->
      let backoff =
        { Client.default_backoff with Client.bo_attempts = 8; bo_base_ms = 100.; bo_seed = 1 }
      in
      let rq = { (analyze_rq (two_funcs 2)) with Protocol.rq_id = 31 } in
      match Client.request_retry ~backoff socket rq with
      | Ok rp ->
          Alcotest.(check bool) "retry converged to ok" true (Protocol.ok rp);
          Alcotest.(check int) "nothing was cached by the crashed attempt" 2
            rp.Protocol.rp_misses
      | Error e -> Alcotest.fail e);
  let stats = request_stats socket in
  Alcotest.(check int) "exactly one respawn" 1
    (metrics_counter stats "dca_worker_restarts_total");
  request_shutdown socket;
  let served = Domain.join server in
  (* ready ping + crashed attempt + retried analyze + stats + shutdown *)
  Alcotest.(check int) "crashed request consumed its slot" 5 served

(* --max-requests accounting across a crash: ok and busy replies
   together exhaust the budget exactly, and Server.run agrees. *)
let test_server_max_requests_with_crash () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let budget = 6 in
  let cfg =
    {
      (Server.default_config socket) with
      Server.sv_jobs = Some 1;
      sv_workers = 2;
      sv_max_requests = Some budget;
    }
  in
  let server = start_server cfg in
  (* the readiness ping took slot 1; the third post-arm request crashes *)
  Faultpoint.arm_string "serve.worker@3=raise";
  let ok = ref 0 and busy = ref 0 in
  Fun.protect
    ~finally:Faultpoint.disarm
    (fun () ->
      for i = 2 to budget do
        match
          Client.with_client socket (fun c ->
              Client.request c { Protocol.default_request with Protocol.rq_id = i })
        with
        | Ok rp when Protocol.ok rp -> incr ok
        | Ok rp when rp.Protocol.rp_status = Protocol.Busy -> incr busy
        | Ok _ -> Alcotest.fail "unexpected error reply"
        | Error e -> Alcotest.failf "request %d: %s" i e
      done);
  let served = Domain.join server in
  Alcotest.(check int) "daemon served exactly the budget" budget served;
  Alcotest.(check int) "one crash became a busy reply" 1 !busy;
  Alcotest.(check int) "every other request was served" (budget - 2) !ok

(* Graceful drain: SIGTERM mid-request stops admissions, lets the
   in-flight request finish, removes the socket, and Server.run returns
   normally. *)
let test_server_sigterm_drains () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let cfg =
    {
      (Server.default_config socket) with
      Server.sv_jobs = Some 1;
      sv_workers = 1;
      sv_handle_signals = true;
    }
  in
  let server = start_server cfg in
  let slow =
    { (analyze_rq ~faults:"engine.analyze@1=delay:400" (two_funcs 2)) with Protocol.rq_id = 41 }
  in
  let fd = raw_connect socket in
  send_line fd (Protocol.request_line slow);
  Unix.sleepf 0.15 (* the request is in flight *);
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  let ic = Unix.in_channel_of_descr fd in
  (match Protocol.parse_response (input_line ic) with
  | Ok rp -> Alcotest.(check bool) "in-flight request finished" true (Protocol.ok rp)
  | Error e -> Alcotest.fail e);
  Unix.close fd;
  let served = Domain.join server in
  Alcotest.(check int) "ready ping + drained request" 2 served;
  Alcotest.(check bool) "socket removed on drain" true (not (Sys.file_exists socket))

(* Protocol hardening: seeded garbage over a real socket — malformed,
   truncated, oversized, binary — must always produce an error reply or
   a clean close, never a dead or hung daemon. *)
let test_server_survives_fuzzed_input () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let cfg = { (Server.default_config socket) with Server.sv_jobs = Some 1; sv_workers = 2 } in
  let server = start_server cfg in
  let rng = Prng.create 20260809 in
  let garbage_line () =
    String.init (1 + Prng.int rng 80) (fun _ -> Char.chr (32 + Prng.int rng 95)) ^ "\n"
  in
  let binary_line () = String.init (1 + Prng.int rng 64) (fun _ -> Char.chr (Prng.int rng 256)) in
  let payload i =
    match i mod 6 with
    | 0 -> garbage_line ()
    | 1 -> "123\n" (* valid JSON, not an object *)
    | 2 -> "{\"op\":\"frobnicate\"}\n" (* unknown op *)
    | 3 -> "{\"op\":\"ana" (* truncated mid-token, no newline *)
    | 4 -> String.make 262144 'a' ^ "\n" (* one oversized line *)
    | _ -> binary_line ()
  in
  for i = 0 to 23 do
    let fd = raw_connect socket in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
    write_all fd (payload i);
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    (* the daemon must error-reply and/or close — never leave us hanging *)
    let buf = Bytes.create 4096 in
    let rec drain () =
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | _ -> drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Alcotest.failf "fuzz payload %d: daemon neither replied nor closed" i
    in
    drain ();
    Unix.close fd
  done;
  (* still standing, still serving *)
  (match
     Client.with_client socket (fun c ->
         Client.request c { Protocol.default_request with Protocol.rq_id = 51 })
   with
  | Ok rp -> Alcotest.(check bool) "daemon alive after fuzzing" true (Protocol.ok rp)
  | Error e -> Alcotest.fail e);
  request_shutdown socket;
  ignore (Domain.join server)

(* ------------------------------------------------------------------ *)
(* Client retry/backoff                                                *)
(* ------------------------------------------------------------------ *)

let test_client_backoff_schedule () =
  let b = { Client.bo_attempts = 6; bo_base_ms = 50.; bo_cap_ms = 2000.; bo_seed = 42 } in
  let d1 = Client.backoff_schedule b in
  let d2 = Client.backoff_schedule b in
  Alcotest.(check bool) "equal seeds, equal schedules" true (d1 = d2);
  Alcotest.(check bool) "different seeds decorrelate" false
    (d1 = Client.backoff_schedule { b with Client.bo_seed = 43 });
  Alcotest.(check int) "one delay per retry" (b.Client.bo_attempts - 1) (Array.length d1);
  Array.iteri
    (fun k d ->
      let ideal = Float.min b.Client.bo_cap_ms (b.Client.bo_base_ms *. (2. ** float_of_int k)) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d within the jitter band" k)
        true
        (d >= 0.5 *. ideal && d <= ideal))
    d1;
  (* the cap bounds the tail even for absurd attempt counts *)
  let long = Client.backoff_schedule { b with Client.bo_attempts = 12 } in
  Array.iter (fun d -> Alcotest.(check bool) "capped" true (d <= b.Client.bo_cap_ms)) long

(* request_retry keeps knocking while the daemon is still coming up:
   connect-refused is retryable, and the eventual reply is a normal
   one. *)
let test_client_retry_waits_for_daemon () =
  let dir = fresh_dir "server" in
  let socket = Filename.concat dir "dca.sock" in
  let cfg = { (Server.default_config socket) with Server.sv_jobs = Some 1; sv_workers = 1 } in
  let server =
    Domain.spawn (fun () ->
        Unix.sleepf 0.3 (* the daemon is late to the party *);
        Server.run cfg)
  in
  let backoff =
    { Client.default_backoff with Client.bo_attempts = 20; bo_base_ms = 60.; bo_seed = 7 }
  in
  (match Client.request_retry ~backoff socket { Protocol.default_request with Protocol.rq_id = 61 } with
  | Ok rp -> Alcotest.(check bool) "retry outlasted the slow start" true (Protocol.ok rp)
  | Error e -> Alcotest.fail e);
  request_shutdown socket;
  ignore (Domain.join server)

(* ------------------------------------------------------------------ *)
(* Session.Options                                                     *)
(* ------------------------------------------------------------------ *)

let test_options_setters_and_signature () =
  let open Session.Options in
  let o = default |> with_jobs 4 |> with_hierarchical true |> with_deadline_ms 250 in
  Alcotest.(check bool) "jobs set" true (o.jobs = Some 4);
  Alcotest.(check bool) "hierarchical set" true o.hierarchical;
  Alcotest.(check string) "signature is deterministic" (signature o) (signature o);
  Alcotest.(check bool) "signature separates options" true
    (signature o <> signature default);
  Alcotest.(check bool) "equal options, equal signatures" true
    (signature (default |> with_jobs 4) = signature (default |> with_jobs 4))

(* The deprecated per-field arguments still work and win over the
   corresponding options field — embedders migrate at their own pace. *)
let test_options_legacy_override () =
  let bm = Dca_progs.Registry.find_exn "DC" in
  let s = Session.create ~options:Session.Options.(default |> with_jobs 2) ~jobs:1 (Session.Benchmark bm) in
  Alcotest.(check int) "legacy ~jobs wins" 1 (Session.jobs s);
  Alcotest.(check bool) "resolved options reflect the override" true
    ((Session.options s).Session.Options.jobs = Some 1);
  Session.close s;
  let s2 = Session.create ~options:Session.Options.(default |> with_jobs 2) (Session.Benchmark bm) in
  Alcotest.(check int) "options field used when no legacy arg" 2 (Session.jobs s2);
  Session.close s2

(* Per-session telemetry: a session's delta covers its own work only;
   the global snapshot keeps accumulating across sessions. *)
let test_options_telemetry_delta () =
  let was = Telemetry.counting () in
  Telemetry.set_counting true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_counting was)
    (fun () ->
      let bm = Dca_progs.Registry.find_exn "DC" in
      let options = Session.Options.(default |> with_jobs 1) in
      let first =
        Session.with_session ~options (Session.Benchmark bm) (fun s ->
            ignore (Session.dca_results s);
            Session.telemetry s)
      in
      let golden1 = List.assoc "dca.golden_runs" first in
      Alcotest.(check bool) "first session saw its work" true (golden1 > 0);
      Session.with_session ~options (Session.Benchmark bm) (fun s ->
          ignore (Session.dca_results s);
          let second = Session.telemetry s in
          Alcotest.(check int) "second session sees only its own work" golden1
            (List.assoc "dca.golden_runs" second);
          let global = List.assoc "dca.golden_runs" (Session.telemetry_global s) in
          Alcotest.(check bool) "global snapshot accumulates" true (global >= 2 * golden1)))

let suites =
  [
    ( "serve.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
      ] );
    ( "serve.protocol",
      [
        Alcotest.test_case "request round-trip" `Quick test_protocol_request_roundtrip;
        Alcotest.test_case "request validation" `Quick test_protocol_request_rejects;
        Alcotest.test_case "response round-trip" `Quick test_protocol_response_roundtrip;
        Alcotest.test_case "status wire semantics" `Quick test_protocol_status;
      ] );
    ( "serve.digest",
      [
        Alcotest.test_case "stable across formatting" `Quick test_digest_formatting_stable;
        Alcotest.test_case "per-function edit granularity" `Quick test_digest_edit_granularity;
      ] );
    ( "serve.vcache",
      [
        Alcotest.test_case "memory LRU" `Quick test_vcache_memory;
        Alcotest.test_case "disk persistence" `Quick test_vcache_disk_persistence;
        Alcotest.test_case "corruption degrades to recompute" `Quick test_vcache_corruption_degrades;
        Alcotest.test_case "escalated entries pinned to program" `Quick test_vcache_escalated_pinned;
        Alcotest.test_case "stats exact under concurrency" `Quick test_vcache_concurrent_stats_exact;
        Alcotest.test_case "write failure degrades to memory" `Quick
          test_vcache_write_failure_degrades;
      ] );
    ( "serve.metrics",
      [
        Alcotest.test_case "families and buckets" `Quick test_metrics_families_and_buckets;
        Alcotest.test_case "JSON round-trip and exposition" `Quick
          test_metrics_json_roundtrip_and_exposition;
        Alcotest.test_case "latency quantiles" `Quick test_metrics_quantiles;
      ] );
    ( "serve.engine",
      [
        Alcotest.test_case "cold then warm" `Quick test_engine_cold_then_warm;
        Alcotest.test_case "invalidation granularity" `Quick test_engine_invalidation_granularity;
        Alcotest.test_case "jobs-invariant replies" `Quick test_engine_jobs_invariant_replies;
        Alcotest.test_case "corrupt entry recomputes" `Quick test_engine_corrupt_entry_recomputes;
        Alcotest.test_case "fault request contained" `Quick test_engine_fault_request_contained;
        Alcotest.test_case "errors are replies" `Quick test_engine_errors;
        Alcotest.test_case "degraded cache still serves" `Quick
          test_engine_degraded_cache_still_serves;
        Alcotest.test_case "analyze crash is a reply" `Quick test_engine_analyze_crash_is_a_reply;
        Alcotest.test_case "serve fault sites registered" `Quick test_fault_sites_registered;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "socket round-trip" `Quick test_server_socket;
        Alcotest.test_case "concurrent connections, identical replies" `Quick
          test_server_concurrent_identical;
        Alcotest.test_case "max-requests exact under concurrency" `Quick
          test_server_max_requests_concurrent;
        Alcotest.test_case "sheds when overloaded" `Quick test_server_sheds_when_overloaded;
        Alcotest.test_case "request timeout" `Quick test_server_request_timeout;
        Alcotest.test_case "worker crash respawns" `Quick test_server_worker_crash_respawns;
        Alcotest.test_case "max-requests exact across a crash" `Quick
          test_server_max_requests_with_crash;
        Alcotest.test_case "SIGTERM drains gracefully" `Quick test_server_sigterm_drains;
        Alcotest.test_case "survives fuzzed input" `Quick test_server_survives_fuzzed_input;
      ] );
    ( "serve.client",
      [
        Alcotest.test_case "backoff schedule deterministic" `Quick test_client_backoff_schedule;
        Alcotest.test_case "retry waits for a slow daemon" `Quick
          test_client_retry_waits_for_daemon;
      ] );
    ( "serve.options",
      [
        Alcotest.test_case "setters and signature" `Quick test_options_setters_and_signature;
        Alcotest.test_case "legacy arguments override" `Quick test_options_legacy_override;
        Alcotest.test_case "per-session telemetry delta" `Quick test_options_telemetry_delta;
      ] );
  ]
