lib/profiling/depprof.mli: Dca_analysis Dca_interp Hashtbl
