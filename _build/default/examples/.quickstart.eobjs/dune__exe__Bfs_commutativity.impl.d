examples/bfs_commutativity.ml: Commutativity Dca_analysis Dca_baselines Dca_core Dca_parallel Dca_profiling Dca_progs Driver Iterator_rec List Printf Report
