(** Minimal JSON values for the serve protocol: a printer (stable field
    order, [\u00XX]-escaped control characters — every document fits on
    one line, as JSON-lines framing requires) and a strict
    recursive-descent parser.  Numbers without fraction or exponent parse
    as [Int]; protocol strings are byte strings (escapes decode to
    UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** One line, no trailing newline. *)

val of_string : string -> t
(** Raises {!Parse_error} on malformed input (including trailing
    garbage). *)

val of_string_result : string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_int_opt : t -> int option
val to_str_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
