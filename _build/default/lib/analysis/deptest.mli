(** Static data-dependence tests between affine memory accesses, relative
    to one tested loop (ZIV / strong-SIV / GCD, in the spirit of
    Allen–Kennedy).  Used by the Polly-like and ICC-like baselines. *)

type verdict =
  | No_dep  (** provably no cross-iteration dependence *)
  | Dep of string  (** may-dependence, with a reason for reports *)

val may_alias : Affine.root -> Affine.root -> bool
(** Two resolved roots may address the same object.  Distinct globals and
    distinct allocation sites never alias; [Runknown] aliases everything. *)

val cross_iteration : loop_id:string -> Affine.access -> Affine.access -> verdict
(** May the two accesses touch the same cell in different iterations of
    the tested loop?  At least one access is expected to be a write for
    the result to matter; the test itself is access-kind agnostic. *)

val loop_has_dependence :
  loop_id:string ->
  ?exempt:(Affine.access -> Affine.access -> bool) ->
  Affine.access list ->
  (Affine.access * Affine.access * string) option
(** First offending pair among all read/write and write/write pairs, if
    any; pairs satisfying [exempt] (recognized reduction load/store pairs)
    are skipped. *)
