open Dca_frontend
open Ast

type cellkind = KInt | KFloat | KPtr

type struct_layout = {
  sl_size : int;
  sl_offsets : int array;
  sl_types : ty array;
  sl_kinds : cellkind array;
}

type t = (string, struct_layout) Hashtbl.t

let rec size_raw tbl seen = function
  | Tint | Tfloat | Tptr _ -> 1
  | Tvoid -> 0
  | Tstruct name -> (struct_layout_raw tbl seen name).sl_size
  | Tarray (elem, dims) -> List.fold_left ( * ) (size_raw tbl seen elem) dims

and kinds_raw tbl seen = function
  | Tint -> [| KInt |]
  | Tfloat -> [| KFloat |]
  | Tptr _ -> [| KPtr |]
  | Tvoid -> [||]
  | Tstruct name -> (struct_layout_raw tbl seen name).sl_kinds
  | Tarray (elem, dims) ->
      let n = List.fold_left ( * ) 1 dims in
      let elem_kinds = kinds_raw tbl seen elem in
      let m = Array.length elem_kinds in
      Array.init (n * m) (fun i -> elem_kinds.(i mod m))

and struct_layout_raw (tbl, defs) seen name =
  match Hashtbl.find_opt tbl name with
  | Some l -> l
  | None ->
      if List.mem name seen then
        invalid_arg (Printf.sprintf "Layout.create: recursive struct value '%s'" name);
      let def =
        match List.find_opt (fun s -> s.str_name = name) defs with
        | Some d -> d
        | None -> invalid_arg (Printf.sprintf "Layout.create: unknown struct '%s'" name)
      in
      let fields = Array.of_list def.str_fields in
      let n = Array.length fields in
      let offsets = Array.make n 0 and types = Array.make n Tint in
      let kinds = ref [] in
      let off = ref 0 in
      for i = 0 to n - 1 do
        let fty, _ = fields.(i) in
        offsets.(i) <- !off;
        types.(i) <- fty;
        off := !off + size_raw (tbl, defs) (name :: seen) fty;
        kinds := kinds_raw (tbl, defs) (name :: seen) fty :: !kinds
      done;
      let layout =
        {
          sl_size = !off;
          sl_offsets = offsets;
          sl_types = types;
          sl_kinds = Array.concat (List.rev !kinds);
        }
      in
      Hashtbl.replace tbl name layout;
      layout

let create defs : t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun s -> ignore (struct_layout_raw (tbl, defs) [] s.str_name)) defs;
  tbl

let find t name =
  match Hashtbl.find_opt t name with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Layout: unknown struct '%s'" name)

let rec size t = function
  | Tint | Tfloat | Tptr _ -> 1
  | Tvoid -> 0
  | Tstruct name -> (find t name).sl_size
  | Tarray (elem, dims) -> List.fold_left ( * ) (size t elem) dims

let field_offset t sname i = (find t sname).sl_offsets.(i)
let field_type t sname i = (find t sname).sl_types.(i)
let num_fields t sname = Array.length (find t sname).sl_offsets

let rec cell_kinds t = function
  | Tint -> [| KInt |]
  | Tfloat -> [| KFloat |]
  | Tptr _ -> [| KPtr |]
  | Tvoid -> [||]
  | Tstruct name -> (find t name).sl_kinds
  | Tarray (elem, dims) ->
      let n = List.fold_left ( * ) 1 dims in
      let elem_kinds = cell_kinds t elem in
      let m = Array.length elem_kinds in
      Array.init (n * m) (fun i -> elem_kinds.(i mod m))
