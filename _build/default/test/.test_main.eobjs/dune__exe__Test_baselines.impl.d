test/test_baselines.ml: Alcotest Dca_analysis Dca_baselines Dca_ir Dca_profiling List Proginfo String
