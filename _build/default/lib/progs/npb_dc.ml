(** DC — Data Cube (NPB).

    Group-by aggregation over an input tuple stream.  The tuple-reading
    and view-writing loops perform I/O and are excluded by DCA's static
    stage; the in-memory aggregation loops are commutative but cheap —
    reproducing DC's paper profile: a below-half detection rate and ~0%
    sequential coverage (Tables I/III/IV). *)

let source =
  {|
// NPB DC kernel, MiniC port (data-cube group-by aggregation).
int   ntuples;
int   attr_a[64];
int   attr_b[64];
int   attr_c[64];
float measure[64];
float view_a[8];
float view_b[8];
float view_c[8];
float view_ab[64];
float view_bc[64];
int   order[64];
float grand;
int   verified;

void main() {
  // tuple input: I/O loop, outside DCA's scope
  ntuples = 0;
  int more = 1;
  while (more) {
    int a = reads();
    if (a < 0) {
      more = 0;
    } else {
      attr_a[ntuples] = a % 8;
      attr_b[ntuples] = reads() % 8;
      int m = reads();
      attr_c[ntuples] = m % 8;
      measure[ntuples] = itof(m) * 0.5;
      ntuples = ntuples + 1;
    }
  }
  int i;
  for (i = 0; i < 8; i = i + 1) {
    view_a[i] = 0.0;
    view_b[i] = 0.0;
    view_c[i] = 0.0;
  }
  for (i = 0; i < 64; i = i + 1) {
    view_ab[i] = 0.0;
    view_bc[i] = 0.0;
  }
  // in-memory group-by aggregations (commutative)
  for (i = 0; i < ntuples; i = i + 1) { view_a[attr_a[i]] = view_a[attr_a[i]] + measure[i]; }
  for (i = 0; i < ntuples; i = i + 1) { view_b[attr_b[i]] = view_b[attr_b[i]] + measure[i]; }
  for (i = 0; i < ntuples; i = i + 1) { view_c[attr_c[i]] = view_c[attr_c[i]] + measure[i]; }
  for (i = 0; i < ntuples; i = i + 1) {
    int cell = attr_a[i] * 8 + attr_b[i];
    view_ab[cell] = view_ab[cell] + measure[i];
  }
  for (i = 0; i < ntuples; i = i + 1) {
    int cell = attr_b[i] * 8 + attr_c[i];
    view_bc[cell] = view_bc[cell] + measure[i];
  }
  grand = 0.0;
  for (i = 0; i < 8; i = i + 1) { grand = grand + view_a[i]; }
  // rank the a-groups by aggregate (insertion sort: order-dependent)
  for (i = 0; i < 8; i = i + 1) { order[i] = i; }
  for (i = 1; i < 8; i = i + 1) {
    int j = i;
    while (j > 0 && view_a[order[j - 1]] < view_a[order[j]]) {
      int tmp = order[j];
      order[j] = order[j - 1];
      order[j - 1] = tmp;
      j = j - 1;
    }
  }
  // view output: I/O loops
  for (i = 0; i < 8; i = i + 1) { print(view_a[order[i]]); }
  for (i = 0; i < 8; i = i + 1) { print(view_b[i]); }
  print(grand);
  verified = 0;
  float check = 0.0;
  for (i = 0; i < 8; i = i + 1) { check = check + view_b[i]; }
  float check_c = 0.0;
  for (i = 0; i < 8; i = i + 1) { check_c = check_c + view_c[i]; }
  float check_bc = 0.0;
  for (i = 0; i < 64; i = i + 1) { check_bc = check_bc + view_bc[i]; }
  if (fabs(check - grand) < 0.001 && fabs(check_c - grand) < 0.001 && fabs(check_bc - grand) < 0.001) { verified = 1; }
  printi(ntuples);
  printi(verified);
}
|}

(* 48 tuples of (a, b, measure), terminated by -1. *)
let input =
  let rec gen k acc =
    if k >= 48 then List.rev (-1 :: acc)
    else
      let a = (k * 7) mod 19 and b = (k * 11) mod 23 and m = 1 + ((k * 13) mod 9) in
      gen (k + 1) (m :: b :: a :: acc)
  in
  gen 0 []

let benchmark =
  {
    (Benchmark.default ~name:"DC" ~suite:Benchmark.Npb
       ~description:"data-cube group-by aggregation over an input tuple stream" ~source)
    with
    Benchmark.bm_input = input;
    bm_expert_loops = [];
    bm_expert_sections = [];
    bm_expert_extra = 0.3 (* the paper's experts restructure DC for independent view work-sharing *);
    bm_known_sequential =
      [
        Benchmark.Nth_in_func ("main", 10) (* insertion sort outer *);
        Benchmark.Nth_in_func ("main", 11) (* insertion sort inner *);
      ];
  }
