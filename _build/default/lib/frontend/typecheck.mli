(** Type checker: [Ast.program] → [Tast.tprogram].

    Checks performed (all failures raise [Loc.Error]):
    - struct definitions are unique and their fields are scalars, pointers
      or struct values (no array-typed fields);
    - globals and locals are not [void]; initializers type-match;
    - every referenced variable, function and field is declared;
    - operator, call-argument, return and assignment typing, with implicit
      int→float coercion inserted as explicit {!Tast.Titof} nodes;
    - conditions are [int] or pointer-typed (pointer [p] reads as [p != null]);
    - assignment targets are lvalues;
    - [break]/[continue] appear only inside loops;
    - a [void main()] function exists. *)

val check_program : Ast.program -> Tast.tprogram

val size_of : Ast.struct_def list -> Ast.ty -> int
(** Size in memory cells of a type: scalars and pointers take one cell,
    struct values the sum of their field sizes, arrays the product of their
    dimensions times the element size. *)
