lib/progs/plds_sim.ml: Benchmark
