open Dca_support
open Dca_ir

type loop = {
  l_id : string;
  l_func : string;
  l_header : int;
  l_blocks : Intset.t;
  l_latches : int list;
  l_exiting : (int * int) list;
  l_depth : int;
  l_parent : string option;
  mutable l_children : string list;
  l_loc : Dca_frontend.Loc.t;
}

type forest = { by_id : (string, loop) Hashtbl.t; by_header : (int, loop) Hashtbl.t; ordered : loop list }

let loop_id fname header = Printf.sprintf "%s#%d" fname header

(* Blocks of the natural loop of back edge [latch → header]: reverse
   reachability from the latch without crossing the header. *)
let natural_loop_blocks cfg header latch =
  let body = ref (Intset.add header (Intset.singleton latch)) in
  let rec go b =
    List.iter
      (fun p ->
        if not (Intset.mem p !body) then begin
          body := Intset.add p !body;
          go p
        end)
      (Cfg.preds cfg b)
  in
  if latch <> header then go latch;
  !body

let analyze cfg =
  let dom = Dominance.of_cfg cfg in
  let fname = (Cfg.func cfg).Ir.fname in
  (* collect back edges grouped by header *)
  let back_edges = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if Dominance.dominates dom s b then
            Hashtbl.replace back_edges s (b :: (try Hashtbl.find back_edges s with Not_found -> [])))
        (Cfg.succs cfg b))
    (Cfg.reverse_postorder cfg);
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) back_edges [] |> List.sort compare in
  let raw =
    List.map
      (fun header ->
        let latches = List.rev (Hashtbl.find back_edges header) in
        let blocks =
          List.fold_left
            (fun acc latch -> Intset.union acc (natural_loop_blocks cfg header latch))
            Intset.empty latches
        in
        let exiting =
          Intset.fold
            (fun b acc ->
              List.fold_left
                (fun acc s -> if Intset.mem s blocks then acc else (b, s) :: acc)
                acc (Cfg.succs cfg b))
            blocks []
          |> List.rev
        in
        (header, latches, blocks, exiting))
      headers
  in
  (* nesting: loop A contains loop B iff A's blocks ⊇ B's blocks and A ≠ B.
     The parent is the smallest strict superset. *)
  let parent_of header blocks =
    let candidates =
      List.filter
        (fun (h', _, blocks', _) ->
          h' <> header && Intset.subset blocks blocks' && Intset.mem header blocks')
        raw
    in
    match
      List.sort (fun (_, _, b1, _) (_, _, b2, _) -> compare (Intset.cardinal b1) (Intset.cardinal b2)) candidates
    with
    | (h', _, _, _) :: _ -> Some h'
    | [] -> None
  in
  let by_id = Hashtbl.create 8 and by_header = Hashtbl.create 8 in
  let depth_memo = Hashtbl.create 8 in
  let parent_tbl = Hashtbl.create 8 in
  List.iter
    (fun (header, _, blocks, _) ->
      match parent_of header blocks with
      | Some p -> Hashtbl.replace parent_tbl header p
      | None -> ())
    raw;
  let rec depth_of header =
    match Hashtbl.find_opt depth_memo header with
    | Some d -> d
    | None ->
        let d =
          match Hashtbl.find_opt parent_tbl header with
          | Some p -> 1 + depth_of p
          | None -> 1
        in
        Hashtbl.replace depth_memo header d;
        d
  in
  let loops =
    List.map
      (fun (header, latches, blocks, exiting) ->
        let parent = Hashtbl.find_opt parent_tbl header in
        let l =
          {
            l_id = loop_id fname header;
            l_func = fname;
            l_header = header;
            l_blocks = blocks;
            l_latches = latches;
            l_exiting = exiting;
            l_depth = depth_of header;
            l_parent = Option.map (loop_id fname) parent;
            l_children = [];
            l_loc = (Cfg.block cfg header).Ir.bloc;
          }
        in
        Hashtbl.replace by_id l.l_id l;
        Hashtbl.replace by_header header l;
        l)
      raw
  in
  List.iter
    (fun l ->
      match l.l_parent with
      | Some pid ->
          let p = Hashtbl.find by_id pid in
          p.l_children <- p.l_children @ [ l.l_id ]
      | None -> ())
    loops;
  let ordered = List.sort (fun a b -> compare (a.l_depth, a.l_header) (b.l_depth, b.l_header)) loops in
  { by_id; by_header; ordered }

let loops forest = forest.ordered
let find forest id = Hashtbl.find_opt forest.by_id id
let loop_of_header forest h = Hashtbl.find_opt forest.by_header h

let contains_block l b = Intset.mem b l.l_blocks

let innermost_containing forest b =
  List.fold_left
    (fun best l ->
      if contains_block l b then
        match best with
        | Some bl when bl.l_depth >= l.l_depth -> best
        | _ -> Some l
      else best)
    None forest.ordered

let top_level forest = List.filter (fun l -> l.l_parent = None) forest.ordered

let instrs_of cfg l =
  Intset.fold (fun b acc -> acc @ (Cfg.block cfg b).Ir.instrs) l.l_blocks []

let nesting_path forest l =
  let rec go acc l = match l.l_parent with
    | Some pid -> (match find forest pid with Some p -> go (l :: acc) p | None -> l :: acc)
    | None -> l :: acc
  in
  go [] l
