(** PLDS ports, part 4: the irregular simulation programs of Fig. 5.

    - [bfs]: Lonestar breadth-first search with frontier worklists
      (the paper's Fig. 2);
    - [ising]: lattice spin relaxation over a linked neighbor structure,
      double-buffered so one sweep's updates read only old values;
    - [spmatmat]: SPARK00-style sparse matrix–matrix product with linked
      row lists;
    - [water]: SPLASH water-spatial INTERF-style pairwise interactions
      over cell lists, with scatter-add force accumulation. *)

let bfs =
  Benchmark.default ~name:"BFS" ~suite:Benchmark.Plds
    ~description:"Lonestar-style BFS with frontier worklists (paper Fig. 2)"
    ~source:
      {|
struct node { int vert; struct node *next; }
struct list { struct node *head; int size; }

int nvert;
struct list *adj[224];
int dist[224];
struct list *frontier;
struct list *next_frontier;
int checksum;

void push(struct list *l, int v) {
  struct node *n = new struct node;
  n->vert = v;
  n->next = l->head;
  l->head = n;
  l->size = l->size + 1;
}

int pop(struct list *l) {
  struct node *n = l->head;
  l->head = n->next;
  l->size = l->size - 1;
  return n->vert;
}

void add_edge(int a, int b) {
  push(adj[a], b);
  push(adj[b], a);
}

void main() {
  nvert = 224;
  int i;
  for (i = 0; i < nvert; i = i + 1) {
    adj[i] = new struct list;
    dist[i] = 1000000;
  }
  frontier = new struct list;
  next_frontier = new struct list;
  // ring + random chords
  for (i = 0; i < nvert; i = i + 1) { add_edge(i, (i + 1) % nvert); }
  for (i = 0; i < 448; i = i + 1) {
    int a = ftoi(hrand(i) * itof(nvert)) % nvert;
    int b = ftoi(hrand(i + 500) * itof(nvert)) % nvert;
    if (a != b) { add_edge(a, b); }
  }
  dist[0] = 0;
  bfs(0);
  checksum = 0;
  for (i = 0; i < nvert; i = i + 1) { checksum = checksum + dist[i]; }
  printi(checksum);
  printi(1);
}

void bfs(int source) {
  push(frontier, source);
  while (frontier->size) {
    // top-down step: the loop DCA detects as commutative
    while (frontier->size) {
      int current = pop(frontier);
      struct node *n = adj[current]->head;
      while (n) {
        if (dist[n->vert] > dist[current] + 1) {
          dist[n->vert] = dist[current] + 1;
          push(next_frontier, n->vert);
        }
        n = n->next;
      }
    }
    struct list *tmp = frontier;
    frontier = next_frontier;
    next_frontier = tmp;
  }
}
|}

let ising =
  Benchmark.default ~name:"ising" ~suite:Benchmark.Plds
    ~description:"lattice spin relaxation over linked neighbors, double-buffered"
    ~source:
      {|
struct site {
  float spin;
  float new_spin;
  struct site *up;
  struct site *down;
  struct site *left;
  struct site *right;
  struct site *next;      // traversal order
}

struct site *lattice;
float magnetization;

void build(int n) {
  // n x n torus of sites, linked four ways
  int total = n * n;
  struct site **cells = new struct site *[400];
  int i;
  for (i = 0; i < total; i = i + 1) {
    struct site *s = new struct site;
    s->spin = 1.0;
    if (hrand(i) < 0.5) { s->spin = -1.0; }
    s->new_spin = 0.0;
    cells[i] = s;
  }
  for (i = 0; i < total; i = i + 1) {
    int r = i / n;
    int c = i % n;
    cells[i]->up = cells[((r + n - 1) % n) * n + c];
    cells[i]->down = cells[((r + 1) % n) * n + c];
    cells[i]->left = cells[r * n + ((c + n - 1) % n)];
    cells[i]->right = cells[r * n + ((c + 1) % n)];
  }
  lattice = null;
  for (i = total - 1; i >= 0; i = i - 1) {
    cells[i]->next = lattice;
    lattice = cells[i];
  }
}

// one relaxation sweep: compute new spins from the old neighborhood,
// then commit (both loops commutative thanks to double buffering)
void sweep() {
  struct site *s = lattice;
  while (s) {
    float field = s->up->spin + s->down->spin + s->left->spin + s->right->spin;
    if (field > 0.0) {
      s->new_spin = 1.0;
    } else {
      if (field < 0.0) { s->new_spin = -1.0; } else { s->new_spin = s->spin; }
    }
    s = s->next;
  }
  s = lattice;
  while (s) {
    s->spin = s->new_spin;
    s = s->next;
  }
}

void main() {
  int n = 18;
  build(n);
  int t;
  for (t = 0; t < 8; t = t + 1) {
    sweep();
  }
  magnetization = 0.0;
  struct site *s = lattice;
  while (s) {
    magnetization = magnetization + s->spin;
    s = s->next;
  }
  print(magnetization);
  printi(1);
}
|}

let spmatmat =
  Benchmark.default ~name:"spmatmat" ~suite:Benchmark.Plds
    ~description:"sparse matrix-matrix product over linked row lists (SPARK00)"
    ~source:
      {|
struct elem {
  int col;
  float value;
  struct elem *next;
}
struct row {
  int id;
  struct elem *elems;
  struct row *next;
}

int n;
struct row *matrix;
float dense[32][8];
float result[32][8];
float checksum;

void build() {
  matrix = null;
  int i;
  for (i = n - 1; i >= 0; i = i - 1) {
    struct row *r = new struct row;
    r->id = i;
    r->elems = null;
    int k;
    for (k = 0; k < 6; k = k + 1) {
      struct elem *e = new struct elem;
      e->col = (i * 5 + k * 11) % n;
      e->value = 0.1 + hrand(i * 31 + k);
      e->next = r->elems;
      r->elems = e;
    }
    r->next = matrix;
    matrix = r;
  }
}

// hot loop: one output row per sparse row (commutative across rows)
void spmatmat() {
  struct row *r = matrix;
  while (r) {
    struct elem *e = r->elems;
    while (e) {
      int j;
      for (j = 0; j < 8; j = j + 1) {
        result[r->id][j] = result[r->id][j] + e->value * dense[e->col][j];
      }
      e = e->next;
    }
    r = r->next;
  }
}

void main() {
  n = 32;
  build();
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) {
      dense[i][j] = hrand(i * 8 + j);
      result[i][j] = 0.0;
    }
  }
  spmatmat();
  checksum = 0.0;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) { checksum = checksum + result[i][j]; }
  }
  print(checksum);
  printi(1);
}
|}

let water =
  Benchmark.default ~name:"water-spatial" ~suite:Benchmark.Plds
    ~description:"INTERF-style pairwise forces over spatial cell lists (SPLASH)"
    ~source:
      {|
struct mol {
  float x;
  float y;
  float fx;
  float fy;
  struct mol *next;       // next molecule in the same cell
}
struct cell {
  struct mol *mols;
  struct cell *next;      // next cell in the interaction schedule
  struct cell *neighbor;  // one neighbor cell to interact with
}

struct cell *cells;
float potential;
float virial;

void build(int ncells, int per_cell) {
  cells = null;
  struct cell *prev = null;
  int i;
  for (i = 0; i < ncells; i = i + 1) {
    struct cell *c = new struct cell;
    c->mols = null;
    int j;
    for (j = 0; j < per_cell; j = j + 1) {
      struct mol *m = new struct mol;
      m->x = hrand(i * 37 + j) * 10.0;
      m->y = hrand(i * 41 + j) * 10.0;
      m->fx = 0.0;
      m->fy = 0.0;
      m->next = c->mols;
      c->mols = m;
    }
    c->neighbor = prev;     // interact with the previously built cell
    c->next = cells;
    cells = c;
    prev = c;
  }
}

// INTERF: intra-cell and neighbor-cell pairwise interactions
void interf() {
  struct cell *c = cells;
  while (c) {
    // intra-cell pairs
    struct mol *a = c->mols;
    while (a) {
      struct mol *b = a->next;
      while (b) {
        float dx = a->x - b->x;
        float dy = a->y - b->y;
        float r2 = dx * dx + dy * dy + 0.01;
        float f = 1.0 / (r2 * r2);
        a->fx = a->fx + f * dx;
        a->fy = a->fy + f * dy;
        b->fx = b->fx - f * dx;
        b->fy = b->fy - f * dy;
        potential = potential + f;
        b = b->next;
      }
      a = a->next;
    }
    // neighbor-cell pairs
    if (c->neighbor) {
      a = c->mols;
      while (a) {
        struct mol *b = c->neighbor->mols;
        while (b) {
          float dx = a->x - b->x;
          float dy = a->y - b->y;
          float r2 = dx * dx + dy * dy + 0.01;
          float f = 0.5 / (r2 * r2);
          a->fx = a->fx + f * dx;
          b->fx = b->fx - f * dx;
          potential = potential + f;
          b = b->next;
        }
        a = a->next;
      }
    }
    c = c->next;
  }
}

void main() {
  build(24, 6);
  potential = 0.0;
  interf();
  virial = 0.0;
  struct cell *cc = cells;
  while (cc) {
    struct mol *m = cc->mols;
    while (m) {
      virial = virial + fabs(m->fx) + fabs(m->fy);
      m = m->next;
    }
    cc = cc->next;
  }
  print(potential);
  print(virial);
  printi(1);
}
|}

let benchmarks = [ bfs; ising; spmatmat; water ]
