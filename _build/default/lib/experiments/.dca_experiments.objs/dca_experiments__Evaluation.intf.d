lib/experiments/evaluation.mli: Dca_analysis Dca_baselines Dca_core Dca_parallel Dca_profiling Dca_progs
