lib/dca/candidate.ml: Cfg Dca_analysis Dca_ir Dca_support Intset Ir Iterator_rec List Loops Printf Proginfo Purity
