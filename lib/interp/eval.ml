open Dca_ir
open Value

exception Trap of string
exception Out_of_fuel
exception Deadline_exceeded
exception Heap_exhausted

(* ------------------------------------------------------------------ *)
(* Pre-decoded code                                                    *)
(* ------------------------------------------------------------------ *)

(* The evaluator does not interpret [Ir.instr] lists directly: at context
   creation every function is decoded once into arrays of pre-resolved
   instructions.  Constant operands become ready-made values (no [VInt]
   allocation per use), [Alloc] types become pre-computed cell-kind
   patterns, call targets are classified (builtin id / user function), and
   instruction lists become arrays.  Every decoded instruction keeps the
   original [Ir.instr] for sinks, filters and diagnostics, so event
   streams are identical to the direct interpreter's. *)

type dop = Dconst of Value.t | Dvar of Ir.var

type builtin =
  | Bsqrt
  | Bfabs
  | Bsin
  | Bcos
  | Bexp
  | Blog
  | Bfloor
  | Bpow
  | Bfmod
  | Bfmin
  | Bfmax
  | Bimin
  | Bimax
  | Biabs
  | Bitof
  | Bftoi
  | Bhrand
  | Bdrand
  | Bdseed
  | Breads

let builtin_of_name = function
  | "sqrt" -> Some Bsqrt
  | "fabs" -> Some Bfabs
  | "sin" -> Some Bsin
  | "cos" -> Some Bcos
  | "exp" -> Some Bexp
  | "log" -> Some Blog
  | "floor" -> Some Bfloor
  | "pow" -> Some Bpow
  | "fmod" -> Some Bfmod
  | "fmin" -> Some Bfmin
  | "fmax" -> Some Bfmax
  | "imin" -> Some Bimin
  | "imax" -> Some Bimax
  | "iabs" -> Some Biabs
  | "itof" -> Some Bitof
  | "ftoi" -> Some Bftoi
  | "hrand" -> Some Bhrand
  | "drand" -> Some Bdrand
  | "dseed" -> Some Bdseed
  | "reads" -> Some Breads
  | _ -> None

type ddesc =
  | DBin of Ir.var * Ir.binop * dop * dop
  | DUn of Ir.var * Ir.unop * dop
  | DMov of Ir.var * dop
  | DLoad of Ir.var * dop
  | DStore of dop * dop
  | DGep of Ir.var * dop * dop * int
  | DGload of Ir.var * Ir.var
  | DGstore of Ir.var * dop
  | DGaddr of Ir.var * Ir.var
  | DAlloc of Ir.var * Layout.cellkind array * dop
  | DCall of Ir.var option * string * builtin option * dop array
  | DPrint of dop
  | DPrints of string

type dinstr = { di : Ir.instr;  (** the source instruction, for sinks and filters *) dd : ddesc }

type dterm = TBr of int | TCbr of dop * int * int | TRet of dop option

type dblock = { db_instrs : dinstr array; db_term : dterm }

type dfunc = { df_func : Ir.func; df_blocks : dblock array }

type frame = { ffunc : Ir.func; fcode : dblock array; regs : Value.t array }

type interceptor = { it_fname : string; it_header : int; mutable it_active : bool; it_handler : handler }
and handler = Handler of (ctx -> frame -> int)

and ctx = {
  prog : Ir.program;
  st : Store.t;
  funcs : (string, dfunc) Hashtbl.t;
  mutable sink : Events.sink option;
  mutable nsteps : int;
  fuel : int;
  deadline : int;  (** absolute [Telemetry.now_ns] bound; [max_int] = none *)
  heap_limit : int;  (** absolute major-heap words ceiling; [max_int] = none *)
  mutable next_guard : int;  (** step count of the next periodic guard check *)
  mutable interceptors : interceptor list;
}

type step_control = { sc_filter : Ir.instr -> bool; sc_override : int -> int option }

type stop_reason = Stopped_at of int | Returned of Value.t option

let default_fuel = 200_000_000

(* Resource guards ride the fuel path but only run every [guard_interval]
   steps: the per-instruction cost is one integer compare, the clock and
   GC reads are amortized away.  The interval is fixed (and [nsteps] is
   deterministic), so the [eval.step] fault point fires at a
   deterministic step count. *)
let guard_interval = 4096
let fp_step = Dca_support.Faultpoint.site "eval.step"

let decode_op = function
  | Ir.Ovar v -> Dvar v
  | Ir.Oint n -> Dconst (VInt n)
  | Ir.Ofloat f -> Dconst (VFloat f)
  | Ir.Onull -> Dconst VNull

let decode_instr layout (i : Ir.instr) =
  let dd =
    match i.Ir.idesc with
    | Ir.Bin (d, op, a, b) -> DBin (d, op, decode_op a, decode_op b)
    | Ir.Un (d, op, a) -> DUn (d, op, decode_op a)
    | Ir.Mov (d, a) -> DMov (d, decode_op a)
    | Ir.Load (d, p) -> DLoad (d, decode_op p)
    | Ir.Store (p, src) -> DStore (decode_op p, decode_op src)
    | Ir.Gep (d, base, idx, scale) -> DGep (d, decode_op base, decode_op idx, scale)
    | Ir.Gload (d, g) -> DGload (d, g)
    | Ir.Gstore (g, src) -> DGstore (g, decode_op src)
    | Ir.Gaddr (d, g) -> DGaddr (d, g)
    | Ir.Alloc (d, ty, count) -> DAlloc (d, Layout.cell_kinds layout ty, decode_op count)
    | Ir.Call (dst, name, args) ->
        DCall (dst, name, builtin_of_name name, Array.of_list (List.map decode_op args))
    | Ir.Print v -> DPrint (decode_op v)
    | Ir.Prints s -> DPrints s
  in
  { di = i; dd }

let decode_block layout (b : Ir.block) =
  {
    db_instrs = Array.of_list (List.map (decode_instr layout) b.Ir.instrs);
    db_term =
      (match b.Ir.bterm with
      | Ir.Br t -> TBr t
      | Ir.Cbr (c, a, b) -> TCbr (decode_op c, a, b)
      | Ir.Ret op -> TRet (Option.map decode_op op));
  }

let decode_func layout (f : Ir.func) =
  { df_func = f; df_blocks = Array.map (decode_block layout) f.Ir.fblocks }

(* Decoding is pure per program, and the dynamic stage builds evaluators
   for the same program over and over (one per whole-program verification
   run), so decoded function tables are memoized on physical program
   identity.  A decoded table is immutable once published, hence safe to
   share between contexts and across domains; the mutex only guards the
   cache list.  The cache keeps the last few programs alive — bounded, and
   negligible next to their heaps. *)
let decode_cache : (Ir.program * (string, dfunc) Hashtbl.t) list ref = ref []
let decode_cache_mutex = Mutex.create ()
let decode_cache_limit = 8

let decoded_funcs prog =
  Mutex.protect decode_cache_mutex (fun () ->
      match List.find_opt (fun (p, _) -> p == prog) !decode_cache with
      | Some (_, funcs) -> funcs
      | None ->
          let funcs = Hashtbl.create 16 in
          List.iter
            (fun f -> Hashtbl.replace funcs f.Ir.fname (decode_func prog.Ir.p_layout f))
            prog.Ir.p_funcs;
          decode_cache :=
            (prog, funcs) :: List.filteri (fun k _ -> k < decode_cache_limit - 1) !decode_cache;
          funcs)

let create ?(fuel = default_fuel) ?deadline_ns ?heap_words ?(input = []) prog =
  {
    prog;
    st = Store.create prog ~input;
    funcs = decoded_funcs prog;
    sink = None;
    nsteps = 0;
    fuel;
    deadline =
      (match deadline_ns with
      | None -> max_int
      | Some d -> Dca_support.Telemetry.now_ns () + d);
    heap_limit =
      (match heap_words with
      | None -> max_int
      | Some w -> (Gc.quick_stat ()).Gc.heap_words + w);
    next_guard = guard_interval;
    interceptors = [];
  }

let fork ctx =
  {
    prog = ctx.prog;
    st = Store.copy ctx.st;
    funcs = ctx.funcs;
    sink = None;
    nsteps = ctx.nsteps;
    fuel = ctx.fuel;
    deadline = ctx.deadline;
    heap_limit = ctx.heap_limit;
    next_guard = ctx.nsteps + guard_interval;
    interceptors = [];
  }

let program ctx = ctx.prog
let store ctx = ctx.st
let steps ctx = ctx.nsteps
let set_sink ctx sink = ctx.sink <- sink
let outputs ctx = Store.outputs ctx.st

let trap fmt = Printf.ksprintf (fun msg -> raise (Trap msg)) fmt

let read_var frame (v : Ir.var) =
  let x = frame.regs.(v.vslot) in
  match x with VUndef -> trap "use of uninitialized variable '%s' in %s" v.vname frame.ffunc.fname | _ -> x

let write_var frame (v : Ir.var) x = frame.regs.(v.vslot) <- x

(* Operand evaluation outside any instruction (terminators): register
   reads are attributed to instruction id -1, constants are free. *)
let eval_dop ctx frame = function
  | Dvar v ->
      (match ctx.sink with Some s -> s.Events.on_read (Events.Lreg v.Ir.vid) (-1) | None -> ());
      read_var frame v
  | Dconst v -> v

let eval_operand ctx frame op = eval_dop ctx frame (decode_op op)

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let int2 name f a b =
  match (a, b) with VInt x, VInt y -> VInt (f x y) | _ -> trap "%s expects ints" name

let float2 name f a b =
  match (a, b) with VFloat x, VFloat y -> VFloat (f x y) | _ -> trap "%s expects floats" name

let compare_values rel a b =
  let of_bool b = VInt (if b then 1 else 0) in
  let ord cmp =
    match rel with
    | Ir.Req -> cmp = 0
    | Ir.Rne -> cmp <> 0
    | Ir.Rlt -> cmp < 0
    | Ir.Rle -> cmp <= 0
    | Ir.Rgt -> cmp > 0
    | Ir.Rge -> cmp >= 0
  in
  match (a, b) with
  | VInt x, VInt y -> of_bool (ord (compare x y))
  | VFloat x, VFloat y -> of_bool (ord (compare x y))
  | (VPtr _ | VNull), (VPtr _ | VNull) -> begin
      match rel with
      | Ir.Req -> of_bool (a = b)
      | Ir.Rne -> of_bool (a <> b)
      | _ -> trap "ordered comparison of pointers"
    end
  | _ -> trap "comparison of incompatible values %s and %s" (to_string a) (to_string b)

let eval_binop op a b =
  match op with
  | Ir.Add -> int2 "add" ( + ) a b
  | Ir.Sub -> int2 "sub" ( - ) a b
  | Ir.Mul -> int2 "mul" ( * ) a b
  | Ir.Div -> (
      match b with VInt 0 -> trap "integer division by zero" | _ -> int2 "div" ( / ) a b)
  | Ir.Mod -> (
      match b with VInt 0 -> trap "integer modulo by zero" | _ -> int2 "mod" (fun x y -> x mod y) a b)
  | Ir.Fadd -> float2 "fadd" ( +. ) a b
  | Ir.Fsub -> float2 "fsub" ( -. ) a b
  | Ir.Fmul -> float2 "fmul" ( *. ) a b
  | Ir.Fdiv -> float2 "fdiv" ( /. ) a b
  | Ir.Cmp rel -> compare_values rel a b
  | Ir.Andl -> int2 "and" (fun x y -> if x <> 0 && y <> 0 then 1 else 0) a b
  | Ir.Orl -> int2 "or" (fun x y -> if x <> 0 || y <> 0 then 1 else 0) a b

let eval_unop op a =
  match (op, a) with
  | Ir.Neg, VInt x -> VInt (-x)
  | Ir.Fneg, VFloat x -> VFloat (-.x)
  | Ir.Not, VInt x -> VInt (if x = 0 then 1 else 0)
  | Ir.Not, VNull -> VInt 1
  | Ir.Not, VPtr _ -> VInt 0
  | Ir.Itof, VInt x -> VFloat (float_of_int x)
  | Ir.Ftoi, VFloat x -> VInt (int_of_float x)
  | _ -> trap "unary %s applied to %s" (Ir.unop_to_string op) (to_string a)

(* hrand: a pure hash-based PRN in [0,1) — splitmix64 finalizer. *)
let hrand_of_int i =
  let z = Int64.of_int i in
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let float1 name f = function VFloat x -> VFloat (f x) | v -> trap "%s expects a float, got %s" name (to_string v)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let emit_read ctx loc instr =
  match ctx.sink with Some s -> s.Events.on_read loc instr | None -> ()

let emit_write ctx loc instr =
  match ctx.sink with Some s -> s.Events.on_write loc instr | None -> ()

(* Rare path of the periodic guard: refresh the threshold, give the
   [eval.step] fault point a deterministic hit, then check the wall-clock
   deadline and the heap budget if set. *)
let guard_check ctx =
  ctx.next_guard <- ctx.nsteps + guard_interval;
  (match Dca_support.Faultpoint.hit fp_step with
  | Dca_support.Faultpoint.Pass -> ()
  | Dca_support.Faultpoint.Fire_trap ->
      trap "%s" (Dca_support.Faultpoint.injected_msg "eval.step")
  | Dca_support.Faultpoint.Fire_fuel -> raise Out_of_fuel);
  if ctx.deadline <> max_int && Dca_support.Telemetry.now_ns () > ctx.deadline then
    raise Deadline_exceeded;
  if ctx.heap_limit <> max_int && (Gc.quick_stat ()).Gc.heap_words > ctx.heap_limit then
    raise Heap_exhausted

let rec exec_instr ctx frame (d : dinstr) =
  ctx.nsteps <- ctx.nsteps + 1;
  if ctx.nsteps > ctx.fuel then raise Out_of_fuel;
  if ctx.nsteps >= ctx.next_guard then guard_check ctx;
  let i = d.di in
  (match ctx.sink with Some s -> s.Events.on_exec i | None -> ());
  (* operand evaluation with register-read events attributed to [i] *)
  let ev op =
    match op with
    | Dvar v ->
        emit_read ctx (Events.Lreg v.Ir.vid) i.Ir.iid;
        read_var frame v
    | Dconst v -> v
  in
  let def v x =
    emit_write ctx (Events.Lreg v.Ir.vid) i.Ir.iid;
    write_var frame v x
  in
  match d.dd with
  | DBin (dst, op, a, b) ->
      let va = ev a in
      let vb = ev b in
      def dst (eval_binop op va vb)
  | DUn (dst, op, a) -> def dst (eval_unop op (ev a))
  | DMov (dst, a) -> def dst (ev a)
  | DLoad (dst, p) -> begin
      match ev p with
      | VPtr (block, off) ->
          emit_read ctx (Events.Lheap (block, off)) i.Ir.iid;
          let v =
            try Store.load ctx.st ~block ~off with Failure msg -> trap "%s" msg
          in
          def dst v
      | VNull -> trap "load through null pointer at %s" (Dca_frontend.Loc.to_string i.Ir.iloc)
      | v -> trap "load through non-pointer %s" (to_string v)
    end
  | DStore (p, src) -> begin
      match ev p with
      | VPtr (block, off) ->
          let v = ev src in
          emit_write ctx (Events.Lheap (block, off)) i.Ir.iid;
          (try Store.store ctx.st ~block ~off v with Failure msg -> trap "%s" msg)
      | VNull -> trap "store through null pointer at %s" (Dca_frontend.Loc.to_string i.Ir.iloc)
      | v -> trap "store through non-pointer %s" (to_string v)
    end
  | DGep (dst, base, idx, scale) -> begin
      match (ev base, ev idx) with
      | VPtr (block, off), VInt k -> def dst (VPtr (block, off + (k * scale)))
      | VNull, _ -> trap "pointer arithmetic on null at %s" (Dca_frontend.Loc.to_string i.Ir.iloc)
      | vb, vi -> trap "gep on %s with index %s" (to_string vb) (to_string vi)
    end
  | DGload (dst, g) ->
      emit_read ctx (Events.Lglob g.Ir.vslot) i.Ir.iid;
      def dst (Store.read_global ctx.st g.Ir.vslot)
  | DGstore (g, src) ->
      let v = ev src in
      emit_write ctx (Events.Lglob g.Ir.vslot) i.Ir.iid;
      Store.write_global ctx.st g.Ir.vslot v
  | DGaddr (dst, g) -> def dst (Store.read_global ctx.st g.Ir.vslot)
  | DAlloc (dst, kinds, count) -> begin
      match ev count with
      | VInt n when n >= 0 ->
          let id = Store.alloc ctx.st kinds ~count:n in
          def dst (VPtr (id, 0))
      | v -> trap "alloc with bad count %s" (to_string v)
    end
  | DCall (dst, name, builtin, args) -> begin
      let n = Array.length args in
      let vargs = Array.make n VNull in
      for k = 0 to n - 1 do
        vargs.(k) <- ev args.(k)
      done;
      let user_call () =
        let ret = call_user ctx name vargs in
        match (dst, ret) with
        | Some d, Some v -> def d v
        | Some d, None -> trap "function %s returned no value for %s" name d.Ir.vname
        | None, _ -> ()
      in
      match builtin with
      | Some b -> begin
          (* a builtin name with the wrong arity falls through to a user
             function of the same name, exactly like the name-based
             dispatch did *)
          match eval_builtin ctx i b vargs with
          | Some result -> ( match dst with Some d -> def d result | None -> ())
          | None -> user_call ()
        end
      | None -> user_call ()
    end
  | DPrint v -> Store.print_value ctx.st (ev v)
  | DPrints s -> Store.print_string_ ctx.st s

and eval_builtin ctx instr b (args : Value.t array) : Value.t option =
  let iid = instr.Ir.iid in
  match (b, args) with
  | Bsqrt, [| v |] -> Some (float1 "sqrt" sqrt v)
  | Bfabs, [| v |] -> Some (float1 "fabs" abs_float v)
  | Bsin, [| v |] -> Some (float1 "sin" sin v)
  | Bcos, [| v |] -> Some (float1 "cos" cos v)
  | Bexp, [| v |] -> Some (float1 "exp" exp v)
  | Blog, [| v |] -> Some (float1 "log" log v)
  | Bfloor, [| v |] -> Some (float1 "floor" floor v)
  | Bpow, [| a; b |] -> Some (float2 "pow" ( ** ) a b)
  | Bfmod, [| a; b |] -> Some (float2 "fmod" Float.rem a b)
  | Bfmin, [| a; b |] -> Some (float2 "fmin" Float.min a b)
  | Bfmax, [| a; b |] -> Some (float2 "fmax" Float.max a b)
  | Bimin, [| a; b |] -> Some (int2 "imin" min a b)
  | Bimax, [| a; b |] -> Some (int2 "imax" max a b)
  | Biabs, [| v |] -> Some (match v with VInt x -> VInt (abs x) | _ -> trap "iabs expects an int")
  | Bitof, [| v |] -> Some (eval_unop Ir.Itof v)
  | Bftoi, [| v |] -> Some (eval_unop Ir.Ftoi v)
  | Bhrand, [| v |] -> Some (match v with VInt x -> VFloat (hrand_of_int x) | _ -> trap "hrand expects an int")
  | Bdrand, [||] ->
      emit_read ctx Events.Lrng iid;
      emit_write ctx Events.Lrng iid;
      Some (VFloat (Store.drand ctx.st))
  | Bdseed, [| v |] ->
      emit_write ctx Events.Lrng iid;
      (match v with VInt x -> Store.dseed ctx.st x | _ -> trap "dseed expects an int");
      Some (VInt 0)
  | Breads, [||] -> Some (VInt (Store.read_input ctx.st))
  | _ -> None

and call_user ctx name (vargs : Value.t array) : Value.t option =
  let f =
    match Hashtbl.find_opt ctx.funcs name with
    | Some f -> f
    | None -> trap "call to undefined function '%s'" name
  in
  let fn = f.df_func in
  let frame = { ffunc = fn; fcode = f.df_blocks; regs = Array.make fn.Ir.fnslots VUndef } in
  let nargs = Array.length vargs in
  let rec bind k = function
    | [] -> if k <> nargs then trap "arity mismatch calling %s" name
    | p :: ps ->
        if k >= nargs then trap "arity mismatch calling %s" name
        else begin
          write_var frame p vargs.(k);
          bind (k + 1) ps
        end
  in
  bind 0 fn.Ir.fparams;
  (match ctx.sink with Some s -> s.Events.on_call name | None -> ());
  let result =
    match exec_from ctx frame fn.Ir.fentry ~stop:(fun _ -> false) ~control:None ~src:(-1) with
    | Returned v -> v
    | Stopped_at _ -> assert false
  in
  (match ctx.sink with Some s -> s.Events.on_return name | None -> ());
  result

(* Core block-chain executor.  [src] is the predecessor block (-1 on
   entry); [stop] is consulted on every transfer except the initial one. *)
and exec_from ctx frame bid ~stop ~control ~src : stop_reason =
  (* interceptors fire on transfers into their header during any execution
     in which they are not already active *)
  match
    List.find_opt
      (fun it ->
        it.it_fname = frame.ffunc.Ir.fname && it.it_header = bid && not it.it_active)
      ctx.interceptors
  with
  | Some it ->
      it.it_active <- true;
      let continue_at =
        Fun.protect
          ~finally:(fun () -> it.it_active <- false)
          (fun () -> match it.it_handler with Handler h -> h ctx frame)
      in
      exec_from ctx frame continue_at ~stop ~control ~src:bid
  | None ->
      (match ctx.sink with Some s -> s.Events.on_block ~fname:frame.ffunc.Ir.fname ~src ~dst:bid | None -> ());
      let blk = frame.fcode.(bid) in
      let instrs = blk.db_instrs in
      (match control with
      | None ->
          for k = 0 to Array.length instrs - 1 do
            exec_instr ctx frame instrs.(k)
          done
      | Some c ->
          for k = 0 to Array.length instrs - 1 do
            let d = instrs.(k) in
            if c.sc_filter d.di then exec_instr ctx frame d
          done);
      let continue_to target =
        if stop target then begin
          (* surface the pending transfer so recorders see loop-exit and
             latch edges even though the target block is not executed *)
          (match ctx.sink with
          | Some s -> s.Events.on_block ~fname:frame.ffunc.Ir.fname ~src:bid ~dst:target
          | None -> ());
          Stopped_at target
        end
        else exec_from ctx frame target ~stop ~control ~src:bid
      in
      (match blk.db_term with
      | TBr t -> continue_to t
      | TCbr (c, a, b) -> begin
          let forced = match control with Some ctl -> ctl.sc_override bid | None -> None in
          match forced with
          | Some t -> continue_to t
          | None ->
              let v = eval_dop ctx frame c in
              continue_to (if truthy v then a else b)
        end
      | TRet op -> Returned (Option.map (eval_dop ctx frame) op))

let exec_upto ctx frame ~start ~stop ~control = exec_from ctx frame start ~stop ~control ~src:(-1)

let call_function ctx name args = call_user ctx name (Array.of_list args)

let run_main ctx = ignore (call_user ctx "main" [||])

let frame_for ctx fname =
  match Hashtbl.find_opt ctx.funcs fname with
  | Some f -> { ffunc = f.df_func; fcode = f.df_blocks; regs = Array.make f.df_func.Ir.fnslots VUndef }
  | None -> invalid_arg (Printf.sprintf "Eval.frame_for: no function '%s'" fname)

let copy_frame frame = { frame with regs = Array.copy frame.regs }

let add_interceptor ctx ~fname ~header handler =
  ctx.interceptors <-
    { it_fname = fname; it_header = header; it_active = false; it_handler = Handler handler }
    :: ctx.interceptors

let clear_interceptors ctx = ctx.interceptors <- []

let globals_of ctx =
  Array.to_list (Array.mapi (fun slot g -> (g, Store.read_global ctx.st slot)) ctx.prog.Ir.p_globals)
