lib/ir/ir_verify.mli: Ir
