lib/ir/layout.ml: Array Ast Dca_frontend Hashtbl List Printf
