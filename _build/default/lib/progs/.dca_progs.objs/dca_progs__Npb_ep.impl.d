lib/progs/npb_ep.ml: Benchmark
