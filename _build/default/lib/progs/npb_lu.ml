(** LU — SSOR solver (NPB).

    2-D SSOR: flux/RHS stencils (parallel, computed into separate
    arrays), lower- and upper-triangular wavefront sweeps whose [i]/[j]
    loops genuinely carry dependences (the "hottest loop nests" the paper
    says experts pipeline, §V-E), plus norm reductions.  DCA correctly
    separates the parallel RHS population from the sequential sweeps. *)

let source =
  {|
// NPB LU kernel, MiniC port (2-D SSOR sweeps).
int   n;
float v[24][24];
float rhs[24][24];
float flux[24][24];
float acoef[24][24];
float bcoef[24][24];
float omega;
float tolr;
float rsdnm;
float vnorm;
int   verified;

void compute_flux() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      flux[i][j] = 0.25 * (v[i + 1][j] + v[i - 1][j] + v[i][j + 1] + v[i][j - 1]);
    }
  }
}

void compute_rhs() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      rhs[i][j] = flux[i][j] - v[i][j] + 0.01 * itof(i + j);
    }
  }
}

// jacld-like coefficient setup (parallel): coefficients of the lower system
void jacld() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      acoef[i][j] = 0.3 / (1.0 + 0.1 * fabs(v[i][j]));
    }
  }
}

// jacu-like coefficient setup for the upper system (parallel)
void jacu() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      bcoef[i][j] = 0.3 / (1.0 + 0.1 * fabs(flux[i][j]));
    }
  }
}

// setbv-like boundary initialization (parallel, four edge loops)
void setbv() {
  int i;
  for (i = 0; i < n; i = i + 1) { v[0][i] = 1.0; }
  for (i = 0; i < n; i = i + 1) { v[n - 1][i] = 1.0; }
  for (i = 0; i < n; i = i + 1) { v[i][0] = 1.0; }
  for (i = 0; i < n; i = i + 1) { v[i][n - 1] = 1.0; }
}

// l2norm of the solution by rows (rows independent)
float l2norm_v() {
  float s = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    float row = 0.0;
    int j;
    for (j = 0; j < n; j = j + 1) { row = row + v[i][j] * v[i][j]; }
    s = s + row;
  }
  return sqrt(s);
}

// lower-triangular sweep: wavefront dependence on both loops
void blts() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      rhs[i][j] = rhs[i][j] + acoef[i][j] * (rhs[i - 1][j] + rhs[i][j - 1]);
    }
  }
}

// upper-triangular sweep
void buts() {
  int i;
  int j;
  for (i = n - 2; i > 0; i = i - 1) {
    for (j = n - 2; j > 0; j = j - 1) {
      rhs[i][j] = rhs[i][j] + bcoef[i][j] * (rhs[i + 1][j] + rhs[i][j + 1]);
    }
  }
}

void update() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      v[i][j] = v[i][j] + omega * rhs[i][j];
    }
  }
}

float residual_norm() {
  float s = 0.0;
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) { s = s + rhs[i][j] * rhs[i][j]; }
  }
  return sqrt(s);
}

void main() {
  n = 24;
  tolr = 0.001;
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      v[i][j] = hrand(i * 24 + j);
      rhs[i][j] = 0.0;
      flux[i][j] = 0.0;
    }
  }
  setbv();
  int step;
  for (step = 0; step < 4; step = step + 1) {
    omega = 0.7 / itof(step + 1);
    compute_flux();
    compute_rhs();
    jacld();
    blts();
    jacu();
    buts();
    update();
  }
  rsdnm = residual_norm();
  vnorm = l2norm_v();
  verified = 0;
  if (rsdnm >= 0.0) { verified = 1; }
  print(rsdnm);
  print(vnorm);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"LU" ~suite:Benchmark.Npb
       ~description:"2-D SSOR: parallel stencils plus sequential wavefront sweeps" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.In_func "compute_flux";
        Benchmark.In_func "compute_rhs";
        Benchmark.In_func "jacld";
        Benchmark.In_func "jacu";
        Benchmark.In_func "setbv";
        Benchmark.Outermost "l2norm_v";
        Benchmark.In_func "update";
        Benchmark.In_func "residual_norm";
        Benchmark.Nth_in_func ("main", 0);
        Benchmark.Nth_in_func ("main", 1);
      ];
    bm_expert_sections =
      [ [ Benchmark.In_func "compute_flux"; Benchmark.In_func "compute_rhs" ] ];
    bm_expert_extra = 0.45 (* the expert LU pipelines the blts/buts wavefronts *);
    bm_expert_workers = 12;
    bm_known_sequential = [ Benchmark.In_func "blts"; Benchmark.In_func "buts"; Benchmark.Nth_in_func ("main", 2) ];
  }
