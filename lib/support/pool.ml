type t = {
  jobs : int;
  lock : Mutex.t;
  cond : Condition.t;  (** signaled on enqueue, task completion, shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs
let fp_task = Faultpoint.site "pool.task"

(* Workers loop forever: run whatever is queued, sleep when idle, exit on
   shutdown.  Tasks never raise — [map] wraps user functions so failures
   are captured into the result slots. *)
let worker_body t =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    let rec take () =
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None -> if t.live then (Condition.wait t.cond t.lock; take ()) else None
    in
    match take () with
    | Some task ->
        Mutex.unlock t.lock;
        task ()
    | None ->
        Mutex.unlock t.lock;
        running := false
  done

let create ~jobs =
  let jobs = max 1 (min jobs 128) in
  let t =
    { jobs; lock = Mutex.create (); cond = Condition.create (); queue = Queue.create (); live = true; workers = [] }
  in
  if jobs > 1 then t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_body t));
  t

let shutdown t =
  Mutex.lock t.lock;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  if was_live then List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  if t.jobs <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
        let items = Array.of_list xs in
        let n = Array.length items in
        let results = Array.make n None in
        let remaining = ref n in
        (* Tasks run under the submitter's telemetry context, whichever
           domain picks them up: counters and spans land in the scope
           that requested the work, not in the worker's own ambient.
           Captured once per map — a drain loop stealing a task from a
           sibling map still installs *that* map's context. *)
        let tele = Telemetry.current () in
        let run i () =
          let r =
            Telemetry.with_ctx tele (fun () ->
                (* span per task, on whichever domain executes it: the
                   trace's per-tid lanes show worker utilization directly *)
                Telemetry.begin_span ~cat:"pool" "task";
                let r =
                  (* the fault point is inside the capture: an injected
                     failure is recorded into the result slot and surfaces
                     through the deterministic earliest-index propagation,
                     exactly like a real task failure.  The site is
                     unscoped and hit from whichever domain runs the task,
                     so it is a diagnostic site — jobs-invariance is not
                     claimed for it. *)
                  try
                    Faultpoint.hit_unit fp_task;
                    Ok (f items.(i))
                  with e -> Error (e, Printexc.get_raw_backtrace ())
                in
                Telemetry.end_span "task";
                r)
          in
          Mutex.lock t.lock;
          results.(i) <- Some r;
          decr remaining;
          Condition.broadcast t.cond;
          Mutex.unlock t.lock
        in
        Mutex.lock t.lock;
        for i = 0 to n - 1 do
          Queue.add (run i) t.queue
        done;
        Condition.broadcast t.cond;
        (* Participate until every slot of *this* map is filled.  The task
           we pick up may belong to a sibling or nested map — running it
           still makes global progress, and our own slots are guaranteed to
           fill because every queued task is eventually executed by someone
           whose wait loop woke up.  The drain span covers exactly this
           participate-or-wait region, so the deterministic-merge stall
           (caller blocked on the last straggler) is visible in the trace
           as drain time not covered by nested task spans. *)
        Telemetry.begin_span ~cat:"pool" "drain";
        while !remaining > 0 do
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.lock;
              task ();
              Mutex.lock t.lock
          | None -> if !remaining > 0 then Condition.wait t.cond t.lock
        done;
        Mutex.unlock t.lock;
        Telemetry.end_span "drain";
        (* Deterministic failure propagation: earliest input's exception. *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | _ -> ())
          results;
        Array.to_list
          (Array.map (function Some (Ok v) -> v | _ -> assert false) results)

let default_jobs () =
  match Sys.getenv_opt "DCA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 128
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
