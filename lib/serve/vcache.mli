(** Two-level content-addressed verdict cache: an in-memory LRU in front
    of an on-disk store that survives daemon restarts (DESIGN.md §12).

    Values are the per-loop [(decision, outcome)] pair plus provenance —
    exactly what {!Dca_core.Report} folds into a summary line and the
    counters footer, so a reply assembled from cache is byte-identical
    to a cold one.  Loop structure (the {!Dca_analysis.Loops.loop}, the
    label) is {e not} cached; it is rebuilt from the fresh static
    analysis of every request.

    On-disk entries carry a payload digest: any corruption (torn write,
    truncation, bit rot, format drift) is detected on read, counted in
    [st_corrupt], and degrades to a recompute — never a crash.  Writes
    are atomic (temp file + rename).  The cache is concurrency-safe:
    one internal mutex serializes {!find}/{!store}/{!stats}/{!size}, so
    the concurrent daemon's worker domains share it directly and the
    {!stats} fields stay exact (every hit, miss, store, and eviction is
    counted exactly once). *)

type entry = {
  e_decision : Dca_core.Driver.decision;
  e_outcome : Dca_core.Commutativity.outcome option;
  e_provenance : Dca_core.Report.provenance;
  e_prog_digest : string;
      (** whole-program digest when the entry was created.  Entries whose
          outcome escalated to whole-program verification depend on the
          whole program and are only served while this still matches
          (per-function keys under-approximate their dependencies). *)
}

type stats = {
  st_mem_hits : int;
  st_disk_hits : int;
  st_misses : int;
  st_stores : int;
  st_corrupt : int;  (** on-disk entries rejected by the integrity check *)
  st_evictions : int;  (** in-memory LRU evictions (the disk copy remains) *)
  st_write_errors : int;  (** failed disk writes (the trigger of {!degraded}) *)
}

type t

val create : ?dir:string -> ?capacity:int -> ?on_degrade:(string -> unit) -> unit -> t
(** [dir] enables the on-disk level (created if missing); without it the
    cache is memory-only.  [capacity] bounds the in-memory level
    (default 4096 entries); disk is unbounded.  [on_degrade] fires
    exactly once, on the first failed disk write (ENOSPC, EIO, read-only
    directory, or an injected [vcache.write] fault), with the failure
    message — the cache then runs memory-only ({!degraded}).  The
    callback runs under the cache's internal lock: log and count, do not
    call back into the cache. *)

val find : t -> prog_digest:string -> string -> entry option
(** Probe both levels for a key ({!Progdigest.loop_key}).  A disk hit is
    promoted into memory.  [prog_digest] is the current whole-program
    digest, used to invalidate escalated entries. *)

val store : t -> string -> entry -> unit
(** Insert into both levels.  A disk-write failure (full disk, read-only
    directory, injected fault) is swallowed and latches {!degraded}:
    this and all later stores are memory-only, the reply is never
    affected.  Disk {e reads} keep working — a read-only directory still
    serves the entries it already holds. *)

val stats : t -> stats
val size : t -> int
(** Entries currently resident in memory. *)

val degraded : t -> bool
(** Has the cache downgraded to memory-only operation after a failed
    disk write?  Latched for the lifetime of this instance; a fresh
    {!create} over the same directory probes the disk again. *)
