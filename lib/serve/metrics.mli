(** The daemon's metrics plane: counters, gauges, and fixed-bucket
    latency histograms over a declared family set (DESIGN.md §13).

    Distinct from {!Dca_support.Telemetry} on purpose: telemetry
    counters measure the {e analysis} (loops examined, replays decided —
    deterministic, context-scoped), while metrics measure the
    {e service} (request rates, latency distribution, queue pressure —
    wall-clock facts of one daemon process).  Families are fixed at
    {!create}; updates are single atomic operations, safe from any
    worker domain, with no allocation on the hot path.

    A {!snapshot} round-trips through JSON (the [stats] protocol verb
    carries it to clients) and renders to a Prometheus-style text
    {!exposition} — the formats of `dca client --metrics` and the
    daemon's [--metrics-file]. *)

type t

val create : counters:string list -> gauges:string list -> histograms:string list -> unit -> t
(** Declare the families.  Operations on names outside the declared set
    raise [Invalid_argument] — a misspelled metric is a bug, not data. *)

val add : t -> string -> int -> unit
val incr : t -> string -> unit

val gauge_add : t -> string -> int -> unit
val gauge_set : t -> string -> int -> unit

val observe_ns : t -> string -> int -> unit
(** Record one histogram observation, in nanoseconds.  The bucket
    ladder is fixed (1ms … 10s, then +Inf); negative values clamp into
    the first bucket. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_bounds_ns : int array;  (** bucket upper bounds; the last bucket is +Inf *)
  hs_counts : int array;  (** per-bucket counts, {e non}-cumulative; length = bounds + 1 *)
  hs_sum_ns : int;
  hs_count : int;
}

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * int) list;
  sn_hists : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot
(** Atomic per cell; a concurrent observation may straddle two cells of
    one histogram (count visible, sum not yet), which the next snapshot
    repairs — totals never drift. *)

val quantile : hist_snapshot -> float -> float
(** [quantile h q] estimates the [q]-quantile (e.g. [0.99]) in {e
    seconds} by linear interpolation inside the bucket holding the
    rank, the same estimate as Prometheus' [histogram_quantile].
    Observations in the +Inf overflow bucket clamp to the last finite
    bound; an empty histogram yields [0.0]. *)

val snapshot_to_json : snapshot -> Json.t
val snapshot_of_json : Json.t -> (snapshot, string) result

val exposition : snapshot -> string
(** Prometheus-style text: a [# TYPE] line per family, histogram
    buckets cumulative with [le] in seconds closing at [+Inf], then
    [_sum] (seconds) and [_count]. *)
