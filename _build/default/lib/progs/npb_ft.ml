(** FT — Fast Fourier Transform (NPB).

    Iterative radix-2 Cooley–Tukey over complex arrays with a
    bit-reversal permutation and symbolically-strided butterfly loops
    (stride 2^stage): exactly the subscripts the affine baselines cannot
    express (paper Table III shows ICC finding a single FT loop).  The
    butterflies of one stage touch disjoint pairs, so DCA reports them
    commutative; the stage loop and the time-evolution loop chain the
    whole array state and are genuinely sequential. *)

let source =
  {|
// NPB FT kernel, MiniC port (1-D complex FFT with time evolution).
int   n;
int   logn;
float re[64];
float im[64];
float wre[64];
float wim[64];
float scratch_re[64];
float scratch_im[64];
float plane_re[8][64];
float plane_im[8][64];
float checksum_re;
float checksum_im;
float plane_energy;
int   verified;

int bit_reverse(int k, int bits) {
  int result = 0;
  int b;
  int v = k;
  for (b = 0; b < bits; b = b + 1) {
    result = result * 2 + v % 2;
    v = v / 2;
  }
  return result;
}

void fft_forward() {
  int i;
  // bit-reversal permutation into scratch
  for (i = 0; i < n; i = i + 1) {
    int j = bit_reverse(i, logn);
    scratch_re[j] = re[i];
    scratch_im[j] = im[i];
  }
  for (i = 0; i < n; i = i + 1) {
    re[i] = scratch_re[i];
    im[i] = scratch_im[i];
  }
  // butterfly stages: stage loop is order-dependent, butterflies are not
  int stage;
  int le = 1;
  for (stage = 0; stage < logn; stage = stage + 1) {
    int le2 = le * 2;
    int group;
    for (group = 0; group < n / le2; group = group + 1) {
      int k;
      for (k = 0; k < le; k = k + 1) {
        int top = group * le2 + k;
        int bot = top + le;
        int widx = k * (n / le2);
        float tr = re[bot] * wre[widx] - im[bot] * wim[widx];
        float ti = re[bot] * wim[widx] + im[bot] * wre[widx];
        re[bot] = re[top] - tr;
        im[bot] = im[top] - ti;
        re[top] = re[top] + tr;
        im[top] = im[top] + ti;
      }
    }
    le = le2;
  }
}

void evolve(int t) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    float phase = itof((i * t) % n) / itof(n);
    float c = cos(6.283185307179586 * phase);
    float s = sin(6.283185307179586 * phase);
    float nr = re[i] * c - im[i] * s;
    float ni = re[i] * s + im[i] * c;
    re[i] = nr;
    im[i] = ni;
  }
}

// cffts1-like batch: transform each row of a 2-D plane independently
void fft_row(int r) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    re[i] = plane_re[r][i];
    im[i] = plane_im[r][i];
  }
  fft_forward();
  for (i = 0; i < n; i = i + 1) {
    plane_re[r][i] = re[i];
    plane_im[r][i] = im[i];
  }
}

void cffts1() {
  int r;
  for (r = 0; r < 8; r = r + 1) { fft_row(r); }
}

void main() {
  n = 64;
  logn = 6;
  int i;
  // twiddle factors
  for (i = 0; i < n; i = i + 1) {
    float ang = -6.283185307179586 * itof(i) / itof(n);
    wre[i] = cos(ang);
    wim[i] = sin(ang);
  }
  // initial signal from hash randoms
  for (i = 0; i < n; i = i + 1) {
    re[i] = hrand(i) - 0.5;
    im[i] = hrand(i + 4096) - 0.5;
  }
  // time evolution: fft, phase shift, repeat (order-dependent outer loop)
  int t;
  for (t = 1; t <= 4; t = t + 1) {
    fft_forward();
    evolve(t);
  }
  // checksum reduction
  checksum_re = 0.0;
  checksum_im = 0.0;
  for (i = 0; i < n; i = i + 1) {
    checksum_re = checksum_re + re[i];
    checksum_im = checksum_im + im[i];
  }
  verified = 1;
  float energy = 0.0;
  for (i = 0; i < n; i = i + 1) { energy = energy + re[i] * re[i] + im[i] * im[i]; }
  if (energy <= 0.0) { verified = 0; }
  // 2-D plane batch: rows transformed independently
  int r;
  for (r = 0; r < 8; r = r + 1) {
    for (i = 0; i < n; i = i + 1) {
      plane_re[r][i] = hrand(r * 64 + i) - 0.5;
      plane_im[r][i] = hrand(9000 + r * 64 + i) - 0.5;
    }
  }
  cffts1();
  plane_energy = 0.0;
  for (r = 0; r < 8; r = r + 1) {
    for (i = 0; i < n; i = i + 1) {
      plane_energy = plane_energy + plane_re[r][i] * plane_re[r][i] + plane_im[r][i] * plane_im[r][i];
    }
  }

  if (plane_energy <= 0.0) { verified = 0; }
  print(checksum_re);
  print(checksum_im);
  print(energy);
  print(plane_energy);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"FT" ~suite:Benchmark.Npb
       ~description:"iterative radix-2 FFT with bit reversal and time evolution" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.Nth_in_func ("fft_forward", 0);
        Benchmark.Nth_in_func ("fft_forward", 1);
        Benchmark.At_depth ("fft_forward", 2) (* group loop inside a stage *);
        Benchmark.In_func "evolve";
        Benchmark.Outermost "cffts1" (* independent row transforms *);
        Benchmark.In_func "fft_row";
      ];
    bm_expert_sections = [ [ Benchmark.In_func "evolve" ] ];
    bm_expert_extra = 0.35 (* the expert FT is restructured for transposed work sharing *);
    (* Note: the butterfly stage loop and bit_reverse's shift chain apply
       the same state transformer on every iteration, so permuting them is
       observationally the identity — they are commutative in the paper's
       sense even though they cannot be parallelized.  Only loops whose
       iterations actually differ belong in the order-dependent ground
       truth (see EXPERIMENTS.md on the commutativity/parallelizability
       boundary). *)
    bm_known_sequential = [ Benchmark.Nth_in_func ("main", 2) (* time evolution *) ];
  }
