lib/baselines/discopop_tool.ml: Affine Dca_analysis Dca_ir Dca_support Dynamic_common Intset List Loops Memred Proginfo Scalars Tool
