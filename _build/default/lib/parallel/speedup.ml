open Dca_profiling

type loop_stats = { ls_loop_id : string; ls_seq_cost : float; ls_par_cost : float; ls_saved : float }

type result = { sp_seq : float; sp_par : float; sp_speedup : float; sp_loops : loop_stats list }

let group_sizes plan =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun lp ->
      match lp.Plan.lp_fused_group with
      | Some g -> Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g))
      | None -> ())
    plan.Plan.plan_loops;
  tbl

let simulate ?extra_parallel ~machine info profile plan =
  ignore info;
  let seq = float_of_int profile.Depprof.pr_total_cost in
  let groups = group_sizes plan in
  let stats =
    List.filter_map
      (fun lp ->
        match Depprof.loop_profile profile lp.Plan.lp_loop_id with
        | None -> None
        | Some loop_prof ->
            (* fused loops share one launch: divide launch overheads by the
               group size *)
            let m =
              match lp.Plan.lp_fused_group with
              | Some g ->
                  let n = float_of_int (max 1 (Hashtbl.find groups g)) in
                  {
                    machine with
                    Machine.m_spawn_cost = machine.Machine.m_spawn_cost /. n;
                    m_barrier_cost = machine.Machine.m_barrier_cost /. n;
                  }
              | None -> machine
            in
            let reductions = List.length lp.Plan.lp_reductions in
            let par = Planner.parallel_cost ~machine:m loop_prof ~reductions in
            let seq_cost = float_of_int loop_prof.Depprof.lp_total_cost in
            Some
              {
                ls_loop_id = lp.Plan.lp_loop_id;
                ls_seq_cost = seq_cost;
                ls_par_cost = par;
                ls_saved = Float.max 0.0 (seq_cost -. par);
              })
      plan.Plan.plan_loops
  in
  let saved = List.fold_left (fun acc s -> acc +. s.ls_saved) 0.0 stats in
  let par_after_loops = Float.max 1.0 (seq -. saved) in
  let par =
    match extra_parallel with
    | None -> par_after_loops
    | Some (fraction, workers) ->
        let f = Float.max 0.0 (Float.min 1.0 fraction) in
        let w = float_of_int (max 1 workers) in
        par_after_loops *. (1.0 -. f) +. (par_after_loops *. f /. w)
  in
  { sp_seq = seq; sp_par = par; sp_speedup = seq /. par; sp_loops = stats }

let sequential_result profile =
  let seq = float_of_int profile.Depprof.pr_total_cost in
  { sp_seq = seq; sp_par = seq; sp_speedup = 1.0; sp_loops = [] }
